//! Relation-engine microbenchmarks: transitive closure, topological
//! sorting, and linear-extension enumeration — the primitives under every
//! checker query.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use smc_relation::{linext, BitSet, Relation};

/// A random DAG: edges only from lower to higher indices, density `p`.
fn random_dag(n: usize, p: f64, seed: u64) -> Relation {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut r = Relation::new(n);
    for a in 0..n {
        for b in a + 1..n {
            if rng.gen_bool(p) {
                r.add(a, b);
            }
        }
    }
    r
}

fn bench_closure(c: &mut Criterion) {
    let mut g = c.benchmark_group("relation/transitive_closure");
    for &n in &[16usize, 64, 128, 256] {
        let r = random_dag(n, 0.05, 42);
        g.bench_with_input(BenchmarkId::from_parameter(n), &r, |b, r| {
            b.iter(|| black_box(r.closed()))
        });
    }
    g.finish();
}

fn bench_topo(c: &mut Criterion) {
    let mut g = c.benchmark_group("relation/topo_sort");
    for &n in &[64usize, 256] {
        let r = random_dag(n, 0.05, 7);
        g.bench_with_input(BenchmarkId::from_parameter(n), &r, |b, r| {
            b.iter(|| black_box(r.topo_sort()))
        });
    }
    g.finish();
}

fn bench_linext(c: &mut Criterion) {
    let mut g = c.benchmark_group("relation/count_linear_extensions");
    // Antichain: the worst case, n! extensions.
    for &n in &[6usize, 7, 8] {
        let r = Relation::new(n);
        let full = BitSet::full(n);
        g.bench_with_input(BenchmarkId::new("antichain", n), &n, |b, _| {
            b.iter(|| black_box(linext::count_linear_extensions(&r, &full, usize::MAX)))
        });
    }
    // Two chains of n/2: C(n, n/2) extensions — the store-order
    // enumeration shape (two processors' writes).
    for &n in &[8usize, 12] {
        let mut r = Relation::new(n);
        r.add_total_order(&(0..n / 2).collect::<Vec<_>>());
        r.add_total_order(&(n / 2..n).collect::<Vec<_>>());
        let full = BitSet::full(n);
        g.bench_with_input(BenchmarkId::new("two_chains", n), &n, |b, _| {
            b.iter(|| black_box(linext::count_linear_extensions(&r, &full, usize::MAX)))
        });
    }
    g.finish();
}

fn bench_restrict(c: &mut Criterion) {
    let r = random_dag(256, 0.05, 3);
    let keep = BitSet::from_iter(256, (0..256).filter(|i| i % 2 == 0));
    c.bench_function("relation/restrict_half_of_256", |b| {
        b.iter(|| black_box(r.restrict(&keep)))
    });
}

criterion_group!(benches, bench_closure, bench_topo, bench_linext, bench_restrict);
criterion_main!(benches);

//! Relation-engine microbenchmarks: transitive closure, topological
//! sorting, and linear-extension enumeration — the primitives under every
//! checker query.

use smc_bench::quickbench::{black_box, Harness};
use smc_prng::SmallRng;
use smc_relation::{linext, BitSet, Relation};

/// A random DAG: edges only from lower to higher indices, density `p`.
fn random_dag(n: usize, p: f64, seed: u64) -> Relation {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut r = Relation::new(n);
    for a in 0..n {
        for b in a + 1..n {
            if rng.gen_bool(p) {
                r.add(a, b);
            }
        }
    }
    r
}

fn bench_closure(h: &mut Harness) {
    let mut g = h.group("relation/transitive_closure");
    for &n in &[16usize, 64, 128, 256] {
        let r = random_dag(n, 0.05, 42);
        g.bench(&n.to_string(), || {
            black_box(r.closed());
        });
    }
}

fn bench_topo(h: &mut Harness) {
    let mut g = h.group("relation/topo_sort");
    for &n in &[64usize, 256] {
        let r = random_dag(n, 0.05, 7);
        g.bench(&n.to_string(), || {
            black_box(r.topo_sort());
        });
    }
}

fn bench_linext(h: &mut Harness) {
    let mut g = h.group("relation/count_linear_extensions");
    // Antichain: the worst case, n! extensions.
    for &n in &[6usize, 7, 8] {
        let r = Relation::new(n);
        let full = BitSet::full(n);
        g.bench(&format!("antichain/{n}"), || {
            black_box(linext::count_linear_extensions(&r, &full, usize::MAX));
        });
    }
    // Two chains of n/2: C(n, n/2) extensions — the store-order
    // enumeration shape (two processors' writes).
    for &n in &[8usize, 12] {
        let mut r = Relation::new(n);
        r.add_total_order(&(0..n / 2).collect::<Vec<_>>());
        r.add_total_order(&(n / 2..n).collect::<Vec<_>>());
        let full = BitSet::full(n);
        g.bench(&format!("two_chains/{n}"), || {
            black_box(linext::count_linear_extensions(&r, &full, usize::MAX));
        });
    }
}

fn bench_restrict(h: &mut Harness) {
    let r = random_dag(256, 0.05, 3);
    let keep = BitSet::from_iter(256, (0..256).filter(|i| i % 2 == 0));
    h.bench("relation/restrict_half_of_256", || {
        black_box(r.restrict(&keep));
    });
}

fn main() {
    let mut h = Harness::from_env();
    bench_closure(&mut h);
    bench_topo(&mut h);
    bench_linext(&mut h);
    bench_restrict(&mut h);
}

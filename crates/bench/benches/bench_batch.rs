//! Sequential vs parallel corpus checking — the headline numbers for the
//! `smc-core` batch engine.
//!
//! Two scenarios:
//!
//! * the embedded litmus corpus crossed with every model, checked by a
//!   plain sequential loop and by [`check_batch`] at increasing worker
//!   counts (speedup is expected only on multi-core hosts — on one core
//!   the parallel rows measure the engine's overhead);
//! * a single hard exhaustive check split across workers by
//!   [`check_parallel`].

use smc_bench::quickbench::{black_box, Harness};
use smc_core::batch::{check_batch, check_parallel};
use smc_core::checker::{check_with_config, CheckConfig};
use smc_core::{models, ModelSpec};
use smc_history::{History, HistoryBuilder};
use smc_programs::corpus::litmus_suite;

fn corpus_pairs<'a>(
    histories: &'a [History],
    model_list: &'a [ModelSpec],
) -> Vec<(&'a History, &'a ModelSpec)> {
    histories
        .iter()
        .flat_map(|h| model_list.iter().map(move |m| (h, m)))
        .collect()
}

fn bench_corpus(harness: &mut Harness) {
    let histories: Vec<History> = litmus_suite().into_iter().map(|t| t.history).collect();
    let model_list = models::all_models();
    let cfg = CheckConfig::default();
    let pairs = corpus_pairs(&histories, &model_list);
    let mut g = harness.group(&format!("batch/corpus_{}_pairs", pairs.len()));
    g.bench("sequential_loop", || {
        let n = pairs
            .iter()
            .filter(|(h, m)| check_with_config(h, m, &cfg).is_allowed())
            .count();
        black_box(n);
    });
    let hw = std::thread::available_parallelism().map_or(1, usize::from);
    let mut job_counts = vec![1usize, 2, 4];
    if !job_counts.contains(&hw) {
        job_counts.push(hw);
    }
    for jobs in job_counts {
        g.bench(&format!("check_batch_j{jobs}"), || {
            let results = check_batch(&pairs, &cfg, jobs);
            let n = results.iter().filter(|r| r.verdict.is_allowed()).count();
            black_box(n);
        });
    }
}

/// A PRAM refutation that needs exhaustive per-processor view searches:
/// `p` writes `x` as 1..=k, every other processor claims to read them in
/// reverse order (violating FIFO delivery of `p`'s writes).
fn reversed_reads(k: i64, readers: usize) -> History {
    let mut b = HistoryBuilder::new();
    for v in 1..=k {
        b.write("p", "x", v);
    }
    for r in 0..readers {
        let name = format!("q{r}");
        for v in (1..=k).rev() {
            b.read(&name, "x", v);
        }
    }
    b.build()
}

fn bench_single_check(harness: &mut Harness) {
    let h = reversed_reads(8, 4);
    let spec = models::pram();
    let cfg = CheckConfig::default();
    let mut g = harness.group("batch/single_check_pram_reversed");
    g.bench("sequential", || {
        black_box(check_with_config(&h, &spec, &cfg));
    });
    for jobs in [2usize, 4] {
        g.bench(&format!("check_parallel_j{jobs}"), || {
            let (v, stats) = check_parallel(&h, &spec, &cfg, jobs);
            black_box((v, stats.nodes_spent));
        });
    }
}

fn main() {
    let mut h = Harness::from_env();
    bench_corpus(&mut h);
    bench_single_check(&mut h);
}

//! Sequential vs parallel corpus checking — the headline numbers for the
//! `smc-core` batch engine.
//!
//! Two scenarios:
//!
//! * the embedded litmus corpus crossed with every model, checked by a
//!   plain sequential loop and by [`check_batch`] at increasing worker
//!   counts (speedup is expected only on multi-core hosts — on one core
//!   the parallel rows measure the engine's overhead);
//! * a single hard exhaustive check split across workers by
//!   [`check_parallel`].

use smc_bench::quickbench::{black_box, Harness};
use smc_core::batch::{check_batch, check_parallel};
use smc_core::checker::{check_with_config, CheckConfig, SchedulerKind};
use smc_core::{models, ModelSpec};
use smc_history::{History, HistoryBuilder};
use smc_programs::corpus::litmus_suite;

fn corpus_pairs<'a>(
    histories: &'a [History],
    model_list: &'a [ModelSpec],
) -> Vec<(&'a History, &'a ModelSpec)> {
    histories
        .iter()
        .flat_map(|h| model_list.iter().map(move |m| (h, m)))
        .collect()
}

fn bench_corpus(harness: &mut Harness) {
    let histories: Vec<History> = litmus_suite().into_iter().map(|t| t.history).collect();
    let model_list = models::all_models();
    let cfg = CheckConfig::default();
    let pairs = corpus_pairs(&histories, &model_list);
    let mut g = harness.group(&format!("batch/corpus_{}_pairs", pairs.len()));
    g.bench("sequential_loop", || {
        let n = pairs
            .iter()
            .filter(|(h, m)| check_with_config(h, m, &cfg).is_allowed())
            .count();
        black_box(n);
    });
    let hw = std::thread::available_parallelism().map_or(1, usize::from);
    let mut job_counts = vec![1usize, 2, 4];
    if !job_counts.contains(&hw) {
        job_counts.push(hw);
    }
    for jobs in job_counts {
        g.bench(&format!("check_batch_j{jobs}"), || {
            let results = check_batch(&pairs, &cfg, jobs);
            let n = results.iter().filter(|r| r.verdict.is_allowed()).count();
            black_box(n);
        });
    }
}

/// A PRAM refutation that needs exhaustive per-processor view searches:
/// `p` writes `x` as 1..=k, every other processor claims to read them in
/// reverse order (violating FIFO delivery of `p`'s writes).
fn reversed_reads(k: i64, readers: usize) -> History {
    let mut b = HistoryBuilder::new();
    for v in 1..=k {
        b.write("p", "x", v);
    }
    for r in 0..readers {
        let name = format!("q{r}");
        for v in (1..=k).rev() {
            b.read(&name, "x", v);
        }
    }
    b.build()
}

fn bench_single_check(harness: &mut Harness) {
    let h = reversed_reads(8, 4);
    let spec = models::pram();
    let cfg = CheckConfig::default();
    let mut g = harness.group("batch/single_check_pram_reversed");
    g.bench("sequential", || {
        black_box(check_with_config(&h, &spec, &cfg));
    });
    for jobs in [2usize, 4] {
        g.bench(&format!("check_parallel_j{jobs}"), || {
            let (v, stats) = check_parallel(&h, &spec, &cfg, jobs);
            black_box((v, stats.nodes_spent));
        });
    }
}

/// An isomorphic copy of `h`: processors rotated by `r`, locations and
/// processors renamed with an `r`-tagged prefix, and every non-initial
/// value shifted by `3r` (a bijection on the non-zero values that fixes
/// the initial value 0). Verdicts are invariant under all of these, so
/// the canonical key — and hence the memo slot — is shared with `h`.
fn isomorphic_copy(h: &History, r: usize) -> History {
    let mut b = HistoryBuilder::new();
    let np = h.num_procs();
    for i in 0..np {
        let p = smc_history::ProcId(((i + r) % np) as u32);
        let name = format!("c{r}_{}", h.proc_name(p));
        b.add_proc(&name);
        for o in h.proc_ops(p) {
            let loc = format!("c{r}_{}", h.loc_name(o.loc));
            let v = if o.value.is_initial() {
                0
            } else {
                o.value.0 + 3 * r as i64
            };
            b.push(&name, o.kind, &loc, v, o.label);
        }
    }
    b.build()
}

/// The corpus crossed with every model, duplicated 8× under relabelings:
/// without the memo every copy pays the full search; with a (fresh,
/// per-iteration) memo the 7 later copies rehydrate from the first.
fn bench_memoized_sweep(harness: &mut Harness) {
    let base: Vec<History> = litmus_suite().into_iter().map(|t| t.history).collect();
    let histories: Vec<History> = (0..8usize)
        .flat_map(|r| base.iter().map(move |h| isomorphic_copy(h, r)))
        .collect();
    let model_list = models::all_models();
    let pairs = corpus_pairs(&histories, &model_list);
    let mut g = harness.group(&format!("batch/memoized_sweep_{}_pairs", pairs.len()));
    let plain = CheckConfig::default();
    g.bench("memo_off", || {
        let results = check_batch(&pairs, &plain, 1);
        let n = results.iter().filter(|r| r.verdict.is_allowed()).count();
        black_box(n);
    });
    g.bench("memo_on", || {
        let cfg = CheckConfig::default().with_memo();
        let results = check_batch(&pairs, &cfg, 1);
        let n = results.iter().filter(|r| r.verdict.is_allowed()).count();
        black_box(n);
    });
}

/// One SC refutation whose single-rf extension search dominates: the
/// prefix-split path lets `check_parallel` partition that search. The
/// history is tiny (a handful of search nodes), so under the default
/// config the adaptive cutover probe decides it sequentially and the
/// `check_parallel_j*` rows should sit within noise of `sequential` —
/// the `_nocutover` row keeps the old always-fan-out cost (thread spawn
/// plus shared failed-set setup) measurable for comparison.
fn bench_split_dfs(harness: &mut Harness) {
    let h = reversed_reads(10, 3);
    let spec = models::sc();
    let cfg = CheckConfig::default();
    let nocutover = CheckConfig {
        parallel_cutover: 0,
        ..CheckConfig::default()
    };
    let mut g = harness.group("batch/split_dfs_sc_reversed");
    g.bench("sequential", || {
        black_box(check_with_config(&h, &spec, &cfg));
    });
    for jobs in [2usize, 4] {
        g.bench(&format!("check_parallel_j{jobs}"), || {
            let (v, stats) = check_parallel(&h, &spec, &cfg, jobs);
            black_box((v, stats.nodes_spent));
        });
    }
    g.bench("check_parallel_j4_nocutover", || {
        let (v, stats) = check_parallel(&h, &spec, &nocutover, 4);
        black_box((v, stats.nodes_spent));
    });
}

/// Store-buffering with `pad` private writes per processor ahead of the
/// critical section: SC-refuted, but only at the final reads, so the
/// `(pad+1)²`-state interleaving diamond of the padding writes must be
/// covered. Failed-state memoization collapses its exponentially many
/// paths to quadratic work — provided the memo is *shared*.
fn padded_sb(pad: i64) -> History {
    let mut b = HistoryBuilder::new();
    for v in 1..=pad {
        b.write("p", "a", v);
    }
    b.write("p", "x", 1);
    b.read("p", "y", 0);
    for v in 1..=pad {
        b.write("q", "b", v);
    }
    b.write("q", "y", 1);
    b.read("q", "x", 0);
    b.build()
}

/// The deep-funnel refutation that separates the two parallel engines.
/// The static-prefix engine hands every prefix a *private* failed-state
/// memo, so each of its subtrees re-explores the shared diamond from
/// scratch; the work-stealing engine's workers prune through one shared
/// concurrent failed-state set. The j4 rows compare the engines at the
/// same worker count (the stealing row also carries the scheduler's task
/// and fingerprint overhead, which is why `sequential` is the floor).
fn bench_split_dfs_deep_funnel(harness: &mut Harness) {
    let h = padded_sb(48);
    let spec = models::sc();
    // Cutover disabled: this history's ~4.8k nodes would exhaust the
    // default probe and the parallel rows would pay probe + fan-out,
    // muddying the engine comparison these rows exist to make.
    let stealing = CheckConfig {
        parallel_cutover: 0,
        ..CheckConfig::default()
    };
    let static_cfg = CheckConfig {
        scheduler: SchedulerKind::StaticPrefix,
        parallel_cutover: 0,
        ..CheckConfig::default()
    };
    let mut g = harness.group("batch/split_dfs_deep_funnel");
    g.bench("sequential", || {
        black_box(check_with_config(&h, &spec, &stealing));
    });
    g.bench("static_prefix_j4", || {
        let (v, stats) = check_parallel(&h, &spec, &static_cfg, 4);
        black_box((v, stats.nodes_spent));
    });
    g.bench("stealing_j4", || {
        let (v, stats) = check_parallel(&h, &spec, &stealing, 4);
        black_box((v, stats.nodes_spent));
    });
}

fn main() {
    let mut h = Harness::from_env();
    bench_corpus(&mut h);
    bench_single_check(&mut h);
    bench_memoized_sweep(&mut h);
    bench_split_dfs(&mut h);
    bench_split_dfs_deep_funnel(&mut h);
}

//! Amortized cost of streaming admission monitoring: the incremental
//! frontier monitor vs restarting the batch checker on every prefix.
//!
//! The stream is engineered to punish restarts. Once the reader's
//! anti-program-order reads start arriving, every prefix is SC-refuted
//! for an *ordering* reason — every read's value was genuinely written,
//! so the batch checker cannot short-circuit on an unmatched value and
//! must exhaust the reachable scheduling space to prove refutation. A
//! restart-per-event monitor pays that exhaustive search again on every
//! prefix; the frontier monitor discovers and expands each scheduling
//! state once over the entire stream.

use smc_bench::quickbench::{black_box, Harness};
use smc_core::batch::check_parallel;
use smc_core::checker::CheckConfig;
use smc_core::models;
use smc_history::trace::Trace;
use smc_history::{Label, OpKind};
use smc_monitor::{Monitor, MonitorConfig, TriVerdict};

/// `p0`/`p1` alternate writes `w(x)1..n` / `w(y)1..n`, then `p2` reads
/// both locations in *descending* value order: `r(x)n r(y)n r(x)n-1
/// r(y)n-1 ...`. The write-only prefixes are admitted; from the third
/// read on, every prefix is refuted — the reads demand the last-written
/// value of each location to run backwards against the writers' program
/// order, which no interleaving delivers, yet every value read does
/// appear in some write.
fn workload(n: i64) -> Trace {
    let mut t = Trace::new();
    for p in ["p0", "p1", "p2"] {
        t.add_proc(p);
    }
    for l in ["x", "y"] {
        t.add_loc(l);
    }
    for v in 1..=n {
        t.push_named("p0", OpKind::Write, "x", v, Label::Ordinary);
        t.push_named("p1", OpKind::Write, "y", v, Label::Ordinary);
    }
    for v in (1..=n).rev() {
        t.push_named("p2", OpKind::Read, "x", v, Label::Ordinary);
        t.push_named("p2", OpKind::Read, "y", v, Label::Ordinary);
    }
    t
}

fn incremental(t: &Trace) -> TriVerdict {
    let mut mon = Monitor::new(vec![models::sc()], MonitorConfig::default());
    mon.feed_trace(t);
    mon.verdicts()[0]
}

/// What a restart-per-event monitor pays: a cold batch check of every
/// prefix (no memo carries across prefixes — distinct histories would
/// miss the symmetry cache anyway).
fn scratch(t: &Trace) -> Option<bool> {
    let cfg = CheckConfig::default();
    let sc = models::sc();
    let mut last = None;
    for n in 1..=t.len() {
        last = check_parallel(&t.history_of_prefix(n), &sc, &cfg, 1)
            .0
            .decided();
    }
    last
}

fn bench_monitor_growing_prefix(harness: &mut Harness) {
    for n in [6i64, 10] {
        let t = workload(n);
        let mut g = harness.group(&format!("monitor/growing_prefix_{}_events", t.len()));
        g.bench("incremental", || {
            assert_eq!(black_box(incremental(&t)), TriVerdict::Violated);
        });
        g.bench("scratch", || {
            assert_eq!(black_box(scratch(&t)), Some(false));
        });
    }
}

fn main() {
    let mut h = Harness::from_env();
    bench_monitor_growing_prefix(&mut h);
}

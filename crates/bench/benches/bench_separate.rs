//! Throughput of the separation-search engine: canonical-class
//! deduplication vs naive per-history checking.
//!
//! The scanned universe (PC vs PCG over 2×2 ops, 2 locs, 2 values)
//! contains no separating witness, so neither mode exits early — both
//! pay for the full scan, and the ratio of their rates is exactly the
//! value of the symmetry machinery (representative filtering plus the
//! sharded per-class verdict cache).

use smc_bench::quickbench::{black_box, Harness};
use smc_core::checker::CheckConfig;
use smc_core::histgen::GenParams;
use smc_core::models;
use smc_core::separate::Separator;

fn universe() -> GenParams {
    GenParams {
        procs: 2,
        ops_per_proc: 2,
        locs: 2,
        values: 2,
    }
}

fn scan(naive: bool, jobs: usize) -> u64 {
    let mut sep = Separator::new(
        vec![models::pc(), models::pc_goodman()],
        CheckConfig::default(),
        jobs,
    );
    sep.set_naive(naive);
    let resolved = sep.run_universe(&universe());
    assert_eq!(resolved, 0, "universe unexpectedly separates PC/PCG");
    sep.stats.enumerated
}

fn bench_separate_throughput(harness: &mut Harness) {
    let total = universe().universe_size();
    let mut g = harness.group(&format!("separate/scan_pc_pcg_{total}_histories"));
    for jobs in [1usize, 4] {
        g.bench(&format!("canonical_dedup_j{jobs}"), || {
            black_box(scan(false, jobs));
        });
        g.bench(&format!("naive_j{jobs}"), || {
            black_box(scan(true, jobs));
        });
    }
}

fn main() {
    let mut h = Harness::from_env();
    bench_separate_throughput(&mut h);
}

//! The Section 5 experiment's cost: how quickly the RC_pc machine's
//! mutual-exclusion violation is found, versus the full exhaustive sweep
//! proving RC_sc correct, versus random-schedule sampling.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use smc_history::Label;
use smc_programs::bakery::bakery;
use smc_programs::interp::ProgramWorkload;
use smc_sim::explore::{explore, ExploreConfig};
use smc_sim::rc::{RcMem, SyncMode};
use smc_sim::sched::run_random;

fn cfg() -> ExploreConfig {
    ExploreConfig {
        collect_histories: false,
        max_states: 3_000_000,
        ..Default::default()
    }
}

fn bench_violation_search(c: &mut Criterion) {
    let program = bakery(2, Label::Labeled);
    let locs = program.num_locs();
    let mut g = c.benchmark_group("bakery");
    g.sample_size(10);

    g.bench_function("rc_pc_find_violation_exhaustive", |b| {
        b.iter(|| {
            let w = ProgramWorkload::new(program.clone(), 12);
            let out = explore(&RcMem::new(SyncMode::Pc, 2, locs), &w, &cfg());
            assert!(out.violation.is_some());
            black_box(out.states_explored)
        })
    });

    g.bench_function("rc_sc_prove_safe_exhaustive", |b| {
        b.iter(|| {
            let w = ProgramWorkload::new(program.clone(), 12);
            let out = explore(&RcMem::new(SyncMode::Sc, 2, locs), &w, &cfg());
            assert!(out.violation.is_none());
            black_box(out.states_explored)
        })
    });

    g.bench_function("rc_pc_100_random_runs", |b| {
        b.iter(|| {
            let mut violations = 0;
            for seed in 0..100u64 {
                let w = ProgramWorkload::new(program.clone(), 200);
                let r = run_random(RcMem::new(SyncMode::Pc, 2, locs), w, seed, 100_000);
                violations += r.violation.is_some() as usize;
            }
            black_box(violations)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_violation_search);
criterion_main!(benches);

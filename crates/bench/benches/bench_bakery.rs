//! The Section 5 experiment's cost: how quickly the RC_pc machine's
//! mutual-exclusion violation is found, versus the full exhaustive sweep
//! proving RC_sc correct, versus random-schedule sampling.

use smc_bench::quickbench::{black_box, Harness};
use smc_history::Label;
use smc_programs::bakery::bakery;
use smc_programs::interp::ProgramWorkload;
use smc_sim::explore::{explore, ExploreConfig};
use smc_sim::rc::{RcMem, SyncMode};
use smc_sim::sched::run_random;

fn cfg() -> ExploreConfig {
    ExploreConfig {
        collect_histories: false,
        max_states: 3_000_000,
        ..Default::default()
    }
}

fn bench_violation_search(h: &mut Harness) {
    let program = bakery(2, Label::Labeled);
    let locs = program.num_locs();
    let mut g = h.group("bakery");

    g.bench("rc_pc_find_violation_exhaustive", || {
        let w = ProgramWorkload::new(program.clone(), 12);
        let out = explore(&RcMem::new(SyncMode::Pc, 2, locs), &w, &cfg());
        assert!(out.violation.is_some());
        black_box(out.states_explored);
    });

    g.bench("rc_sc_prove_safe_exhaustive", || {
        let w = ProgramWorkload::new(program.clone(), 12);
        let out = explore(&RcMem::new(SyncMode::Sc, 2, locs), &w, &cfg());
        assert!(out.violation.is_none());
        black_box(out.states_explored);
    });

    g.bench("rc_pc_100_random_runs", || {
        let mut violations = 0;
        for seed in 0..100u64 {
            let w = ProgramWorkload::new(program.clone(), 200);
            let r = run_random(RcMem::new(SyncMode::Pc, 2, locs), w, seed, 100_000);
            violations += r.violation.is_some() as usize;
        }
        black_box(violations);
    });
}

fn main() {
    let mut h = Harness::from_env();
    bench_violation_search(&mut h);
}

//! Exhaustive-exploration growth: states expanded when enumerating every
//! schedule of the store-buffering shape, as the per-thread operation
//! count grows — the cost profile of the model-checking substrate.

use smc_bench::quickbench::{black_box, Harness};
use smc_sim::explore::{explore, ExploreConfig};
use smc_sim::mem::MemorySystem;
use smc_sim::workload::{Access, OpScript};
use smc_sim::{PramMem, ScMem, TsoMem};

/// `k` writes then one read per thread, two threads, disjoint locations.
fn sb_wide(k: usize) -> OpScript {
    let t0: Vec<Access> = (0..k)
        .map(|i| Access::write(i as u32, 1))
        .chain([Access::read(k as u32)])
        .collect();
    let t1: Vec<Access> = (0..k)
        .map(|i| Access::write((k + i) as u32, 1))
        .chain([Access::read(0)])
        .collect();
    OpScript::new(vec![t0, t1], 2 * k)
}

fn states<M: MemorySystem>(mem: M, script: &OpScript) -> usize {
    let out = explore(&mem, script, &ExploreConfig::default());
    assert!(!out.truncated);
    out.states_explored
}

fn bench_growth(h: &mut Harness) {
    let mut g = h.group("explore/sb_wide");
    for &k in &[1usize, 2, 3] {
        let script = sb_wide(k);
        g.bench(&format!("SC/{k}"), || {
            black_box(states(ScMem::new(2, 2 * k), &script));
        });
        g.bench(&format!("TSO/{k}"), || {
            black_box(states(TsoMem::new(2, 2 * k), &script));
        });
        g.bench(&format!("PRAM/{k}"), || {
            black_box(states(PramMem::new(2, 2 * k), &script));
        });
    }
}

fn bench_history_enumeration(h: &mut Harness) {
    // The fig3 exchange shape: exhaustive history enumeration per model.
    let script = OpScript::new(
        vec![
            vec![Access::write(0, 1), Access::read(0), Access::read(0)],
            vec![Access::write(0, 2), Access::read(0), Access::read(0)],
        ],
        1,
    );
    let mut g = h.group("explore/fig3_histories");
    g.bench("PRAM", || {
        let out = explore(&PramMem::new(2, 1), &script, &ExploreConfig::default());
        black_box(out.histories.len());
    });
    g.bench("TSO", || {
        let out = explore(&TsoMem::new(2, 1), &script, &ExploreConfig::default());
        black_box(out.histories.len());
    });
}

fn main() {
    let mut h = Harness::from_env();
    bench_growth(&mut h);
    bench_history_enumeration(&mut h);
}

//! Exhaustive-exploration growth: states expanded when enumerating every
//! schedule of the store-buffering shape, as the per-thread operation
//! count grows — the cost profile of the model-checking substrate.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use smc_sim::explore::{explore, ExploreConfig};
use smc_sim::mem::MemorySystem;
use smc_sim::workload::{Access, OpScript};
use smc_sim::{PramMem, ScMem, TsoMem};

/// `k` writes then one read per thread, two threads, disjoint locations.
fn sb_wide(k: usize) -> OpScript {
    let t0: Vec<Access> = (0..k)
        .map(|i| Access::write(i as u32, 1))
        .chain([Access::read(k as u32)])
        .collect();
    let t1: Vec<Access> = (0..k)
        .map(|i| Access::write((k + i) as u32, 1))
        .chain([Access::read(0)])
        .collect();
    OpScript::new(vec![t0, t1], 2 * k)
}

fn states<M: MemorySystem>(mem: M, script: &OpScript) -> usize {
    let out = explore(&mem, script, &ExploreConfig::default());
    assert!(!out.truncated);
    out.states_explored
}

fn bench_growth(c: &mut Criterion) {
    let mut g = c.benchmark_group("explore/sb_wide");
    g.sample_size(10);
    for &k in &[1usize, 2, 3] {
        let script = sb_wide(k);
        g.bench_with_input(BenchmarkId::new("SC", k), &script, |b, s| {
            b.iter(|| black_box(states(ScMem::new(2, 2 * k), s)))
        });
        g.bench_with_input(BenchmarkId::new("TSO", k), &script, |b, s| {
            b.iter(|| black_box(states(TsoMem::new(2, 2 * k), s)))
        });
        g.bench_with_input(BenchmarkId::new("PRAM", k), &script, |b, s| {
            b.iter(|| black_box(states(PramMem::new(2, 2 * k), s)))
        });
    }
    g.finish();
}

fn bench_history_enumeration(c: &mut Criterion) {
    // The fig3 exchange shape: exhaustive history enumeration per model.
    let script = OpScript::new(
        vec![
            vec![Access::write(0, 1), Access::read(0), Access::read(0)],
            vec![Access::write(0, 2), Access::read(0), Access::read(0)],
        ],
        1,
    );
    let mut g = c.benchmark_group("explore/fig3_histories");
    g.sample_size(10);
    g.bench_function("PRAM", |b| {
        b.iter(|| {
            let out = explore(&PramMem::new(2, 1), &script, &ExploreConfig::default());
            black_box(out.histories.len())
        })
    });
    g.bench_function("TSO", |b| {
        b.iter(|| {
            let out = explore(&TsoMem::new(2, 1), &script, &ExploreConfig::default());
            black_box(out.histories.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_growth, bench_history_enumeration);
criterion_main!(benches);

//! Scaling of the constraint-saturation engine vs the exhaustive
//! checker on 16–1024-operation SC-simulated traces.
//!
//! The exhaustive checker enumerates interleavings, so its cost is
//! exponential in history length; past a few dozen operations it can
//! only burn its node budget and report `Exhausted`. The saturation
//! engine works on the order-constraint graph instead and stays
//! polynomial on these traces. The exhaustive rows are budget-capped so
//! the benchmark terminates — they measure the cost of *giving up*,
//! which is the honest baseline for a history it cannot decide.

use smc_bench::bighist::{sc_run, sc_run_aliased};
use smc_bench::quickbench::{black_box, Harness};
use smc_core::checker::{check_with_stats, CheckConfig, EngineKind, Verdict};
use smc_core::models;
use smc_core::ModelSpec;

/// Node budget for the exhaustive rows. Big enough that 16-op traces
/// still decide, small enough that 1024-op rows fail fast.
const EXHAUSTIVE_CAP: u64 = 200_000;

fn saturate_cfg() -> CheckConfig {
    CheckConfig {
        engine: EngineKind::Saturate,
        ..CheckConfig::default()
    }
}

fn capped_exhaustive_cfg() -> CheckConfig {
    CheckConfig {
        engine: EngineKind::Exhaustive,
        node_budget: EXHAUSTIVE_CAP,
        ..CheckConfig::default()
    }
}

fn bench_scaling(harness: &mut Harness) {
    let specs: Vec<ModelSpec> = vec![models::sc(), models::tso(), models::pram()];
    for ops in [16usize, 64, 256, 1024] {
        let h = sc_run(0xb16_u64 + ops as u64, 4, 4, ops);
        for spec in &specs {
            let mut g = harness.group(&format!("bighist/{}_ops_{}", spec.name, ops));
            g.bench("saturate", || {
                let (v, _) = check_with_stats(black_box(&h), spec, &saturate_cfg());
                assert!(
                    v.is_allowed(),
                    "{} {ops} ops: saturate must admit",
                    spec.name
                );
            });
            g.bench("exhaustive_capped", || {
                let (v, _) = check_with_stats(black_box(&h), spec, &capped_exhaustive_cfg());
                // Small traces decide; big ones exhaust the cap. Either
                // way the run must not be silently Unsupported.
                assert!(
                    !matches!(v, Verdict::Unsupported(_)),
                    "{} {ops} ops: exhaustive unsupported",
                    spec.name
                );
            });
        }
    }
}

/// Adversarial aliasing family: same SC-simulated traces, but write
/// values drawn from a 3-symbol alphabet so most reads have many
/// reads-from candidates (the 256-op row does ~27x the closure work of
/// its forced-rf sibling and resolves hundreds of genuine conflicts).
/// This is where eager saturation used to branch hardest; watched
/// propagation + learned cuts must decide every row within the default
/// node budget. Past ~256 ops the per-retry closure cascade outgrows
/// any fixed budget — pushing that wall is a ROADMAP item.
fn bench_aliasing(harness: &mut Harness) {
    let tso = models::tso();
    for ops in [64usize, 192, 256] {
        let h = sc_run_aliased(0xa11a5_u64 + ops as u64, 4, 8, ops, 3);
        let mut g = harness.group(&format!("bighist/TSO_alias_ops_{}", ops));
        g.bench("saturate", || {
            let (v, _) = check_with_stats(black_box(&h), &tso, &saturate_cfg());
            assert!(
                v.is_allowed(),
                "TSO alias {ops} ops: saturate must decide within the default budget"
            );
        });
    }
}

fn main() {
    let mut h = Harness::from_env();
    bench_scaling(&mut h);
    bench_aliasing(&mut h);
}

//! Ablations of the checker's design choices (DESIGN.md §6):
//!
//! * failure-state **memoization** on/off in the view search,
//! * **dead-state pruning** on/off,
//! * **parallel vs sequential** classification sweeps (the `smc-core`
//!   batch engine).

use smc_bench::quickbench::{black_box, Harness};
use smc_core::batch::check_batch;
use smc_core::budget::Budget;
use smc_core::checker::CheckConfig;
use smc_core::histgen::{all_histories, GenParams};
use smc_core::lattice::classify;
use smc_core::models;
use smc_core::orders::program_order;
use smc_core::view::{find_legal_extension_with, LegalityMode, SearchOptions, ViewProblem};
use smc_history::{History, HistoryBuilder};
use smc_relation::BitSet;

/// A hard UNSAT instance for the view search: widened store buffering
/// under a single global view (the SC refutation path).
fn wide_sb(k: usize) -> History {
    let mut b = HistoryBuilder::new();
    for i in 0..k {
        b.write("p", &format!("x{i}"), 1);
    }
    b.read("p", "y0", 0);
    for i in 0..k {
        b.write("q", &format!("y{i}"), 1);
    }
    b.read("q", "x0", 0);
    b.build()
}

fn search(h: &History, opts: SearchOptions) -> u64 {
    let po = program_order(h);
    let p = ViewProblem {
        history: h,
        ops: BitSet::full(h.num_ops()),
        constraints: &po,
        legality: LegalityMode::ByValue,
    };
    let budget = Budget::local(u64::MAX);
    let out = find_legal_extension_with(&p, &budget, opts);
    assert!(matches!(out, smc_core::view::SearchOutcome::NotFound));
    budget.spent() // nodes spent
}

fn bench_search_options(harness: &mut Harness) {
    let mut g = harness.group("ablation/view_search_unsat");
    let variants = [
        ("full", SearchOptions::default()),
        (
            "no_memo",
            SearchOptions {
                memoize: false,
                dead_prune: true,
            },
        ),
        (
            "no_dead_prune",
            SearchOptions {
                memoize: true,
                dead_prune: false,
            },
        ),
        (
            "neither",
            SearchOptions {
                memoize: false,
                dead_prune: false,
            },
        ),
    ];
    for &k in &[4usize, 6] {
        let h = wide_sb(k);
        for (name, opts) in variants {
            g.bench(&format!("{name}/{}", h.num_ops()), || {
                black_box(search(&h, opts));
            });
        }
    }
}

fn bench_parallel_sweep(harness: &mut Harness) {
    let corpus = all_histories(&GenParams {
        procs: 2,
        ops_per_proc: 2,
        locs: 2,
        values: 1,
    });
    let models = models::figure5_models();
    let cfg = CheckConfig::default();
    let jobs = std::thread::available_parallelism().map_or(2, usize::from);
    let mut g = harness.group("ablation/lattice_sweep_1296_histories");
    g.bench("sequential", || {
        let n: usize = corpus
            .iter()
            .map(|h| classify(h, &models, &cfg).allowed.len())
            .sum();
        black_box(n);
    });
    g.bench(&format!("batch_parallel_j{jobs}"), || {
        let pairs: Vec<(&History, &smc_core::ModelSpec)> = corpus
            .iter()
            .flat_map(|h| models.iter().map(move |m| (h, m)))
            .collect();
        let results = check_batch(&pairs, &cfg, jobs);
        let n = results.iter().filter(|r| r.verdict.is_allowed()).count();
        black_box(n);
    });
}

fn main() {
    let mut h = Harness::from_env();
    bench_search_options(&mut h);
    bench_parallel_sweep(&mut h);
}

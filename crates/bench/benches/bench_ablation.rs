//! Ablations of the checker's design choices (DESIGN.md §6):
//!
//! * failure-state **memoization** on/off in the view search,
//! * **dead-state pruning** on/off,
//! * **parallel vs sequential** classification sweeps (rayon).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rayon::prelude::*;
use smc_core::checker::CheckConfig;
use smc_core::histgen::{all_histories, GenParams};
use smc_core::lattice::classify;
use smc_core::models;
use smc_core::orders::program_order;
use smc_core::view::{
    find_legal_extension_with, LegalityMode, SearchOptions, ViewProblem,
};
use smc_history::{History, HistoryBuilder};
use smc_relation::BitSet;
use std::cell::Cell;

/// A hard UNSAT instance for the view search: widened store buffering
/// under a single global view (the SC refutation path).
fn wide_sb(k: usize) -> History {
    let mut b = HistoryBuilder::new();
    for i in 0..k {
        b.write("p", &format!("x{i}"), 1);
    }
    b.read("p", "y0", 0);
    for i in 0..k {
        b.write("q", &format!("y{i}"), 1);
    }
    b.read("q", "x0", 0);
    b.build()
}

fn search(h: &History, opts: SearchOptions) -> u64 {
    let po = program_order(h);
    let p = ViewProblem {
        history: h,
        ops: BitSet::full(h.num_ops()),
        constraints: &po,
        legality: LegalityMode::ByValue,
    };
    let budget = Cell::new(u64::MAX);
    let out = find_legal_extension_with(&p, &budget, opts);
    assert!(matches!(out, smc_core::view::SearchOutcome::NotFound));
    u64::MAX - budget.get() // nodes spent
}

fn bench_search_options(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/view_search_unsat");
    g.sample_size(10);
    let variants = [
        ("full", SearchOptions::default()),
        (
            "no_memo",
            SearchOptions {
                memoize: false,
                dead_prune: true,
            },
        ),
        (
            "no_dead_prune",
            SearchOptions {
                memoize: true,
                dead_prune: false,
            },
        ),
        (
            "neither",
            SearchOptions {
                memoize: false,
                dead_prune: false,
            },
        ),
    ];
    for &k in &[4usize, 6] {
        let h = wide_sb(k);
        for (name, opts) in variants {
            g.bench_function(BenchmarkId::new(name, h.num_ops()), |b| {
                b.iter(|| black_box(search(&h, opts)))
            });
        }
    }
    g.finish();
}

fn bench_parallel_sweep(c: &mut Criterion) {
    let corpus = all_histories(&GenParams {
        procs: 2,
        ops_per_proc: 2,
        locs: 2,
        values: 1,
    });
    let models = models::figure5_models();
    let cfg = CheckConfig::default();
    let mut g = c.benchmark_group("ablation/lattice_sweep_1296_histories");
    g.sample_size(10);
    g.bench_function("sequential", |b| {
        b.iter(|| {
            let n: usize = corpus
                .iter()
                .map(|h| classify(h, &models, &cfg).allowed.len())
                .sum();
            black_box(n)
        })
    });
    g.bench_function("rayon_parallel", |b| {
        b.iter(|| {
            let n: usize = corpus
                .par_iter()
                .map(|h| classify(h, &models, &cfg).allowed.len())
                .sum();
            black_box(n)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_search_options, bench_parallel_sweep);
criterion_main!(benches);

//! Operational-simulator throughput: transitions per second under a
//! seeded random scheduler, per memory model.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use smc_sim::mem::MemorySystem;
use smc_sim::sched::run_random;
use smc_sim::workload::{Access, OpScript};
use smc_sim::{CausalMem, CoherentMem, PcMem, PramMem, RcMem, ScMem, SyncMode, TsoMem};

/// A random script: `threads` threads × `ops` accesses over 4 locations.
fn random_script(threads: usize, ops: usize, seed: u64) -> OpScript {
    let mut rng = SmallRng::seed_from_u64(seed);
    let lists = (0..threads)
        .map(|_| {
            (0..ops)
                .map(|_| {
                    let loc = rng.gen_range(0..4u32);
                    if rng.gen_bool(0.5) {
                        Access::write(loc, rng.gen_range(1..100))
                    } else {
                        Access::read(loc)
                    }
                })
                .collect()
        })
        .collect();
    OpScript::new(lists, 4)
}

fn bench_throughput(c: &mut Criterion) {
    let threads = 4;
    let ops = 200;
    let script = random_script(threads, ops, 99);
    let total_ops = (threads * ops) as u64;

    fn run<M: MemorySystem>(mem: M, script: &OpScript) -> usize {
        let r = run_random(mem, script.clone(), 1234, 1_000_000);
        assert!(r.completed);
        r.steps
    }

    let mut g = c.benchmark_group("sim/throughput_4x200");
    g.throughput(Throughput::Elements(total_ops));
    g.bench_function(BenchmarkId::from_parameter("SC"), |b| {
        b.iter(|| black_box(run(ScMem::new(threads, 4), &script)))
    });
    g.bench_function(BenchmarkId::from_parameter("TSO"), |b| {
        b.iter(|| black_box(run(TsoMem::new(threads, 4), &script)))
    });
    g.bench_function(BenchmarkId::from_parameter("PRAM"), |b| {
        b.iter(|| black_box(run(PramMem::new(threads, 4), &script)))
    });
    g.bench_function(BenchmarkId::from_parameter("Causal"), |b| {
        b.iter(|| black_box(run(CausalMem::new(threads, 4), &script)))
    });
    g.bench_function(BenchmarkId::from_parameter("PC"), |b| {
        b.iter(|| black_box(run(PcMem::new(threads, 4), &script)))
    });
    g.bench_function(BenchmarkId::from_parameter("Coherent"), |b| {
        b.iter(|| black_box(run(CoherentMem::new(threads, 4), &script)))
    });
    g.bench_function(BenchmarkId::from_parameter("RCsc"), |b| {
        b.iter(|| black_box(run(RcMem::new(SyncMode::Sc, threads, 4), &script)))
    });
    g.bench_function(BenchmarkId::from_parameter("RCpc"), |b| {
        b.iter(|| black_box(run(RcMem::new(SyncMode::Pc, threads, 4), &script)))
    });
    g.finish();
}

fn bench_proc_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/pram_proc_scaling_100ops");
    g.sample_size(20);
    for &n in &[2usize, 4, 8, 16] {
        let script = random_script(n, 100, 5);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let r = run_random(PramMem::new(n, 4), script.clone(), 77, 10_000_000);
                assert!(r.completed);
                black_box(r.steps)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_throughput, bench_proc_scaling);
criterion_main!(benches);

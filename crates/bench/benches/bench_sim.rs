//! Operational-simulator throughput: transitions per second under a
//! seeded random scheduler, per memory model.

use smc_bench::quickbench::{black_box, Harness};
use smc_prng::SmallRng;
use smc_sim::mem::MemorySystem;
use smc_sim::sched::run_random;
use smc_sim::workload::{Access, OpScript};
use smc_sim::{CausalMem, CoherentMem, PcMem, PramMem, RcMem, ScMem, SyncMode, TsoMem};

/// A random script: `threads` threads × `ops` accesses over 4 locations.
fn random_script(threads: usize, ops: usize, seed: u64) -> OpScript {
    let mut rng = SmallRng::seed_from_u64(seed);
    let lists = (0..threads)
        .map(|_| {
            (0..ops)
                .map(|_| {
                    let loc = rng.gen_range(0..4u32);
                    if rng.gen_bool(0.5) {
                        Access::write(loc, rng.gen_range(1..100))
                    } else {
                        Access::read(loc)
                    }
                })
                .collect()
        })
        .collect();
    OpScript::new(lists, 4)
}

fn bench_throughput(h: &mut Harness) {
    let threads = 4;
    let ops = 200;
    let script = random_script(threads, ops, 99);

    fn run<M: MemorySystem>(mem: M, script: &OpScript) -> usize {
        let r = run_random(mem, script.clone(), 1234, 1_000_000);
        assert!(r.completed);
        r.steps
    }

    let mut g = h.group("sim/throughput_4x200");
    g.bench("SC", || {
        black_box(run(ScMem::new(threads, 4), &script));
    });
    g.bench("TSO", || {
        black_box(run(TsoMem::new(threads, 4), &script));
    });
    g.bench("PRAM", || {
        black_box(run(PramMem::new(threads, 4), &script));
    });
    g.bench("Causal", || {
        black_box(run(CausalMem::new(threads, 4), &script));
    });
    g.bench("PC", || {
        black_box(run(PcMem::new(threads, 4), &script));
    });
    g.bench("Coherent", || {
        black_box(run(CoherentMem::new(threads, 4), &script));
    });
    g.bench("RCsc", || {
        black_box(run(RcMem::new(SyncMode::Sc, threads, 4), &script));
    });
    g.bench("RCpc", || {
        black_box(run(RcMem::new(SyncMode::Pc, threads, 4), &script));
    });
}

fn bench_proc_scaling(h: &mut Harness) {
    let mut g = h.group("sim/pram_proc_scaling_100ops");
    for &n in &[2usize, 4, 8, 16] {
        let script = random_script(n, 100, 5);
        g.bench(&n.to_string(), || {
            let r = run_random(PramMem::new(n, 4), script.clone(), 77, 10_000_000);
            assert!(r.completed);
            black_box(r.steps);
        });
    }
}

fn main() {
    let mut h = Harness::from_env();
    bench_throughput(&mut h);
    bench_proc_scaling(&mut h);
}

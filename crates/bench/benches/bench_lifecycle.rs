//! Session lifecycle costs: warm restore vs cold replay, and windowed
//! steady-state monitoring.
//!
//! `warm_restore` is the checkpoint payoff: a 10k-event session resumed
//! from a checkpoint (deserialize + feed the 10-event tail) against
//! `cold_replay` re-feeding the whole stream through a fresh monitor.
//! The restore parses bytes where the replay re-runs frontier search,
//! so it should be well over an order of magnitude faster; `check.sh`
//! gates on ≥5×.
//!
//! The `windowed_steady_state_*` pair feeds the same per-processor
//! stream at two lengths under `--window 16`. Each body asserts the
//! peak frontier width stays under a fixed ceiling regardless of stream
//! length (memory is flat), and the timings let `check.sh` confirm cost
//! scales linearly — doubling the stream may double the time, not
//! square it.

use smc_bench::quickbench::{black_box, Harness};
use smc_core::models;
use smc_history::trace::Trace;
use smc_history::{Label, OpKind};
use smc_monitor::{Monitor, MonitorConfig, TriVerdict};

/// A sequentially-consistent stream: four single-writer processors,
/// each alternating a write with a read of its own location. Every
/// model stays admitted, so the monitor does real frontier work on
/// every event for the whole stream.
fn workload(events: usize) -> Trace {
    let mut t = Trace::new();
    for p in ["p0", "p1", "p2", "p3"] {
        t.add_proc(p);
    }
    for l in ["a", "b", "c", "d"] {
        t.add_loc(l);
    }
    let locs = ["a", "b", "c", "d"];
    let mut n = 0usize;
    let mut round = 0i64;
    'outer: loop {
        round += 1;
        for (p, loc) in ["p0", "p1", "p2", "p3"].iter().zip(locs) {
            for kind in [OpKind::Write, OpKind::Read] {
                t.push_named(p, kind, loc, round, Label::Ordinary);
                n += 1;
                if n == events {
                    break 'outer;
                }
            }
        }
    }
    t
}

fn config() -> MonitorConfig {
    MonitorConfig {
        window: Some(16),
        ..MonitorConfig::default()
    }
}

fn feed_all(mon: &mut Monitor, t: &Trace, from: usize) -> u64 {
    let mut peak = 0u64;
    for ev in &t.events()[from..] {
        let rep = mon.feed(
            t.proc_name(ev.proc),
            ev.kind,
            t.loc_name(ev.loc),
            ev.value.0,
            ev.label,
        );
        peak = peak.max(rep.frontier_states);
    }
    peak
}

fn bench_restore_vs_replay(harness: &mut Harness) {
    const EVENTS: usize = 10_000;
    const TAIL: usize = 10;
    let model_list = models::lattice_models();
    let t = workload(EVENTS);
    // The checkpoint a long-lived session left behind, taken once
    // outside the timed region: everything but the last TAIL events.
    let blob = {
        let mut mon = Monitor::new(model_list.clone(), config());
        for ev in &t.events()[..EVENTS - TAIL] {
            mon.feed(
                t.proc_name(ev.proc),
                ev.kind,
                t.loc_name(ev.loc),
                ev.value.0,
                ev.label,
            );
        }
        mon.checkpoint_bytes()
    };
    let mut g = harness.group("lifecycle/session_10000_events");
    g.bench("cold_replay", || {
        let mut mon = Monitor::new(model_list.clone(), config());
        feed_all(&mut mon, &t, 0);
        assert!(black_box(&mon)
            .verdicts()
            .iter()
            .all(|v| *v == TriVerdict::Admitted));
    });
    g.bench("warm_restore", || {
        let mut mon = Monitor::restore_bytes(&blob, model_list.clone(), config())
            .expect("checkpoint must restore");
        feed_all(&mut mon, &t, EVENTS - TAIL);
        assert!(black_box(&mon)
            .verdicts()
            .iter()
            .all(|v| *v == TriVerdict::Admitted));
    });
}

fn bench_windowed_steady_state(harness: &mut Harness) {
    // With four free-running processors the unwindowed frontier keeps
    // every interleaving of the whole prefix; windowing restarts each
    // window from the sealed memory image. The ceiling below is the
    // empirical per-window peak plus slack — if a change lets state
    // leak across windows, the assert trips long before the timing gate.
    const CEILING: u64 = 4_000;
    let model_list = models::lattice_models();
    for events in [5_000usize, 10_000] {
        let t = workload(events);
        let mut g = harness.group("lifecycle/windowed_steady_state");
        g.bench(&format!("{events}_events"), || {
            let mut mon = Monitor::new(model_list.clone(), config());
            let peak = feed_all(&mut mon, &t, 0);
            assert!(
                peak < CEILING,
                "windowed frontier peak {peak} not flat at {events} events"
            );
            black_box(mon.totals());
        });
    }
}

fn main() {
    let mut h = Harness::from_env();
    bench_restore_vs_replay(&mut h);
    bench_windowed_steady_state(&mut h);
}

//! Checker cost per model and its growth with history size — the paper
//! reports no timings (it is a formal paper), so these benches establish
//! the decision procedure's practical envelope on litmus-scale inputs.

use smc_bench::quickbench::{black_box, Harness};
use smc_core::checker::{check_with_config, CheckConfig};
use smc_core::models;
use smc_history::litmus::parse_history;
use smc_history::{History, HistoryBuilder};

fn figures() -> Vec<(&'static str, History)> {
    vec![
        (
            "fig1",
            parse_history("p: w(x)1 r(y)0\nq: w(y)1 r(x)0").unwrap(),
        ),
        (
            "fig2",
            parse_history("p: w(x)1\nq: r(x)1 w(y)1\nr: r(y)1 r(x)0").unwrap(),
        ),
        (
            "fig3",
            parse_history("p: w(x)1 r(x)1 r(x)2\nq: w(x)2 r(x)2 r(x)1").unwrap(),
        ),
        (
            "fig4",
            parse_history("p: w(x)1 w(y)1\nq: r(y)1 w(z)1 r(x)2\nr: w(x)2 r(x)1 r(z)1 r(y)1")
                .unwrap(),
        ),
    ]
}

fn bench_figures(harness: &mut Harness) {
    let cfg = CheckConfig::default();
    let models = [
        models::sc(),
        models::tso(),
        models::pc(),
        models::causal(),
        models::pram(),
    ];
    let mut g = harness.group("checker/figures");
    for (name, h) in figures() {
        for m in &models {
            g.bench(&format!("{}/{name}", m.name), || {
                black_box(check_with_config(&h, m, &cfg));
            });
        }
    }
}

/// Widened store buffering: each processor writes `k` distinct locations
/// then reads the other side's first — SC-forbidden, TSO-allowed, so the
/// SC verdict is an expensive refutation and TSO an expensive search.
fn wide_sb(k: usize) -> History {
    let mut b = HistoryBuilder::new();
    for i in 0..k {
        b.write("p", &format!("x{i}"), 1);
    }
    b.read("p", "y0", 0);
    for i in 0..k {
        b.write("q", &format!("y{i}"), 1);
    }
    b.read("q", "x0", 0);
    b.build()
}

/// A message chain through `n` processors: causality-heavy and allowed by
/// every model, so the checker must construct real witnesses.
fn chain(n: usize) -> History {
    let mut b = HistoryBuilder::new();
    for i in 0..n {
        let p = format!("p{i}");
        if i > 0 {
            b.read(&p, &format!("c{}", i - 1), 1);
        }
        b.write(&p, &format!("c{i}"), 1);
    }
    b.build()
}

fn bench_scaling(harness: &mut Harness) {
    let cfg = CheckConfig::default();
    let mut g = harness.group("checker/scaling");
    for &k in &[2usize, 4, 6] {
        let h = wide_sb(k);
        let ops = h.num_ops();
        g.bench(&format!("SC_refute_wide_sb/{ops}"), || {
            black_box(check_with_config(&h, &models::sc(), &cfg));
        });
        g.bench(&format!("TSO_admit_wide_sb/{ops}"), || {
            black_box(check_with_config(&h, &models::tso(), &cfg));
        });
    }
    for &n in &[3usize, 5, 7] {
        let h = chain(n);
        let ops = h.num_ops();
        g.bench(&format!("Causal_admit_chain/{ops}"), || {
            black_box(check_with_config(&h, &models::causal(), &cfg));
        });
        g.bench(&format!("PC_admit_chain/{ops}"), || {
            black_box(check_with_config(&h, &models::pc(), &cfg));
        });
    }
}

fn bench_rc(harness: &mut Harness) {
    let cfg = CheckConfig::default();
    let s5 = parse_history(
        "p1: wl(choosing[0])1 rl(number[1])0 wl(number[0])1 wl(choosing[0])0 rl(choosing[1])0 rl(number[1])0\n\
         p2: wl(choosing[1])1 rl(number[0])0 wl(number[1])1 wl(choosing[1])0 rl(choosing[0])0 rl(number[0])0",
    )
    .unwrap();
    let mut g = harness.group("checker/rc_section5");
    g.bench("RCpc_admit_bakery_s5", || {
        black_box(check_with_config(&s5, &models::rc_pc(), &cfg));
    });
    g.bench("RCsc_refute_bakery_s5", || {
        black_box(check_with_config(&s5, &models::rc_sc(), &cfg));
    });
}

fn main() {
    let mut h = Harness::from_env();
    bench_figures(&mut h);
    bench_scaling(&mut h);
    bench_rc(&mut h);
}

//! Shared plumbing for the figure-regeneration binaries and benchmarks.
//!
//! Each binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation (see `DESIGN.md`'s per-experiment index):
//!
//! | binary        | paper artifact |
//! |---------------|----------------|
//! | `fig1_tso`    | Figure 1 — TSO-but-not-SC execution, with witness views |
//! | `fig2_pc`     | Figure 2 — PC-but-not-TSO execution |
//! | `fig3_pram`   | Figure 3 — PRAM-but-not-TSO execution |
//! | `fig4_causal` | Figure 4 — causal-but-not-TSO execution |
//! | `fig5_lattice`| Figure 5 — the inclusion lattice, recomputed empirically |
//! | `fig6_bakery` | Figure 6 / Section 5 — Bakery under RC_sc vs RC_pc |
//! | `table_matrix`| the corpus × model classification matrix |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bighist;
pub mod quickbench;

use smc_core::checker::{check_with_config, format_view, CheckConfig, Verdict};
use smc_core::spec::ModelSpec;
use smc_history::{History, ProcId};

/// Render a checker verdict as a short cell for tables.
pub fn verdict_cell(v: &Verdict) -> &'static str {
    match v {
        Verdict::Allowed(_) => "yes",
        Verdict::Disallowed => "no",
        Verdict::Exhausted => "?",
        Verdict::Unsupported(_) => "n/a",
    }
}

/// Check `h` against `spec` and print the verdict; when allowed, also
/// print the witness views in the paper's `S_{p+w}` notation.
pub fn report_check(h: &History, spec: &ModelSpec, show_views: bool) -> Verdict {
    let v = check_with_config(h, spec, &CheckConfig::default());
    match &v {
        Verdict::Allowed(w) => {
            println!("  {:<16} ALLOWED", spec.name);
            if show_views {
                for (p, view) in w.views.iter().enumerate() {
                    println!("    {}", format_view(h, ProcId(p as u32), view));
                }
                if let Some(t) = &w.labeled_order {
                    let seq: Vec<String> = t.iter().map(|&o| h.format_op_subscripted(o)).collect();
                    println!("    labeled order: {}", seq.join(" "));
                }
            }
        }
        Verdict::Disallowed => println!("  {:<16} forbidden", spec.name),
        Verdict::Exhausted => println!("  {:<16} undecided (budget exhausted)", spec.name),
        Verdict::Unsupported(msg) => println!("  {:<16} unsupported: {msg}", spec.name),
    }
    v
}

/// Print a history indented, paper-style.
pub fn print_history(h: &History) {
    for line in h.to_string().lines() {
        println!("    {line}");
    }
}

/// Print a classification matrix: one row per history, one column per
/// model.
pub fn print_matrix(rows: &[(String, Vec<Verdict>)], models: &[ModelSpec]) {
    let name_w = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(4).max(7);
    print!("{:<name_w$}", "history");
    for m in models {
        print!(" {:>14}", m.name);
    }
    println!();
    for (name, verdicts) in rows {
        print!("{name:<name_w$}");
        for v in verdicts {
            print!(" {:>14}", verdict_cell(v));
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smc_core::models;
    use smc_history::litmus::parse_history;

    #[test]
    fn verdict_cells() {
        assert_eq!(verdict_cell(&Verdict::Disallowed), "no");
        assert_eq!(verdict_cell(&Verdict::Exhausted), "?");
        assert_eq!(verdict_cell(&Verdict::Unsupported(String::new())), "n/a");
    }

    #[test]
    fn report_check_runs() {
        let h = parse_history("p: w(x)1\nq: r(x)1").unwrap();
        let v = report_check(&h, &models::sc(), true);
        assert!(v.is_allowed());
    }
}

//! A minimal wall-clock benchmark harness.
//!
//! The workspace previously used Criterion; with the registry unavailable
//! the benches now run on this self-contained harness: each benchmark is
//! calibrated by doubling the iteration count until the timed batch runs
//! long enough to measure, then reported as ns/iter. Invoke through
//! `cargo bench` (the bench targets set `harness = false`) with an
//! optional substring filter, e.g. `cargo bench --bench bench_checker
//! fig1`, and an optional `--json PATH` that writes the measurements as
//! machine-readable JSON (one `{"name", "ns_per_iter", "iters"}` record
//! per benchmark) when the harness is dropped.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-value barrier, re-exported so benches keep their `black_box`
/// calls.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Batch runtime a measurement must reach before it is reported.
const MIN_BATCH: Duration = Duration::from_millis(100);
/// Iteration-count ceiling for very fast bodies.
const MAX_ITERS: u64 = 1 << 22;

/// One reported measurement.
struct Record {
    name: String,
    ns_per_iter: u128,
    iters: u64,
}

/// A benchmark runner: filters by substring, prints one line per
/// benchmark, and optionally dumps the measurements as JSON on drop.
pub struct Harness {
    filter: Option<String>,
    json: Option<String>,
    results: Vec<Record>,
}

impl Harness {
    /// Build from `cargo bench` CLI arguments: the first non-flag
    /// argument is a substring filter, and `--json PATH` selects a JSON
    /// output file.
    pub fn from_env() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut filter = None;
        let mut json = None;
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if a == "--json" {
                json = args.get(i + 1).cloned();
                i += 2;
                continue;
            }
            if !a.starts_with("--") && a != "bench" && filter.is_none() {
                filter = Some(a.clone());
            }
            i += 1;
        }
        Harness {
            filter,
            json,
            results: Vec::new(),
        }
    }

    /// A harness that runs everything (for tests).
    pub fn unfiltered() -> Self {
        Harness {
            filter: None,
            json: None,
            results: Vec::new(),
        }
    }

    /// `true` if `name` passes the CLI filter.
    fn selected(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Time `f`, printing its cost as ns/iter.
    pub fn bench(&mut self, name: &str, mut f: impl FnMut()) {
        if !self.selected(name) {
            return;
        }
        f(); // warm-up
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            let elapsed = start.elapsed();
            if elapsed >= MIN_BATCH || iters >= MAX_ITERS {
                let per = elapsed.as_nanos() / u128::from(iters);
                println!("{name:<60} {per:>14} ns/iter  ({iters} iters)");
                self.results.push(Record {
                    name: name.to_owned(),
                    ns_per_iter: per,
                    iters,
                });
                return;
            }
            iters *= 2;
        }
    }

    /// A named group: benches run as `group/name`.
    pub fn group(&mut self, prefix: &str) -> Group<'_> {
        Group {
            harness: self,
            prefix: prefix.to_owned(),
        }
    }

    /// The measurements as a JSON document (`{"results": [...]}`).
    /// Benchmark names are the only strings and contain no characters
    /// that need escaping beyond quotes and backslashes.
    fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .results
            .iter()
            .map(|r| {
                let name = r.name.replace('\\', "\\\\").replace('"', "\\\"");
                format!(
                    "  {{\"name\": \"{}\", \"ns_per_iter\": {}, \"iters\": {}}}",
                    name, r.ns_per_iter, r.iters
                )
            })
            .collect();
        format!("{{\"results\": [\n{}\n]}}\n", rows.join(",\n"))
    }
}

impl Drop for Harness {
    fn drop(&mut self) {
        if let Some(path) = &self.json {
            if let Err(e) = std::fs::write(path, self.to_json()) {
                eprintln!("warning: could not write `{path}`: {e}");
            } else {
                eprintln!("wrote {} measurement(s) to {path}", self.results.len());
            }
        }
    }
}

/// A prefix-scoped view of the harness.
pub struct Group<'a> {
    harness: &'a mut Harness,
    prefix: String,
}

impl Group<'_> {
    /// Time `f` under `prefix/name`.
    pub fn bench(&mut self, name: &str, f: impl FnMut()) {
        let full = format!("{}/{}", self.prefix, name);
        self.harness.bench(&full, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_output_shape() {
        let mut h = Harness::unfiltered();
        h.results.push(Record {
            name: "g/a".into(),
            ns_per_iter: 12,
            iters: 3,
        });
        let json = h.to_json();
        assert!(json.contains("\"name\": \"g/a\""));
        assert!(json.contains("\"ns_per_iter\": 12"));
        assert!(json.starts_with("{\"results\": ["));
    }
}

//! A minimal wall-clock benchmark harness.
//!
//! The workspace previously used Criterion; with the registry unavailable
//! the benches now run on this self-contained harness: each benchmark is
//! calibrated by doubling the iteration count until the timed batch runs
//! long enough to measure, then reported as ns/iter. Invoke through
//! `cargo bench` (the bench targets set `harness = false`) with an
//! optional substring filter, e.g. `cargo bench --bench bench_checker
//! fig1`.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-value barrier, re-exported so benches keep their `black_box`
/// calls.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Batch runtime a measurement must reach before it is reported.
const MIN_BATCH: Duration = Duration::from_millis(100);
/// Iteration-count ceiling for very fast bodies.
const MAX_ITERS: u64 = 1 << 22;

/// A benchmark runner: filters by substring and prints one line per
/// benchmark.
pub struct Harness {
    filter: Option<String>,
}

impl Harness {
    /// Build from `cargo bench` CLI arguments (the first non-flag
    /// argument is a substring filter).
    pub fn from_env() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with("--") && a != "bench");
        Harness { filter }
    }

    /// A harness that runs everything (for tests).
    pub fn unfiltered() -> Self {
        Harness { filter: None }
    }

    /// `true` if `name` passes the CLI filter.
    fn selected(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Time `f`, printing its cost as ns/iter.
    pub fn bench(&mut self, name: &str, mut f: impl FnMut()) {
        if !self.selected(name) {
            return;
        }
        f(); // warm-up
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            let elapsed = start.elapsed();
            if elapsed >= MIN_BATCH || iters >= MAX_ITERS {
                let per = elapsed.as_nanos() / u128::from(iters);
                println!("{name:<60} {per:>14} ns/iter  ({iters} iters)");
                return;
            }
            iters *= 2;
        }
    }

    /// A named group: benches run as `group/name`.
    pub fn group(&mut self, prefix: &str) -> Group<'_> {
        Group {
            harness: self,
            prefix: prefix.to_owned(),
        }
    }
}

/// A prefix-scoped view of the harness.
pub struct Group<'a> {
    harness: &'a mut Harness,
    prefix: String,
}

impl Group<'_> {
    /// Time `f` under `prefix/name`.
    pub fn bench(&mut self, name: &str, f: impl FnMut()) {
        let full = format!("{}/{}", self.prefix, name);
        self.harness.bench(&full, f);
    }
}

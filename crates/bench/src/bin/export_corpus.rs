//! Writes the embedded litmus corpus to `litmus/paper.litmus` so the
//! `smc` CLI can consume it from disk.

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "litmus/paper.litmus".into());
    std::fs::write(&path, smc_programs::corpus::SUITE_TEXT.trim_start())
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path}");
}

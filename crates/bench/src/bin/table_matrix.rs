//! The corpus × model classification matrix: every litmus test in the
//! workspace corpus (the paper's Figures 1–4, classic shapes, the
//! Section 5 Bakery execution) checked against every model. Expectations
//! embedded in the corpus are asserted; a mismatch aborts.

use smc_bench::{print_matrix, verdict_cell};
use smc_core::checker::{check_with_config, CheckConfig};
use smc_core::models;
use smc_programs::corpus::litmus_suite;

fn main() {
    let models = models::all_models();
    let cfg = CheckConfig::default();
    let suite = litmus_suite();

    let mut rows = Vec::new();
    let mut mismatches = Vec::new();
    for t in &suite {
        let verdicts: Vec<_> = models
            .iter()
            .map(|m| check_with_config(&t.history, m, &cfg))
            .collect();
        for (m, v) in models.iter().zip(&verdicts) {
            if let Some(expected) = t.expectation(&m.name) {
                if v.decided() != Some(expected) {
                    mismatches.push(format!(
                        "{} × {}: expected {}, checker says {}",
                        t.name,
                        m.name,
                        if expected { "yes" } else { "no" },
                        verdict_cell(v)
                    ));
                }
            }
        }
        rows.push((t.name.clone(), verdicts));
    }

    print_matrix(&rows, &models);
    println!();
    if mismatches.is_empty() {
        println!(
            "All {} embedded expectations match the checker.",
            suite.iter().map(|t| t.expectations.len()).sum::<usize>()
        );
    } else {
        for m in &mismatches {
            eprintln!("MISMATCH: {m}");
        }
        std::process::exit(1);
    }
}

//! Regenerates Figure 6 / Section 5: Lamport's Bakery algorithm is
//! correct when its labeled operations are sequentially consistent
//! (`RC_sc`) and fails — both processors enter the critical section —
//! when they are only processor consistent (`RC_pc`).
//!
//! Three independent reproductions:
//! 1. **Operational**: exhaustive schedule exploration of the Bakery
//!    program over the `RC_sc` and `RC_pc` machines, printing the
//!    violating local subhistories exactly as the paper displays them.
//! 2. **Random**: seeded random schedules as a sanity check of 1.
//! 3. **Declarative**: the Section 5 execution history checked against
//!    the `RC_sc` and `RC_pc` model definitions.

use smc_bench::{print_history, report_check};
use smc_core::models;
use smc_history::Label;
use smc_programs::bakery::bakery;
use smc_programs::corpus::by_name;
use smc_programs::interp::ProgramWorkload;
use smc_sim::explore::{explore, ExploreConfig};
use smc_sim::rc::{RcMem, SyncMode};
use smc_sim::sched::run_random;

fn main() {
    let program = bakery(2, Label::Labeled);
    let num_locs = program.num_locs();
    let op_limit = 12;
    let cfg = ExploreConfig {
        collect_histories: false,
        max_states: 3_000_000,
        ..Default::default()
    };

    println!("== Operational reproduction (exhaustive exploration) ==\n");
    println!("Bakery, n = 2, all synchronization operations labeled;");
    println!("spin loops bounded at {op_limit} shared operations per processor.\n");

    let w = ProgramWorkload::new(program.clone(), op_limit);
    let sc_out = explore(&RcMem::new(SyncMode::Sc, 2, num_locs), &w, &cfg);
    println!(
        "RC_sc: {} states explored, truncated: {}, violation: {:?}",
        sc_out.states_explored,
        sc_out.truncated,
        sc_out.violation.as_ref().map(|(m, _)| m)
    );
    assert!(
        sc_out.violation.is_none(),
        "Bakery must be correct under RC_sc"
    );

    let w = ProgramWorkload::new(program.clone(), op_limit);
    let pc_out = explore(&RcMem::new(SyncMode::Pc, 2, num_locs), &w, &cfg);
    println!(
        "RC_pc: {} states explored (stopped at first violation)",
        pc_out.states_explored
    );
    let (msg, history) = pc_out.violation.expect("Bakery must fail under RC_pc");
    println!("RC_pc violation: {msg}");
    println!("Violating execution (compare the paper's Section 5 subhistories):");
    print_history(&history);

    println!("\n== Random-schedule sanity check ==\n");
    let mut sc_violations = 0;
    let mut pc_violations = 0;
    let runs = 2_000;
    for seed in 0..runs {
        let w = ProgramWorkload::new(program.clone(), 200);
        let r = run_random(RcMem::new(SyncMode::Sc, 2, num_locs), w, seed, 100_000);
        sc_violations += r.violation.is_some() as usize;
        let w = ProgramWorkload::new(program.clone(), 200);
        let r = run_random(RcMem::new(SyncMode::Pc, 2, num_locs), w, seed, 100_000);
        pc_violations += r.violation.is_some() as usize;
    }
    let mut wo_violations = 0;
    let mut hybrid_violations = 0;
    for seed in 0..runs {
        let w = ProgramWorkload::new(program.clone(), 200);
        let r = run_random(smc_sim::WoMem::new(2, num_locs), w, seed, 100_000);
        wo_violations += r.violation.is_some() as usize;
        let w = ProgramWorkload::new(program.clone(), 200);
        let r = run_random(smc_sim::HybridMem::new(2, num_locs), w, seed, 100_000);
        hybrid_violations += r.violation.is_some() as usize;
    }
    println!("RC_sc:  {sc_violations}/{runs} runs violated mutual exclusion");
    println!("RC_pc:  {pc_violations}/{runs} runs violated mutual exclusion");
    println!("WO:     {wo_violations}/{runs} runs violated mutual exclusion");
    println!("Hybrid: {hybrid_violations}/{runs} runs violated mutual exclusion");
    assert_eq!(sc_violations, 0);
    assert!(pc_violations > 0);
    assert_eq!(wo_violations, 0);
    assert_eq!(hybrid_violations, 0);

    println!("\n== Declarative reproduction (Section 5 history) ==\n");
    let t = by_name("bakery_s5").expect("corpus entry");
    println!("The paper's both-enter execution:");
    print_history(&t.history);
    println!();
    let rc_pc = report_check(&t.history, &models::rc_pc(), false);
    let rc_sc = report_check(&t.history, &models::rc_sc(), false);
    assert!(rc_pc.is_allowed() && rc_sc.is_disallowed());

    println!(
        "\nSection 5 reproduced: the Bakery algorithm distinguishes RC_sc \
         (no violation exists)\nfrom RC_pc (both processors pass the doorway \
         and enter the critical section)."
    );
}

//! A derived artifact beyond the paper's figures: the *extended* lattice,
//! placing the models the paper only cites — Goodman's PC [2,9], weak
//! ordering [1], hybrid consistency [4] — and the Section 7 parameter
//! combinations alongside the five models of Figure 5.

use smc_core::checker::CheckConfig;
use smc_core::histgen::{all_histories, GenParams};
use smc_core::lattice::{classify_all, compare_classified};
use smc_core::models;
use smc_history::History;
use smc_programs::corpus::litmus_suite;

fn main() {
    // Ordinary-only models over the litmus corpus + small universe.
    let models = vec![
        models::sc(),
        models::tso(),
        models::pc(),
        models::pc_goodman(),
        models::causal_coherent(),
        models::causal(),
        models::coherent(),
        models::pram(),
    ];
    let mut corpus: Vec<History> = litmus_suite()
        .into_iter()
        .map(|t| t.history)
        .filter(|h| !h.has_labeled_ops())
        .collect();
    corpus.extend(all_histories(&GenParams {
        procs: 2,
        ops_per_proc: 2,
        locs: 2,
        values: 1,
    }));
    corpus.extend(all_histories(&GenParams {
        procs: 2,
        ops_per_proc: 2,
        locs: 1,
        values: 2,
    }));
    println!(
        "Extended lattice over {} histories × {} models:\n",
        corpus.len(),
        models.len()
    );
    let cfg = CheckConfig::default();
    let jobs = std::thread::available_parallelism().map_or(1, usize::from);
    let classifications = classify_all(&corpus, &models, &cfg, jobs);
    let r = compare_classified(&models, classifications);

    println!(
        "{:<16} admitted (of {})",
        "model",
        corpus.len() - r.undecided
    );
    for (name, count) in r.model_names.iter().zip(&r.counts) {
        println!("{name:<16} {count}");
    }
    println!("\nInclusion matrix (row ⊆ column?):");
    print!("{:<16}", "");
    for name in &r.model_names {
        print!(" {name:>14}");
    }
    println!();
    for a in 0..models.len() {
        print!("{:<16}", r.model_names[a]);
        for b in 0..models.len() {
            let cell = if a == b {
                "="
            } else if r.inclusion[a][b] {
                "⊆"
            } else {
                "⊄"
            };
            print!(" {cell:>14}");
        }
        println!();
    }

    println!("\nHasse diagram (covering edges; ≡ marks corpus-equivalent models):");
    let classes = r.equivalence_classes();
    for (a, b) in r.hasse_edges() {
        println!(
            "  {}  ⊂  {}",
            r.class_name(&classes[a]),
            r.class_name(&classes[b])
        );
    }

    let idx = |n: &str| r.model_names.iter().position(|m| m == n).unwrap();
    // The derived claims, asserted.
    assert!(r.strictly_stronger(idx("SC"), idx("PCG")));
    assert!(r.strictly_stronger(idx("PCG"), idx("PRAM")));
    assert!(r.strictly_stronger(idx("PCG"), idx("Coherent")));
    assert!(r.strictly_stronger(idx("CausalCoherent"), idx("Causal")));
    assert!(r.strictly_stronger(idx("CausalCoherent"), idx("Coherent")));
    println!(
        "\nLabeled models (corpus verdicts): WO ⊂ RCsc ⊂ RCpc, with Hybrid \
         incomparable to RCsc\n(see the `extended_models` integration tests and \
         `table_matrix` for the full picture)."
    );
}

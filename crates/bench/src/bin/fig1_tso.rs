//! Regenerates Figure 1: the store-buffering execution that TSO admits
//! and SC forbids, with witness processor views in the paper's notation,
//! plus the operational confirmation that the TSO store-buffer machine
//! actually reaches it.

use smc_bench::{print_history, report_check};
use smc_core::models;
use smc_history::litmus::parse_history;
use smc_sim::explore::{explore, ExploreConfig};
use smc_sim::workload::{Access, OpScript};
use smc_sim::{ScMem, TsoMem};

fn main() {
    let h = parse_history("p: w(x)1 r(y)0\nq: w(y)1 r(x)0").unwrap();
    println!("Figure 1 — TSO execution history:");
    print_history(&h);
    println!();

    println!("Declarative checker (paper Section 3.2):");
    let sc = report_check(&h, &models::sc(), false);
    let tso = report_check(&h, &models::tso(), true);
    assert!(sc.is_disallowed() && tso.is_allowed());
    println!();

    // Operational confirmation: exhaustively enumerate every history the
    // store-buffer machine can produce for this program shape.
    let script = OpScript::new(
        vec![
            vec![Access::write(0, 1), Access::read(1)],
            vec![Access::write(1, 1), Access::read(0)],
        ],
        2,
    );
    let cfg = ExploreConfig::default();
    let sc_out = explore(&ScMem::new(2, 2), &script, &cfg);
    let tso_out = explore(&TsoMem::new(2, 2), &script, &cfg);
    println!("Operational machines, exhaustive over all schedules:");
    println!(
        "  SC  atomic memory    : {} distinct histories ({} states)",
        sc_out.histories.len(),
        sc_out.states_explored
    );
    println!(
        "  TSO store buffers    : {} distinct histories ({} states)",
        tso_out.histories.len(),
        tso_out.states_explored
    );
    let fig1 = "p0: w(x0)1 r(x1)0\np1: w(x1)1 r(x0)0\n";
    let sc_reaches = sc_out.histories.iter().any(|h| h.to_string() == fig1);
    let tso_reaches = tso_out.histories.iter().any(|h| h.to_string() == fig1);
    println!("  Figure 1 outcome reachable:  SC: {sc_reaches}   TSO: {tso_reaches}");
    assert!(!sc_reaches && tso_reaches);
    println!(
        "\nFigure 1 reproduced: SC forbids, TSO admits (both declaratively and operationally)."
    );
}

//! Regenerates Figure 2: an execution processor consistency admits but
//! TSO forbids (and which also separates PC from causal memory).

use smc_bench::{print_history, report_check};
use smc_core::models;
use smc_history::litmus::parse_history;

fn main() {
    let h = parse_history(
        "p: w(x)1\n\
         q: r(x)1 w(y)1\n\
         r: r(y)1 r(x)0",
    )
    .unwrap();
    println!("Figure 2 — a PC execution history that is not TSO:");
    print_history(&h);
    println!();

    println!("Declarative checker (paper Section 3.3):");
    let pc = report_check(&h, &models::pc(), true);
    let tso = report_check(&h, &models::tso(), false);
    assert!(pc.is_allowed() && tso.is_disallowed());
    println!();

    println!("Context within the lattice:");
    let pram = report_check(&h, &models::pram(), false);
    let causal = report_check(&h, &models::causal(), false);
    let sc = report_check(&h, &models::sc(), false);
    assert!(pram.is_allowed());
    assert!(causal.is_disallowed());
    assert!(sc.is_disallowed());
    println!();
    println!(
        "Figure 2 reproduced: PC admits the history, TSO forbids it.\n\
         Note it is also forbidden by causal memory — together with\n\
         Figure 4 this makes PC and causal memory incomparable (Section 4)."
    );
}

//! Regenerates Figure 5: the inclusion lattice of SC, TSO, PC, causal
//! and PRAM — computed *empirically* by classifying every history in a
//! bounded universe against every model and comparing the admitted sets.
//!
//! Usage: `fig5_lattice [--exhaustive]`
//!
//! The default corpus is the litmus suite plus the 2-processor ×
//! 2-operation universe; `--exhaustive` enlarges the universe (slower,
//! classifies thousands of histories; classification is parallelized
//! with the `smc-core` batch engine).

use smc_core::checker::CheckConfig;
use smc_core::histgen::{all_histories, GenParams};
use smc_core::lattice::{classify_all, compare_classified, LatticeResult};
use smc_core::models;
use smc_history::History;
use smc_programs::corpus::litmus_suite;

fn main() {
    let exhaustive = std::env::args().any(|a| a == "--exhaustive");
    let models = models::figure5_models();
    let cfg = CheckConfig::default();

    let mut corpus: Vec<History> = litmus_suite().into_iter().map(|t| t.history).collect();
    let params = if exhaustive {
        GenParams {
            procs: 2,
            ops_per_proc: 3,
            locs: 2,
            values: 1,
        }
    } else {
        GenParams {
            procs: 2,
            ops_per_proc: 2,
            locs: 2,
            values: 1,
        }
    };
    println!(
        "Corpus: {} litmus tests + the {}-history universe ({} procs × {} ops, {} locs, values ≤ {})",
        corpus.len(),
        params.universe_size(),
        params.procs,
        params.ops_per_proc,
        params.locs,
        params.values
    );
    corpus.extend(all_histories(&params));

    let jobs = std::thread::available_parallelism().map_or(1, usize::from);
    let classifications = classify_all(&corpus, &models, &cfg, jobs);
    let result = compare_classified(&models, classifications);

    print_lattice(&result, &corpus);

    println!("\nHasse diagram (covering edges of 'strictly stronger', Figure 5):");
    let classes = result.equivalence_classes();
    for (a, b) in result.hasse_edges() {
        println!(
            "  {}  ⊂  {}",
            result.class_name(&classes[a]),
            result.class_name(&classes[b])
        );
    }

    // The paper's Figure 5 claims, asserted:
    let idx = |name: &str| {
        result
            .model_names
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("missing model {name}"))
    };
    let (sc, tso, pc, causal, pram) =
        (idx("SC"), idx("TSO"), idx("PC"), idx("Causal"), idx("PRAM"));
    assert!(result.strictly_stronger(sc, tso), "SC ⊂ TSO");
    assert!(result.strictly_stronger(tso, pc), "TSO ⊂ PC");
    assert!(result.strictly_stronger(tso, causal), "TSO ⊂ Causal");
    assert!(result.strictly_stronger(pc, pram), "PC ⊂ PRAM");
    assert!(result.strictly_stronger(causal, pram), "Causal ⊂ PRAM");
    assert!(result.incomparable(pc, causal), "PC ∥ Causal");
    println!(
        "\nFigure 5 reproduced: SC ⊂ TSO ⊂ {{PC, Causal}} ⊂ PRAM with PC and causal incomparable."
    );
}

fn print_lattice(result: &LatticeResult, corpus: &[History]) {
    let m = result.model_names.len();
    println!(
        "\nAdmitted histories per model (of {} decided):",
        corpus.len() - result.undecided
    );
    for (name, count) in result.model_names.iter().zip(&result.counts) {
        println!("  {name:<8} {count}");
    }
    println!("\nInclusion matrix (row ⊆ column?):");
    print!("{:<8}", "");
    for name in &result.model_names {
        print!(" {name:>7}");
    }
    println!();
    for a in 0..m {
        print!("{:<8}", result.model_names[a]);
        for b in 0..m {
            let cell = if a == b {
                "="
            } else if result.inclusion[a][b] {
                "⊆"
            } else {
                "⊄"
            };
            print!(" {cell:>7}");
        }
        println!();
    }
    println!("\nSeparating witnesses (history admitted by COLUMN but not ROW):");
    for a in 0..m {
        for b in 0..m {
            if a != b {
                if let Some(hi) = result.separating[a][b] {
                    println!(
                        "  {} admits, {} forbids:",
                        result.model_names[b], result.model_names[a]
                    );
                    for line in corpus[hi].to_string().lines() {
                        println!("      {line}");
                    }
                }
            }
        }
    }
}

//! Regenerates Figure 3: the write exchange PRAM admits and TSO forbids,
//! with the operational PRAM machine reaching it.

use smc_bench::{print_history, report_check};
use smc_core::models;
use smc_history::litmus::parse_history;
use smc_sim::explore::{explore, ExploreConfig};
use smc_sim::workload::{Access, OpScript};
use smc_sim::PramMem;

fn main() {
    let h = parse_history(
        "p: w(x)1 r(x)1 r(x)2\n\
         q: w(x)2 r(x)2 r(x)1",
    )
    .unwrap();
    println!("Figure 3 — a PRAM history that is not allowed by TSO:");
    print_history(&h);
    println!();

    println!("Declarative checker (paper Section 3.5):");
    let pram = report_check(&h, &models::pram(), true);
    let tso = report_check(&h, &models::tso(), false);
    let pc = report_check(&h, &models::pc(), false);
    let causal = report_check(&h, &models::causal(), false);
    assert!(pram.is_allowed() && tso.is_disallowed());
    assert!(pc.is_disallowed(), "coherence forbids the exchange");
    assert!(causal.is_allowed(), "causal memory has no coherence");
    println!();

    // Operational confirmation on the replica machine.
    let script = OpScript::new(
        vec![
            vec![Access::write(0, 1), Access::read(0), Access::read(0)],
            vec![Access::write(0, 2), Access::read(0), Access::read(0)],
        ],
        1,
    );
    let out = explore(&PramMem::new(2, 1), &script, &ExploreConfig::default());
    let fig3 = "p0: w(x0)1 r(x0)1 r(x0)2\np1: w(x0)2 r(x0)2 r(x0)1\n";
    let reached = out.histories.iter().any(|h| h.to_string() == fig3);
    println!(
        "Operational PRAM machine: {} distinct histories over {} states; \
         Figure 3 outcome reachable: {reached}",
        out.histories.len(),
        out.states_explored
    );
    assert!(reached);
    println!("\nFigure 3 reproduced: PRAM (and causal) admit the exchange; TSO and PC forbid it.");
}

//! Regenerates Figure 4: a causal history TSO forbids, with the
//! vector-clock causal machine reaching it.

use smc_bench::{print_history, report_check};
use smc_core::models;
use smc_history::litmus::parse_history;
use smc_sim::sched::sample_histories;
use smc_sim::workload::{Access, OpScript};
use smc_sim::CausalMem;

fn main() {
    let h = parse_history(
        "p: w(x)1 w(y)1\n\
         q: r(y)1 w(z)1 r(x)2\n\
         r: w(x)2 r(x)1 r(z)1 r(y)1",
    )
    .unwrap();
    println!("Figure 4 — a causal history that is not allowed by TSO:");
    print_history(&h);
    println!();

    println!("Declarative checker (paper Section 3.5):");
    let causal = report_check(&h, &models::causal(), true);
    let tso = report_check(&h, &models::tso(), false);
    let pram = report_check(&h, &models::pram(), false);
    let pc = report_check(&h, &models::pc(), false);
    let cc = report_check(&h, &models::causal_coherent(), false);
    assert!(causal.is_allowed() && tso.is_disallowed());
    assert!(pram.is_allowed(), "PRAM is weaker than causal");
    assert!(pc.is_disallowed(), "Figure 4 is the causal-not-PC witness");
    assert!(
        cc.is_disallowed(),
        "adding Section 7's coherence to causal memory forbids Figure 4"
    );
    println!();

    // Operational confirmation: random schedules of the causal machine
    // over the same program shape (locations x=0, y=1, z=2).
    let script = OpScript::new(
        vec![
            vec![Access::write(0, 1), Access::write(1, 1)],
            vec![Access::read(1), Access::write(2, 1), Access::read(0)],
            vec![
                Access::write(0, 2),
                Access::read(0),
                Access::read(2),
                Access::read(1),
            ],
        ],
        3,
    );
    let (histories, _) = sample_histories(&CausalMem::new(3, 3), &script, 20_000, 10_000, 7);
    let fig4 = "p0: w(x0)1 w(x1)1\np1: r(x1)1 w(x2)1 r(x0)2\np2: w(x0)2 r(x0)1 r(x2)1 r(x1)1\n";
    let reached = histories.iter().any(|h| h.to_string() == fig4);
    println!(
        "Operational causal machine: {} distinct histories over 20000 random \
         schedules; Figure 4 outcome reached: {reached}",
        histories.len()
    );
    assert!(reached);
    println!("\nFigure 4 reproduced: causal (and PRAM) admit it; TSO, PC and causal+coherence forbid it.");
}

//! Seeded big-history generators for the saturation-engine benchmarks
//! and the engine-equivalence tests.
//!
//! [`sc_run`] simulates a sequentially consistent memory step by step —
//! one atomic shared store, random processor interleaving, every write a
//! fresh value — so the produced history is SC-admissible by
//! construction and its reads-from assignment is unambiguous. That is
//! the realistic shape for 100–1000-op traces (real executions have
//! mostly-distinct written values), and it makes the generator usable as
//! ground truth: `saturate` must return `Allowed` on the output under
//! every model at least as weak as SC.

use smc_history::{History, HistoryBuilder};
use smc_prng::SmallRng;

/// Names used for generated processors, in id order.
const PROC_NAMES: [&str; 8] = ["p", "q", "r", "s", "t", "u", "v", "w"];
/// Names used for generated locations, in id order.
const LOC_NAMES: [&str; 8] = ["x", "y", "z", "a", "b", "c", "d", "e"];

/// Generate an `events`-operation history by simulating an SC memory:
/// a random processor issues each next operation, writes store fresh
/// values, reads return the current content of the location.
///
/// # Panics
/// Panics if `procs` or `locs` exceeds 8 (the built-in name tables).
pub fn sc_run(seed: u64, procs: usize, locs: usize, events: usize) -> History {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = HistoryBuilder::new();
    for &p in PROC_NAMES.iter().take(procs) {
        b.add_proc(p);
    }
    let mut mem = vec![0i64; locs];
    let mut next_val = 1i64;
    for _ in 0..events {
        let p = PROC_NAMES[rng.gen_range(0..procs)];
        let l = rng.gen_range(0..locs);
        if rng.gen_bool(0.5) {
            b.write(p, LOC_NAMES[l], next_val);
            mem[l] = next_val;
            next_val += 1;
        } else {
            b.read(p, LOC_NAMES[l], mem[l]);
        }
    }
    b.build()
}

/// Like [`sc_run`], but writes draw from a `vals`-sized value alphabet
/// instead of fresh values, so a read typically has many same-value
/// candidate writes. The history is still an SC execution by
/// construction; what changes is that the reads-from assignment is no
/// longer forced, which is exactly the regime where schedule
/// enumeration pays an exponential price.
///
/// # Panics
/// Panics if `vals == 0`, or if `procs`/`locs` exceeds 8.
pub fn sc_run_aliased(seed: u64, procs: usize, locs: usize, events: usize, vals: i64) -> History {
    assert!(vals > 0, "need a non-empty value alphabet");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = HistoryBuilder::new();
    for &p in PROC_NAMES.iter().take(procs) {
        b.add_proc(p);
    }
    let mut mem = vec![0i64; locs];
    for _ in 0..events {
        let p = PROC_NAMES[rng.gen_range(0..procs)];
        let l = rng.gen_range(0..locs);
        if rng.gen_bool(0.5) {
            let v = rng.gen_range(1..vals + 1);
            b.write(p, LOC_NAMES[l], v);
            mem[l] = v;
        } else {
            b.read(p, LOC_NAMES[l], mem[l]);
        }
    }
    b.build()
}

/// Like [`sc_run`], but with a stale-read violation appended: the first
/// processor writes two fresh values to a location and the second reads
/// them in inverted order with nothing in between — inadmissible under
/// every model that preserves program order per processor (SC, TSO,
/// PRAM, causal, coherent and their combinations).
///
/// # Panics
/// Panics if `procs < 2`, or if `procs`/`locs` exceeds 8.
pub fn stale_run(seed: u64, procs: usize, locs: usize, events: usize) -> History {
    assert!(procs >= 2, "the stale-read pattern needs two processors");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = HistoryBuilder::new();
    for &p in PROC_NAMES.iter().take(procs) {
        b.add_proc(p);
    }
    let mut mem = vec![0i64; locs];
    let mut next_val = 1i64;
    for _ in 0..events.saturating_sub(4) {
        let p = PROC_NAMES[rng.gen_range(0..procs)];
        let l = rng.gen_range(0..locs);
        if rng.gen_bool(0.5) {
            b.write(p, LOC_NAMES[l], next_val);
            mem[l] = next_val;
            next_val += 1;
        } else {
            b.read(p, LOC_NAMES[l], mem[l]);
        }
    }
    let (a, bv) = (next_val, next_val + 1);
    b.write(PROC_NAMES[0], LOC_NAMES[0], a);
    b.write(PROC_NAMES[0], LOC_NAMES[0], bv);
    b.read(PROC_NAMES[1], LOC_NAMES[0], bv);
    b.read(PROC_NAMES[1], LOC_NAMES[0], a);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sc_run_is_deterministic_and_sized() {
        let h1 = sc_run(7, 3, 4, 64);
        let h2 = sc_run(7, 3, 4, 64);
        assert_eq!(h1.to_string(), h2.to_string());
        assert_eq!(h1.num_ops(), 64);
        assert_eq!(h1.num_procs(), 3);
    }

    #[test]
    fn stale_run_keeps_requested_size() {
        let h = stale_run(7, 3, 4, 64);
        assert_eq!(h.num_ops(), 64);
    }
}

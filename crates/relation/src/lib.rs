//! A small binary-relation engine used by the memory-model checker.
//!
//! The characterization framework of Kohli, Neiger & Ahamad represents every
//! ordering requirement (program order, writes-before, causal order,
//! semi-causality, enumerated store orders, ...) as a binary relation over
//! the operations of a history. This crate provides the shared machinery:
//!
//! * [`BitSet`] — a growable bit set over dense `usize` indices,
//! * [`Relation`] — a dense bit-matrix relation with union, composition,
//!   transitive closure, acyclicity checking and topological sorting,
//! * [`linext`] — enumeration of the linear extensions of a partial order
//!   (used to enumerate candidate store orders and coherence orders),
//! * [`scc`] — strongly-connected components for cycle diagnostics.
//!
//! Everything is index-based; the checker crate maps operation identifiers
//! to indices.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
pub mod linext;
mod relation;
pub mod scc;

pub use bitset::BitSet;
pub use relation::Relation;

//! Dense bit-matrix binary relations.

use crate::bitset::BitSet;
use std::fmt;

/// A binary relation over the universe `0..n`, stored as one successor
/// [`BitSet`] per element.
///
/// An edge `(a, b)` is read "`a` is ordered before `b`". Relations are the
/// lingua franca of the checker: derived orders (`po`, `ppo`, `wb`, `co`,
/// `sem`), enumerated store/coherence orders, and per-view constraint sets
/// are all `Relation`s that get unioned together.
#[derive(Clone, PartialEq, Eq)]
pub struct Relation {
    n: usize,
    rows: Vec<BitSet>,
}

impl Relation {
    /// The empty relation over `0..n`.
    pub fn new(n: usize) -> Self {
        Relation {
            n,
            rows: (0..n).map(|_| BitSet::new(n)).collect(),
        }
    }

    /// Build from an edge list.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut r = Self::new(n);
        for (a, b) in edges {
            r.add(a, b);
        }
        r
    }

    /// Universe size.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the universe is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Add the edge `a → b`; returns `true` if it was new.
    #[inline]
    pub fn add(&mut self, a: usize, b: usize) -> bool {
        self.rows[a].insert(b)
    }

    /// Remove the edge `a → b`.
    #[inline]
    pub fn remove(&mut self, a: usize, b: usize) -> bool {
        self.rows[a].remove(b)
    }

    /// Edge test: is `a` ordered before `b`?
    #[inline]
    pub fn has(&self, a: usize, b: usize) -> bool {
        self.rows[a].contains(b)
    }

    /// The successor set of `a` (everything `a` is ordered before).
    #[inline]
    pub fn successors(&self, a: usize) -> &BitSet {
        &self.rows[a]
    }

    /// The predecessor set of `b`, computed by column scan.
    pub fn predecessors(&self, b: usize) -> BitSet {
        let mut s = BitSet::new(self.n);
        for a in 0..self.n {
            if self.rows[a].contains(b) {
                s.insert(a);
            }
        }
        s
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.rows.iter().map(BitSet::count).sum()
    }

    /// Iterate over all edges `(a, b)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.rows
            .iter()
            .enumerate()
            .flat_map(|(a, row)| row.iter().map(move |b| (a, b)))
    }

    /// In-place union with another relation over the same universe.
    pub fn union_with(&mut self, other: &Relation) {
        assert_eq!(self.n, other.n, "relation universes differ");
        for (a, b) in self.rows.iter_mut().zip(&other.rows) {
            a.union_with(b);
        }
    }

    /// The composition `self ; other` (`a → c` iff `a →self b →other c`).
    pub fn compose(&self, other: &Relation) -> Relation {
        assert_eq!(self.n, other.n);
        let mut out = Relation::new(self.n);
        for a in 0..self.n {
            let row = &mut out.rows[a];
            for b in self.rows[a].iter() {
                row.union_with(&other.rows[b]);
            }
        }
        out
    }

    /// In-place transitive closure (Floyd–Warshall with bit-set rows:
    /// `O(n² · n/64)` words).
    pub fn transitive_closure(&mut self) {
        for k in 0..self.n {
            // Split borrow: copy row k once per pivot.
            let row_k = self.rows[k].clone();
            for i in 0..self.n {
                if i != k && self.rows[i].contains(k) {
                    self.rows[i].union_with(&row_k);
                }
            }
        }
    }

    /// A transitively-closed copy.
    pub fn closed(&self) -> Relation {
        let mut r = self.clone();
        r.transitive_closure();
        r
    }

    /// `true` if the relation (viewed as a digraph) has no directed cycle.
    ///
    /// Self-loops count as cycles. Uses Kahn's algorithm, `O(n + e)`-ish on
    /// the bit-matrix representation.
    pub fn is_acyclic(&self) -> bool {
        self.topo_sort().is_some()
    }

    /// A topological order of the universe consistent with the relation, or
    /// `None` if it is cyclic. Ties are broken by ascending index, making
    /// the output deterministic.
    pub fn topo_sort(&self) -> Option<Vec<usize>> {
        let mut indeg = vec![0usize; self.n];
        for a in 0..self.n {
            for b in self.rows[a].iter() {
                indeg[b] += 1;
            }
        }
        let mut ready: Vec<usize> = (0..self.n).filter(|&i| indeg[i] == 0).collect();
        // Keep ascending order: treat `ready` as a min-stack by reversing.
        ready.sort_unstable_by(|a, b| b.cmp(a));
        let mut out = Vec::with_capacity(self.n);
        while let Some(i) = ready.pop() {
            out.push(i);
            let mut newly = Vec::new();
            for b in self.rows[i].iter() {
                indeg[b] -= 1;
                if indeg[b] == 0 {
                    newly.push(b);
                }
            }
            // Merge while preserving the min-stack invariant.
            ready.extend(newly);
            ready.sort_unstable_by(|a, b| b.cmp(a));
        }
        if out.len() == self.n {
            Some(out)
        } else {
            None
        }
    }

    /// Restrict the relation to the elements of `keep`, reindexing densely
    /// in ascending order of original index. Returns the restricted
    /// relation and the map from new index to old.
    pub fn restrict(&self, keep: &BitSet) -> (Relation, Vec<usize>) {
        let old: Vec<usize> = keep.iter().collect();
        let mut new_of_old = vec![usize::MAX; self.n];
        for (new, &o) in old.iter().enumerate() {
            new_of_old[o] = new;
        }
        let mut out = Relation::new(old.len());
        for (new_a, &a) in old.iter().enumerate() {
            for b in self.rows[a].iter() {
                if keep.contains(b) {
                    out.add(new_a, new_of_old[b]);
                }
            }
        }
        (out, old)
    }

    /// `true` if `self ⊆ other` edge-wise.
    pub fn is_subrelation(&self, other: &Relation) -> bool {
        assert_eq!(self.n, other.n);
        self.rows
            .iter()
            .zip(&other.rows)
            .all(|(a, b)| a.is_subset(b))
    }

    /// Add the total order `seq[0] → seq[1] → ...` (all transitive pairs).
    pub fn add_total_order(&mut self, seq: &[usize]) {
        for i in 0..seq.len() {
            for j in i + 1..seq.len() {
                self.add(seq[i], seq[j]);
            }
        }
    }

    /// `true` if `order` is a linear extension of this relation restricted
    /// to exactly the elements of `order` (i.e. no edge among those
    /// elements points backwards).
    pub fn respects(&self, order: &[usize]) -> bool {
        let mut pos = vec![usize::MAX; self.n];
        for (i, &o) in order.iter().enumerate() {
            pos[o] = i;
        }
        for (i, &a) in order.iter().enumerate() {
            for b in self.rows[a].iter() {
                if pos[b] != usize::MAX && pos[b] < i {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation({} nodes: ", self.n)?;
        f.debug_list().entries(self.edges()).finish()?;
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_and_queries() {
        let r = Relation::from_edges(4, [(0, 1), (1, 2), (0, 3)]);
        assert!(r.has(0, 1));
        assert!(!r.has(1, 0));
        assert_eq!(r.num_edges(), 3);
        assert_eq!(r.successors(0).iter().collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(r.predecessors(2).iter().collect::<Vec<_>>(), vec![1]);
        assert_eq!(r.edges().count(), 3);
    }

    #[test]
    fn transitive_closure_basic() {
        let mut r = Relation::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        r.transitive_closure();
        assert!(r.has(0, 3) && r.has(0, 2) && r.has(1, 3));
        assert!(!r.has(3, 0));
        // Idempotent.
        let again = r.closed();
        assert_eq!(again, r);
    }

    #[test]
    fn closure_detects_cycles_as_self_reachability() {
        let mut r = Relation::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        r.transitive_closure();
        assert!(r.has(0, 0));
        assert!(!r.is_acyclic());
    }

    #[test]
    fn compose() {
        let a = Relation::from_edges(4, [(0, 1), (2, 3)]);
        let b = Relation::from_edges(4, [(1, 2), (3, 0)]);
        let c = a.compose(&b);
        assert!(c.has(0, 2));
        assert!(c.has(2, 0));
        assert_eq!(c.num_edges(), 2);
    }

    #[test]
    fn topo_sort_deterministic_and_valid() {
        let r = Relation::from_edges(5, [(3, 1), (1, 0), (4, 0)]);
        let t = r.topo_sort().unwrap();
        assert_eq!(t.len(), 5);
        assert!(r.respects(&t));
        // Ties broken ascending: 2 (free) comes as early as allowed.
        assert_eq!(t, vec![2, 3, 1, 4, 0]);
        assert!(Relation::from_edges(2, [(0, 1), (1, 0)])
            .topo_sort()
            .is_none());
    }

    #[test]
    fn acyclic_checks() {
        assert!(Relation::from_edges(3, [(0, 1), (1, 2)]).is_acyclic());
        assert!(!Relation::from_edges(1, [(0, 0)]).is_acyclic());
        assert!(Relation::new(0).is_acyclic());
    }

    #[test]
    fn restrict_reindexes() {
        let r = Relation::from_edges(5, [(0, 2), (2, 4), (1, 3)]);
        let keep = BitSet::from_iter(5, [0, 2, 4]);
        let (sub, back) = r.restrict(&keep);
        assert_eq!(back, vec![0, 2, 4]);
        assert!(sub.has(0, 1)); // 0→2
        assert!(sub.has(1, 2)); // 2→4
        assert_eq!(sub.num_edges(), 2);
    }

    #[test]
    fn union_and_subrelation() {
        let a = Relation::from_edges(3, [(0, 1)]);
        let b = Relation::from_edges(3, [(1, 2)]);
        let mut u = a.clone();
        u.union_with(&b);
        assert!(a.is_subrelation(&u) && b.is_subrelation(&u));
        assert!(!u.is_subrelation(&a));
        assert_eq!(u.num_edges(), 2);
    }

    #[test]
    fn total_order_and_respects() {
        let mut r = Relation::new(4);
        r.add_total_order(&[2, 0, 3]);
        assert!(r.has(2, 0) && r.has(2, 3) && r.has(0, 3));
        assert!(r.respects(&[2, 0, 3]));
        assert!(r.respects(&[2, 1, 0, 3]));
        assert!(!r.respects(&[0, 2, 3]));
        // `respects` only looks at elements present in the order.
        assert!(r.respects(&[0, 3]));
    }
}

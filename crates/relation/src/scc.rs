//! Strongly-connected components (Tarjan), used to explain *why* a set of
//! ordering constraints is unsatisfiable: any SCC with more than one node
//! (or a self-loop) is a certificate that no linear extension exists.

use crate::relation::Relation;

/// Compute the strongly-connected components of `rel` viewed as a digraph.
///
/// Components are returned in reverse topological order (Tarjan's natural
/// output order); each component lists its member indices.
pub fn strongly_connected_components(rel: &Relation) -> Vec<Vec<usize>> {
    // Iterative Tarjan to avoid recursion-depth limits on long chains.
    let n = rel.len();
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut comps = Vec::new();

    // Explicit DFS frames: (node, successor iterator position).
    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        let mut frames: Vec<(usize, Vec<usize>, usize)> = Vec::new();
        let succs: Vec<usize> = rel.successors(root).iter().collect();
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        frames.push((root, succs, 0));

        while let Some(frame) = frames.last_mut() {
            let (v, succs, pos) = (frame.0, &frame.1, &mut frame.2);
            if *pos < succs.len() {
                let w = succs[*pos];
                *pos += 1;
                if index[w] == UNSET {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    let wsuccs: Vec<usize> = rel.successors(w).iter().collect();
                    frames.push((w, wsuccs, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                // Finished v.
                let v_low = low[v];
                let v_index = index[v];
                if v_low == v_index {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comps.push(comp);
                }
                frames.pop();
                if let Some(parent) = frames.last() {
                    let p = parent.0;
                    low[p] = low[p].min(v_low);
                }
            }
        }
    }
    comps
}

/// The nodes that participate in some cycle: members of a multi-node SCC,
/// or nodes with a self-loop. Empty iff the relation is acyclic.
pub fn cycle_nodes(rel: &Relation) -> Vec<usize> {
    let mut out = Vec::new();
    for comp in strongly_connected_components(rel) {
        if comp.len() > 1 {
            out.extend(comp);
        } else if rel.has(comp[0], comp[0]) {
            out.push(comp[0]);
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dag_has_singleton_components() {
        let rel = Relation::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let comps = strongly_connected_components(&rel);
        assert_eq!(comps.len(), 4);
        assert!(comps.iter().all(|c| c.len() == 1));
        assert!(cycle_nodes(&rel).is_empty());
    }

    #[test]
    fn finds_cycle_component() {
        let rel = Relation::from_edges(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
        let comps = strongly_connected_components(&rel);
        let big: Vec<_> = comps.iter().filter(|c| c.len() > 1).collect();
        assert_eq!(big.len(), 1);
        let mut nodes = big[0].clone();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![0, 1, 2]);
        assert_eq!(cycle_nodes(&rel), vec![0, 1, 2]);
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let rel = Relation::from_edges(2, [(0, 0)]);
        assert_eq!(cycle_nodes(&rel), vec![0]);
    }

    #[test]
    fn two_disjoint_cycles() {
        let rel = Relation::from_edges(6, [(0, 1), (1, 0), (3, 4), (4, 5), (5, 3)]);
        let cyc = cycle_nodes(&rel);
        assert_eq!(cyc, vec![0, 1, 3, 4, 5]);
    }

    #[test]
    fn long_chain_does_not_overflow_stack() {
        let n = 20_000;
        let rel = Relation::from_edges(n, (0..n - 1).map(|i| (i, i + 1)));
        let comps = strongly_connected_components(&rel);
        assert_eq!(comps.len(), n);
    }
}

//! Enumeration of linear extensions of a partial order.
//!
//! The checker uses this to enumerate the existentially-quantified *shared*
//! orders demanded by mutual-consistency parameters: TSO's single store
//! order, PC's per-location coherence orders, and RC's common order on
//! labeled operations. Each candidate order is a linear extension of the
//! constraints already known to hold among the relevant operations.

use crate::bitset::BitSet;
use crate::relation::Relation;
use std::ops::ControlFlow;

/// Visit every linear extension of `rel` restricted to the elements of
/// `subset`, in lexicographically ascending index order.
///
/// `rel` is interpreted as a (not necessarily transitively closed)
/// precedence relation; only edges between two members of `subset` matter.
/// The visitor receives each complete extension as a slice of original
/// indices and may stop the enumeration early by returning
/// [`ControlFlow::Break`].
///
/// Returns `Break(x)` if the visitor broke with `x`, `Continue(())` if the
/// enumeration ran to completion (including the degenerate case of a cyclic
/// restriction, which has no extensions).
pub fn for_each_linear_extension<B>(
    rel: &Relation,
    subset: &BitSet,
    mut visit: impl FnMut(&[usize]) -> ControlFlow<B>,
) -> ControlFlow<B> {
    let elems: Vec<usize> = subset.iter().collect();
    let m = elems.len();
    if m == 0 {
        return visit(&[]);
    }
    // Local dense indices 0..m; preds[i] = bitmask of local predecessors.
    let mut local_of = vec![usize::MAX; rel.len()];
    for (i, &e) in elems.iter().enumerate() {
        local_of[e] = i;
    }
    let mut preds: Vec<BitSet> = (0..m).map(|_| BitSet::new(m)).collect();
    for (i, &e) in elems.iter().enumerate() {
        for s in rel.successors(e).iter() {
            let j = local_of[s];
            if j != usize::MAX {
                if j == i {
                    // Self-loop: no extensions.
                    return ControlFlow::Continue(());
                }
                preds[j].insert(i);
            }
        }
    }

    let mut placed = BitSet::new(m);
    let mut order: Vec<usize> = Vec::with_capacity(m);
    fn rec<B>(
        elems: &[usize],
        preds: &[BitSet],
        placed: &mut BitSet,
        order: &mut Vec<usize>,
        visit: &mut impl FnMut(&[usize]) -> ControlFlow<B>,
    ) -> ControlFlow<B> {
        let m = elems.len();
        if order.len() == m {
            return visit(order);
        }
        for i in 0..m {
            if !placed.contains(i) && preds[i].is_subset(placed) {
                placed.insert(i);
                order.push(elems[i]);
                rec(elems, preds, placed, order, visit)?;
                order.pop();
                placed.remove(i);
            }
        }
        ControlFlow::Continue(())
    }
    rec(&elems, &preds, &mut placed, &mut order, &mut visit)
}

/// Collect every linear extension of `rel` restricted to `subset`, up to
/// `limit` extensions. Returns `(extensions, truncated)` where `truncated`
/// reports whether the limit cut the enumeration short.
pub fn linear_extensions(rel: &Relation, subset: &BitSet, limit: usize) -> (Vec<Vec<usize>>, bool) {
    let mut out = Vec::new();
    let flow = for_each_linear_extension(rel, subset, |ext| {
        if out.len() == limit {
            return ControlFlow::Break(());
        }
        out.push(ext.to_vec());
        ControlFlow::Continue(())
    });
    (out, flow.is_break())
}

/// Count the linear extensions of `rel` restricted to `subset`, stopping at
/// `cap`. Returns `min(count, cap)`.
pub fn count_linear_extensions(rel: &Relation, subset: &BitSet, cap: usize) -> usize {
    let mut n = 0usize;
    let _ = for_each_linear_extension(rel, subset, |_| {
        n += 1;
        if n >= cap {
            ControlFlow::Break(())
        } else {
            ControlFlow::<()>::Continue(())
        }
    });
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exts(rel: &Relation, subset: &BitSet) -> Vec<Vec<usize>> {
        linear_extensions(rel, subset, usize::MAX).0
    }

    #[test]
    fn antichain_gives_all_permutations() {
        let rel = Relation::new(3);
        let all = exts(&rel, &BitSet::full(3));
        assert_eq!(all.len(), 6);
        // Lexicographic by index at each choice point.
        assert_eq!(all[0], vec![0, 1, 2]);
        assert_eq!(all[5], vec![2, 1, 0]);
    }

    #[test]
    fn chain_gives_single_extension() {
        let rel = Relation::from_edges(3, [(2, 1), (1, 0)]);
        let all = exts(&rel, &BitSet::full(3));
        assert_eq!(all, vec![vec![2, 1, 0]]);
    }

    #[test]
    fn respects_partial_constraints() {
        // 0 < 2, 1 free among {0,1,2}.
        let rel = Relation::from_edges(3, [(0, 2)]);
        let all = exts(&rel, &BitSet::full(3));
        assert_eq!(all.len(), 3);
        for e in &all {
            let p0 = e.iter().position(|&x| x == 0).unwrap();
            let p2 = e.iter().position(|&x| x == 2).unwrap();
            assert!(p0 < p2);
        }
    }

    #[test]
    fn subset_ignores_outside_edges() {
        // Edge 0→1 exists but only {1,2} are enumerated.
        let rel = Relation::from_edges(3, [(0, 1), (2, 1)]);
        let subset = BitSet::from_iter(3, [1, 2]);
        let all = exts(&rel, &subset);
        assert_eq!(all, vec![vec![2, 1]]);
    }

    #[test]
    fn cycle_has_no_extensions() {
        let rel = Relation::from_edges(2, [(0, 1), (1, 0)]);
        assert!(exts(&rel, &BitSet::full(2)).is_empty());
        let selfloop = Relation::from_edges(1, [(0, 0)]);
        assert!(exts(&selfloop, &BitSet::full(1)).is_empty());
    }

    #[test]
    fn empty_subset_yields_one_empty_extension() {
        let rel = Relation::new(3);
        let all = exts(&rel, &BitSet::new(3));
        assert_eq!(all, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn early_break_and_limits() {
        let rel = Relation::new(4);
        let (some, truncated) = linear_extensions(&rel, &BitSet::full(4), 5);
        assert_eq!(some.len(), 5);
        assert!(truncated);
        assert_eq!(
            count_linear_extensions(&rel, &BitSet::full(4), usize::MAX),
            24
        );
        assert_eq!(count_linear_extensions(&rel, &BitSet::full(4), 7), 7);
    }
}

//! A dense, fixed-universe bit set.

use std::fmt;

const BITS: usize = 64;

/// A bit set over the universe `0..len`, backed by `u64` words.
///
/// All set-algebra operations require both operands to share the same
/// universe size (this is checked in debug builds). The set is `Hash`able
/// and `Ord`-comparable so it can key memoization tables in the view
/// search.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// The empty set over universe `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(BITS)],
            len,
        }
    }

    /// The full set over universe `0..len`.
    pub fn full(len: usize) -> Self {
        let mut s = Self::new(len);
        for i in 0..len {
            s.insert(i);
        }
        s
    }

    /// Build a set from an iterator of indices.
    pub fn from_iter(len: usize, iter: impl IntoIterator<Item = usize>) -> Self {
        let mut s = Self::new(len);
        for i in iter {
            s.insert(i);
        }
        s
    }

    /// Size of the universe (NOT the number of elements; see
    /// [`BitSet::count`]).
    #[inline]
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Number of elements currently in the set.
    #[inline]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if the set has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Insert `i`; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len, "index {i} out of universe {}", self.len);
        let (w, b) = (i / BITS, i % BITS);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Remove `i`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let (w, b) = (i / BITS, i % BITS);
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / BITS] & (1 << (i % BITS)) != 0
    }

    /// In-place union: `self ∪= other`.
    #[inline]
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection: `self ∩= other`.
    #[inline]
    pub fn intersect_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference: `self \= other`.
    #[inline]
    pub fn difference_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// `true` if `self ⊆ other`.
    #[inline]
    pub fn is_subset(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// `true` if `self ∩ other = ∅`.
    #[inline]
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Remove all elements.
    #[inline]
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Iterate over the elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * BITS + b)
                }
            })
        })
    }

    /// The smallest element, if any.
    pub fn first(&self) -> Option<usize> {
        self.iter().next()
    }

    /// The backing words, exposed for fast hashing of search states.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.count(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_iter(10, [1, 3, 5]);
        let b = BitSet::from_iter(10, [3, 5, 7]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 3, 5, 7]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![3, 5]);
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1]);
        assert!(i.is_subset(&a) && i.is_subset(&b));
        assert!(!a.is_subset(&b));
        assert!(d.is_disjoint(&b));
    }

    #[test]
    fn full_and_clear() {
        let mut f = BitSet::full(70);
        assert_eq!(f.count(), 70);
        assert!(f.contains(69));
        f.clear();
        assert!(f.is_empty());
        assert_eq!(BitSet::new(0).count(), 0);
    }

    #[test]
    fn iteration_order_is_ascending() {
        let s = BitSet::from_iter(200, [199, 0, 63, 64, 65]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 65, 199]);
        assert_eq!(s.first(), Some(0));
        assert_eq!(BitSet::new(5).first(), None);
    }

    #[test]
    fn hash_and_ord_usable_as_key() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        let a = BitSet::from_iter(10, [1, 2]);
        let b = BitSet::from_iter(10, [1, 2]);
        seen.insert(a);
        assert!(seen.contains(&b));
    }
}

//! DASH-style processor consistency: pipelined delivery plus a coherence
//! arbiter.

use crate::channel::{Channels, Update};
use crate::mem::MemorySystem;
use smc_history::{Label, Location, ProcId, Value};

/// PRAM's replicated machine strengthened with per-location coherence.
///
/// A global arbiter stamps each write with a per-location sequence number
/// at issue. Updates travel over per-source FIFO channels (preserving
/// `→ppo` the way PRAM preserves `→po`), and a receiver applies an update
/// only if its stamp is newer than the last stamp applied to that
/// location — older updates are *absorbed* (the value was already
/// overwritten), so all replicas settle on the arbiter's per-location
/// write order: exactly the coherence requirement of Section 3.3.
///
/// The writer applies its own update immediately (reads may see the
/// processor's own writes early, which PC permits — unlike the paper's
/// TSO).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PcMem {
    replicas: Vec<Vec<Value>>,
    /// Last arbiter stamp applied per (processor, location).
    applied_seq: Vec<Vec<u64>>,
    /// Next arbiter stamp per location.
    next_seq: Vec<u64>,
    channels: Channels,
}

impl PcMem {
    /// A PC memory for `num_procs` processors and `num_locs` locations.
    pub fn new(num_procs: usize, num_locs: usize) -> Self {
        PcMem {
            replicas: vec![vec![Value::INITIAL; num_locs]; num_procs],
            applied_seq: vec![vec![0; num_locs]; num_procs],
            next_seq: vec![0; num_locs],
            channels: Channels::new(num_procs),
        }
    }

    /// Inspect processor `p`'s replica (tests and diagnostics).
    pub fn replica(&self, p: ProcId) -> &[Value] {
        &self.replicas[p.index()]
    }
}

impl MemorySystem for PcMem {
    fn num_procs(&self) -> usize {
        self.replicas.len()
    }

    fn num_locs(&self) -> usize {
        self.next_seq.len()
    }

    fn read(&mut self, p: ProcId, loc: Location, _label: Label) -> Value {
        self.replicas[p.index()][loc.index()]
    }

    fn write(&mut self, p: ProcId, loc: Location, value: Value, _label: Label) {
        let pi = p.index();
        self.next_seq[loc.index()] += 1;
        let seq = self.next_seq[loc.index()];
        self.replicas[pi][loc.index()] = value;
        self.applied_seq[pi][loc.index()] = seq;
        self.channels.broadcast(pi, Update { loc, value, seq });
    }

    fn num_internal(&self) -> usize {
        self.channels.heads().len()
    }

    fn fire(&mut self, i: usize) {
        let Some(&(src, dst, _)) = self.channels.heads().get(i) else {
            return;
        };
        let Some(u) = self.channels.pop_head(src, dst) else {
            return;
        };
        // Coherence: apply only if newer than what this replica already
        // holds for the location; otherwise absorb.
        if u.seq > self.applied_seq[dst][u.loc.index()] {
            self.replicas[dst][u.loc.index()] = u.value;
            self.applied_seq[dst][u.loc.index()] = u.seq;
        }
    }

    fn name(&self) -> String {
        "PC".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ORD: Label = Label::Ordinary;

    #[test]
    fn own_writes_visible_immediately() {
        let mut m = PcMem::new(2, 1);
        m.write(ProcId(0), Location(0), Value(1), ORD);
        assert_eq!(m.read(ProcId(0), Location(0), ORD), Value(1));
        assert_eq!(m.read(ProcId(1), Location(0), ORD), Value(0));
    }

    #[test]
    fn absorption_enforces_coherence() {
        // Two processors write x concurrently; the arbiter stamps p0's
        // write first, so every replica converges on p1's value.
        let mut m = PcMem::new(3, 1);
        m.write(ProcId(0), Location(0), Value(1), ORD); // seq 1
        m.write(ProcId(1), Location(0), Value(2), ORD); // seq 2
        while !m.quiescent() {
            // Deliver in whatever order the head list produces.
            m.fire(m.num_internal() - 1);
        }
        for p in 0..3 {
            assert_eq!(m.replica(ProcId(p as u32))[0], Value(2));
        }
    }

    #[test]
    fn stale_update_absorbed_after_newer_applied() {
        let mut m = PcMem::new(2, 1);
        m.write(ProcId(0), Location(0), Value(1), ORD); // seq 1 → queued to p1
        m.write(ProcId(1), Location(0), Value(2), ORD); // seq 2, applied at p1
                                                        // Deliver p0's (older) update to p1: must be absorbed.
        let heads = m.channels.heads();
        let i = heads
            .iter()
            .position(|&(s, d, _)| (s, d) == (0, 1))
            .unwrap();
        m.fire(i);
        assert_eq!(m.replica(ProcId(1))[0], Value(2));
    }

    #[test]
    fn per_source_fifo_like_pram() {
        let mut m = PcMem::new(2, 2);
        m.write(ProcId(0), Location(0), Value(1), ORD);
        m.write(ProcId(0), Location(1), Value(1), ORD);
        // Only the first write is at the channel head.
        assert_eq!(m.num_internal(), 1);
        m.fire(0);
        assert_eq!(m.replica(ProcId(1))[0], Value(1));
        assert_eq!(m.replica(ProcId(1))[1], Value(0));
    }
}

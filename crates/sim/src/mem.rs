//! The interface every operational memory implements.

use smc_history::{Label, Location, ProcId, Value};
use std::hash::Hash;

/// An operational shared memory driven one transition at a time.
///
/// A memory has two kinds of transitions:
///
/// * **issue** transitions, taken synchronously when a processor performs
///   a [`MemorySystem::read`] or [`MemorySystem::write`] (a read returns
///   its value immediately — the simulators model asynchrony in the
///   *propagation* of writes, not in the local operation itself);
/// * **internal** transitions — buffer drains, message deliveries —
///   numbered `0..num_internal()` and fired by the scheduler in any
///   order. Which internal transitions exist, and what firing them does,
///   is the whole difference between the memory models.
///
/// Some models block an issue until internal work completes (the paper's
/// TSO stalls a read of a location the processor has a buffered store
/// for; a release-consistent release waits until the processor's earlier
/// ordinary writes have performed everywhere). Schedulers must consult
/// [`MemorySystem::can_read`] / [`MemorySystem::can_write`] first; firing
/// internal transitions always eventually unblocks an issue (all the
/// provided memories are deadlock-free in this sense).
///
/// `Clone + Eq + Hash` let the exhaustive explorer treat a memory as a
/// value in a state graph.
pub trait MemorySystem: Clone + Eq + Hash {
    /// Number of processors this memory was configured for.
    fn num_procs(&self) -> usize;

    /// Number of locations this memory was configured for.
    fn num_locs(&self) -> usize;

    /// May `p` currently issue a read of `loc`?
    fn can_read(&self, p: ProcId, loc: Location, label: Label) -> bool {
        let _ = (p, loc, label);
        true
    }

    /// May `p` currently issue a write to `loc`?
    fn can_write(&self, p: ProcId, loc: Location, label: Label) -> bool {
        let _ = (p, loc, label);
        true
    }

    /// Issue a read and return the value observed.
    ///
    /// # Panics
    /// May panic if `can_read` is false.
    fn read(&mut self, p: ProcId, loc: Location, label: Label) -> Value;

    /// Issue a write.
    ///
    /// # Panics
    /// May panic if `can_write` is false.
    fn write(&mut self, p: ProcId, loc: Location, value: Value, label: Label);

    /// Number of currently-enabled internal transitions.
    fn num_internal(&self) -> usize;

    /// Fire internal transition `i` (`0 <= i < num_internal()`).
    ///
    /// Transition numbering may change arbitrarily after any transition;
    /// schedulers re-query `num_internal` each step.
    fn fire(&mut self, i: usize);

    /// `true` when no internal work remains (all writes performed
    /// everywhere).
    fn quiescent(&self) -> bool {
        self.num_internal() == 0
    }

    /// A short human-readable name (`"SC"`, `"TSO(fwd)"`, ...).
    fn name(&self) -> String;
}

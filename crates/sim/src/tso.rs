//! Store-buffer TSO (the paper's Section 3.2 operational description).

use crate::mem::MemorySystem;
use smc_history::{Label, Location, ProcId, Value};
use std::collections::VecDeque;

/// Per-processor FIFO store buffers draining into one single-ported
/// memory.
///
/// A write enqueues into the issuer's buffer; the internal transitions
/// commit buffer heads to memory in FIFO order per processor (the switch
/// arbitrating the single port is the scheduler's choice of which head to
/// commit).
///
/// Reads come in two flavours, controlled by `forwarding`:
///
/// * `forwarding = false` (default — the **paper's** TSO): a read of a
///   location the issuer has a buffered store for *stalls* until the
///   buffer drains past it; the paper's `→ppo` orders a write before a
///   later read of the same location, so its characterization has no
///   store forwarding.
/// * `forwarding = true` (SPARC hardware behaviour): the read returns the
///   youngest buffered value immediately. Runs of this variant can
///   produce histories the paper's TSO characterization *rejects* — the
///   workspace's negative cross-validation test relies on exactly that
///   discrepancy.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TsoMem {
    memory: Vec<Value>,
    buffers: Vec<VecDeque<(Location, Value)>>,
    forwarding: bool,
}

impl TsoMem {
    /// The paper's TSO: no store forwarding.
    pub fn new(num_procs: usize, num_locs: usize) -> Self {
        TsoMem {
            memory: vec![Value::INITIAL; num_locs],
            buffers: vec![VecDeque::new(); num_procs],
            forwarding: false,
        }
    }

    /// SPARC-style TSO with store forwarding (see type docs).
    pub fn with_forwarding(num_procs: usize, num_locs: usize) -> Self {
        TsoMem {
            forwarding: true,
            ..Self::new(num_procs, num_locs)
        }
    }

    /// Indices of processors with non-empty buffers, in order.
    fn drainable(&self) -> Vec<usize> {
        (0..self.buffers.len())
            .filter(|&p| !self.buffers[p].is_empty())
            .collect()
    }
}

impl MemorySystem for TsoMem {
    fn num_procs(&self) -> usize {
        self.buffers.len()
    }

    fn num_locs(&self) -> usize {
        self.memory.len()
    }

    fn can_read(&self, p: ProcId, loc: Location, _label: Label) -> bool {
        self.forwarding || !self.buffers[p.index()].iter().any(|&(l, _)| l == loc)
    }

    fn read(&mut self, p: ProcId, loc: Location, _label: Label) -> Value {
        if self.forwarding {
            if let Some(&(_, v)) = self.buffers[p.index()]
                .iter()
                .rev()
                .find(|&&(l, _)| l == loc)
            {
                return v;
            }
        } else {
            debug_assert!(
                !self.buffers[p.index()].iter().any(|&(l, _)| l == loc),
                "read issued while stalled on a buffered store"
            );
        }
        self.memory[loc.index()]
    }

    fn write(&mut self, p: ProcId, loc: Location, value: Value, _label: Label) {
        self.buffers[p.index()].push_back((loc, value));
    }

    fn num_internal(&self) -> usize {
        self.drainable().len()
    }

    fn fire(&mut self, i: usize) {
        let Some(&p) = self.drainable().get(i) else {
            return;
        };
        let Some((loc, value)) = self.buffers[p].pop_front() else {
            return;
        };
        self.memory[loc.index()] = value;
    }

    fn name(&self) -> String {
        if self.forwarding {
            "TSO(fwd)".into()
        } else {
            "TSO".into()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ORD: Label = Label::Ordinary;

    #[test]
    fn buffered_write_invisible_until_drained() {
        let mut m = TsoMem::new(2, 1);
        m.write(ProcId(0), Location(0), Value(1), ORD);
        // The other processor still sees the old value.
        assert_eq!(m.read(ProcId(1), Location(0), ORD), Value(0));
        assert_eq!(m.num_internal(), 1);
        m.fire(0);
        assert_eq!(m.read(ProcId(1), Location(0), ORD), Value(1));
        assert!(m.quiescent());
    }

    #[test]
    fn paper_tso_stalls_own_read() {
        let mut m = TsoMem::new(1, 2);
        m.write(ProcId(0), Location(0), Value(1), ORD);
        assert!(!m.can_read(ProcId(0), Location(0), ORD));
        // Reads of other locations bypass the buffered store.
        assert!(m.can_read(ProcId(0), Location(1), ORD));
        assert_eq!(m.read(ProcId(0), Location(1), ORD), Value(0));
        m.fire(0);
        assert!(m.can_read(ProcId(0), Location(0), ORD));
        assert_eq!(m.read(ProcId(0), Location(0), ORD), Value(1));
    }

    #[test]
    fn forwarding_variant_reads_own_buffer() {
        let mut m = TsoMem::with_forwarding(2, 1);
        m.write(ProcId(0), Location(0), Value(1), ORD);
        m.write(ProcId(0), Location(0), Value(2), ORD);
        assert!(m.can_read(ProcId(0), Location(0), ORD));
        // Youngest buffered value wins.
        assert_eq!(m.read(ProcId(0), Location(0), ORD), Value(2));
        assert_eq!(m.read(ProcId(1), Location(0), ORD), Value(0));
    }

    #[test]
    fn buffers_drain_fifo_per_processor() {
        let mut m = TsoMem::new(2, 2);
        m.write(ProcId(0), Location(0), Value(1), ORD);
        m.write(ProcId(0), Location(1), Value(2), ORD);
        m.write(ProcId(1), Location(0), Value(3), ORD);
        assert_eq!(m.num_internal(), 2);
        // Fire p0's head first: loc0 := 1.
        m.fire(0);
        assert_eq!(m.memory[0], Value(1));
        assert_eq!(m.memory[1], Value(0));
        // Then p1's head: loc0 := 3.
        m.fire(1);
        assert_eq!(m.memory[0], Value(3));
        // Finally p0's second store.
        m.fire(0);
        assert_eq!(m.memory[1], Value(2));
        assert!(m.quiescent());
    }
}

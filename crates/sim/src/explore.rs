//! Exhaustive schedule exploration (a small stateful model checker).
//!
//! Enumerates every interleaving of thread steps and internal memory
//! transitions by depth-first search over cloned `(memory, workload,
//! recorder)` states, with full-state deduplication. Used to
//!
//! * enumerate **every** history a simulator can produce for a small
//!   program (the simulator-vs-checker cross-validation corpus), and
//! * exhaustively search for safety violations (the Section 5 Bakery
//!   experiment: no mutual-exclusion violation exists under `RC_sc`; one
//!   is found under `RC_pc`).
//!
//! ```
//! use smc_sim::explore::{explore, ExploreConfig};
//! use smc_sim::workload::{Access, OpScript};
//! use smc_sim::TsoMem;
//!
//! // Store buffering over the TSO machine: every schedule enumerated.
//! let script = OpScript::new(
//!     vec![
//!         vec![Access::write(0, 1), Access::read(1)],
//!         vec![Access::write(1, 1), Access::read(0)],
//!     ],
//!     2,
//! );
//! let out = explore(&TsoMem::new(2, 2), &script, &ExploreConfig::default());
//! assert_eq!(out.histories.len(), 4); // SC's 3 outcomes + the relaxed one
//! ```

use crate::mem::MemorySystem;
use crate::record::Recorder;
use crate::workload::Workload;
use smc_history::History;
use std::collections::HashSet;

/// Exploration limits and switches.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Maximum transitions along any single path.
    pub max_depth: usize,
    /// Maximum states to expand before giving up (`truncated` is set).
    pub max_states: usize,
    /// Collect completed histories (disable when only hunting
    /// violations — exploration still visits everything but stores
    /// nothing).
    pub collect_histories: bool,
    /// Upper bound on distinct collected histories.
    pub max_histories: usize,
    /// Stop at the first violation.
    pub stop_on_violation: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_depth: 10_000,
            max_states: 2_000_000,
            collect_histories: true,
            max_histories: 1_000_000,
            stop_on_violation: true,
        }
    }
}

/// What the exploration found.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// Every distinct completed history (if collection was enabled).
    pub histories: Vec<History>,
    /// The first safety violation found, with the history that exhibits
    /// it.
    pub violation: Option<(String, History)>,
    /// States expanded.
    pub states_explored: usize,
    /// `true` if an explorer resource cap (states, depth, histories) cut
    /// the exploration short — results are then a lower bound.
    pub truncated: bool,
    /// `true` if some path got stuck before completion (typically a
    /// thread reaching its operation limit inside a busy-wait loop):
    /// the exploration is exhaustive only up to that bound.
    pub bounded: bool,
}

struct Search<M: MemorySystem, W: Workload<M>> {
    cfg: ExploreConfig,
    seen: HashSet<(M, W, Recorder)>,
    history_keys: HashSet<String>,
    out: ExploreOutcome,
}

impl<M: MemorySystem, W: Workload<M>> Search<M, W> {
    /// Returns `true` to abort the whole search.
    fn dfs(&mut self, mem: &M, workload: &W, rec: &Recorder, depth: usize) -> bool {
        if self.out.states_explored >= self.cfg.max_states || depth > self.cfg.max_depth {
            self.out.truncated = true;
            return false;
        }
        let key = (mem.clone(), workload.clone(), rec.clone());
        if !self.seen.insert(key) {
            return false;
        }
        self.out.states_explored += 1;

        if let Some(v) = workload.violation() {
            if self.out.violation.is_none() {
                self.out.violation = Some((v, rec.history()));
            }
            if self.cfg.stop_on_violation {
                return true;
            }
            return false;
        }

        if workload.done() {
            // The history is complete; remaining internal transitions
            // cannot record anything, so stop here.
            if self.cfg.collect_histories {
                let h = rec.history();
                if self.history_keys.insert(h.to_string()) {
                    if self.out.histories.len() >= self.cfg.max_histories {
                        self.out.truncated = true;
                        return false;
                    }
                    self.out.histories.push(h);
                }
            }
            return false;
        }

        let mut any_choice = false;
        for t in 0..workload.num_threads() {
            if workload.runnable(t, mem) {
                any_choice = true;
                let mut m2 = mem.clone();
                let mut w2 = workload.clone();
                let mut r2 = rec.clone();
                w2.step(t, &mut m2, &mut r2);
                if self.dfs(&m2, &w2, &r2, depth + 1) {
                    return true;
                }
            }
        }
        for i in 0..mem.num_internal() {
            any_choice = true;
            let mut m2 = mem.clone();
            m2.fire(i);
            if self.dfs(&m2, workload, rec, depth + 1) {
                return true;
            }
        }
        if !any_choice {
            // The path is stuck: some thread hit its operation limit (or
            // a genuine deadlock). Either way the exploration is
            // exhaustive only up to the workload's bounds.
            self.out.bounded = true;
        }
        false
    }
}

/// Exhaustively explore every schedule of `workload` over `mem`.
pub fn explore<M: MemorySystem, W: Workload<M>>(
    mem: &M,
    workload: &W,
    cfg: &ExploreConfig,
) -> ExploreOutcome {
    let mut search = Search {
        cfg: cfg.clone(),
        seen: HashSet::new(),
        history_keys: HashSet::new(),
        out: ExploreOutcome {
            histories: Vec::new(),
            violation: None,
            states_explored: 0,
            truncated: false,
            bounded: false,
        },
    };
    let rec = workload.recorder();
    search.dfs(mem, workload, &rec, 0);
    search.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sc::ScMem;
    use crate::tso::TsoMem;
    use crate::workload::{Access, OpScript};

    fn sb_script() -> OpScript {
        OpScript::new(
            vec![
                vec![Access::write(0, 1), Access::read(1)],
                vec![Access::write(1, 1), Access::read(0)],
            ],
            2,
        )
    }

    #[test]
    fn sc_exploration_never_reaches_figure1() {
        let out = explore(&ScMem::new(2, 2), &sb_script(), &ExploreConfig::default());
        assert!(!out.truncated);
        assert!(out.violation.is_none());
        let relaxed = "p0: w(x0)1 r(x1)0\np1: w(x1)1 r(x0)0\n";
        assert!(!out.histories.iter().any(|h| h.to_string() == relaxed));
        // SC of this program has exactly 3 outcomes: (1,0) (0,1) (1,1)
        // for the two reads.
        assert_eq!(out.histories.len(), 3);
    }

    #[test]
    fn tso_exploration_reaches_figure1() {
        let out = explore(&TsoMem::new(2, 2), &sb_script(), &ExploreConfig::default());
        assert!(!out.truncated);
        let relaxed = "p0: w(x0)1 r(x1)0\np1: w(x1)1 r(x0)0\n";
        assert!(out.histories.iter().any(|h| h.to_string() == relaxed));
        // TSO adds the relaxed outcome to SC's three.
        assert_eq!(out.histories.len(), 4);
    }

    #[test]
    fn exploration_is_deterministic() {
        let a = explore(&TsoMem::new(2, 2), &sb_script(), &ExploreConfig::default());
        let b = explore(&TsoMem::new(2, 2), &sb_script(), &ExploreConfig::default());
        let ka: Vec<String> = a.histories.iter().map(|h| h.to_string()).collect();
        let kb: Vec<String> = b.histories.iter().map(|h| h.to_string()).collect();
        assert_eq!(ka, kb);
        assert_eq!(a.states_explored, b.states_explored);
    }

    #[test]
    fn state_cap_sets_truncated() {
        let cfg = ExploreConfig {
            max_states: 5,
            ..Default::default()
        };
        let out = explore(&TsoMem::new(2, 2), &sb_script(), &cfg);
        assert!(out.truncated);
    }
}

//! Workloads: the threads that drive a memory.

use crate::mem::MemorySystem;
use crate::record::Recorder;
use smc_history::{Label, Location, OpKind, ProcId, Value};
use std::hash::Hash;

/// A set of threads issuing operations against a [`MemorySystem`].
///
/// The scheduler repeatedly picks either a runnable thread (which then
/// takes one [`Workload::step`], issuing at most one memory operation) or
/// an internal memory transition. `Clone + Eq + Hash` let the exhaustive
/// explorer treat the workload as part of the search state.
pub trait Workload<M: MemorySystem>: Clone + Eq + Hash {
    /// Number of threads (threads map 1:1 to processors).
    fn num_threads(&self) -> usize;

    /// May thread `t` take a step right now? (False when the thread has
    /// finished, or its next operation is blocked by the memory.)
    fn runnable(&self, t: usize, mem: &M) -> bool;

    /// Execute one step of thread `t`, recording any issued operation.
    fn step(&mut self, t: usize, mem: &mut M, rec: &mut Recorder);

    /// `true` when every thread has finished.
    fn done(&self) -> bool;

    /// A violated safety assertion, if the workload detected one (e.g.
    /// two threads simultaneously inside a critical section).
    fn violation(&self) -> Option<String> {
        None
    }

    /// A fresh [`Recorder`] sized and named for this workload.
    fn recorder(&self) -> Recorder;
}

/// One scripted memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Access {
    /// Read or write.
    pub kind: OpKind,
    /// Target location.
    pub loc: Location,
    /// Value to store (ignored for reads — the memory supplies the value).
    pub value: Value,
    /// Ordinary or labeled.
    pub label: Label,
}

impl Access {
    /// An ordinary read of `loc`.
    pub fn read(loc: u32) -> Self {
        Access {
            kind: OpKind::Read,
            loc: Location(loc),
            value: Value::INITIAL,
            label: Label::Ordinary,
        }
    }

    /// An ordinary write of `value` to `loc`.
    pub fn write(loc: u32, value: i64) -> Self {
        Access {
            kind: OpKind::Write,
            loc: Location(loc),
            value: Value(value),
            label: Label::Ordinary,
        }
    }

    /// A labeled (acquire) read of `loc`.
    pub fn acquire(loc: u32) -> Self {
        Access {
            label: Label::Labeled,
            ..Self::read(loc)
        }
    }

    /// A labeled (release) write of `value` to `loc`.
    pub fn release(loc: u32, value: i64) -> Self {
        Access {
            label: Label::Labeled,
            ..Self::write(loc, value)
        }
    }
}

/// The simplest workload: each thread runs a fixed list of accesses.
///
/// Reads record whatever value the memory returns, so exploring an
/// `OpScript` over a simulator enumerates every history the operational
/// machine can produce for that program shape — the raw material for the
/// simulator-vs-checker cross-validation tests.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OpScript {
    threads: Vec<Vec<Access>>,
    pcs: Vec<usize>,
    num_locs: usize,
}

impl OpScript {
    /// A script with one access list per thread. `num_locs` must cover
    /// every referenced location.
    pub fn new(threads: Vec<Vec<Access>>, num_locs: usize) -> Self {
        let pcs = vec![0; threads.len()];
        for accs in &threads {
            for a in accs {
                assert!(a.loc.index() < num_locs, "location out of range");
            }
        }
        OpScript {
            threads,
            pcs,
            num_locs,
        }
    }

    /// Number of locations the script references.
    pub fn num_locs(&self) -> usize {
        self.num_locs
    }

    /// Total number of accesses across all threads.
    pub fn total_ops(&self) -> usize {
        self.threads.iter().map(Vec::len).sum()
    }
}

impl<M: MemorySystem> Workload<M> for OpScript {
    fn num_threads(&self) -> usize {
        self.threads.len()
    }

    fn runnable(&self, t: usize, mem: &M) -> bool {
        let pc = self.pcs[t];
        let Some(a) = self.threads[t].get(pc) else {
            return false;
        };
        let p = ProcId(t as u32);
        match a.kind {
            OpKind::Read => mem.can_read(p, a.loc, a.label),
            OpKind::Write => mem.can_write(p, a.loc, a.label),
        }
    }

    fn step(&mut self, t: usize, mem: &mut M, rec: &mut Recorder) {
        let a = self.threads[t][self.pcs[t]];
        let p = ProcId(t as u32);
        match a.kind {
            OpKind::Read => {
                let v = mem.read(p, a.loc, a.label);
                rec.read(p, a.loc, v, a.label);
            }
            OpKind::Write => {
                mem.write(p, a.loc, a.value, a.label);
                rec.write(p, a.loc, a.value, a.label);
            }
        }
        self.pcs[t] += 1;
    }

    fn done(&self) -> bool {
        self.pcs
            .iter()
            .zip(&self.threads)
            .all(|(&pc, accs)| pc >= accs.len())
    }

    fn recorder(&self) -> Recorder {
        Recorder::with_sizes(self.threads.len(), self.num_locs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sc::ScMem;

    #[test]
    fn script_runs_to_completion() {
        let script = OpScript::new(
            vec![
                vec![Access::write(0, 1), Access::read(1)],
                vec![Access::write(1, 1), Access::read(0)],
            ],
            2,
        );
        let mut mem = ScMem::new(2, 2);
        let mut w = script;
        let mut rec = Workload::<ScMem>::recorder(&w);
        // Round-robin until done.
        while !Workload::<ScMem>::done(&w) {
            for t in 0..2 {
                if w.runnable(t, &mem) {
                    w.step(t, &mut mem, &mut rec);
                }
            }
        }
        let h = rec.history();
        assert_eq!(h.num_ops(), 4);
        // On SC run sequentially p first: p reads y... values recorded
        // from the memory, every read explained.
        assert!(h.has_unique_written_values());
    }

    #[test]
    fn runnable_respects_memory_blocking() {
        use crate::tso::TsoMem;
        // Paper TSO: a read of a buffered location stalls.
        let script = OpScript::new(vec![vec![Access::write(0, 1), Access::read(0)]], 1);
        let mut mem = TsoMem::new(1, 1);
        let mut w = script;
        let mut rec = Workload::<TsoMem>::recorder(&w);
        assert!(w.runnable(0, &mem));
        w.step(0, &mut mem, &mut rec); // buffered write
        assert!(!w.runnable(0, &mem)); // read stalled
        mem.fire(0);
        assert!(w.runnable(0, &mem));
    }

    #[test]
    fn access_constructors() {
        assert!(Access::acquire(3).label.is_labeled());
        assert_eq!(Access::release(2, 7).value, Value(7));
        assert!(Access::read(0).kind.is_read());
        assert!(Access::write(0, 1).kind.is_write());
    }
}

//! The atomic (sequentially consistent) memory.

use crate::mem::MemorySystem;
use smc_history::{Label, Location, ProcId, Value};

/// One shared memory; every operation takes effect at issue.
///
/// The interleaving the scheduler picks *is* the single legal sequence all
/// processors agree on, so every run is sequentially consistent by
/// construction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ScMem {
    num_procs: usize,
    cells: Vec<Value>,
}

impl ScMem {
    /// An SC memory for `num_procs` processors and `num_locs` locations,
    /// all initially `0`.
    pub fn new(num_procs: usize, num_locs: usize) -> Self {
        ScMem {
            num_procs,
            cells: vec![Value::INITIAL; num_locs],
        }
    }
}

impl MemorySystem for ScMem {
    fn num_procs(&self) -> usize {
        self.num_procs
    }

    fn num_locs(&self) -> usize {
        self.cells.len()
    }

    fn read(&mut self, _p: ProcId, loc: Location, _label: Label) -> Value {
        self.cells[loc.index()]
    }

    fn write(&mut self, _p: ProcId, loc: Location, value: Value, _label: Label) {
        self.cells[loc.index()] = value;
    }

    fn num_internal(&self) -> usize {
        0
    }

    fn fire(&mut self, _i: usize) {
        unreachable!("ScMem has no internal transitions");
    }

    fn name(&self) -> String {
        "SC".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_see_latest_write_immediately() {
        let mut m = ScMem::new(2, 2);
        assert_eq!(m.read(ProcId(0), Location(0), Label::Ordinary), Value(0));
        m.write(ProcId(0), Location(0), Value(7), Label::Ordinary);
        assert_eq!(m.read(ProcId(1), Location(0), Label::Ordinary), Value(7));
        assert_eq!(m.read(ProcId(1), Location(1), Label::Ordinary), Value(0));
        assert!(m.quiescent());
    }
}

//! Release consistency (DASH, Section 3.4): buffered ordinary writes with
//! releases that wait for them, and labeled operations on a pluggable
//! synchronization substrate (`RC_sc` or `RC_pc`).

use crate::channel::{Channels, Update};
use crate::mem::MemorySystem;
use smc_history::{Label, Location, ProcId, Value};

/// Which consistency the labeled (synchronization) operations get.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncMode {
    /// `RC_sc`: labeled writes append to one global, totally-ordered
    /// synchronization log; each processor applies the log *lazily*, in
    /// order, to a local sync replica (fast-forwarding past its own
    /// writes). The common log order makes the labeled operations
    /// sequentially consistent, while the lazy prefixes let a processor
    /// read a stale synchronization value — which the RC_sc *model*
    /// permits (SC constrains the common order, not real time). The
    /// stricter instant-visibility machine lives in [`crate::WoMem`].
    Sc,
    /// `RC_pc`: labeled operations execute on a processor-consistent
    /// substrate (local sync replicas, per-source FIFO delivery, a
    /// coherence arbiter with absorption) — a release may reach different
    /// processors arbitrarily late, which is exactly what breaks the
    /// Bakery algorithm in the paper's Section 5.
    Pc,
}

/// The release-consistent memory.
///
/// **Ordinary** operations: reads hit the local replica; writes apply
/// locally, get a per-location coherence stamp, and propagate to other
/// replicas in *arbitrary order* (coherence is maintained by absorption,
/// but nothing else is guaranteed — "their values may arrive in different
/// order at different caches").
///
/// **Labeled** operations: routed to the synchronization substrate
/// selected by [`SyncMode`]. A labeled write (release) *blocks* until all
/// of the issuer's ordinary writes have performed everywhere
/// ([`MemorySystem::can_write`] is false while any are pending) — RC's
/// guarantee that ordinary operations complete before the following
/// release.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RcMem {
    mode: SyncMode,
    // Ordinary data.
    replicas: Vec<Vec<Value>>,
    applied_seq: Vec<Vec<u64>>,
    next_seq: Vec<u64>,
    ordinary: Channels,
    // Synchronization substrate.
    /// RC_sc: the global, totally-ordered log of labeled writes.
    sync_log: Vec<(Location, Value)>,
    /// RC_sc: how much of the log each processor has applied.
    sync_prefix: Vec<usize>,
    /// Per-processor sync replicas (both modes).
    sync_replicas: Vec<Vec<Value>>,
    /// RC_pc: absorption bookkeeping.
    sync_applied_seq: Vec<Vec<u64>>,
    sync_next_seq: Vec<u64>,
    sync_channels: Channels,
}

impl RcMem {
    /// A release-consistent memory for `num_procs` processors and
    /// `num_locs` locations, with the given synchronization substrate.
    pub fn new(mode: SyncMode, num_procs: usize, num_locs: usize) -> Self {
        RcMem {
            mode,
            replicas: vec![vec![Value::INITIAL; num_locs]; num_procs],
            applied_seq: vec![vec![0; num_locs]; num_procs],
            next_seq: vec![0; num_locs],
            ordinary: Channels::new(num_procs),
            sync_log: Vec::new(),
            sync_prefix: vec![0; num_procs],
            sync_replicas: vec![vec![Value::INITIAL; num_locs]; num_procs],
            sync_applied_seq: vec![vec![0; num_locs]; num_procs],
            sync_next_seq: vec![0; num_locs],
            sync_channels: Channels::new(num_procs),
        }
    }

    /// The configured synchronization mode.
    pub fn mode(&self) -> SyncMode {
        self.mode
    }

    fn ordinary_pending(&self) -> Vec<(usize, usize, usize, Update)> {
        self.ordinary.all_pending()
    }

    fn sync_heads(&self) -> Vec<(usize, usize, Update)> {
        match self.mode {
            SyncMode::Sc => Vec::new(),
            SyncMode::Pc => self.sync_channels.heads(),
        }
    }

    /// RC_sc: processors whose log prefix is behind (each may apply its
    /// next log entry as an internal transition).
    fn lagging(&self) -> Vec<usize> {
        match self.mode {
            SyncMode::Pc => Vec::new(),
            SyncMode::Sc => (0..self.replicas.len())
                .filter(|&p| self.sync_prefix[p] < self.sync_log.len())
                .collect(),
        }
    }

    /// RC_sc: apply log entries to `p`'s sync replica up to `upto`.
    fn catch_up(&mut self, p: usize, upto: usize) {
        while self.sync_prefix[p] < upto {
            let (loc, value) = self.sync_log[self.sync_prefix[p]];
            self.sync_replicas[p][loc.index()] = value;
            self.sync_prefix[p] += 1;
        }
    }
}

impl MemorySystem for RcMem {
    fn num_procs(&self) -> usize {
        self.replicas.len()
    }

    fn num_locs(&self) -> usize {
        self.next_seq.len()
    }

    fn can_write(&self, p: ProcId, _loc: Location, label: Label) -> bool {
        match label {
            Label::Ordinary => true,
            // A release waits until the issuer's ordinary writes have
            // performed with respect to every processor.
            Label::Labeled => self.ordinary.pending_from(p.index()) == 0,
        }
    }

    fn read(&mut self, p: ProcId, loc: Location, label: Label) -> Value {
        match label {
            Label::Ordinary => self.replicas[p.index()][loc.index()],
            Label::Labeled => self.sync_replicas[p.index()][loc.index()],
        }
    }

    fn write(&mut self, p: ProcId, loc: Location, value: Value, label: Label) {
        let pi = p.index();
        match label {
            Label::Ordinary => {
                self.next_seq[loc.index()] += 1;
                let seq = self.next_seq[loc.index()];
                self.replicas[pi][loc.index()] = value;
                self.applied_seq[pi][loc.index()] = seq;
                self.ordinary.broadcast(pi, Update { loc, value, seq });
            }
            Label::Labeled => {
                debug_assert!(
                    self.ordinary.pending_from(pi) == 0,
                    "release issued before ordinary writes performed"
                );
                match self.mode {
                    SyncMode::Sc => {
                        // Append to the common log and fast-forward past
                        // our own write, so our later labeled reads keep
                        // program order within the common order.
                        self.sync_log.push((loc, value));
                        let upto = self.sync_log.len();
                        self.catch_up(pi, upto);
                    }
                    SyncMode::Pc => {
                        self.sync_next_seq[loc.index()] += 1;
                        let seq = self.sync_next_seq[loc.index()];
                        self.sync_replicas[pi][loc.index()] = value;
                        self.sync_applied_seq[pi][loc.index()] = seq;
                        self.sync_channels.broadcast(pi, Update { loc, value, seq });
                    }
                }
            }
        }
    }

    fn num_internal(&self) -> usize {
        self.ordinary_pending().len() + self.sync_heads().len() + self.lagging().len()
    }

    fn fire(&mut self, i: usize) {
        let ordinary = self.ordinary_pending();
        if i < ordinary.len() {
            let (src, dst, pos, _) = ordinary[i];
            let Some(u) = self.ordinary.remove_at(src, dst, pos) else {
                return;
            };
            if u.seq > self.applied_seq[dst][u.loc.index()] {
                self.replicas[dst][u.loc.index()] = u.value;
                self.applied_seq[dst][u.loc.index()] = u.seq;
            }
            return;
        }
        let i = i - ordinary.len();
        let heads = self.sync_heads();
        if i < heads.len() {
            let (src, dst, _) = heads[i];
            let Some(u) = self.sync_channels.pop_head(src, dst) else {
                return;
            };
            if u.seq > self.sync_applied_seq[dst][u.loc.index()] {
                self.sync_replicas[dst][u.loc.index()] = u.value;
                self.sync_applied_seq[dst][u.loc.index()] = u.seq;
            }
            return;
        }
        // RC_sc: advance a lagging processor's log prefix by one entry.
        let p = self.lagging()[i - heads.len()];
        let upto = self.sync_prefix[p] + 1;
        self.catch_up(p, upto);
    }

    fn name(&self) -> String {
        match self.mode {
            SyncMode::Sc => "RCsc".into(),
            SyncMode::Pc => "RCpc".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ORD: Label = Label::Ordinary;
    const LBL: Label = Label::Labeled;

    #[test]
    fn release_blocks_until_ordinary_performed() {
        let mut m = RcMem::new(SyncMode::Sc, 2, 2);
        let (p, d, s) = (ProcId(0), Location(0), Location(1));
        m.write(p, d, Value(1), ORD);
        assert!(!m.can_write(p, s, LBL));
        // Deliver the ordinary update to the other replica.
        m.fire(0);
        assert!(m.can_write(p, s, LBL));
        m.write(p, s, Value(1), LBL);
        // The release sits in the common log; the other processor sees
        // it once it catches up...
        assert_eq!(m.read(ProcId(1), s, LBL), Value(0));
        while !m.lagging().is_empty() {
            let n = m.num_internal();
            m.fire(n - 1);
        }
        assert_eq!(m.read(ProcId(1), s, LBL), Value(1));
        // ...and the data it guards was already delivered before the
        // release could be issued.
        assert_eq!(m.read(ProcId(1), d, ORD), Value(1));
    }

    #[test]
    fn rc_pc_release_propagates_lazily() {
        let mut m = RcMem::new(SyncMode::Pc, 2, 1);
        let (p, q, s) = (ProcId(0), ProcId(1), Location(0));
        m.write(p, s, Value(1), LBL);
        // The release is applied locally but q has not seen it yet.
        assert_eq!(m.read(p, s, LBL), Value(1));
        assert_eq!(m.read(q, s, LBL), Value(0));
        assert_eq!(m.num_internal(), 1);
        m.fire(0);
        assert_eq!(m.read(q, s, LBL), Value(1));
    }

    #[test]
    fn ordinary_updates_may_reorder() {
        let mut m = RcMem::new(SyncMode::Sc, 2, 2);
        let p = ProcId(0);
        m.write(p, Location(0), Value(1), ORD);
        m.write(p, Location(1), Value(2), ORD);
        // Both ordinary messages deliverable in any order.
        assert_eq!(m.num_internal(), 2);
        let pending = m.ordinary_pending();
        let later = pending
            .iter()
            .position(|&(_, _, _, u)| u.loc == Location(1))
            .unwrap();
        m.fire(later);
        assert_eq!(m.read(ProcId(1), Location(1), ORD), Value(2));
        assert_eq!(m.read(ProcId(1), Location(0), ORD), Value(0));
    }

    #[test]
    fn rc_pc_sync_channels_are_fifo() {
        let mut m = RcMem::new(SyncMode::Pc, 2, 2);
        let p = ProcId(0);
        m.write(p, Location(0), Value(1), LBL);
        m.write(p, Location(1), Value(2), LBL);
        // Only the first labeled update is at the head.
        assert_eq!(m.num_internal(), 1);
        m.fire(0);
        assert_eq!(m.read(ProcId(1), Location(0), LBL), Value(1));
        assert_eq!(m.read(ProcId(1), Location(1), LBL), Value(0));
    }

    #[test]
    fn rc_sc_log_prefixes_allow_stale_reads_before_catch_up() {
        // An ordinary write issued AFTER a release can reach another
        // processor before the release's log entry is applied there —
        // the behaviour that separates the RC_sc model from weak
        // ordering (see `wo_release_fence` in the corpus).
        let mut m = RcMem::new(SyncMode::Sc, 2, 2);
        let (q, p, s, d) = (ProcId(0), ProcId(1), Location(0), Location(1));
        m.write(q, s, Value(1), LBL);
        m.write(q, d, Value(1), ORD);
        // Deliver the ordinary write to p without applying the log.
        let pending = m.ordinary_pending();
        assert_eq!(pending.len(), 1);
        m.fire(0);
        assert_eq!(m.read(p, d, ORD), Value(1));
        assert_eq!(m.read(p, s, LBL), Value(0));
    }

    #[test]
    fn bakery_style_mutual_blindness_under_rc_pc() {
        // Both processors "take a ticket" (labeled write) and read the
        // other's ticket as 0 — the Section 5 failure in miniature.
        let mut m = RcMem::new(SyncMode::Pc, 2, 2);
        let (p1, p2) = (ProcId(0), ProcId(1));
        let (n0, n1) = (Location(0), Location(1));
        m.write(p1, n0, Value(1), LBL);
        m.write(p2, n1, Value(1), LBL);
        assert_eq!(m.read(p1, n1, LBL), Value(0));
        assert_eq!(m.read(p2, n0, LBL), Value(0));
        // Under RC_sc the log still orders the writes, but lazy
        // prefixes also allow mutual blindness at this point — the SC
        // guarantee is about the common order, not real time. After
        // catching up, both must agree.
        let mut m = RcMem::new(SyncMode::Sc, 2, 2);
        m.write(p1, n0, Value(1), LBL);
        m.write(p2, n1, Value(1), LBL);
        while !m.lagging().is_empty() {
            let n = m.num_internal();
            m.fire(n - 1);
        }
        assert_eq!(m.read(p1, n1, LBL), Value(1));
        assert_eq!(m.read(p2, n0, LBL), Value(1));
    }
}

//! A hybrid-consistency machine (Attiya–Friedman strong/weak operations).

use crate::mem::MemorySystem;
use smc_history::{Label, Location, ProcId, Value};
use std::collections::VecDeque;

/// Hybrid consistency, operationally:
///
/// * **strong** (labeled) writes append to one global, totally-ordered
///   log that every processor applies lazily in order — all processors
///   *agree* on the strong-operation order, but nothing forces the
///   common order to be "legal in real time";
/// * **weak** (ordinary) writes update the local replica and propagate
///   to each other replica in arbitrary order with last-arrival-wins
///   semantics — no coherence at all (two replicas may settle on
///   different winners while updates remain in flight);
/// * the **fences**: a strong write waits until the issuer's weak writes
///   have performed everywhere, and a weak update carries the issuer's
///   log length at issue time — a replica may apply it only once its own
///   log prefix has caught up, so a weak write can never overtake the
///   strong write that precedes it in program order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HybridMem {
    replicas: Vec<Vec<Value>>,
    /// Weak-update channels: `queues[src * n + dst]` of
    /// `(loc, value, fence_stamp)`.
    queues: Vec<VecDeque<(Location, Value, usize)>>,
    sync_log: Vec<(Location, Value)>,
    sync_prefix: Vec<usize>,
    sync_replicas: Vec<Vec<Value>>,
}

impl HybridMem {
    /// A hybrid memory for `num_procs` processors and `num_locs`
    /// locations.
    pub fn new(num_procs: usize, num_locs: usize) -> Self {
        HybridMem {
            replicas: vec![vec![Value::INITIAL; num_locs]; num_procs],
            queues: vec![VecDeque::new(); num_procs * num_procs],
            sync_log: Vec::new(),
            sync_prefix: vec![0; num_procs],
            sync_replicas: vec![vec![Value::INITIAL; num_locs]; num_procs],
        }
    }

    fn n(&self) -> usize {
        self.replicas.len()
    }

    fn pending_from(&self, src: usize) -> usize {
        (0..self.n())
            .map(|dst| self.queues[src * self.n() + dst].len())
            .sum()
    }

    /// Deliverable weak updates: `(src, dst, position)` whose fence stamp
    /// the destination has caught up with.
    fn deliverable(&self) -> Vec<(usize, usize, usize)> {
        let n = self.n();
        let mut out = Vec::new();
        for src in 0..n {
            for dst in 0..n {
                for (k, &(_, _, stamp)) in self.queues[src * n + dst].iter().enumerate() {
                    if stamp <= self.sync_prefix[dst] {
                        out.push((src, dst, k));
                    }
                }
            }
        }
        out
    }

    fn lagging(&self) -> Vec<usize> {
        (0..self.n())
            .filter(|&p| self.sync_prefix[p] < self.sync_log.len())
            .collect()
    }

    fn catch_up(&mut self, p: usize, upto: usize) {
        while self.sync_prefix[p] < upto {
            let (loc, value) = self.sync_log[self.sync_prefix[p]];
            self.sync_replicas[p][loc.index()] = value;
            self.sync_prefix[p] += 1;
        }
    }
}

impl MemorySystem for HybridMem {
    fn num_procs(&self) -> usize {
        self.n()
    }

    fn num_locs(&self) -> usize {
        self.replicas[0].len()
    }

    fn can_write(&self, p: ProcId, _loc: Location, label: Label) -> bool {
        // A strong write fences the issuer's weak writes.
        label == Label::Ordinary || self.pending_from(p.index()) == 0
    }

    fn read(&mut self, p: ProcId, loc: Location, label: Label) -> Value {
        match label {
            Label::Ordinary => self.replicas[p.index()][loc.index()],
            Label::Labeled => self.sync_replicas[p.index()][loc.index()],
        }
    }

    fn write(&mut self, p: ProcId, loc: Location, value: Value, label: Label) {
        let pi = p.index();
        match label {
            Label::Ordinary => {
                self.replicas[pi][loc.index()] = value;
                let stamp = self.sync_log.len();
                let n = self.n();
                for dst in 0..n {
                    if dst != pi {
                        self.queues[pi * n + dst].push_back((loc, value, stamp));
                    }
                }
            }
            Label::Labeled => {
                debug_assert!(self.pending_from(pi) == 0);
                self.sync_log.push((loc, value));
                let upto = self.sync_log.len();
                self.catch_up(pi, upto);
            }
        }
    }

    fn num_internal(&self) -> usize {
        self.deliverable().len() + self.lagging().len()
    }

    fn fire(&mut self, i: usize) {
        let deliverable = self.deliverable();
        if i < deliverable.len() {
            let (src, dst, pos) = deliverable[i];
            let n = self.n();
            let Some((loc, value, _)) = self.queues[src * n + dst].remove(pos) else {
                return;
            };
            // Last arrival wins: no coherence.
            self.replicas[dst][loc.index()] = value;
            return;
        }
        let p = self.lagging()[i - deliverable.len()];
        let upto = self.sync_prefix[p] + 1;
        self.catch_up(p, upto);
    }

    fn quiescent(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
            && self.sync_prefix.iter().all(|&k| k == self.sync_log.len())
    }

    fn name(&self) -> String {
        "Hybrid".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ORD: Label = Label::Ordinary;
    const LBL: Label = Label::Labeled;

    #[test]
    fn weak_writes_are_uncoherent() {
        // Two processors write the same weak location; with in-flight
        // updates delivered in opposite orders the replicas disagree
        // permanently — which hybrid consistency permits.
        let mut m = HybridMem::new(2, 1);
        m.write(ProcId(0), Location(0), Value(1), ORD);
        m.write(ProcId(1), Location(0), Value(2), ORD);
        while !m.quiescent() {
            m.fire(0);
        }
        // Each applied the other's update after its own write.
        assert_eq!(m.read(ProcId(0), Location(0), ORD), Value(2));
        assert_eq!(m.read(ProcId(1), Location(0), ORD), Value(1));
    }

    #[test]
    fn strong_order_is_agreed() {
        let mut m = HybridMem::new(3, 1);
        m.write(ProcId(0), Location(0), Value(1), LBL);
        m.write(ProcId(1), Location(0), Value(2), LBL);
        while !m.lagging().is_empty() {
            let n = m.num_internal();
            m.fire(n - 1);
        }
        // Everyone converges on the log's last write.
        for p in 0..3 {
            assert_eq!(m.read(ProcId(p), Location(0), LBL), Value(2));
        }
    }

    #[test]
    fn weak_update_cannot_pass_preceding_strong_write() {
        let mut m = HybridMem::new(2, 2);
        let (q, p, s, d) = (ProcId(0), ProcId(1), Location(0), Location(1));
        m.write(q, s, Value(1), LBL); // log entry 0
        m.write(q, d, Value(1), ORD); // stamped with log length 1
                                      // p has not applied the strong write: the weak update is not
                                      // deliverable yet.
        assert!(m.deliverable().is_empty());
        assert_eq!(m.lagging(), vec![p.index()]);
        m.fire(0); // p applies the strong write
        assert_eq!(m.read(p, s, LBL), Value(1));
        assert_eq!(m.deliverable().len(), 1);
        m.fire(0);
        assert_eq!(m.read(p, d, ORD), Value(1));
    }

    #[test]
    fn strong_write_waits_for_weak() {
        let mut m = HybridMem::new(2, 2);
        m.write(ProcId(0), Location(0), Value(1), ORD);
        assert!(!m.can_write(ProcId(0), Location(1), LBL));
        m.fire(0);
        assert!(m.can_write(ProcId(0), Location(1), LBL));
    }
}

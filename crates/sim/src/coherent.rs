//! Coherent-only memory: the arbiter without the pipeline.

use crate::channel::{Channels, Update};
use crate::mem::MemorySystem;
use smc_history::{Label, Location, ProcId, Value};

/// Replicated memory with per-location coherence but *arbitrary-order*
/// delivery: updates from the same processor to different locations may
/// overtake each other, so even per-source program order across locations
/// is lost. The weakest model in the workspace's parameter space that
/// still agrees on each location's write order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CoherentMem {
    replicas: Vec<Vec<Value>>,
    applied_seq: Vec<Vec<u64>>,
    next_seq: Vec<u64>,
    channels: Channels,
}

impl CoherentMem {
    /// A coherent-only memory for `num_procs` processors and `num_locs`
    /// locations.
    pub fn new(num_procs: usize, num_locs: usize) -> Self {
        CoherentMem {
            replicas: vec![vec![Value::INITIAL; num_locs]; num_procs],
            applied_seq: vec![vec![0; num_locs]; num_procs],
            next_seq: vec![0; num_locs],
            channels: Channels::new(num_procs),
        }
    }

    /// Inspect processor `p`'s replica (tests and diagnostics).
    pub fn replica(&self, p: ProcId) -> &[Value] {
        &self.replicas[p.index()]
    }
}

impl MemorySystem for CoherentMem {
    fn num_procs(&self) -> usize {
        self.replicas.len()
    }

    fn num_locs(&self) -> usize {
        self.next_seq.len()
    }

    fn read(&mut self, p: ProcId, loc: Location, _label: Label) -> Value {
        self.replicas[p.index()][loc.index()]
    }

    fn write(&mut self, p: ProcId, loc: Location, value: Value, _label: Label) {
        let pi = p.index();
        self.next_seq[loc.index()] += 1;
        let seq = self.next_seq[loc.index()];
        self.replicas[pi][loc.index()] = value;
        self.applied_seq[pi][loc.index()] = seq;
        self.channels.broadcast(pi, Update { loc, value, seq });
    }

    fn num_internal(&self) -> usize {
        // ANY pending message may be delivered next, not just heads.
        self.channels.all_pending().len()
    }

    fn fire(&mut self, i: usize) {
        let Some(&(src, dst, pos, _)) = self.channels.all_pending().get(i) else {
            return;
        };
        let Some(u) = self.channels.remove_at(src, dst, pos) else {
            return;
        };
        if u.seq > self.applied_seq[dst][u.loc.index()] {
            self.replicas[dst][u.loc.index()] = u.value;
            self.applied_seq[dst][u.loc.index()] = u.seq;
        }
    }

    fn name(&self) -> String {
        "Coherent".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ORD: Label = Label::Ordinary;

    #[test]
    fn updates_may_overtake_across_locations() {
        // p0 writes data then flag; the flag update can arrive first.
        let mut m = CoherentMem::new(2, 2);
        m.write(ProcId(0), Location(0), Value(1), ORD); // data
        m.write(ProcId(0), Location(1), Value(1), ORD); // flag
                                                        // Both messages are deliverable, in either order.
        assert_eq!(m.num_internal(), 2);
        // Deliver the flag first.
        let pending = m.channels.all_pending();
        let i = pending
            .iter()
            .position(|&(_, _, _, u)| u.loc == Location(1))
            .unwrap();
        m.fire(i);
        assert_eq!(m.replica(ProcId(1))[1], Value(1));
        assert_eq!(m.replica(ProcId(1))[0], Value(0)); // stale data seen
    }

    #[test]
    fn same_location_still_coherent() {
        let mut m = CoherentMem::new(2, 1);
        m.write(ProcId(0), Location(0), Value(1), ORD); // seq 1
        m.write(ProcId(0), Location(0), Value(2), ORD); // seq 2
                                                        // Deliver out of order: seq 2 first, then seq 1 (absorbed).
        let pending = m.channels.all_pending();
        let newer = pending.iter().position(|&(_, _, _, u)| u.seq == 2).unwrap();
        m.fire(newer);
        assert_eq!(m.replica(ProcId(1))[0], Value(2));
        m.fire(0);
        assert_eq!(m.replica(ProcId(1))[0], Value(2));
        assert!(m.quiescent());
    }
}

//! Point-to-point message channels — the substrate under every
//! replica-based memory.

use smc_history::{Location, Value};
use std::collections::VecDeque;

/// A single update message: "location `loc` was assigned `value`",
/// optionally stamped by a coherence arbiter with a per-location sequence
/// number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Update {
    /// The written location.
    pub loc: Location,
    /// The written value.
    pub value: Value,
    /// Per-location coherence stamp (0 when the model has no arbiter).
    pub seq: u64,
}

/// A mesh of point-to-point channels between `n` processors.
///
/// Each ordered pair `(src, dst)` with `src != dst` has its own queue.
/// Delivery discipline is chosen per call: [`Channels::heads`] exposes
/// only queue fronts (FIFO — PRAM, PC), while [`Channels::all_pending`]
/// exposes every queued message (arbitrary-order delivery — the
/// coherent-only memory and RC's ordinary writes).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Channels {
    n: usize,
    /// `queues[src * n + dst]`.
    queues: Vec<VecDeque<Update>>,
}

impl Channels {
    /// Empty channels among `n` processors.
    pub fn new(n: usize) -> Self {
        Channels {
            n,
            queues: vec![VecDeque::new(); n * n],
        }
    }

    #[inline]
    fn idx(&self, src: usize, dst: usize) -> usize {
        src * self.n + dst
    }

    /// Broadcast an update from `src` to every other processor.
    pub fn broadcast(&mut self, src: usize, u: Update) {
        for dst in 0..self.n {
            if dst != src {
                let i = self.idx(src, dst);
                self.queues[i].push_back(u);
            }
        }
    }

    /// Send an update along one channel.
    pub fn send(&mut self, src: usize, dst: usize, u: Update) {
        let i = self.idx(src, dst);
        self.queues[i].push_back(u);
    }

    /// The deliverable queue *fronts*: `(src, dst, update)` triples, in a
    /// deterministic order.
    pub fn heads(&self) -> Vec<(usize, usize, Update)> {
        let mut out = Vec::new();
        for src in 0..self.n {
            for dst in 0..self.n {
                if let Some(&u) = self.queues[self.idx(src, dst)].front() {
                    out.push((src, dst, u));
                }
            }
        }
        out
    }

    /// Every pending message: `(src, dst, position, update)`.
    pub fn all_pending(&self) -> Vec<(usize, usize, usize, Update)> {
        let mut out = Vec::new();
        for src in 0..self.n {
            for dst in 0..self.n {
                for (k, &u) in self.queues[self.idx(src, dst)].iter().enumerate() {
                    out.push((src, dst, k, u));
                }
            }
        }
        out
    }

    /// Pop the front of channel `(src, dst)`; `None` if the channel is
    /// empty (e.g. a stale transition index after the mesh changed).
    pub fn pop_head(&mut self, src: usize, dst: usize) -> Option<Update> {
        let i = self.idx(src, dst);
        self.queues[i].pop_front()
    }

    /// Remove the message at `position` in channel `(src, dst)`
    /// (arbitrary-order delivery); `None` if the position is out of
    /// range.
    pub fn remove_at(&mut self, src: usize, dst: usize, position: usize) -> Option<Update> {
        let i = self.idx(src, dst);
        self.queues[i].remove(position)
    }

    /// Total number of queued messages.
    pub fn pending_count(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Number of messages still queued *from* `src` (to anyone) — the
    /// release-consistency "performed everywhere" test.
    pub fn pending_from(&self, src: usize) -> usize {
        (0..self.n)
            .map(|dst| self.queues[self.idx(src, dst)].len())
            .sum()
    }

    /// `true` when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.pending_count() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(loc: u32, value: i64, seq: u64) -> Update {
        Update {
            loc: Location(loc),
            value: Value(value),
            seq,
        }
    }

    #[test]
    fn broadcast_reaches_everyone_but_source() {
        let mut ch = Channels::new(3);
        ch.broadcast(0, u(0, 1, 0));
        assert_eq!(ch.pending_count(), 2);
        let heads = ch.heads();
        let dsts: Vec<usize> = heads.iter().map(|&(_, d, _)| d).collect();
        assert_eq!(dsts, vec![1, 2]);
        assert!(heads.iter().all(|&(s, _, _)| s == 0));
    }

    #[test]
    fn fifo_per_pair() {
        let mut ch = Channels::new(2);
        ch.broadcast(0, u(0, 1, 0));
        ch.broadcast(0, u(1, 2, 0));
        assert_eq!(ch.pop_head(0, 1).map(|u| u.value), Some(Value(1)));
        assert_eq!(ch.pop_head(0, 1).map(|u| u.value), Some(Value(2)));
        assert!(ch.is_empty());
    }

    #[test]
    fn arbitrary_order_removal() {
        let mut ch = Channels::new(2);
        ch.send(0, 1, u(0, 1, 1));
        ch.send(0, 1, u(0, 2, 2));
        ch.send(0, 1, u(0, 3, 3));
        let pend = ch.all_pending();
        assert_eq!(pend.len(), 3);
        // Remove the middle one first.
        let got = ch.remove_at(0, 1, 1);
        assert_eq!(got.map(|u| u.value), Some(Value(2)));
        assert_eq!(ch.remove_at(0, 1, 9), None);
        assert_eq!(ch.pop_head(0, 1).map(|u| u.value), Some(Value(1)));
        assert_eq!(ch.pop_head(0, 1).map(|u| u.value), Some(Value(3)));
    }

    #[test]
    fn pending_from_counts_outgoing() {
        let mut ch = Channels::new(3);
        ch.broadcast(1, u(0, 5, 0));
        assert_eq!(ch.pending_from(1), 2);
        assert_eq!(ch.pending_from(0), 0);
        assert!(ch.pop_head(1, 0).is_some());
        assert_eq!(ch.pending_from(1), 1);
        assert_eq!(ch.pop_head(0, 1), None);
    }
}

//! Operational shared-memory simulators.
//!
//! The paper remarks that "the per processor view can be thought of as the
//! behavior of a local cache" — this crate makes the remark executable by
//! implementing, for each memory model the paper characterizes, the
//! operational machine the literature describes it with:
//!
//! * [`ScMem`] — one atomic memory, operations take effect at issue;
//! * [`TsoMem`] — per-processor FIFO store buffers draining into a
//!   single-ported memory (Section 3.2's operational TSO);
//! * [`PramMem`] — full replicas with per-source FIFO broadcast
//!   (Lipton–Sandberg pipelined RAM, Section 3.5);
//! * [`CausalMem`] — replicas with vector-clock causal broadcast;
//! * [`PcMem`] — PRAM channels plus a per-location coherence arbiter with
//!   write absorption (DASH-style processor consistency);
//! * [`CoherentMem`] — the arbiter alone: coherence with arbitrary-order
//!   delivery;
//! * [`RcMem`] — release consistency: buffered ordinary writes with
//!   arbitrary-order coherent delivery, releases that wait for prior
//!   ordinary writes to perform everywhere, and labeled operations
//!   executed on either a lazily-applied global log (`RC_sc`) or a PC
//!   substrate (`RC_pc`);
//! * [`WoMem`] — weak ordering: instantly-global synchronization with
//!   full fences;
//! * [`HybridMem`] — hybrid consistency: an agreed strong-operation log
//!   with fence-stamped weak updates.
//!
//! Drivers live in [`sched`] (seeded random schedules) and [`explore`]
//! (exhaustive depth-first enumeration of all schedules). Both consume
//! any [`Workload`] — a set of threads issuing operations — and produce
//! [`smc_history::History`] values via the [`Recorder`], which the
//! declarative checker (`smc-core`) can then classify. The workspace's
//! integration tests close the loop: *every history an operational
//! simulator can produce is admitted by the corresponding declarative
//! model*.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod causal;
pub mod channel;
pub mod coherent;
pub mod explore;
pub mod hybrid;
pub mod mem;
pub mod pc;
pub mod pram;
pub mod rc;
pub mod record;
pub mod sc;
pub mod sched;
pub mod tso;
pub mod vclock;
pub mod wo;
pub mod workload;

pub use causal::CausalMem;
pub use coherent::CoherentMem;
pub use hybrid::HybridMem;
pub use mem::MemorySystem;
pub use pc::PcMem;
pub use pram::PramMem;
pub use rc::{RcMem, SyncMode};
pub use record::Recorder;
pub use sc::ScMem;
pub use tso::TsoMem;
pub use wo::WoMem;
pub use workload::{OpScript, Workload};

//! Vector clocks — the causal-delivery substrate.

use std::fmt;

/// A vector clock over `n` processors.
///
/// Used by [`crate::CausalMem`] to deliver remote writes only once all
/// their causal predecessors have been applied, implementing the paper's
/// causal order `→co = (po ∪ wb)+` operationally.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VClock {
    counts: Vec<u64>,
}

impl VClock {
    /// The zero clock for `n` processors.
    pub fn new(n: usize) -> Self {
        VClock { counts: vec![0; n] }
    }

    /// Number of processor entries.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// `true` for a zero-length clock.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Entry for processor `p`.
    #[inline]
    pub fn get(&self, p: usize) -> u64 {
        self.counts[p]
    }

    /// Increment processor `p`'s entry (a local event at `p`).
    pub fn tick(&mut self, p: usize) {
        self.counts[p] += 1;
    }

    /// Pointwise maximum (merging received knowledge).
    pub fn merge(&mut self, other: &VClock) {
        debug_assert_eq!(self.counts.len(), other.counts.len());
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = (*a).max(*b);
        }
    }

    /// `true` if `self ≤ other` pointwise.
    pub fn le(&self, other: &VClock) -> bool {
        self.counts.iter().zip(&other.counts).all(|(a, b)| a <= b)
    }

    /// `true` if `self < other` (≤ and ≠).
    pub fn lt(&self, other: &VClock) -> bool {
        self.le(other) && self.counts != other.counts
    }

    /// `true` if neither clock dominates the other (concurrent events).
    pub fn concurrent(&self, other: &VClock) -> bool {
        !self.le(other) && !other.le(self)
    }

    /// Causal-delivery test: may a message stamped `msg` (sent by `src`,
    /// whose stamp includes the send event) be delivered to a process
    /// whose clock is `self`?
    ///
    /// Requires `msg[src] == self[src] + 1` (no gap from the sender) and
    /// `msg[k] <= self[k]` for all `k != src` (all other causal
    /// predecessors already seen).
    pub fn ready_for(&self, msg: &VClock, src: usize) -> bool {
        debug_assert_eq!(self.counts.len(), msg.counts.len());
        msg.counts[src] == self.counts[src] + 1
            && (0..self.counts.len())
                .filter(|&k| k != src)
                .all(|k| msg.counts[k] <= self.counts[k])
    }
}

impl fmt::Display for VClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_and_compare() {
        let mut a = VClock::new(3);
        let b = VClock::new(3);
        assert!(b.le(&a) && a.le(&b));
        a.tick(0);
        assert!(b.lt(&a));
        assert!(!a.le(&b));
    }

    #[test]
    fn concurrent_detection() {
        let mut a = VClock::new(2);
        let mut b = VClock::new(2);
        a.tick(0);
        b.tick(1);
        assert!(a.concurrent(&b));
        a.merge(&b);
        assert!(b.le(&a));
        assert!(!a.concurrent(&b));
    }

    #[test]
    fn delivery_requires_no_gap_from_sender() {
        // Receiver has seen nothing; message is sender's second event.
        let recv = VClock::new(2);
        let mut msg = VClock::new(2);
        msg.tick(0);
        msg.tick(0);
        assert!(!recv.ready_for(&msg, 0));
        let mut first = VClock::new(2);
        first.tick(0);
        assert!(recv.ready_for(&first, 0));
    }

    #[test]
    fn delivery_requires_transitive_predecessors() {
        // p0 wrote (event ⟨1,0⟩); p1 saw it and wrote (event ⟨1,1⟩).
        // A fresh receiver cannot take p1's message before p0's.
        let recv = VClock::new(2);
        let mut p1_msg = VClock::new(2);
        p1_msg.tick(0);
        p1_msg.tick(1);
        assert!(!recv.ready_for(&p1_msg, 1));
        let mut after_p0 = VClock::new(2);
        after_p0.tick(0);
        assert!(after_p0.ready_for(&p1_msg, 1));
    }

    #[test]
    fn display_formats() {
        let mut v = VClock::new(2);
        v.tick(1);
        assert_eq!(v.to_string(), "⟨0,1⟩");
    }
}

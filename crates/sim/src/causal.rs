//! Causal memory (Ahamad–Burns–Hutto–Neiger), implemented with
//! vector-clock causal broadcast.

use crate::channel::Update;
use crate::mem::MemorySystem;
use crate::vclock::VClock;
use smc_history::{Label, Location, ProcId, Value};
use std::collections::VecDeque;

/// Replicated memory whose update delivery respects the causal order
/// `→co = (po ∪ wb)+`:
///
/// * a write ticks the writer's vector clock and broadcasts the update
///   stamped with it;
/// * an update is deliverable at `q` only when `q` has already applied
///   every causal predecessor ([`VClock::ready_for`]);
/// * reads return the local replica value — and since reading a value
///   means its write was applied here, the reader's clock already
///   dominates it, so the reader's *subsequent* writes are stamped after
///   it: exactly the writes-before edge of the paper's causal order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CausalMem {
    replicas: Vec<Vec<Value>>,
    clocks: Vec<VClock>,
    /// `queues[src * n + dst]` of causally-stamped updates (FIFO per
    /// pair; sender stamps are monotonic, so only heads can be ready).
    queues: Vec<VecDeque<(Update, VClock)>>,
}

impl CausalMem {
    /// A causal memory for `num_procs` processors and `num_locs`
    /// locations.
    pub fn new(num_procs: usize, num_locs: usize) -> Self {
        CausalMem {
            replicas: vec![vec![Value::INITIAL; num_locs]; num_procs],
            clocks: vec![VClock::new(num_procs); num_procs],
            queues: vec![VecDeque::new(); num_procs * num_procs],
        }
    }

    fn n(&self) -> usize {
        self.replicas.len()
    }

    /// Deliverable `(src, dst)` channel heads.
    fn ready(&self) -> Vec<(usize, usize)> {
        let n = self.n();
        let mut out = Vec::new();
        for src in 0..n {
            for dst in 0..n {
                if let Some((_, vc)) = self.queues[src * n + dst].front() {
                    if self.clocks[dst].ready_for(vc, src) {
                        out.push((src, dst));
                    }
                }
            }
        }
        out
    }

    /// Inspect processor `p`'s replica (tests and diagnostics).
    pub fn replica(&self, p: ProcId) -> &[Value] {
        &self.replicas[p.index()]
    }
}

impl MemorySystem for CausalMem {
    fn num_procs(&self) -> usize {
        self.n()
    }

    fn num_locs(&self) -> usize {
        self.replicas[0].len()
    }

    fn read(&mut self, p: ProcId, loc: Location, _label: Label) -> Value {
        self.replicas[p.index()][loc.index()]
    }

    fn write(&mut self, p: ProcId, loc: Location, value: Value, _label: Label) {
        let pi = p.index();
        self.clocks[pi].tick(pi);
        self.replicas[pi][loc.index()] = value;
        let stamp = self.clocks[pi].clone();
        let n = self.n();
        for dst in 0..n {
            if dst != pi {
                self.queues[pi * n + dst].push_back((Update { loc, value, seq: 0 }, stamp.clone()));
            }
        }
    }

    fn num_internal(&self) -> usize {
        self.ready().len()
    }

    fn fire(&mut self, i: usize) {
        let Some(&(src, dst)) = self.ready().get(i) else {
            return;
        };
        let n = self.n();
        let Some((u, vc)) = self.queues[src * n + dst].pop_front() else {
            return;
        };
        self.replicas[dst][u.loc.index()] = u.value;
        self.clocks[dst].merge(&vc);
    }

    fn quiescent(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
    }

    fn name(&self) -> String {
        "Causal".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ORD: Label = Label::Ordinary;

    #[test]
    fn local_write_visible_immediately() {
        let mut m = CausalMem::new(2, 1);
        m.write(ProcId(0), Location(0), Value(1), ORD);
        assert_eq!(m.read(ProcId(0), Location(0), ORD), Value(1));
        assert_eq!(m.read(ProcId(1), Location(0), ORD), Value(0));
    }

    #[test]
    fn causal_chain_delivered_in_order() {
        // p0 writes x; p1 reads it, then writes y; p2 must not apply y
        // before x.
        let mut m = CausalMem::new(3, 2);
        let (x, y) = (Location(0), Location(1));
        m.write(ProcId(0), x, Value(1), ORD);
        // Deliver x to p1 (find the (0,1) ready transition).
        let i = m
            .ready()
            .iter()
            .position(|&(s, d)| (s, d) == (0, 1))
            .unwrap();
        m.fire(i);
        assert_eq!(m.read(ProcId(1), x, ORD), Value(1));
        m.write(ProcId(1), y, Value(1), ORD);
        // p2 has seen nothing: y's update is NOT deliverable, x's is.
        let ready = m.ready();
        assert!(ready.contains(&(0, 2)));
        assert!(!ready.contains(&(1, 2)));
        // After x arrives, y becomes deliverable.
        let i = m
            .ready()
            .iter()
            .position(|&(s, d)| (s, d) == (0, 2))
            .unwrap();
        m.fire(i);
        assert!(m.ready().contains(&(1, 2)));
    }

    #[test]
    fn concurrent_writes_may_cross() {
        // Figure 3's exchange is causal: the two writes are concurrent.
        let mut m = CausalMem::new(2, 1);
        m.write(ProcId(0), Location(0), Value(1), ORD);
        m.write(ProcId(1), Location(0), Value(2), ORD);
        assert_eq!(m.read(ProcId(0), Location(0), ORD), Value(1));
        assert_eq!(m.read(ProcId(1), Location(0), ORD), Value(2));
        while !m.quiescent() {
            m.fire(0);
        }
        assert_eq!(m.read(ProcId(0), Location(0), ORD), Value(2));
        assert_eq!(m.read(ProcId(1), Location(0), ORD), Value(1));
    }

    #[test]
    fn quiescent_only_when_all_delivered() {
        let mut m = CausalMem::new(2, 1);
        assert!(m.quiescent());
        m.write(ProcId(0), Location(0), Value(1), ORD);
        assert!(!m.quiescent());
        m.fire(0);
        assert!(m.quiescent());
    }
}

//! A weakly-ordered memory (Dubois–Scheurich–Briggs fences).

use crate::channel::{Channels, Update};
use crate::mem::MemorySystem;
use smc_history::{Label, Location, ProcId, Value};

/// The weak-ordering machine: labeled (synchronization) operations hit a
/// single global memory *instantly* — but only after every ordinary
/// write of the issuer has performed everywhere — and ordinary
/// operations between synchronization points propagate like release
/// consistency's (arbitrary order, coherent by absorption).
///
/// Compared to [`crate::RcMem`] in `Sc` mode, synchronization here is
/// visible in real time (no lazy log prefixes), which is exactly the
/// fence guarantee that makes this machine a *weak-ordering* machine:
/// it can never show an ordinary write overtaking the labeled write that
/// precedes it in program order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WoMem {
    replicas: Vec<Vec<Value>>,
    applied_seq: Vec<Vec<u64>>,
    next_seq: Vec<u64>,
    ordinary: Channels,
    sync_global: Vec<Value>,
}

impl WoMem {
    /// A weakly-ordered memory for `num_procs` processors and `num_locs`
    /// locations.
    pub fn new(num_procs: usize, num_locs: usize) -> Self {
        WoMem {
            replicas: vec![vec![Value::INITIAL; num_locs]; num_procs],
            applied_seq: vec![vec![0; num_locs]; num_procs],
            next_seq: vec![0; num_locs],
            ordinary: Channels::new(num_procs),
            sync_global: vec![Value::INITIAL; num_locs],
        }
    }
}

impl MemorySystem for WoMem {
    fn num_procs(&self) -> usize {
        self.replicas.len()
    }

    fn num_locs(&self) -> usize {
        self.next_seq.len()
    }

    fn can_read(&self, p: ProcId, _loc: Location, label: Label) -> bool {
        // A synchronization access fences: all previous ordinary writes
        // must have performed everywhere.
        label == Label::Ordinary || self.ordinary.pending_from(p.index()) == 0
    }

    fn can_write(&self, p: ProcId, _loc: Location, label: Label) -> bool {
        label == Label::Ordinary || self.ordinary.pending_from(p.index()) == 0
    }

    fn read(&mut self, p: ProcId, loc: Location, label: Label) -> Value {
        match label {
            Label::Ordinary => self.replicas[p.index()][loc.index()],
            Label::Labeled => self.sync_global[loc.index()],
        }
    }

    fn write(&mut self, p: ProcId, loc: Location, value: Value, label: Label) {
        let pi = p.index();
        match label {
            Label::Ordinary => {
                self.next_seq[loc.index()] += 1;
                let seq = self.next_seq[loc.index()];
                self.replicas[pi][loc.index()] = value;
                self.applied_seq[pi][loc.index()] = seq;
                self.ordinary.broadcast(pi, Update { loc, value, seq });
            }
            Label::Labeled => {
                debug_assert!(self.ordinary.pending_from(pi) == 0);
                self.sync_global[loc.index()] = value;
            }
        }
    }

    fn num_internal(&self) -> usize {
        self.ordinary.all_pending().len()
    }

    fn fire(&mut self, i: usize) {
        let Some(&(src, dst, pos, _)) = self.ordinary.all_pending().get(i) else {
            return;
        };
        let Some(u) = self.ordinary.remove_at(src, dst, pos) else {
            return;
        };
        if u.seq > self.applied_seq[dst][u.loc.index()] {
            self.replicas[dst][u.loc.index()] = u.value;
            self.applied_seq[dst][u.loc.index()] = u.seq;
        }
    }

    fn name(&self) -> String {
        "WO".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ORD: Label = Label::Ordinary;
    const LBL: Label = Label::Labeled;

    #[test]
    fn sync_is_instantly_visible() {
        let mut m = WoMem::new(2, 1);
        m.write(ProcId(0), Location(0), Value(1), LBL);
        assert_eq!(m.read(ProcId(1), Location(0), LBL), Value(1));
    }

    #[test]
    fn sync_waits_for_ordinary() {
        let mut m = WoMem::new(2, 2);
        m.write(ProcId(0), Location(0), Value(1), ORD);
        assert!(!m.can_write(ProcId(0), Location(1), LBL));
        assert!(!m.can_read(ProcId(0), Location(1), LBL));
        // The other processor's sync ops are unaffected.
        assert!(m.can_write(ProcId(1), Location(1), LBL));
        m.fire(0);
        assert!(m.can_write(ProcId(0), Location(1), LBL));
    }

    #[test]
    fn ordinary_after_sync_cannot_overtake_it() {
        // Unlike the lazy RC_sc log, the release here is globally
        // visible before any later ordinary write can be issued.
        let mut m = WoMem::new(2, 2);
        let (q, p, s, d) = (ProcId(0), ProcId(1), Location(0), Location(1));
        m.write(q, s, Value(1), LBL);
        m.write(q, d, Value(1), ORD);
        m.fire(0); // deliver d to p
        assert_eq!(m.read(p, d, ORD), Value(1));
        // s is already 1 — the stale read the corpus' wo_release_fence
        // history requires is unreachable.
        assert_eq!(m.read(p, s, LBL), Value(1));
    }
}

//! Recording simulator runs as declarative histories.

use smc_history::trace::{Trace, TraceEvent};
use smc_history::{History, HistoryBuilder, Label, Location, OpKind, ProcId, Value};
use std::hash::{Hash, Hasher};

/// Accumulates the operations a workload issues and renders them as a
/// [`History`] the declarative checker can classify.
///
/// Operations are stored **per processor**, in issue order. This is
/// deliberate: a history only depends on each processor's own sequence,
/// so two schedules that interleave the same per-processor operations
/// differently produce *equal* recorders — which lets the exhaustive
/// explorer's state deduplication collapse schedule prefixes that differ
/// only in commuted steps. The global arrival order is logged on the
/// side for [`Recorder::trace`] export and deliberately excluded from
/// `Eq`/`Hash` (see the manual impls below).
#[derive(Debug, Clone)]
pub struct Recorder {
    proc_names: Vec<String>,
    loc_names: Vec<String>,
    logs: Vec<Vec<(OpKind, Location, Value, Label)>>,
    /// Issuing processor of each recorded operation, in global arrival
    /// order.
    arrival: Vec<ProcId>,
}

/// Equality ignores the arrival log: the explorer's state dedup relies
/// on recorders that interleave the same per-processor sequences
/// differently comparing equal.
impl PartialEq for Recorder {
    fn eq(&self, other: &Self) -> bool {
        self.proc_names == other.proc_names
            && self.loc_names == other.loc_names
            && self.logs == other.logs
    }
}

impl Eq for Recorder {}

impl Hash for Recorder {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.proc_names.hash(state);
        self.loc_names.hash(state);
        self.logs.hash(state);
    }
}

impl Recorder {
    /// A recorder for `proc_names.len()` processors over the given
    /// location table (location ids index into `loc_names`).
    pub fn new(proc_names: Vec<String>, loc_names: Vec<String>) -> Self {
        let logs = vec![Vec::new(); proc_names.len()];
        Recorder {
            proc_names,
            loc_names,
            logs,
            arrival: Vec::new(),
        }
    }

    /// Convenience constructor with generated names (`p0..`, `x0..`).
    pub fn with_sizes(num_procs: usize, num_locs: usize) -> Self {
        Self::new(
            (0..num_procs).map(|p| format!("p{p}")).collect(),
            (0..num_locs).map(|l| format!("x{l}")).collect(),
        )
    }

    /// Record a read that returned `value`.
    pub fn read(&mut self, p: ProcId, loc: Location, value: Value, label: Label) {
        self.logs[p.index()].push((OpKind::Read, loc, value, label));
        self.arrival.push(p);
    }

    /// Record a write of `value`.
    pub fn write(&mut self, p: ProcId, loc: Location, value: Value, label: Label) {
        self.logs[p.index()].push((OpKind::Write, loc, value, label));
        self.arrival.push(p);
    }

    /// Number of operations recorded so far (across all processors).
    pub fn len(&self) -> usize {
        self.logs.iter().map(Vec::len).sum()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render the log as a [`History`].
    pub fn history(&self) -> History {
        let mut b = HistoryBuilder::new();
        for name in &self.proc_names {
            b.add_proc(name);
        }
        for name in &self.loc_names {
            b.add_loc(name);
        }
        for (p, log) in self.logs.iter().enumerate() {
            for &(kind, loc, value, label) in log {
                b.push(
                    &self.proc_names[p],
                    kind,
                    &self.loc_names[loc.index()],
                    value,
                    label,
                );
            }
        }
        b.build()
    }

    /// Export the log as a [`Trace`] in global arrival order — the
    /// stream a monitor would have observed live. The trace's history
    /// equals [`Recorder::history`] (per-processor sequences agree; only
    /// the interleaving is extra information).
    pub fn trace(&self) -> Trace {
        let mut t = Trace::new();
        for name in &self.proc_names {
            t.add_proc(name);
        }
        for name in &self.loc_names {
            t.add_loc(name);
        }
        let mut cursors = vec![0usize; self.logs.len()];
        for &p in &self.arrival {
            let (kind, loc, value, label) = self.logs[p.index()][cursors[p.index()]];
            cursors[p.index()] += 1;
            t.push(TraceEvent {
                proc: p,
                kind,
                loc,
                value,
                label,
            });
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_program_order_per_proc() {
        let mut r = Recorder::with_sizes(2, 2);
        r.write(ProcId(0), Location(0), Value(1), Label::Ordinary);
        r.read(ProcId(1), Location(0), Value(1), Label::Ordinary);
        r.read(ProcId(0), Location(1), Value(0), Label::Ordinary);
        let h = r.history();
        assert_eq!(h.num_ops(), 3);
        assert_eq!(h.proc_ops(ProcId(0)).len(), 2);
        assert_eq!(h.to_string(), "p0: w(x0)1 r(x1)0\np1: r(x0)1\n");
    }

    #[test]
    fn interleaving_order_does_not_matter() {
        // Same per-processor sequences recorded in different global
        // orders compare equal — the property the explorer's state
        // dedup relies on.
        let mut a = Recorder::with_sizes(2, 1);
        a.write(ProcId(0), Location(0), Value(1), Label::Ordinary);
        a.write(ProcId(1), Location(0), Value(2), Label::Ordinary);
        let mut b = Recorder::with_sizes(2, 1);
        b.write(ProcId(1), Location(0), Value(2), Label::Ordinary);
        b.write(ProcId(0), Location(0), Value(1), Label::Ordinary);
        assert_eq!(a, b);
        assert_eq!(a.history(), b.history());
        // ...while the traces keep the distinct arrival orders.
        assert_ne!(a.trace(), b.trace());
        assert_eq!(a.trace().history(), b.trace().history());
    }

    #[test]
    fn trace_preserves_arrival_order_and_history() {
        let mut r = Recorder::with_sizes(2, 2);
        r.write(ProcId(0), Location(0), Value(1), Label::Ordinary);
        r.read(ProcId(1), Location(0), Value(1), Label::Ordinary);
        r.read(ProcId(0), Location(1), Value(0), Label::Ordinary);
        let t = r.trace();
        assert_eq!(t.len(), 3);
        let procs: Vec<u32> = t.events().iter().map(|e| e.proc.0).collect();
        assert_eq!(procs, [0, 1, 0]);
        assert_eq!(t.history(), r.history());
    }

    #[test]
    fn labels_flow_through() {
        let mut r = Recorder::new(vec!["p".into()], vec!["s".into()]);
        r.write(ProcId(0), Location(0), Value(1), Label::Labeled);
        let h = r.history();
        assert!(h.ops()[0].is_release());
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
    }
}

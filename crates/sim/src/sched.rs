//! Seeded random scheduling of a workload over a memory.

use crate::mem::MemorySystem;
use crate::record::Recorder;
use crate::workload::Workload;
use smc_history::trace::Trace;
use smc_history::History;
use smc_prng::SmallRng;

/// The result of one random run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The recorded system execution history.
    pub history: History,
    /// The same run as an arrival-order event stream — the input a
    /// streaming monitor would have observed live.
    pub trace: Trace,
    /// The first violated workload assertion, if any.
    pub violation: Option<String>,
    /// `true` if the workload finished (and the memory drained) within
    /// the step limit.
    pub completed: bool,
    /// Transitions taken.
    pub steps: usize,
}

/// Run `workload` over `mem` under a uniformly random scheduler seeded
/// with `seed`, for at most `max_steps` transitions.
///
/// Each step picks uniformly among the enabled choices: every runnable
/// thread and every enabled internal memory transition. The run ends when
/// the workload is done and the memory quiescent, when a violation is
/// detected, or at the step limit.
pub fn run_random<M: MemorySystem, W: Workload<M>>(
    mut mem: M,
    mut workload: W,
    seed: u64,
    max_steps: usize,
) -> RunOutcome {
    let mut rec: Recorder = workload.recorder();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut steps = 0;
    loop {
        if let Some(v) = workload.violation() {
            return RunOutcome {
                history: rec.history(),
                trace: rec.trace(),
                violation: Some(v),
                completed: false,
                steps,
            };
        }
        let runnable: Vec<usize> = (0..workload.num_threads())
            .filter(|&t| workload.runnable(t, &mem))
            .collect();
        let internal = mem.num_internal();
        let total = runnable.len() + internal;
        if total == 0 {
            let completed = workload.done() && mem.quiescent();
            return RunOutcome {
                history: rec.history(),
                trace: rec.trace(),
                violation: workload.violation(),
                completed,
                steps,
            };
        }
        if steps >= max_steps {
            return RunOutcome {
                history: rec.history(),
                trace: rec.trace(),
                violation: workload.violation(),
                completed: false,
                steps,
            };
        }
        let pick = rng.gen_range(0..total);
        if pick < runnable.len() {
            workload.step(runnable[pick], &mut mem, &mut rec);
        } else {
            mem.fire(pick - runnable.len());
        }
        steps += 1;
    }
}

/// Run the same workload under `runs` different seeds, returning every
/// distinct history observed (keyed by rendered form) and the first
/// violation, if any.
pub fn sample_histories<M: MemorySystem + Clone, W: Workload<M>>(
    mem: &M,
    workload: &W,
    runs: usize,
    max_steps: usize,
    base_seed: u64,
) -> (Vec<History>, Option<String>) {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    let mut violation = None;
    for i in 0..runs {
        let r = run_random(
            mem.clone(),
            workload.clone(),
            base_seed ^ (i as u64),
            max_steps,
        );
        if r.completed || r.violation.is_some() {
            let key = r.history.to_string();
            if seen.insert(key) {
                out.push(r.history);
            }
        }
        if violation.is_none() {
            violation = r.violation;
        }
    }
    (out, violation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sc::ScMem;
    use crate::tso::TsoMem;
    use crate::workload::{Access, OpScript};

    fn sb_script() -> OpScript {
        // Store buffering: p writes x reads y; q writes y reads x.
        OpScript::new(
            vec![
                vec![Access::write(0, 1), Access::read(1)],
                vec![Access::write(1, 1), Access::read(0)],
            ],
            2,
        )
    }

    #[test]
    fn random_runs_complete() {
        for seed in 0..20 {
            let r = run_random(ScMem::new(2, 2), sb_script(), seed, 10_000);
            assert!(r.completed, "seed {seed} did not complete");
            assert_eq!(r.history.num_ops(), 4);
            assert!(r.violation.is_none());
        }
    }

    #[test]
    fn tso_can_reach_the_figure1_outcome() {
        // Some seed should produce both reads returning 0 — the relaxed
        // outcome SC forbids.
        let target = "p0: w(x0)1 r(x1)0\np1: w(x1)1 r(x0)0\n";
        let (histories, violation) =
            sample_histories(&TsoMem::new(2, 2), &sb_script(), 500, 10_000, 42);
        assert!(violation.is_none());
        assert!(
            histories.iter().any(|h| h.to_string() == target),
            "figure 1 outcome not reached in 500 runs; got {} distinct histories",
            histories.len()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_random(TsoMem::new(2, 2), sb_script(), 7, 10_000);
        let b = run_random(TsoMem::new(2, 2), sb_script(), 7, 10_000);
        assert_eq!(a.history, b.history);
        assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn step_limit_reported() {
        let r = run_random(ScMem::new(2, 2), sb_script(), 0, 1);
        assert!(!r.completed);
        assert_eq!(r.steps, 1);
    }
}

//! Pipelined RAM (Lipton–Sandberg), Section 3.5's operational
//! description.

use crate::channel::{Channels, Update};
use crate::mem::MemorySystem;
use smc_history::{Label, Location, ProcId, Value};

/// Every processor owns a complete replica; writes apply locally and
/// broadcast over reliable, point-to-point-ordered channels; reads return
/// the local value. Updates from one processor arrive in order, but
/// updates from distinct processors may interleave arbitrarily — exactly
/// PRAM's guarantee.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PramMem {
    replicas: Vec<Vec<Value>>,
    channels: Channels,
}

impl PramMem {
    /// A PRAM memory for `num_procs` processors and `num_locs` locations.
    pub fn new(num_procs: usize, num_locs: usize) -> Self {
        PramMem {
            replicas: vec![vec![Value::INITIAL; num_locs]; num_procs],
            channels: Channels::new(num_procs),
        }
    }

    /// Inspect processor `p`'s replica (tests and diagnostics).
    pub fn replica(&self, p: ProcId) -> &[Value] {
        &self.replicas[p.index()]
    }
}

impl MemorySystem for PramMem {
    fn num_procs(&self) -> usize {
        self.replicas.len()
    }

    fn num_locs(&self) -> usize {
        self.replicas[0].len()
    }

    fn read(&mut self, p: ProcId, loc: Location, _label: Label) -> Value {
        self.replicas[p.index()][loc.index()]
    }

    fn write(&mut self, p: ProcId, loc: Location, value: Value, _label: Label) {
        self.replicas[p.index()][loc.index()] = value;
        self.channels
            .broadcast(p.index(), Update { loc, value, seq: 0 });
    }

    fn num_internal(&self) -> usize {
        self.channels.heads().len()
    }

    fn fire(&mut self, i: usize) {
        let Some(&(src, dst, _)) = self.channels.heads().get(i) else {
            return;
        };
        let Some(u) = self.channels.pop_head(src, dst) else {
            return;
        };
        self.replicas[dst][u.loc.index()] = u.value;
    }

    fn name(&self) -> String {
        "PRAM".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ORD: Label = Label::Ordinary;

    #[test]
    fn writes_apply_locally_first() {
        let mut m = PramMem::new(2, 1);
        m.write(ProcId(0), Location(0), Value(1), ORD);
        assert_eq!(m.read(ProcId(0), Location(0), ORD), Value(1));
        assert_eq!(m.read(ProcId(1), Location(0), ORD), Value(0));
        m.fire(0);
        assert_eq!(m.read(ProcId(1), Location(0), ORD), Value(1));
        assert!(m.quiescent());
    }

    #[test]
    fn per_source_fifo_preserved() {
        let mut m = PramMem::new(2, 2);
        m.write(ProcId(0), Location(0), Value(1), ORD); // data
        m.write(ProcId(0), Location(1), Value(1), ORD); // flag
                                                        // Only the head (the data write) is deliverable to p1.
        assert_eq!(m.num_internal(), 1);
        m.fire(0);
        assert_eq!(m.replica(ProcId(1))[0], Value(1));
        assert_eq!(m.replica(ProcId(1))[1], Value(0));
        m.fire(0);
        assert_eq!(m.replica(ProcId(1))[1], Value(1));
    }

    #[test]
    fn figure3_exchange_is_reachable() {
        // p: w(x)1 r(x)1 r(x)2 / q: w(x)2 r(x)2 r(x)1 (paper Figure 3).
        let mut m = PramMem::new(2, 1);
        let (p, q, x) = (ProcId(0), ProcId(1), Location(0));
        m.write(p, x, Value(1), ORD);
        m.write(q, x, Value(2), ORD);
        assert_eq!(m.read(p, x, ORD), Value(1));
        assert_eq!(m.read(q, x, ORD), Value(2));
        // Cross-deliver both updates.
        while !m.quiescent() {
            m.fire(0);
        }
        assert_eq!(m.read(p, x, ORD), Value(2));
        assert_eq!(m.read(q, x, ORD), Value(1));
    }
}

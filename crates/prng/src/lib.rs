//! A minimal, dependency-free seeded PRNG.
//!
//! The workspace previously pulled in the external `rand` crate for three
//! call sites (random scheduling, random benchmark inputs, property-test
//! generators). This crate replaces it with a self-contained
//! xoshiro256** generator seeded through SplitMix64 — the same
//! construction `rand`'s `SmallRng` used on 64-bit targets — so builds
//! need no registry access. It is **not** cryptographically secure; it is
//! for reproducible simulation and test-input generation only.
//!
//! The API mirrors the subset of `rand` the workspace used:
//!
//! ```
//! use smc_prng::SmallRng;
//!
//! let mut rng = SmallRng::seed_from_u64(42);
//! let die: u64 = rng.gen_range(1..7u64);
//! assert!((1..7).contains(&die));
//! let coin = rng.gen_bool(0.5);
//! let _ = coin;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// A small, fast, seeded pseudo-random generator (xoshiro256**).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Build a generator from a 64-bit seed via SplitMix64 (so nearby
    /// seeds still yield uncorrelated streams).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        SmallRng { s }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform sample from a half-open range. Panics on empty ranges,
    /// matching `rand`.
    pub fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 random bits give a uniform float in [0, 1).
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }

    /// An unbiased uniform sample from `[0, bound)` by rejection
    /// (Lemire-style widening multiply).
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample an empty range");
        // Rejection zone keeps the multiply-shift unbiased.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Types [`SmallRng::gen_range`] can sample uniformly.
pub trait SampleRange: Sized {
    /// Sample uniformly from `range` using `rng`.
    fn sample(rng: &mut SmallRng, range: Range<Self>) -> Self;
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(rng: &mut SmallRng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample an empty range");
                let span = (range.end - range.start) as u64;
                range.start + rng.bounded_u64(span) as $t
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(rng: &mut SmallRng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample an empty range");
                let span = (range.end as $u).wrapping_sub(range.start as $u) as u64;
                range.start.wrapping_add(rng.bounded_u64(span) as $t)
            }
        }
    )*};
}
impl_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert!((0..10).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&y));
            let z = rng.gen_range(0..1usize);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(4);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(5);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads = {heads}");
    }
}

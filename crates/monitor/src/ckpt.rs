//! Checkpoint/restore: the whole monitor session as one versioned blob.
//!
//! [`save`] serializes everything a [`Monitor`] is — interned
//! processor/location names, the incorporated event and lifecycle
//! stream, every frontier engine's state arena, per-model verdicts and
//! first-refuted prefixes, churn and window bookkeeping, cumulative
//! counters — so [`load`] resumes *warm*: no replay, and every verdict
//! the restored monitor emits from then on is byte-identical to one
//! that never stopped.
//!
//! The format is guarded three ways:
//!
//! * a **magic + version** prefix (`SMCCKPT\x01`) rejects files that
//!   are not checkpoints at all;
//! * the **model list and tuning** are embedded (name + parameter key
//!   per model, frontier cap, window size) and must match what the
//!   caller passes to [`load`] — a checkpoint taken under one model set
//!   must not silently resume under another;
//! * every length and index is validated against the bytes remaining
//!   and the tables already decoded, under the [`smc_core::binfmt`]
//!   contract: corrupt or truncated input returns `Err` naming a byte
//!   offset, never panics and never allocates past the input size.

use crate::{churn::ChurnState, window::WindowState, Engine, Monitor, MonitorConfig, TriVerdict};
use smc_core::binfmt::{write_i64, write_str, write_u32, write_u64, Reader};
use smc_core::frontier::FrontierEngine;
use smc_core::lattice::inclusion_closure;
use smc_core::spec::{ModelSpec, OperationSet};
use smc_history::trace::{Lifecycle, Trace, TraceEvent};
use smc_history::{Label, Location, OpKind, ProcId, Value};

/// File magic: `SMCCKPT` + format version byte.
pub const MAGIC: [u8; 8] = *b"SMCCKPT\x01";

/// Serialize `m` completely; [`load`] inverts this.
pub fn save(m: &Monitor) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&MAGIC);
    write_u32(&mut buf, m.models.len() as u32);
    for spec in &m.models {
        write_str(&mut buf, &spec.name);
        write_u64(&mut buf, spec.param_key());
    }
    write_u64(&mut buf, m.cfg.max_frontier_states as u64);
    write_u32(&mut buf, m.cfg.window.unwrap_or(0) as u32);
    save_trace(&mut buf, &m.trace);
    m.churn.save_into(&mut buf);
    if let Some(w) = &m.window {
        w.save_into(&mut buf);
    }
    for (i, &v) in m.verdicts.iter().enumerate() {
        buf.push(v as u8);
        write_u64(
            &mut buf,
            m.first_violation[i].map(|n| n as u64).unwrap_or(u64::MAX),
        );
    }
    let t = &m.totals;
    for c in [
        t.created,
        t.expanded,
        t.reuse_hits,
        t.rechecks,
        t.recheck_nodes,
        t.propagated,
        t.rebuild_work,
    ] {
        write_u64(&mut buf, c);
    }
    write_u32(&mut buf, m.built_procs as u32);
    write_u32(&mut buf, m.built_locs as u32);
    for engine in &m.engines {
        match engine {
            Engine::Restart => buf.push(0),
            Engine::Identical(e) => {
                buf.push(1);
                e.save_into(&mut buf);
            }
            Engine::PerProc {
                viewers,
                delta,
                latched_unknown,
            } => {
                buf.push(2);
                buf.push(match delta {
                    OperationSet::AllOps => 0,
                    OperationSet::WritesOnly => 1,
                });
                write_u64(&mut buf, *latched_unknown as u64);
                write_u32(&mut buf, viewers.len() as u32);
                for v in viewers {
                    match v {
                        None => buf.push(0),
                        Some(e) => {
                            buf.push(1);
                            e.save_into(&mut buf);
                        }
                    }
                }
            }
        }
    }
    buf
}

fn save_trace(buf: &mut Vec<u8>, t: &Trace) {
    write_u32(buf, t.num_procs() as u32);
    for name in t.proc_names() {
        write_str(buf, name);
    }
    write_u32(buf, t.num_locs() as u32);
    for name in t.loc_names() {
        write_str(buf, name);
    }
    write_u32(buf, t.len() as u32);
    for e in t.events() {
        write_u32(buf, e.proc.0);
        buf.push(e.kind.is_write() as u8);
        buf.push(e.label.is_labeled() as u8);
        write_u32(buf, e.loc.0);
        write_i64(buf, e.value.0);
    }
    write_u32(buf, t.lifecycle().len() as u32);
    for &(pos, lc) in t.lifecycle() {
        write_u32(buf, pos);
        match lc {
            Lifecycle::Join(p) => {
                buf.push(0);
                write_u32(buf, p.0);
            }
            Lifecycle::Retire(p) => {
                buf.push(1);
                write_u32(buf, p.0);
            }
        }
    }
}

fn load_trace(r: &mut Reader<'_>) -> Result<Trace, String> {
    let mut t = Trace::new();
    let procs = r.len_prefix(1)?;
    for _ in 0..procs {
        let at = r.pos();
        let name = r.str()?;
        t.add_proc(&name);
        if t.num_procs() != t.proc_names().len() {
            return Err(format!("duplicate processor name at byte {at}"));
        }
    }
    if t.num_procs() != procs {
        return Err(format!("duplicate processor name in table of {procs}"));
    }
    let locs = r.len_prefix(1)?;
    for _ in 0..locs {
        r.str().map(|name| t.add_loc(&name))?;
    }
    if t.num_locs() != locs {
        return Err(format!("duplicate location name in table of {locs}"));
    }
    let events = r.len_prefix(18)?;
    let mut decoded = Vec::with_capacity(events);
    for _ in 0..events {
        let at = r.pos();
        let proc = r.u32()?;
        let kind = if r.u8()? != 0 {
            OpKind::Write
        } else {
            OpKind::Read
        };
        let label = if r.u8()? != 0 {
            Label::Labeled
        } else {
            Label::Ordinary
        };
        let loc = r.u32()?;
        let value = r.i64()?;
        if proc as usize >= procs {
            return Err(format!("event processor {proc} at byte {at} out of range"));
        }
        if loc as usize >= locs {
            return Err(format!("event location {loc} at byte {at} out of range"));
        }
        decoded.push(TraceEvent {
            proc: ProcId(proc),
            kind,
            loc: Location(loc),
            value: Value(value),
            label,
        });
    }
    let lcs = r.len_prefix(9)?;
    let mut lifecycle = Vec::with_capacity(lcs);
    let mut last_pos = 0u32;
    for _ in 0..lcs {
        let at = r.pos();
        let pos = r.u32()?;
        let tag = r.u8()?;
        let p = r.u32()?;
        if pos as usize > events || pos < last_pos {
            return Err(format!(
                "lifecycle position {pos} at byte {at} out of order"
            ));
        }
        last_pos = pos;
        if p as usize >= procs {
            return Err(format!("lifecycle processor {p} at byte {at} out of range"));
        }
        let lc = match tag {
            0 => Lifecycle::Join(ProcId(p)),
            1 => Lifecycle::Retire(ProcId(p)),
            v => return Err(format!("unknown lifecycle tag {v} at byte {at}")),
        };
        lifecycle.push((pos, lc));
    }
    // `push_lifecycle` records the position itself (the current event
    // count), so interleave: lifecycle entries land before the event at
    // their recorded position.
    let mut li = 0usize;
    for (i, ev) in decoded.into_iter().enumerate() {
        while li < lifecycle.len() && lifecycle[li].0 as usize <= i {
            t.push_lifecycle(lifecycle[li].1);
            li += 1;
        }
        t.push(ev);
    }
    for &(_, lc) in &lifecycle[li..] {
        t.push_lifecycle(lc);
    }
    Ok(t)
}

fn load_engine(r: &mut Reader<'_>, built_procs: usize) -> Result<Engine, String> {
    let at = r.pos();
    match r.u8()? {
        0 => Ok(Engine::Restart),
        1 => {
            let e = FrontierEngine::load_from(r)?;
            if e.num_procs() != built_procs {
                return Err(format!(
                    "engine at byte {at} has width {}, monitor built for {built_procs}",
                    e.num_procs()
                ));
            }
            Ok(Engine::Identical(e))
        }
        2 => {
            let dat = r.pos();
            let delta = match r.u8()? {
                0 => OperationSet::AllOps,
                1 => OperationSet::WritesOnly,
                v => return Err(format!("unknown operation set {v} at byte {dat}")),
            };
            let latched_unknown = r.u64()? as usize;
            let n = r.len_prefix(1)?;
            if n != built_procs {
                return Err(format!(
                    "viewer table at byte {at} has {n} slots, monitor built for {built_procs}"
                ));
            }
            let mut viewers = Vec::with_capacity(n);
            for _ in 0..n {
                let vat = r.pos();
                viewers.push(match r.u8()? {
                    0 => None,
                    1 => {
                        let e = FrontierEngine::load_from(r)?;
                        if e.num_procs() != built_procs {
                            return Err(format!(
                                "viewer at byte {vat} has width {}, monitor built for {built_procs}",
                                e.num_procs()
                            ));
                        }
                        Some(e)
                    }
                    v => return Err(format!("unknown viewer tag {v} at byte {vat}")),
                });
            }
            Ok(Engine::PerProc {
                viewers,
                delta,
                latched_unknown,
            })
        }
        v => Err(format!("unknown engine tag {v} at byte {at}")),
    }
}

/// The model names embedded in a checkpoint, without decoding the rest.
/// Lets a server resolve the right model set before calling [`load`].
pub fn peek_models(bytes: &[u8]) -> Result<Vec<String>, String> {
    let mut r = Reader::new(bytes);
    if r.take(MAGIC.len()).ok() != Some(&MAGIC[..]) {
        return Err("not a monitor checkpoint (bad magic at byte 0)".into());
    }
    let n = r.len_prefix(10)?;
    let mut names = Vec::with_capacity(n);
    for _ in 0..n {
        names.push(r.str()?);
        r.u64()?;
    }
    Ok(names)
}

/// The frontier cap and window size (0 = unwindowed) a checkpoint was
/// cut with, without loading it. A restore must resume under the same
/// limits; a caller that did not pick its own can inherit these.
pub fn peek_limits(bytes: &[u8]) -> Result<(usize, usize), String> {
    let mut r = Reader::new(bytes);
    if r.take(MAGIC.len()).ok() != Some(&MAGIC[..]) {
        return Err("not a monitor checkpoint (bad magic at byte 0)".into());
    }
    let n = r.len_prefix(10)?;
    for _ in 0..n {
        r.str()?;
        r.u64()?;
    }
    let max_states = r.u64()? as usize;
    let window = r.u32()? as usize;
    Ok((max_states, window))
}

/// Rebuild a [`Monitor`] from [`save`] bytes. `models` and `cfg` must
/// match the checkpointed session (same models in the same order, same
/// frontier cap and window size); the embedded copies are checked and a
/// mismatch is an error, not a silent reinterpretation.
pub fn load(bytes: &[u8], models: Vec<ModelSpec>, cfg: MonitorConfig) -> Result<Monitor, String> {
    let mut r = Reader::new(bytes);
    if r.take(MAGIC.len()).ok() != Some(&MAGIC[..]) {
        return Err("not a monitor checkpoint (bad magic at byte 0)".into());
    }
    let n = r.len_prefix(10)?;
    if n != models.len() {
        return Err(format!(
            "checkpoint monitors {n} models, caller supplied {}",
            models.len()
        ));
    }
    for (i, spec) in models.iter().enumerate() {
        let at = r.pos();
        let name = r.str()?;
        let key = r.u64()?;
        if name != spec.name || key != spec.param_key() {
            return Err(format!(
                "model {i} mismatch at byte {at}: checkpoint has {name:?}, caller supplied {:?}",
                spec.name
            ));
        }
    }
    let max_states = r.u64()? as usize;
    if max_states != cfg.max_frontier_states {
        return Err(format!(
            "checkpoint frontier cap {max_states} != configured {}",
            cfg.max_frontier_states
        ));
    }
    let win = r.u32()? as usize;
    if win != cfg.window.unwrap_or(0) {
        return Err(format!(
            "checkpoint window size {win} != configured {}",
            cfg.window.unwrap_or(0)
        ));
    }
    let trace = load_trace(&mut r)?;
    let churn = ChurnState::load_from(&mut r, trace.num_procs(), trace.num_locs())?;
    let window = if win != 0 {
        Some(WindowState::load_from(&mut r, models.len())?)
    } else {
        None
    };
    let mut verdicts = Vec::with_capacity(n);
    let mut first_violation = Vec::with_capacity(n);
    for _ in 0..n {
        let at = r.pos();
        verdicts.push(match r.u8()? {
            0 => TriVerdict::Admitted,
            1 => TriVerdict::Violated,
            2 => TriVerdict::Unknown,
            v => return Err(format!("unknown verdict {v} at byte {at}")),
        });
        let fv = r.u64()?;
        first_violation.push((fv != u64::MAX).then_some(fv as usize));
    }
    // Struct-literal fields evaluate in source order, matching the
    // order `save` wrote them.
    let totals = crate::MonitorTotals {
        created: r.u64()?,
        expanded: r.u64()?,
        reuse_hits: r.u64()?,
        rechecks: r.u64()?,
        recheck_nodes: r.u64()?,
        propagated: r.u64()?,
        rebuild_work: r.u64()?,
        ..Default::default()
    };
    let built_procs = r.u32()? as usize;
    let built_locs = r.u32()? as usize;
    if built_locs > trace.num_locs() {
        return Err(format!(
            "monitor built for {built_locs} locations, trace has {}",
            trace.num_locs()
        ));
    }
    let mut engines = Vec::with_capacity(n);
    for _ in 0..n {
        engines.push(load_engine(&mut r, built_procs)?);
    }
    if !r.is_at_end() {
        return Err(format!(
            "{} trailing bytes after checkpoint at byte {}",
            r.remaining(),
            r.pos()
        ));
    }
    let stronger = inclusion_closure(&models);
    Ok(Monitor {
        models,
        stronger,
        cfg,
        trace,
        engines,
        built_procs,
        built_locs,
        verdicts,
        first_violation,
        totals,
        churn,
        window,
        pending_seeds: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use smc_core::models;
    use smc_history::trace::parse_trace;

    fn fed_monitor(text: &str) -> Monitor {
        let t = parse_trace(text).unwrap();
        let mut m = Monitor::new(models::lattice_models(), MonitorConfig::default());
        m.feed_trace(&t);
        m
    }

    /// `unwrap_err` without requiring `Debug` on [`Monitor`].
    fn err_of(res: Result<Monitor, String>) -> String {
        match res {
            Err(e) => e,
            Ok(_) => panic!("expected a restore error"),
        }
    }

    #[test]
    fn checkpoint_round_trips_bytes_and_state() {
        let m = fed_monitor("p w(x)1\nq w(y)1\np r(y)0\nq r(x)0\n");
        let bytes = m.checkpoint_bytes();
        let back =
            Monitor::restore_bytes(&bytes, models::lattice_models(), MonitorConfig::default())
                .unwrap();
        assert_eq!(back.verdicts(), m.verdicts());
        assert_eq!(back.num_events(), m.num_events());
        assert_eq!(back.totals(), m.totals());
        // Re-checkpointing the restored monitor reproduces the blob.
        assert_eq!(back.checkpoint_bytes(), bytes);
    }

    #[test]
    fn restore_resumes_byte_identically() {
        // Feed the first half, checkpoint, restore, feed the rest: the
        // verdict history must match a monitor that never stopped.
        let full = "p w(d)1\np w(f)1\nq r(f)1\nq r(d)0\nr w(d)2\nq r(d)2\n";
        let t = parse_trace(full).unwrap();
        let mut cold = Monitor::new(models::lattice_models(), MonitorConfig::default());
        let mut warm = Monitor::new(models::lattice_models(), MonitorConfig::default());
        for (i, ev) in t.events().iter().enumerate() {
            cold.feed(
                t.proc_name(ev.proc),
                ev.kind,
                t.loc_name(ev.loc),
                ev.value.0,
                ev.label,
            );
            if i == 2 {
                let bytes = warm.checkpoint_bytes();
                warm = Monitor::restore_bytes(
                    &bytes,
                    models::lattice_models(),
                    MonitorConfig::default(),
                )
                .unwrap();
            }
            warm.feed(
                t.proc_name(ev.proc),
                ev.kind,
                t.loc_name(ev.loc),
                ev.value.0,
                ev.label,
            );
            assert_eq!(warm.verdicts(), cold.verdicts(), "event {i}");
        }
        assert_eq!(warm.checkpoint_bytes(), cold.checkpoint_bytes());
    }

    #[test]
    fn truncated_and_corrupt_checkpoints_are_rejected() {
        let m = fed_monitor("p w(x)1\nq r(x)1\n");
        let bytes = m.checkpoint_bytes();
        for cut in 0..bytes.len() {
            let e = err_of(Monitor::restore_bytes(
                &bytes[..cut],
                models::lattice_models(),
                MonitorConfig::default(),
            ));
            assert!(!e.is_empty(), "cut {cut}");
        }
        // Garbage magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        let e = err_of(Monitor::restore_bytes(
            &bad,
            models::lattice_models(),
            MonitorConfig::default(),
        ));
        assert!(e.contains("bad magic"), "{e}");
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        let e = err_of(Monitor::restore_bytes(
            &long,
            models::lattice_models(),
            MonitorConfig::default(),
        ));
        assert!(e.contains("trailing"), "{e}");
    }

    #[test]
    fn model_and_config_mismatches_are_rejected() {
        let m = fed_monitor("p w(x)1\n");
        let bytes = m.checkpoint_bytes();
        let e = err_of(Monitor::restore_bytes(
            &bytes,
            vec![models::sc()],
            MonitorConfig::default(),
        ));
        assert!(e.contains("models"), "{e}");
        let e = err_of(Monitor::restore_bytes(
            &bytes,
            models::lattice_models(),
            MonitorConfig {
                max_frontier_states: 7,
                ..MonitorConfig::default()
            },
        ));
        assert!(e.contains("frontier cap"), "{e}");
        let e = err_of(Monitor::restore_bytes(
            &bytes,
            models::lattice_models(),
            MonitorConfig {
                window: Some(64),
                ..MonitorConfig::default()
            },
        ));
        assert!(e.contains("window"), "{e}");
    }
}

//! Processor membership churn: slot allocation, retirement, and folding.
//!
//! A long-lived monitored system rotates its processor set — clients
//! join, do work, and retire. Without churn handling, every processor
//! ever seen widens the frontier engines forever (each state row carries
//! one count per processor), so a week of rotating membership makes the
//! monitor pay for thousands of columns of which a handful are active.
//!
//! [`ChurnState`] maps interned processors to *engine slots*. A retired
//! processor whose column has **quiesced** — every reachable frontier
//! state has scheduled all of its operations — is *folded*: its column
//! is sealed out of every engine (exact, nothing is dropped), its slot
//! returns to a free list for the next joiner, and a [`FoldSummary`]
//! (per-location last write + operation count) records what it left
//! behind. Frontier width therefore tracks the number of *concurrently
//! active* processors, not the lifetime total.
//!
//! Folding commits the already-explored interleavings of the retired
//! processor. When an engine must later be rebuilt (table growth) or a
//! viewer seeded for a reused slot, the folded processor's writes are
//! force-applied at their original stream positions during the replay
//! (the bounded-staleness summarization DESIGN §12 describes): each
//! write is committed at its issue point instead of being left
//! schedulable, so verdicts remain a deterministic function of the
//! event + lifecycle stream.

use smc_history::trace::Trace;
use smc_history::{Location, ProcId, Value};

/// The bookkeeping record of a folded processor: its fold position,
/// operation count, and final memory effect (for reporting and for
/// validating restored checkpoints; rebuilds replay the folded writes
/// straight from the stored trace).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldSummary {
    /// The folded processor.
    pub proc: ProcId,
    /// Events of the stream covered by this summary (the fold position);
    /// the processor's events before it are represented by the summary.
    pub upto: u32,
    /// Operations of the processor the summary covers.
    pub ops: u64,
    /// Its last write per location, in location order.
    pub last_writes: Vec<(Location, Value)>,
}

impl FoldSummary {
    /// Summarize `p`'s events in `t` up to the current stream position.
    pub fn compute(t: &Trace, p: ProcId) -> FoldSummary {
        let mut last: Vec<Option<Value>> = vec![None; t.num_locs()];
        let mut ops = 0u64;
        for e in t.events() {
            if e.proc != p {
                continue;
            }
            ops += 1;
            if e.kind.is_write() {
                last[e.loc.index()] = Some(e.value);
            }
        }
        FoldSummary {
            proc: p,
            upto: t.len() as u32,
            ops,
            last_writes: last
                .into_iter()
                .enumerate()
                .filter_map(|(l, v)| v.map(|v| (Location(l as u32), v)))
                .collect(),
        }
    }
}

/// The processor ↔ slot bookkeeping of one monitor. Slots are engine
/// column indices; `width()` is the number of columns every frontier
/// engine must have.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ChurnState {
    /// Per interned processor, its current slot (`None` = folded away,
    /// or never active).
    slot_of: Vec<Option<u32>>,
    /// Per slot, the processor currently holding it.
    proc_of: Vec<Option<ProcId>>,
    /// Slots freed by folds, reusable by the next joiner.
    free_slots: Vec<u32>,
    /// Per processor: retired (a `retire` arrived with no later `join`
    /// or event).
    retired: Vec<bool>,
    /// Retired processors awaiting quiescence, in retirement order.
    pending_fold: Vec<ProcId>,
    /// Per processor, the stream position its last fold covered
    /// (events of it before this position live in a summary).
    folded_upto: Vec<u32>,
    /// Every fold taken, in fold order (rebuilds re-apply these).
    summaries: Vec<FoldSummary>,
    /// `join` lifecycle events observed.
    pub joins: u64,
    /// `retire` lifecycle events observed.
    pub retires: u64,
    /// Retired processors folded out of the engines.
    pub folds: u64,
}

/// How [`ChurnState::activate`] satisfied the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// The processor already held a slot (possibly clearing a pending
    /// retirement).
    Already,
    /// A freed slot was reused; per-processor viewers for the slot must
    /// be re-seeded.
    Reused(u32),
    /// A brand-new slot was allocated; the engine width grew.
    Grew(u32),
}

impl ChurnState {
    /// Fresh state: no processors, no slots.
    pub fn new() -> Self {
        ChurnState::default()
    }

    /// Extend the per-processor tables to `n` interned processors.
    pub fn grow(&mut self, n: usize) {
        if self.slot_of.len() < n {
            self.slot_of.resize(n, None);
            self.retired.resize(n, false);
            self.folded_upto.resize(n, 0);
        }
    }

    /// Engine columns required: every slot ever allocated.
    pub fn width(&self) -> usize {
        self.proc_of.len()
    }

    /// The slot processor `p` holds, if it is active or retired-unfolded.
    pub fn slot(&self, p: ProcId) -> Option<u32> {
        self.slot_of.get(p.index()).copied().flatten()
    }

    /// The processor holding slot `s`, if any.
    pub fn proc_of_slot(&self, s: usize) -> Option<ProcId> {
        self.proc_of.get(s).copied().flatten()
    }

    /// Is `p` currently retired (and not since reactivated)?
    pub fn is_retired(&self, p: ProcId) -> bool {
        self.retired.get(p.index()).copied().unwrap_or(false)
    }

    /// Events of `p` at stream positions before this are covered by a
    /// fold summary; replays must skip them.
    pub fn folded_upto(&self, p: ProcId) -> u32 {
        self.folded_upto.get(p.index()).copied().unwrap_or(0)
    }

    /// The folds taken so far, in fold order.
    pub fn summaries(&self) -> &[FoldSummary] {
        &self.summaries
    }

    /// Retired processors whose folds are still pending quiescence.
    pub fn pending_folds(&self) -> &[ProcId] {
        &self.pending_fold
    }

    /// Ensure `p` holds a slot (joining, or issuing an event). Clears
    /// any pending retirement — an event from a "retired" processor
    /// reactivates it.
    pub fn activate(&mut self, p: ProcId) -> Activation {
        self.grow(p.index() + 1);
        if self.retired[p.index()] {
            self.retired[p.index()] = false;
            self.pending_fold.retain(|&q| q != p);
        }
        if self.slot_of[p.index()].is_some() {
            return Activation::Already;
        }
        match self.free_slots.pop() {
            Some(s) => {
                self.slot_of[p.index()] = Some(s);
                self.proc_of[s as usize] = Some(p);
                Activation::Reused(s)
            }
            None => {
                let s = self.proc_of.len() as u32;
                self.proc_of.push(Some(p));
                self.slot_of[p.index()] = Some(s);
                Activation::Grew(s)
            }
        }
    }

    /// Mark `p` retired; its fold waits until every engine column for it
    /// has quiesced. A retire for a processor with no slot is a no-op.
    pub fn retire(&mut self, p: ProcId) {
        self.grow(p.index() + 1);
        self.retires += 1;
        if self.slot_of[p.index()].is_none() || self.retired[p.index()] {
            return;
        }
        self.retired[p.index()] = true;
        self.pending_fold.push(p);
    }

    /// Commit a fold: `p` releases slot `s`, `summary` stands in for its
    /// operations from now on.
    pub fn apply_fold(&mut self, p: ProcId, s: u32, summary: FoldSummary) {
        debug_assert_eq!(self.slot_of[p.index()], Some(s));
        self.folded_upto[p.index()] = summary.upto;
        self.summaries.push(summary);
        self.slot_of[p.index()] = None;
        self.proc_of[s as usize] = None;
        self.retired[p.index()] = false;
        self.pending_fold.retain(|&q| q != p);
        self.free_slots.push(s);
        self.folds += 1;
    }

    /// Serialize under the [`smc_core::binfmt`] contract.
    pub fn save_into(&self, buf: &mut Vec<u8>) {
        use smc_core::binfmt::{write_i64, write_u32, write_u64};
        write_u32(buf, self.slot_of.len() as u32);
        for i in 0..self.slot_of.len() {
            write_u32(buf, self.slot_of[i].unwrap_or(u32::MAX));
            buf.push(self.retired[i] as u8);
            write_u32(buf, self.folded_upto[i]);
        }
        write_u32(buf, self.proc_of.len() as u32);
        for p in &self.proc_of {
            write_u32(buf, p.map(|p| p.0).unwrap_or(u32::MAX));
        }
        write_u32(buf, self.free_slots.len() as u32);
        for &s in &self.free_slots {
            write_u32(buf, s);
        }
        write_u32(buf, self.pending_fold.len() as u32);
        for &p in &self.pending_fold {
            write_u32(buf, p.0);
        }
        write_u32(buf, self.summaries.len() as u32);
        for s in &self.summaries {
            write_u32(buf, s.proc.0);
            write_u32(buf, s.upto);
            write_u64(buf, s.ops);
            write_u32(buf, s.last_writes.len() as u32);
            for &(loc, v) in &s.last_writes {
                write_u32(buf, loc.0);
                write_i64(buf, v.0);
            }
        }
        write_u64(buf, self.joins);
        write_u64(buf, self.retires);
        write_u64(buf, self.folds);
    }

    /// Rebuild from [`ChurnState::save_into`] bytes, validating every
    /// index against `num_procs`/`num_locs`.
    pub fn load_from(
        r: &mut smc_core::binfmt::Reader<'_>,
        num_procs: usize,
        num_locs: usize,
    ) -> Result<ChurnState, String> {
        let mut c = ChurnState::new();
        let n = r.len_prefix(9)?;
        if n != num_procs {
            return Err(format!(
                "churn table covers {n} processors, trace has {num_procs}"
            ));
        }
        for _ in 0..n {
            let s = r.u32()?;
            c.slot_of.push((s != u32::MAX).then_some(s));
            c.retired.push(r.u8()? != 0);
            c.folded_upto.push(r.u32()?);
        }
        let slots = r.len_prefix(4)?;
        for _ in 0..slots {
            let at = r.pos();
            let p = r.u32()?;
            if p == u32::MAX {
                c.proc_of.push(None);
            } else {
                if p as usize >= num_procs {
                    return Err(format!("slot holder {p} at byte {at} out of range"));
                }
                c.proc_of.push(Some(ProcId(p)));
            }
        }
        for (p, s) in c.slot_of.iter().enumerate() {
            if let Some(s) = s {
                if c.proc_of.get(*s as usize).copied().flatten() != Some(ProcId(p as u32)) {
                    return Err(format!("slot map for processor {p} is not its inverse"));
                }
            }
        }
        let n = r.len_prefix(4)?;
        for _ in 0..n {
            let at = r.pos();
            let s = r.u32()?;
            if s as usize >= slots || c.proc_of[s as usize].is_some() {
                return Err(format!("free slot {s} at byte {at} is not free"));
            }
            c.free_slots.push(s);
        }
        let n = r.len_prefix(4)?;
        for _ in 0..n {
            let at = r.pos();
            let p = r.u32()?;
            if p as usize >= num_procs {
                return Err(format!(
                    "pending fold of processor {p} at byte {at} out of range"
                ));
            }
            c.pending_fold.push(ProcId(p));
        }
        let n = r.len_prefix(20)?;
        for _ in 0..n {
            let at = r.pos();
            let p = r.u32()?;
            if p as usize >= num_procs {
                return Err(format!(
                    "fold summary for processor {p} at byte {at} out of range"
                ));
            }
            let upto = r.u32()?;
            let ops = r.u64()?;
            let writes = r.len_prefix(12)?;
            let mut last_writes = Vec::with_capacity(writes);
            for _ in 0..writes {
                let at = r.pos();
                let loc = r.u32()?;
                if loc as usize >= num_locs {
                    return Err(format!(
                        "fold summary location {loc} at byte {at} out of range"
                    ));
                }
                last_writes.push((Location(loc), Value(r.i64()?)));
            }
            c.summaries.push(FoldSummary {
                proc: ProcId(p),
                upto,
                ops,
                last_writes,
            });
        }
        c.joins = r.u64()?;
        c.retires = r.u64()?;
        c.folds = r.u64()?;
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smc_history::trace::parse_trace;

    #[test]
    fn slots_are_reused_after_folds() {
        let mut c = ChurnState::new();
        assert_eq!(c.activate(ProcId(0)), Activation::Grew(0));
        assert_eq!(c.activate(ProcId(1)), Activation::Grew(1));
        assert_eq!(c.activate(ProcId(0)), Activation::Already);
        c.retire(ProcId(0));
        assert!(c.is_retired(ProcId(0)));
        assert_eq!(c.pending_folds(), [ProcId(0)]);
        c.apply_fold(
            ProcId(0),
            0,
            FoldSummary {
                proc: ProcId(0),
                upto: 3,
                ops: 3,
                last_writes: vec![],
            },
        );
        assert_eq!(c.slot(ProcId(0)), None);
        assert_eq!(c.folded_upto(ProcId(0)), 3);
        // A new processor takes the freed slot; width stays 2.
        assert_eq!(c.activate(ProcId(2)), Activation::Reused(0));
        assert_eq!(c.width(), 2);
        assert_eq!(c.proc_of_slot(0), Some(ProcId(2)));
    }

    #[test]
    fn events_reactivate_retired_processors() {
        let mut c = ChurnState::new();
        c.activate(ProcId(0));
        c.retire(ProcId(0));
        assert_eq!(c.activate(ProcId(0)), Activation::Already);
        assert!(!c.is_retired(ProcId(0)));
        assert!(c.pending_folds().is_empty());
    }

    #[test]
    fn summaries_capture_last_writes() {
        let t = parse_trace("p w(x)1\nq w(x)5\np w(y)2\np w(x)3\np r(y)2\n").unwrap();
        let s = FoldSummary::compute(&t, ProcId(0));
        assert_eq!(s.ops, 4);
        assert_eq!(
            s.last_writes,
            [(Location(0), Value(3)), (Location(1), Value(2))]
        );
        assert_eq!(s.upto, 5);
    }

    #[test]
    fn churn_state_round_trips() {
        let mut c = ChurnState::new();
        c.activate(ProcId(0));
        c.activate(ProcId(1));
        c.joins = 2;
        c.retire(ProcId(0));
        c.apply_fold(
            ProcId(0),
            0,
            FoldSummary {
                proc: ProcId(0),
                upto: 7,
                ops: 4,
                last_writes: vec![(Location(0), Value(3))],
            },
        );
        let mut buf = Vec::new();
        c.save_into(&mut buf);
        let mut r = smc_core::binfmt::Reader::new(&buf);
        let back = ChurnState::load_from(&mut r, 2, 1).unwrap();
        assert!(r.is_at_end());
        assert_eq!(back, c);
        // Truncations are rejected, never panic.
        for cut in 0..buf.len() {
            let mut r = smc_core::binfmt::Reader::new(&buf[..cut]);
            assert!(ChurnState::load_from(&mut r, 2, 1).is_err(), "cut {cut}");
        }
    }
}

//! Windowed monitoring: seal decided prefixes, bound frontier memory.
//!
//! On an unbounded stream the frontier engines accumulate every state
//! that any interleaving of the whole prefix can reach. Windowing trades
//! that unbounded exactness for flat memory: every `size` events the
//! monitor *seals* the current prefix —
//!
//! * an **admitted** engine keeps only its complete states (all of them
//!   agree the prefix happened; they differ only in memory contents) and
//!   rebases them to an empty sequence — the engine restarts from the
//!   surviving value vectors, so steady-state memory is the number of
//!   distinct memory contents, not the number of interleavings;
//! * a **refuted** engine is rebased losslessly to the per-processor
//!   minimum already scheduled everywhere (a refutation may still heal,
//!   so nothing may be dropped);
//! * an **exhausted** engine is left alone (it does no state work).
//!
//! Each seal records a [`WindowRecord`] — the per-window verdict vector
//! at the boundary — so an operator reads the stream as a sequence of
//! per-window verdicts plus the sealed-prefix commitment. Sealing an
//! admitted window commits to *some* legal interpretation of the prefix;
//! verdicts after a seal are exact for the committed interpretation
//! (DESIGN §12 states the invariant precisely).

use crate::TriVerdict;

/// One sealed window: the verdict vector at its boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowRecord {
    /// Stream position (events fed) at which the window was sealed.
    pub end: usize,
    /// Per-model verdicts at the boundary (model order of the monitor).
    pub verdicts: Vec<TriVerdict>,
}

/// Window bookkeeping for one monitor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowState {
    /// Events per window.
    pub size: usize,
    /// Stream position of the last seal.
    pub sealed_events: usize,
    /// Windows sealed so far.
    pub windows_sealed: u64,
    /// Frontier states dropped or merged away by seals.
    pub states_sealed: u64,
    /// Every sealed window's boundary verdicts, in order.
    records: Vec<WindowRecord>,
}

impl WindowState {
    /// Windowing with `size` events per window (clamped to at least 1).
    pub fn new(size: usize) -> Self {
        WindowState {
            size: size.max(1),
            sealed_events: 0,
            windows_sealed: 0,
            states_sealed: 0,
            records: Vec::new(),
        }
    }

    /// Should a batch ending at stream position `events` seal?
    pub fn due(&self, events: usize) -> bool {
        events - self.sealed_events >= self.size
    }

    /// Record a seal at `end` with the boundary verdicts.
    pub fn record(&mut self, end: usize, verdicts: Vec<TriVerdict>) {
        self.records.push(WindowRecord { end, verdicts });
        self.sealed_events = end;
        self.windows_sealed += 1;
    }

    /// The sealed windows, in order.
    pub fn records(&self) -> &[WindowRecord] {
        &self.records
    }

    /// Serialize under the [`smc_core::binfmt`] contract.
    pub fn save_into(&self, buf: &mut Vec<u8>) {
        use smc_core::binfmt::{write_u32, write_u64};
        write_u64(buf, self.size as u64);
        write_u64(buf, self.sealed_events as u64);
        write_u64(buf, self.windows_sealed);
        write_u64(buf, self.states_sealed);
        write_u32(buf, self.records.len() as u32);
        for rec in &self.records {
            write_u64(buf, rec.end as u64);
            for &v in &rec.verdicts {
                buf.push(v as u8);
            }
        }
    }

    /// Rebuild from [`WindowState::save_into`] bytes; each record holds
    /// one verdict byte per monitored model.
    pub fn load_from(
        r: &mut smc_core::binfmt::Reader<'_>,
        num_models: usize,
    ) -> Result<WindowState, String> {
        let size = r.u64()? as usize;
        let mut w = WindowState::new(size.max(1));
        w.sealed_events = r.u64()? as usize;
        w.windows_sealed = r.u64()?;
        w.states_sealed = r.u64()?;
        let n = r.len_prefix(8 + num_models)?;
        for _ in 0..n {
            let end = r.u64()? as usize;
            let mut verdicts = Vec::with_capacity(num_models);
            for _ in 0..num_models {
                let at = r.pos();
                verdicts.push(match r.u8()? {
                    0 => TriVerdict::Admitted,
                    1 => TriVerdict::Violated,
                    2 => TriVerdict::Unknown,
                    v => return Err(format!("unknown verdict {v} at byte {at}")),
                });
            }
            w.records.push(WindowRecord { end, verdicts });
        }
        Ok(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn due_fires_every_size_events() {
        let mut w = WindowState::new(3);
        assert!(!w.due(2));
        assert!(w.due(3));
        assert!(w.due(5));
        w.record(5, vec![TriVerdict::Admitted]);
        assert!(!w.due(7));
        assert!(w.due(8));
        assert_eq!(w.windows_sealed, 1);
        assert_eq!(w.records()[0].end, 5);
    }

    #[test]
    fn window_state_round_trips() {
        let mut w = WindowState::new(10);
        w.states_sealed = 42;
        w.record(10, vec![TriVerdict::Admitted, TriVerdict::Violated]);
        w.record(20, vec![TriVerdict::Unknown, TriVerdict::Admitted]);
        let mut buf = Vec::new();
        w.save_into(&mut buf);
        let mut r = smc_core::binfmt::Reader::new(&buf);
        let back = WindowState::load_from(&mut r, 2).unwrap();
        assert!(r.is_at_end());
        assert_eq!(back, w);
        for cut in 0..buf.len() {
            let mut r = smc_core::binfmt::Reader::new(&buf[..cut]);
            assert!(WindowState::load_from(&mut r, 2).is_err(), "cut {cut}");
        }
        // A garbage verdict byte is rejected with its offset.
        let mut bad = buf.clone();
        let vpos = 32 + 4 + 8; // header + count + first record's end
        bad[vpos] = 9;
        let mut r = smc_core::binfmt::Reader::new(&bad);
        let e = WindowState::load_from(&mut r, 2).unwrap_err();
        assert!(e.contains("unknown verdict 9"), "{e}");
    }
}

//! Streaming incremental admission monitoring over operation traces.
//!
//! The batch entry points (`check`, `corpus`, `matrix`) re-run the
//! view-extension search from scratch on a complete history. A
//! [`Monitor`] instead consumes `(processor, operation)` events one at a
//! time and maintains, per model, the admission verdict of the *prefix
//! seen so far*:
//!
//! * For models whose per-view question is "does a legal extension of
//!   program order exist?" — the SC and PRAM parameter shapes — the
//!   monitor checkpoints the full set of reachable scheduling states in
//!   a [`smc_core::frontier::FrontierEngine`] and extends it by one
//!   operation per event. Each state is discovered and expanded once
//!   over the whole stream, so the amortized per-event cost stays
//!   near-flat instead of growing with the prefix.
//! * For every other model the monitor falls back to re-checking the
//!   prefix with the batch checker (sharing one [`MemoCache`] across
//!   appends), but first tries to *propagate* the verdict through the
//!   known inclusion lattice: if a stronger model already admitted this
//!   prefix the weaker one must too, and if a weaker model refuted it
//!   the stronger one must too. With SC at the head of the model list,
//!   an SC-admitted prefix decides every other lattice model for free.
//!
//! Admission over prefixes is **not** monotone — a refuted prefix can
//! heal when a later write arrives — so the monitor keeps reporting
//! per-prefix verdicts rather than latching the first refutation. It
//! does *record* the first refuted prefix per model, and
//! [`Monitor::violation_report`] shrinks that prefix to an op-deletion
//! minimal counterexample (greedy [`smc_core::separate::without_op`]
//! descent, the same move the separation minimizer uses) rendered in
//! litmus notation.
//!
//! # Session lifecycle
//!
//! A monitor session that lives for days needs three things the core
//! loop above does not give it, provided by the module family
//! [`ckpt`] / [`churn`] / [`window`]:
//!
//! * **Checkpoint/restore** — [`Monitor::checkpoint`] serializes the
//!   complete session (interned names, frontier state arenas, verdicts,
//!   churn and window state) to a versioned binary format;
//!   [`Monitor::restore`] resumes warm, with byte-identical verdicts
//!   thereafter. Corrupt or truncated checkpoints return `Err` naming a
//!   byte offset; they never panic.
//! * **Processor churn** — explicit [`Monitor::join`] /
//!   [`Monitor::retire`] events (trace lines `join p` / `retire p`). A
//!   retired processor whose engine columns have quiesced is *folded*:
//!   sealed out of every engine and summarized per-location, its slot
//!   reused by the next joiner, keeping frontier width O(active
//!   processors).
//! * **Windowed monitoring** — with [`MonitorConfig::window`] set, every
//!   N events the engines seal the decided prefix and restart from the
//!   surviving memory contents, bounding frontier memory on unbounded
//!   streams; [`Monitor::windows`] reports the per-window verdicts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod ckpt;
pub mod window;

use churn::{Activation, ChurnState, FoldSummary};
use smc_core::checker::{CheckConfig, Verdict};
use smc_core::frontier::{AppendReport, FrontierEngine, ViewOp};
use smc_core::lattice::inclusion_closure;
use smc_core::separate::without_op;
use smc_core::spec::{GlobalOrder, ModelSpec, OperationSet, OwnerOrder};
use smc_history::litmus::emit_litmus;
use smc_history::trace::{Lifecycle, Trace, TraceEvent};
use smc_history::{History, Label, OpKind, ProcId, Value};
use window::WindowState;

/// Tuning for a [`Monitor`].
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Configuration for restart-mode re-checks. A shared memo cache is
    /// attached by [`MonitorConfig::default`].
    pub check: CheckConfig,
    /// Worker threads for restart-mode re-checks (1 = sequential).
    pub jobs: usize,
    /// Reachable-state cap per frontier engine; past it the engine
    /// stops deciding and the model falls back to lattice propagation
    /// or a per-event batch re-check.
    pub max_frontier_states: usize,
    /// Seal the frontier every this many events (`--window N`),
    /// bounding steady-state frontier memory; `None` monitors the
    /// unbounded prefix exactly.
    pub window: Option<usize>,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            check: CheckConfig::default().with_memo(),
            jobs: 1,
            max_frontier_states: 1 << 20,
            window: None,
        }
    }
}

/// A per-prefix, per-model verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriVerdict {
    /// The prefix is admitted by the model.
    Admitted,
    /// The prefix is refuted by the model.
    Violated,
    /// A resource budget ran out; the verdict is undecided.
    Unknown,
}

impl TriVerdict {
    /// Lowercase word for reports (`admitted` / `violated` / `unknown`).
    pub fn word(self) -> &'static str {
        match self {
            TriVerdict::Admitted => "admitted",
            TriVerdict::Violated => "violated",
            TriVerdict::Unknown => "unknown",
        }
    }
}

/// One event of a batch, by names: `(processor, kind, location, value,
/// label)`. The tuple shape keeps call sites free of a builder when
/// they already hold parsed trace lines.
pub type BatchEvent<'a> = (&'a str, OpKind, &'a str, i64, Label);

/// Observability counters for one appended event (or one batch — see
/// [`Monitor::feed_batch`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StepReport {
    /// Prefix length (events fed so far, including this batch).
    pub events: usize,
    /// Total reachable states across all frontier engines.
    pub frontier_states: u64,
    /// Frontier states discovered by this event.
    pub created: u64,
    /// Frontier states expanded by this event.
    pub expanded: u64,
    /// Frontier transitions that hit an already-known state.
    pub reuse_hits: u64,
    /// Restart-mode re-checks actually run for this event.
    pub rechecks: u64,
    /// Search nodes those re-checks spent.
    pub recheck_nodes: u64,
    /// Verdicts decided by lattice propagation instead of a re-check.
    pub propagated: u64,
}

impl StepReport {
    fn absorb_frontier(&mut self, r: AppendReport) {
        self.created += r.created;
        self.expanded += r.expanded;
        self.reuse_hits += r.reuse_hits;
    }
}

/// Cumulative [`StepReport`] counters over the whole stream.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MonitorTotals {
    /// Frontier states discovered.
    pub created: u64,
    /// Frontier states expanded.
    pub expanded: u64,
    /// Frontier transitions that hit an already-known state.
    pub reuse_hits: u64,
    /// Restart-mode re-checks run.
    pub rechecks: u64,
    /// Search nodes those re-checks spent.
    pub recheck_nodes: u64,
    /// Verdicts decided by lattice propagation.
    pub propagated: u64,
    /// Frontier states created + expanded by mid-stream table-rebuild
    /// replays. Tracked apart from `created`/`expanded`/`reuse_hits` so
    /// the cumulative frontier totals stay comparable to a restart
    /// baseline instead of double-counting pre-rebuild work.
    pub rebuild_work: u64,
    /// `join` lifecycle events observed.
    pub joins: u64,
    /// `retire` lifecycle events observed.
    pub retires: u64,
    /// Retired processors folded out of the engines.
    pub folds: u64,
    /// Windows sealed (zero unless [`MonitorConfig::window`] is set).
    pub windows_sealed: u64,
    /// Frontier states dropped or merged away by window seals.
    pub states_sealed: u64,
}

impl StepReport {
    /// Accumulate another report (`events`/`frontier_states` take the
    /// later report's values, counters add).
    pub fn absorb(&mut self, other: StepReport) {
        self.events = other.events;
        self.frontier_states = other.frontier_states;
        self.created += other.created;
        self.expanded += other.expanded;
        self.reuse_hits += other.reuse_hits;
        self.rechecks += other.rechecks;
        self.recheck_nodes += other.recheck_nodes;
        self.propagated += other.propagated;
    }
}

/// A minimal violating prefix, rendered for humans.
#[derive(Debug, Clone)]
pub struct ViolationReport {
    /// Display name of the violated model.
    pub model: String,
    /// Length of the first refuted prefix (in events).
    pub prefix_len: usize,
    /// The first refuted prefix as a history.
    pub prefix: History,
    /// Op-deletion minimal sub-history that the model still refutes.
    pub minimized: History,
    /// `minimized` in litmus notation.
    pub litmus: String,
}

/// How a model's incremental state is maintained.
pub(crate) enum Engine {
    /// One shared view over all operations (the SC shape:
    /// `identical_views`, `δ = AllOps`, program order, by-value reads).
    Identical(FrontierEngine),
    /// One engine per processor view (the PRAM shape), indexed by
    /// engine *slot*; the viewer holding slot `s` sees its own
    /// operations plus the remote operations `δ` selects. A `None`
    /// entry is a freed slot (its viewer folded away or never joined).
    PerProc {
        /// Per slot, the live viewer engine.
        viewers: Vec<Option<FrontierEngine>>,
        /// Remote operations each view includes.
        delta: OperationSet,
        /// Folded viewers whose verdict was lost to exhaustion; while
        /// nonzero the model can never settle back to `Admitted` on the
        /// engines alone.
        latched_unknown: usize,
    },
    /// Re-check the whole prefix with the batch checker per event.
    Restart,
}

/// Conjoin the per-viewer admission answers of a `PerProc` engine.
fn perproc_verdict(viewers: &[Option<FrontierEngine>], latched_unknown: usize) -> Option<bool> {
    let mut verdict = Some(true);
    for e in viewers.iter().flatten() {
        match e.admitted() {
            Some(true) => {}
            Some(false) => verdict = Some(false),
            None => {
                if verdict != Some(false) {
                    verdict = None;
                }
            }
        }
    }
    if latched_unknown > 0 && verdict == Some(true) {
        verdict = None;
    }
    verdict
}

/// Does this spec reduce to "a legal extension of program order exists",
/// per view, with by-value read legality? Only then can the frontier
/// engine stand in for the batch checker.
fn frontier_shape(spec: &ModelSpec) -> Option<Engine> {
    let plain = !spec.needs_reads_from()
        && !spec.global_write_order
        && !spec.coherence
        && spec.labeled.is_none()
        && spec.owner_order == OwnerOrder::None
        && !spec.rc_bracketing
        && !spec.fence_bracketing
        && spec.global_order == GlobalOrder::ProgramOrder;
    if !plain {
        return None;
    }
    if spec.identical_views {
        // Identical views collapse to a single view question only when
        // every view ranges over the same operation set.
        (spec.delta == OperationSet::AllOps)
            .then(|| Engine::Identical(FrontierEngine::new(0, 0, 1)))
    } else {
        Some(Engine::PerProc {
            viewers: Vec::new(),
            delta: spec.delta,
            latched_unknown: 0,
        })
    }
}

/// The streaming monitor: per-model incremental admission state over an
/// append-only event stream.
pub struct Monitor {
    pub(crate) models: Vec<ModelSpec>,
    /// `stronger[i][j]`: admitted by `models[i]` forces admitted by
    /// `models[j]`.
    pub(crate) stronger: Vec<Vec<bool>>,
    pub(crate) cfg: MonitorConfig,
    pub(crate) trace: Trace,
    pub(crate) engines: Vec<Engine>,
    /// Table sizes the frontier engines were built for (engine width in
    /// slots, locations); growth forces a rebuild by replay.
    pub(crate) built_procs: usize,
    pub(crate) built_locs: usize,
    pub(crate) verdicts: Vec<TriVerdict>,
    pub(crate) first_violation: Vec<Option<usize>>,
    pub(crate) totals: MonitorTotals,
    /// Processor ↔ slot bookkeeping (joins, retirements, folds).
    pub(crate) churn: ChurnState,
    /// Window bookkeeping, when [`MonitorConfig::window`] is set.
    pub(crate) window: Option<WindowState>,
    /// Reused slots whose per-processor viewers await seeding (drained
    /// by [`Monitor::ensure_tables`]).
    pending_seeds: Vec<(ProcId, u32)>,
}

impl Monitor {
    /// A monitor for the given models. Keep stronger models first (as
    /// [`smc_core::models::lattice_models`] does) so lattice propagation
    /// can decide weaker models without re-checking.
    pub fn new(models: Vec<ModelSpec>, cfg: MonitorConfig) -> Self {
        let stronger = inclusion_closure(&models);
        let engines = models
            .iter()
            .map(|m| frontier_shape(m).unwrap_or(Engine::Restart))
            .collect();
        let n = models.len();
        let window = cfg.window.map(WindowState::new);
        Monitor {
            models,
            stronger,
            cfg,
            trace: Trace::new(),
            engines,
            built_procs: 0,
            built_locs: 0,
            // The empty history is admitted by every model.
            verdicts: vec![TriVerdict::Admitted; n],
            first_violation: vec![None; n],
            totals: MonitorTotals::default(),
            churn: ChurnState::new(),
            window,
            pending_seeds: Vec::new(),
        }
    }

    /// The monitored models, in construction order.
    pub fn models(&self) -> &[ModelSpec] {
        &self.models
    }

    /// Everything fed so far, as a trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Current per-model verdicts (same order as [`Monitor::models`]).
    pub fn verdicts(&self) -> &[TriVerdict] {
        &self.verdicts
    }

    /// Cumulative counters (lifecycle counters derive from the churn
    /// and window state).
    pub fn totals(&self) -> MonitorTotals {
        let mut t = self.totals;
        t.joins = self.churn.joins;
        t.retires = self.churn.retires;
        t.folds = self.churn.folds;
        if let Some(w) = &self.window {
            t.windows_sealed = w.windows_sealed;
            t.states_sealed = w.states_sealed;
        }
        t
    }

    /// The churn bookkeeping (slot map, fold summaries, counters).
    pub fn churn(&self) -> &ChurnState {
        &self.churn
    }

    /// The window bookkeeping and per-window verdicts, when windowing
    /// is on.
    pub fn windows(&self) -> Option<&WindowState> {
        self.window.as_ref()
    }

    /// Length of the first refuted prefix for `model_idx`, if any prefix
    /// was refuted.
    pub fn first_violation(&self, model_idx: usize) -> Option<usize> {
        self.first_violation[model_idx]
    }

    /// Number of events fed so far (the current prefix length).
    pub fn num_events(&self) -> usize {
        self.trace.len()
    }

    /// Whether `model_idx`'s verdict and [`Monitor::first_violation`]
    /// are event-exact even under batched feeding. True for models on a
    /// live frontier engine: engines consume every event individually,
    /// so their state — and any violation they record — lands on the
    /// same event no matter how the stream was cut into batches.
    /// Restart-mode models and exhausted engines settle once per batch
    /// instead, so their first-refuted-prefix depends on where batch
    /// boundaries fall. Exhaustion is itself event-exact, so two
    /// monitors fed the same prefix agree on this answer regardless of
    /// batching.
    pub fn is_event_exact(&self, model_idx: usize) -> bool {
        match &self.engines[model_idx] {
            Engine::Identical(e) => !e.is_exhausted(),
            Engine::PerProc {
                viewers,
                latched_unknown,
                ..
            } => *latched_unknown == 0 && viewers.iter().flatten().all(|e| !e.is_exhausted()),
            Engine::Restart => false,
        }
    }

    /// Pre-declare a processor (a trace `procs` header). Declaring every
    /// processor up front avoids frontier rebuilds mid-stream.
    pub fn declare_proc(&mut self, name: &str) {
        let p = self.trace.add_proc(name);
        self.activate_proc(p);
        self.ensure_tables();
    }

    /// Record a `join p` lifecycle event: `p` (re-)enters the active
    /// set, reusing a folded slot when one is free.
    pub fn join(&mut self, name: &str) {
        let p = self.trace.add_proc(name);
        self.trace.push_lifecycle(Lifecycle::Join(p));
        self.churn.joins += 1;
        self.activate_proc(p);
        self.ensure_tables();
    }

    /// Record a `retire p` lifecycle event: `p` leaves the active set.
    /// Its engine columns fold away — freeing its slot — as soon as
    /// every reachable frontier state has scheduled all of its
    /// operations (often immediately, otherwise after a later batch or
    /// window seal quiesces them).
    pub fn retire(&mut self, name: &str) {
        let p = self.trace.add_proc(name);
        self.trace.push_lifecycle(Lifecycle::Retire(p));
        self.churn.retire(p);
        self.try_folds();
    }

    /// Give `p` a slot (on join or first event); a reused slot's
    /// per-processor viewers are seeded by the next `ensure_tables`.
    fn activate_proc(&mut self, p: ProcId) {
        match self.churn.activate(p) {
            Activation::Already | Activation::Grew(_) => {}
            Activation::Reused(s) => self.pending_seeds.push((p, s)),
        }
    }

    /// Pre-declare a location (a trace `locs` header).
    pub fn declare_loc(&mut self, name: &str) {
        self.trace.add_loc(name);
        self.ensure_tables();
    }

    /// Feed one event by names; returns the per-event counters and
    /// updates [`Monitor::verdicts`].
    pub fn feed(
        &mut self,
        proc: &str,
        kind: OpKind,
        loc: &str,
        value: i64,
        label: Label,
    ) -> StepReport {
        self.feed_batch(&[(proc, kind, loc, value, label)])
    }

    /// Feed a batch of events at once. Semantically this appends every
    /// event in order; operationally the batch amortizes the per-event
    /// bookkeeping that [`Monitor::feed`] pays on each call:
    ///
    /// * names are interned and the frontier tables grown **once per
    ///   batch** (at most one rebuild-by-replay, instead of one per
    ///   newly appearing name);
    /// * frontier-mode engines still see every event individually — the
    ///   per-prefix verdict and first-refuted-prefix of SC/PRAM-shaped
    ///   models stay event-exact;
    /// * restart-mode models are settled **once at the batch end** (by
    ///   lattice propagation or a batch re-check of the final prefix),
    ///   so their verdicts and `first_violation` are recorded at batch
    ///   granularity. Final verdicts are identical to per-event feeding
    ///   — only the granularity of intermediate restart-model verdicts
    ///   differs.
    ///
    /// Returns one aggregated report (`events` is the prefix length
    /// after the batch).
    pub fn feed_batch(&mut self, events: &[BatchEvent<'_>]) -> StepReport {
        let mut report = StepReport {
            events: self.trace.len() + events.len(),
            ..StepReport::default()
        };
        if events.is_empty() {
            report.frontier_states = self.frontier_states();
            return report;
        }
        // Intern every name, assign slots, and grow the frontier tables
        // *before* any event of the batch lands in the trace: a table
        // rebuild replays only the events already incorporated, so the
        // appends below never duplicate an event.
        for &(proc, _, loc, _, _) in events {
            let p = self.trace.add_proc(proc);
            self.trace.add_loc(loc);
            self.activate_proc(p);
        }
        self.ensure_tables();

        // Phase 1: frontier-mode models consume the batch one event at
        // a time (their per-event cost is what the engine amortizes),
        // keeping per-prefix verdicts and first violations event-exact.
        for &(proc, kind, loc, value, label) in events {
            let ev = TraceEvent {
                proc: self.trace.add_proc(proc),
                kind,
                loc: self.trace.add_loc(loc),
                value: Value(value),
                label,
            };
            self.trace.push(ev);
            let n = self.trace.len();
            let ev_slot = ProcId(self.churn.slot(ev.proc).expect("active proc has a slot"));
            let churn = &self.churn;
            for (i, engine) in self.engines.iter_mut().enumerate() {
                let verdict = match engine {
                    Engine::Identical(e) => {
                        report.absorb_frontier(e.append(ev_slot, view_op(&ev)));
                        e.admitted()
                    }
                    Engine::PerProc {
                        viewers,
                        delta,
                        latched_unknown,
                    } => {
                        // Every relevant viewer must see the event, even
                        // if an earlier view already settled the verdict.
                        let mut verdict = Some(true);
                        for (s, v) in viewers.iter_mut().enumerate() {
                            let Some(e) = v else { continue };
                            let Some(vp) = churn.proc_of_slot(s) else {
                                continue;
                            };
                            if in_view(&ev, vp, *delta) {
                                report.absorb_frontier(e.append(ev_slot, view_op(&ev)));
                            }
                            match e.admitted() {
                                Some(true) => {}
                                Some(false) => verdict = Some(false),
                                None => {
                                    if verdict != Some(false) {
                                        verdict = None;
                                    }
                                }
                            }
                        }
                        if *latched_unknown > 0 && verdict == Some(true) {
                            verdict = None;
                        }
                        verdict
                    }
                    Engine::Restart => continue,
                };
                if let Some(adm) = verdict {
                    let v = tri_of(adm);
                    self.verdicts[i] = v;
                    if v == TriVerdict::Violated && self.first_violation[i].is_none() {
                        self.first_violation[i] = Some(n);
                    }
                }
            }
        }

        // Phase 2: settle every model on the batch-end prefix — frontier
        // verdicts stand as computed (an exhausted engine leaves its
        // model undecided here), everything else propagates through the
        // lattice or falls back to a batch re-check.
        let n = self.trace.len();
        let mut decided: Vec<Option<TriVerdict>> = self
            .engines
            .iter()
            .map(|engine| match engine {
                Engine::Identical(e) => e.admitted().map(tri_of),
                Engine::PerProc {
                    viewers,
                    latched_unknown,
                    ..
                } => perproc_verdict(viewers, *latched_unknown).map(tri_of),
                Engine::Restart => None,
            })
            .collect();
        let mut prefix: Option<History> = None;
        for i in 0..self.models.len() {
            if decided[i].is_some() {
                continue;
            }
            if let Some(v) = self.propagate(i, &decided) {
                decided[i] = Some(v);
                report.propagated += 1;
                continue;
            }
            let h = prefix.get_or_insert_with(|| self.trace.history_of_prefix(n));
            let (verdict, stats) =
                smc_core::batch::check_parallel(h, &self.models[i], &self.cfg.check, self.cfg.jobs);
            report.rechecks += 1;
            report.recheck_nodes += stats.nodes_spent;
            decided[i] = Some(match verdict {
                Verdict::Allowed(_) => TriVerdict::Admitted,
                Verdict::Disallowed => TriVerdict::Violated,
                Verdict::Exhausted | Verdict::Unsupported(_) => TriVerdict::Unknown,
            });
        }
        for (i, v) in decided.into_iter().enumerate() {
            let v = v.expect("every model decided");
            self.verdicts[i] = v;
            if v == TriVerdict::Violated && self.first_violation[i].is_none() {
                self.first_violation[i] = Some(n);
            }
        }
        // Lifecycle housekeeping: seal the window if one is due, then
        // fold any retired processors the seal (or the batch itself)
        // quiesced.
        self.maybe_seal_window();
        self.try_folds();
        report.frontier_states = self.frontier_states();
        self.totals.created += report.created;
        self.totals.expanded += report.expanded;
        self.totals.reuse_hits += report.reuse_hits;
        self.totals.rechecks += report.rechecks;
        self.totals.recheck_nodes += report.recheck_nodes;
        self.totals.propagated += report.propagated;
        report
    }

    /// Feed a whole trace (declaring its tables first) as one batch;
    /// returns the aggregated report. A trace carrying lifecycle lines
    /// is fed in segments, applying each `join`/`retire` at its
    /// recorded stream position — processors are then *not* declared up
    /// front, so folded slots stay reusable.
    pub fn feed_trace(&mut self, t: &Trace) -> StepReport {
        let to_batch = |e: &TraceEvent| {
            (
                t.proc_name(e.proc),
                e.kind,
                t.loc_name(e.loc),
                e.value.0,
                e.label,
            )
        };
        if t.lifecycle().is_empty() {
            for p in t.proc_names() {
                self.declare_proc(p);
            }
            for l in t.loc_names() {
                self.declare_loc(l);
            }
            let batch: Vec<BatchEvent<'_>> = t.events().iter().map(to_batch).collect();
            return self.feed_batch(&batch);
        }
        for l in t.loc_names() {
            self.declare_loc(l);
        }
        let events = t.events();
        let lcs = t.lifecycle();
        let mut report = StepReport::default();
        let (mut pos, mut li) = (0usize, 0usize);
        while pos < events.len() || li < lcs.len() {
            while li < lcs.len() && lcs[li].0 as usize <= pos {
                match lcs[li].1 {
                    Lifecycle::Join(p) => self.join(t.proc_name(p)),
                    Lifecycle::Retire(p) => self.retire(t.proc_name(p)),
                }
                li += 1;
            }
            let next = if li < lcs.len() {
                (lcs[li].0 as usize).min(events.len())
            } else {
                events.len()
            };
            if next > pos {
                let batch: Vec<BatchEvent<'_>> = events[pos..next].iter().map(to_batch).collect();
                report.absorb(self.feed_batch(&batch));
                pos = next;
            }
        }
        report.events = self.trace.len();
        report.frontier_states = self.frontier_states();
        report
    }

    /// Total reachable states across all frontier engines.
    fn frontier_states(&self) -> u64 {
        self.engines
            .iter()
            .map(|engine| match engine {
                Engine::Identical(e) => e.num_states() as u64,
                Engine::PerProc { viewers, .. } => viewers
                    .iter()
                    .flatten()
                    .map(|e| e.num_states() as u64)
                    .sum::<u64>(),
                Engine::Restart => 0,
            })
            .sum()
    }

    /// The minimal violating prefix for `model_idx`: the first refuted
    /// prefix, shrunk by greedy op deletion while the model still
    /// refutes it. `None` if no prefix was ever refuted.
    pub fn violation_report(&self, model_idx: usize) -> Option<ViolationReport> {
        let prefix_len = self.first_violation[model_idx]?;
        let spec = &self.models[model_idx];
        let prefix = self.trace.history_of_prefix(prefix_len);
        let refuted = |h: &History| {
            smc_core::batch::check_parallel(h, spec, &self.cfg.check, self.cfg.jobs)
                .0
                .is_disallowed()
        };
        let mut minimized = prefix.clone();
        loop {
            let better = (0..minimized.num_ops())
                .map(|idx| without_op(&minimized, idx))
                .find(|smaller| refuted(smaller));
            match better {
                Some(smaller) => minimized = smaller,
                None => break,
            }
        }
        Some(ViolationReport {
            model: spec.name.clone(),
            prefix_len,
            litmus: emit_litmus(&minimized),
            prefix,
            minimized,
        })
    }

    /// Rebuild the frontier engines if the slot width or location table
    /// outgrew what they were built for (replaying the stored events and
    /// re-applying fold summaries), and seed viewers for reused slots.
    fn ensure_tables(&mut self) {
        let width = self.churn.width().max(self.built_procs);
        let locs = self.trace.num_locs();
        if width <= self.built_procs && locs <= self.built_locs {
            self.seed_pending();
            return;
        }
        self.pending_seeds.clear();
        self.built_procs = width;
        self.built_locs = locs;
        let max_states = self.cfg.max_frontier_states;
        let seals = self.seal_positions();
        let trace = &self.trace;
        let churn = &self.churn;
        let mut rebuild = 0u64;
        for engine in self.engines.iter_mut() {
            match engine {
                Engine::Identical(e) => {
                    *e = replay_identical(
                        trace,
                        churn,
                        width,
                        locs,
                        max_states,
                        &seals,
                        &mut rebuild,
                    );
                }
                Engine::PerProc { viewers, delta, .. } => {
                    let mut fresh: Vec<Option<FrontierEngine>> = (0..width).map(|_| None).collect();
                    for (s, slot) in fresh.iter_mut().enumerate() {
                        if let Some(p) = churn.proc_of_slot(s) {
                            *slot = Some(seed_viewer(
                                trace,
                                churn,
                                p,
                                *delta,
                                width,
                                locs,
                                max_states,
                                &seals,
                                &mut rebuild,
                            ));
                        }
                    }
                    *viewers = fresh;
                }
                Engine::Restart => {}
            }
        }
        self.totals.rebuild_work += rebuild;
    }

    /// Stream positions of every window seal so far, in order — a
    /// rebuild-by-replay must re-apply them at the same points, or the
    /// replayed frontier re-explores the unwindowed state space the live
    /// engine already sealed away.
    fn seal_positions(&self) -> Vec<usize> {
        self.window
            .as_ref()
            .map(|w| w.records().iter().map(|r| r.end).collect())
            .unwrap_or_default()
    }

    /// Seed per-processor viewers for slots reused by joiners since the
    /// last call (the `Identical` engine needs nothing: a folded slot's
    /// column is already empty).
    fn seed_pending(&mut self) {
        if self.pending_seeds.is_empty() {
            return;
        }
        let seeds = std::mem::take(&mut self.pending_seeds);
        let (width, locs) = (self.built_procs, self.built_locs);
        let max_states = self.cfg.max_frontier_states;
        let seals = self.seal_positions();
        let trace = &self.trace;
        let churn = &self.churn;
        let mut rebuild = 0u64;
        for engine in self.engines.iter_mut() {
            if let Engine::PerProc { viewers, delta, .. } = engine {
                for &(p, s) in &seeds {
                    viewers[s as usize] = Some(seed_viewer(
                        trace,
                        churn,
                        p,
                        *delta,
                        width,
                        locs,
                        max_states,
                        &seals,
                        &mut rebuild,
                    ));
                }
            }
        }
        self.totals.rebuild_work += rebuild;
    }

    /// Fold every pending retiree whose engine columns have quiesced.
    fn try_folds(&mut self) {
        for p in self.churn.pending_folds().to_vec() {
            self.try_fold_one(p);
        }
    }

    /// Fold retiree `p` out of every engine if all of them can do so
    /// losslessly; returns whether the fold happened.
    fn try_fold_one(&mut self, p: ProcId) -> bool {
        let Some(slot) = self.churn.slot(p) else {
            return false;
        };
        let s = slot as usize;
        // Check first, mutate only if every engine agrees: the retiree's
        // column must have quiesced everywhere, and its own view (if it
        // has one) must be settled-admitted — appended remote operations
        // can only extend an admitted view, never refute it, because a
        // retired processor issues no further reads.
        for engine in &self.engines {
            match engine {
                Engine::Identical(e) => {
                    if !e.is_exhausted() && !e.quiesced(s) {
                        return false;
                    }
                }
                Engine::PerProc { viewers, .. } => {
                    for (s2, v) in viewers.iter().enumerate() {
                        let Some(e) = v else { continue };
                        if e.is_exhausted() {
                            continue;
                        }
                        if s2 == s {
                            if e.admitted() != Some(true) {
                                return false;
                            }
                        } else if !e.quiesced(s) {
                            return false;
                        }
                    }
                }
                Engine::Restart => {}
            }
        }
        let summary = FoldSummary::compute(&self.trace, p);
        for engine in &mut self.engines {
            match engine {
                Engine::Identical(e) => {
                    if !e.is_exhausted() {
                        let mut base = vec![0u32; e.num_procs()];
                        base[s] = e.seq_len(s) as u32;
                        e.seal(&base);
                    }
                }
                Engine::PerProc {
                    viewers,
                    latched_unknown,
                    ..
                } => {
                    for (s2, v) in viewers.iter_mut().enumerate() {
                        if s2 == s {
                            if let Some(e) = v {
                                if e.is_exhausted() {
                                    // The viewer's verdict is lost for
                                    // good; remember that.
                                    *latched_unknown += 1;
                                }
                            }
                            *v = None;
                        } else if let Some(e) = v {
                            if !e.is_exhausted() {
                                let mut base = vec![0u32; e.num_procs()];
                                base[s] = e.seq_len(s) as u32;
                                e.seal(&base);
                            }
                        }
                    }
                }
                Engine::Restart => {}
            }
        }
        self.churn.apply_fold(p, slot, summary);
        true
    }

    /// Seal the current window if one is due: record the boundary
    /// verdicts and restart every engine from its surviving states.
    fn maybe_seal_window(&mut self) {
        let n = self.trace.len();
        let due = matches!(&self.window, Some(w) if w.due(n));
        if !due {
            return;
        }
        let verdicts = self.verdicts.clone();
        let mut sealed = 0u64;
        for engine in &mut self.engines {
            match engine {
                Engine::Identical(e) => sealed += seal_engine(e),
                Engine::PerProc { viewers, .. } => {
                    for e in viewers.iter_mut().flatten() {
                        sealed += seal_engine(e);
                    }
                }
                Engine::Restart => {}
            }
        }
        let w = self.window.as_mut().expect("window checked above");
        w.states_sealed += sealed;
        w.record(n, verdicts);
    }

    /// Serialize the complete session state — interned names, frontier
    /// engine arenas, verdicts, churn and window bookkeeping — to `w` in
    /// the versioned [`ckpt`] binary format.
    pub fn checkpoint(&self, w: &mut dyn std::io::Write) -> std::io::Result<()> {
        w.write_all(&ckpt::save(self))
    }

    /// [`Monitor::checkpoint`] into a fresh buffer.
    pub fn checkpoint_bytes(&self) -> Vec<u8> {
        ckpt::save(self)
    }

    /// Resume a session from a [`Monitor::checkpoint`] stream. The
    /// caller supplies the same models (in order) and a compatible
    /// configuration; mismatches, corruption, and truncation return
    /// `Err` naming the problem (with a byte offset where one applies).
    pub fn restore(
        r: &mut dyn std::io::Read,
        models: Vec<ModelSpec>,
        cfg: MonitorConfig,
    ) -> Result<Monitor, String> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)
            .map_err(|e| format!("reading checkpoint: {e}"))?;
        ckpt::load(&bytes, models, cfg)
    }

    /// [`Monitor::restore`] from an in-memory slice.
    pub fn restore_bytes(
        bytes: &[u8],
        models: Vec<ModelSpec>,
        cfg: MonitorConfig,
    ) -> Result<Monitor, String> {
        ckpt::load(bytes, models, cfg)
    }

    /// A verdict for `i` forced by already-decided models through the
    /// inclusion lattice, if any.
    fn propagate(&self, i: usize, decided: &[Option<TriVerdict>]) -> Option<TriVerdict> {
        for (j, v) in decided.iter().enumerate() {
            match v {
                Some(TriVerdict::Admitted) if self.stronger[j][i] => {
                    return Some(TriVerdict::Admitted)
                }
                Some(TriVerdict::Violated) if self.stronger[i][j] => {
                    return Some(TriVerdict::Violated)
                }
                _ => {}
            }
        }
        None
    }
}

fn view_op(ev: &TraceEvent) -> ViewOp {
    ViewOp {
        kind: ev.kind,
        loc: ev.loc,
        value: ev.value,
    }
}

/// Does viewing processor `v` include this event, given the remote
/// operation set `delta`? Own operations always; remote ones per `delta`.
fn in_view(ev: &TraceEvent, v: ProcId, delta: OperationSet) -> bool {
    ev.proc == v || delta == OperationSet::AllOps || ev.kind.is_write()
}

/// Replay the incorporated stream into a fresh shared-view engine. A
/// folded processor's events are not appended (its column is gone);
/// instead its writes are force-applied at their original stream
/// positions, so every later event replays against the same memory
/// sequence it originally saw. Forcing commits each folded write at its
/// issue point — the bounded-staleness summarization DESIGN §12
/// describes — rather than leaving it schedulable. Window seals are
/// re-applied at their recorded positions (`seals`, ascending): without
/// them the replay re-explores the unwindowed state space the live
/// engine sealed away, and a single rebuild can dwarf the whole stream.
#[allow(clippy::too_many_arguments)]
fn replay_identical(
    trace: &Trace,
    churn: &ChurnState,
    width: usize,
    locs: usize,
    max_states: usize,
    seals: &[usize],
    rebuild: &mut u64,
) -> FrontierEngine {
    let mut e = FrontierEngine::new(width, locs, max_states);
    let mut rep = AppendReport::default();
    let mut next_seal = 0usize;
    for (i, ev) in trace.events().iter().enumerate() {
        if next_seal < seals.len() && seals[next_seal] == i {
            seal_engine(&mut e);
            next_seal += 1;
        }
        if (i as u32) < churn.folded_upto(ev.proc) {
            if ev.kind.is_write() {
                e.force_write(ev.loc, ev.value);
            }
            continue;
        }
        let Some(s) = churn.slot(ev.proc) else {
            continue;
        };
        rep.absorb(e.append(ProcId(s), view_op(ev)));
    }
    if next_seal < seals.len() && seals[next_seal] == trace.events().len() {
        seal_engine(&mut e);
    }
    *rebuild += rep.created + rep.expanded;
    e
}

/// Build viewer `p`'s engine from scratch: every incorporated event
/// `p`'s view includes, with folded processors' writes force-applied at
/// their original stream positions and window seals re-applied at their
/// recorded positions (both as in [`replay_identical`]).
#[allow(clippy::too_many_arguments)]
fn seed_viewer(
    trace: &Trace,
    churn: &ChurnState,
    p: ProcId,
    delta: OperationSet,
    width: usize,
    locs: usize,
    max_states: usize,
    seals: &[usize],
    rebuild: &mut u64,
) -> FrontierEngine {
    let mut e = FrontierEngine::new(width, locs, max_states);
    let mut rep = AppendReport::default();
    let mut next_seal = 0usize;
    for (i, ev) in trace.events().iter().enumerate() {
        if next_seal < seals.len() && seals[next_seal] == i {
            seal_engine(&mut e);
            next_seal += 1;
        }
        if (i as u32) < churn.folded_upto(ev.proc) {
            // Writes are in every view, so a folded write lands here
            // regardless of `delta`; folded reads constrain nothing.
            if ev.kind.is_write() {
                e.force_write(ev.loc, ev.value);
            }
            continue;
        }
        let Some(s) = churn.slot(ev.proc) else {
            continue;
        };
        if in_view(ev, p, delta) {
            rep.absorb(e.append(ProcId(s), view_op(ev)));
        }
    }
    if next_seal < seals.len() && seals[next_seal] == trace.events().len() {
        seal_engine(&mut e);
    }
    *rebuild += rep.created + rep.expanded;
    e
}

/// Seal `e` at its decided boundary: an admitted engine keeps only its
/// complete states (committing to the prefix, restarting from the
/// surviving memory contents); an undecided or refuted one rebases
/// losslessly to the per-processor minimum already scheduled everywhere
/// (a refutation may still heal). Returns the states dropped.
fn seal_engine(e: &mut FrontierEngine) -> u64 {
    if e.is_exhausted() {
        return 0;
    }
    let base: Vec<u32> = if e.admitted() == Some(true) {
        (0..e.num_procs()).map(|q| e.seq_len(q) as u32).collect()
    } else {
        e.min_counts()
    };
    e.seal(&base).dropped as u64
}

fn tri_of(admitted: bool) -> TriVerdict {
    if admitted {
        TriVerdict::Admitted
    } else {
        TriVerdict::Violated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smc_core::models;
    use smc_history::trace::parse_trace;

    fn monitor(models: Vec<ModelSpec>) -> Monitor {
        Monitor::new(models, MonitorConfig::default())
    }

    #[test]
    fn empty_stream_admits_everything() {
        let m = monitor(models::lattice_models());
        assert!(m.verdicts().iter().all(|&v| v == TriVerdict::Admitted));
    }

    #[test]
    fn fig1_violates_sc_but_not_tso() {
        let t = parse_trace("p w(x)1\nq w(y)1\np r(y)0\nq r(x)0\n").unwrap();
        let mut m = monitor(vec![models::sc(), models::tso()]);
        m.feed_trace(&t);
        assert_eq!(m.verdicts()[0], TriVerdict::Violated);
        assert_eq!(m.verdicts()[1], TriVerdict::Admitted);
        // SC was fine until the last read arrived.
        assert_eq!(m.first_violation(0), Some(4));
        assert_eq!(m.first_violation(1), None);
    }

    #[test]
    fn violation_can_heal_and_is_still_recorded() {
        let mut m = monitor(vec![models::sc()]);
        m.feed("p", OpKind::Write, "x", 1, Label::Ordinary);
        m.feed("q", OpKind::Read, "x", 2, Label::Ordinary);
        assert_eq!(m.verdicts()[0], TriVerdict::Violated);
        m.feed("p", OpKind::Write, "x", 2, Label::Ordinary);
        assert_eq!(m.verdicts()[0], TriVerdict::Admitted);
        // The transient refutation is still on record.
        assert_eq!(m.first_violation(0), Some(2));
        let rep = m.violation_report(0).unwrap();
        assert_eq!(rep.prefix_len, 2);
        // Minimal counterexample: the lone stale read.
        assert_eq!(rep.minimized.num_ops(), 1);
        assert!(rep.litmus.contains("r(x)2"));
    }

    #[test]
    fn admitted_prefixes_have_no_violation_report() {
        let mut m = monitor(vec![models::sc()]);
        m.feed("p", OpKind::Write, "x", 1, Label::Ordinary);
        assert!(m.violation_report(0).is_none());
    }

    #[test]
    fn sc_admission_propagates_to_restart_models() {
        // Message passing read in order is SC; every weaker lattice
        // model must be decided without a re-check.
        let t = parse_trace("p w(d)1\np w(f)1\nq r(f)1\nq r(d)1\n").unwrap();
        let mut m = monitor(models::lattice_models());
        let report = m.feed_trace(&t);
        assert!(m.verdicts().iter().all(|&v| v == TriVerdict::Admitted));
        // SC and PRAM run on frontier engines; everything else is
        // propagated, never re-checked.
        assert_eq!(report.rechecks, 0);
        assert!(report.propagated > 0);
    }

    #[test]
    fn pram_refutation_propagates_upward() {
        // A PRAM violation (stale read of p's second write before its
        // first) forces every stronger model to Violated without
        // re-checking those that include PRAM.
        let t = parse_trace("p w(d)1\np w(f)1\nq r(f)1\nq r(d)0\n").unwrap();
        let mut m = monitor(models::lattice_models());
        m.feed_trace(&t);
        let names: Vec<&str> = m.models().iter().map(|s| s.name.as_str()).collect();
        for strong in ["SC", "TSO", "PC", "PCG", "CausalCoherent", "Causal", "PRAM"] {
            let i = names.iter().position(|n| *n == strong).unwrap();
            assert_eq!(m.verdicts()[i], TriVerdict::Violated, "{strong}");
        }
        // Coherent-only memory has no pipelining requirement.
        let i = names.iter().position(|n| *n == "Coherent").unwrap();
        assert_eq!(m.verdicts()[i], TriVerdict::Admitted);
    }

    #[test]
    fn mid_stream_growth_does_not_duplicate_the_new_event() {
        // Headerless: `p` first appears at the last event, forcing a
        // frontier rebuild. The rebuild must replay only the three
        // events already incorporated — if it also replays the new
        // `p w(x)1`, step()'s own append duplicates it and the doubled
        // write admits the order w1 r1 w2 w1 r1, flipping the verdict.
        let mut m = monitor(vec![models::sc()]);
        m.feed("q", OpKind::Read, "x", 1, Label::Ordinary);
        m.feed("q", OpKind::Write, "x", 2, Label::Ordinary);
        m.feed("q", OpKind::Read, "x", 1, Label::Ordinary);
        m.feed("p", OpKind::Write, "x", 1, Label::Ordinary);
        // The lone w(x)1 cannot sit both before the first r(x)1 and
        // after w(x)2 for the second, so SC refutes this prefix.
        assert_eq!(m.verdicts()[0], TriVerdict::Violated);
    }

    #[test]
    fn exhausted_frontier_falls_back_to_recheck() {
        // A one-state budget exhausts the SC frontier engine
        // immediately; the batch re-check fallback must still decide.
        let mut m = Monitor::new(
            vec![models::sc()],
            MonitorConfig {
                max_frontier_states: 1,
                ..MonitorConfig::default()
            },
        );
        m.feed("p", OpKind::Write, "x", 1, Label::Ordinary);
        m.feed("p", OpKind::Write, "x", 2, Label::Ordinary);
        m.feed("q", OpKind::Read, "x", 1, Label::Ordinary);
        // After r(x)1 placed the write of 1, nothing restores 0: SC
        // refutes this prefix, and only the re-check can say so.
        let rep = m.feed("q", OpKind::Read, "x", 0, Label::Ordinary);
        assert_eq!(m.verdicts()[0], TriVerdict::Violated);
        assert!(rep.rechecks > 0, "fallback should have re-checked");
        // A later w(x)0 heals the prefix (w1 r1 w2 w0 r0); the verdict
        // must not stay latched at Unknown or Violated.
        m.feed("p", OpKind::Write, "x", 0, Label::Ordinary);
        assert_eq!(m.verdicts()[0], TriVerdict::Admitted);
    }

    #[test]
    fn rebuild_replay_work_is_not_double_counted() {
        // Cumulative frontier totals must equal the sum of the per-step
        // reports even when mid-stream growth forces rebuilds — the
        // replay overhead goes to `rebuild_work`, not created/expanded.
        let mut declared = monitor(vec![models::sc(), models::pram()]);
        declared.declare_proc("p");
        declared.declare_proc("q");
        declared.declare_loc("x");
        let mut headerless = monitor(vec![models::sc(), models::pram()]);
        let stream = [
            ("p", OpKind::Write, 1i64),
            ("p", OpKind::Write, 2),
            ("q", OpKind::Read, 1),
            ("q", OpKind::Read, 2),
        ];
        let (mut step_created, mut step_expanded) = (0u64, 0u64);
        for (proc, kind, value) in stream {
            declared.feed(proc, kind, "x", value, Label::Ordinary);
            let rep = headerless.feed(proc, kind, "x", value, Label::Ordinary);
            step_created += rep.created;
            step_expanded += rep.expanded;
        }
        assert_eq!(declared.verdicts(), headerless.verdicts());
        let h = headerless.totals();
        assert_eq!(h.created, step_created);
        assert_eq!(h.expanded, step_expanded);
        assert_eq!(declared.totals().rebuild_work, 0);
        assert!(h.rebuild_work > 0, "mid-stream growth should rebuild");
    }

    #[test]
    fn feed_batch_matches_per_event_feeding() {
        // Batched feeding must land on the same final verdicts and
        // first-violation prefixes as one-event-at-a-time feeding, for
        // every way of cutting the stream into batches.
        let traces = [
            "p w(x)1\nq w(y)1\np r(y)0\nq r(x)0\n",
            "p w(d)1\np w(f)1\nq r(f)1\nq r(d)1\n",
            "p w(d)1\np w(f)1\nq r(f)1\nq r(d)0\n",
            // Mid-stream growth: `r` and `z` first appear late.
            "p w(x)1\nq r(x)1\nr w(z)2\np r(z)2\nq r(z)0\n",
        ];
        for text in traces {
            let t = parse_trace(text).unwrap();
            let mut by_event = monitor(models::lattice_models());
            for ev in t.events() {
                by_event.feed(
                    t.proc_name(ev.proc),
                    ev.kind,
                    t.loc_name(ev.loc),
                    ev.value.0,
                    ev.label,
                );
            }
            for batch in [1usize, 2, 3, t.len().max(1)] {
                let events: Vec<BatchEvent<'_>> = t
                    .events()
                    .iter()
                    .map(|ev| {
                        (
                            t.proc_name(ev.proc),
                            ev.kind,
                            t.loc_name(ev.loc),
                            ev.value.0,
                            ev.label,
                        )
                    })
                    .collect();
                let mut batched = monitor(models::lattice_models());
                for chunk in events.chunks(batch) {
                    batched.feed_batch(chunk);
                }
                assert_eq!(
                    batched.verdicts(),
                    by_event.verdicts(),
                    "batch={batch} trace={text:?}"
                );
                // Frontier-engine models keep event-exact first_violation
                // even inside a batch; fig1's SC refutation at prefix 4
                // must not be reported as "somewhere in the batch".
                for (i, first) in by_event.first_violation.iter().enumerate() {
                    if matches!(
                        batched.engines[i],
                        Engine::Identical(_) | Engine::PerProc { .. }
                    ) {
                        assert_eq!(batched.first_violation(i), *first, "model {i}");
                    }
                }
            }
        }
    }

    #[test]
    fn retired_processors_fold_and_slots_are_reused() {
        let mut m = Monitor::new(
            vec![models::sc(), models::pram()],
            MonitorConfig {
                window: Some(1),
                ..MonitorConfig::default()
            },
        );
        m.feed("p", OpKind::Write, "x", 1, Label::Ordinary);
        m.feed("q", OpKind::Read, "x", 1, Label::Ordinary);
        // The window seal quiesced every column, so the retirement
        // folds immediately.
        m.retire("p");
        assert_eq!(m.totals().retires, 1);
        assert_eq!(m.totals().folds, 1);
        // The freed slot goes to the next joiner; engine width stays 2.
        m.join("r");
        assert_eq!(m.totals().joins, 1);
        assert_eq!(m.churn().width(), 2);
        m.feed("r", OpKind::Write, "x", 2, Label::Ordinary);
        m.feed("q", OpKind::Read, "x", 2, Label::Ordinary);
        assert_eq!(m.verdicts()[0], TriVerdict::Admitted);
        assert_eq!(m.verdicts()[1], TriVerdict::Admitted);
    }

    #[test]
    fn windowing_bounds_frontier_states() {
        // Three processors writing disjoint locations: the exact
        // frontier holds every count vector — (n/3 + 1)^3 states —
        // while a sealed window restarts from the lone surviving
        // memory-contents state every four events.
        let mut plain = monitor(vec![models::sc()]);
        let mut windowed = Monitor::new(
            vec![models::sc()],
            MonitorConfig {
                window: Some(4),
                ..MonitorConfig::default()
            },
        );
        let (mut peak_plain, mut peak_windowed) = (0u64, 0u64);
        for i in 0..30 {
            let pname = ["p", "q", "r"][i % 3];
            let loc = ["x", "y", "z"][i % 3];
            let rp = plain.feed(pname, OpKind::Write, loc, i as i64, Label::Ordinary);
            let rw = windowed.feed(pname, OpKind::Write, loc, i as i64, Label::Ordinary);
            peak_plain = peak_plain.max(rp.frontier_states);
            peak_windowed = peak_windowed.max(rw.frontier_states);
            assert_eq!(plain.verdicts(), windowed.verdicts(), "event {i}");
        }
        assert_eq!(windowed.totals().windows_sealed, 7);
        assert!(windowed.totals().states_sealed > 0);
        assert!(
            peak_windowed * 10 < peak_plain,
            "windowed peak {peak_windowed} should be far below exact peak {peak_plain}"
        );
        let recs = windowed.windows().unwrap().records();
        assert_eq!(recs.len(), 7);
        assert!(recs.iter().all(|r| r.verdicts == [TriVerdict::Admitted]));
    }

    #[test]
    fn lifecycle_traces_apply_joins_and_retires_in_stream_order() {
        let text = "join p\np w(x)1\njoin q\nq r(x)1\nretire p\nq w(x)2\nq r(x)2\n";
        let t = parse_trace(text).unwrap();
        let mut m = Monitor::new(
            vec![models::sc(), models::pram()],
            MonitorConfig {
                window: Some(1),
                ..MonitorConfig::default()
            },
        );
        m.feed_trace(&t);
        assert_eq!(m.totals().joins, 2);
        assert_eq!(m.totals().retires, 1);
        assert_eq!(m.totals().folds, 1);
        assert!(m.verdicts().iter().all(|&v| v == TriVerdict::Admitted));
        // The fold summary carries p's last write forward.
        let s = &m.churn().summaries()[0];
        assert_eq!(s.last_writes.len(), 1);
        assert_eq!(s.last_writes[0].1, Value(1));
    }

    #[test]
    fn feed_batch_empty_is_a_no_op() {
        let mut m = monitor(vec![models::sc()]);
        m.feed("p", OpKind::Write, "x", 1, Label::Ordinary);
        let rep = m.feed_batch(&[]);
        assert_eq!(rep.events, 1);
        assert_eq!(rep.rechecks, 0);
        assert_eq!(m.verdicts()[0], TriVerdict::Admitted);
    }

    #[test]
    fn mid_stream_processor_growth_rebuilds_consistently() {
        // No headers: the second processor appears only at event 3.
        let mut m = monitor(vec![models::sc(), models::pram()]);
        m.feed("p", OpKind::Write, "x", 1, Label::Ordinary);
        m.feed("p", OpKind::Write, "x", 2, Label::Ordinary);
        m.feed("q", OpKind::Read, "x", 1, Label::Ordinary);
        // q read the overwritten value: fine for PRAM (q's view may
        // lag), refuted by SC? No — w1 w2 then r1 is not SC, but
        // w1 r1 w2 is a legal SC order. Both admit.
        assert_eq!(m.verdicts()[0], TriVerdict::Admitted);
        assert_eq!(m.verdicts()[1], TriVerdict::Admitted);
        m.feed("q", OpKind::Read, "x", 0, Label::Ordinary);
        // ...but reading the initial value after value 1 breaks both.
        assert_eq!(m.verdicts()[0], TriVerdict::Violated);
        assert_eq!(m.verdicts()[1], TriVerdict::Violated);
    }
}

//! A sequence lock: consistent multi-word snapshots from plain reads and
//! writes.

use crate::ast::{Expr as E, Instr as I, LocRef, Program};
use smc_history::Label;

/// Build a single-writer seqlock with a two-word payload.
///
/// The writer bumps the version to odd, writes both payload words, and
/// bumps it to even; the reader samples the version, reads the payload,
/// re-samples, and retries unless the version was even and unchanged —
/// then asserts the two payload words belong to the same generation.
///
/// The protocol relies only on *per-writer write order* reaching readers
/// intact: correct on SC, TSO, PRAM and causal memory; broken on
/// memories that reorder one processor's writes across locations (the
/// coherent-only machine, RC/hybrid with ordinary accesses).
///
/// Array layout: `v` (array 0), `d1` (array 1), `d2` (array 2).
/// Registers: `r0` first version sample, `r1` scratch, `r2` = d1,
/// `r3` = d2.
pub fn seqlock(generations: i64, label: Label) -> Program {
    assert!(generations >= 1);
    let (v, d1, d2) = (0usize, 1usize, 2usize);
    // Writer: one pass per generation g = 1..=generations writes payload
    // (10g+1, 10g+2) bracketed by versions 2g-1 (odd) and 2g (even).
    let mut writer = Vec::new();
    for g in 1..=generations {
        writer.push(I::Write {
            loc: LocRef::at(v, 0),
            value: E::c(2 * g - 1),
            label,
        });
        writer.push(I::Write {
            loc: LocRef::at(d1, 0),
            value: E::c(10 * g + 1),
            label: Label::Ordinary,
        });
        writer.push(I::Write {
            loc: LocRef::at(d2, 0),
            value: E::c(10 * g + 2),
            label: Label::Ordinary,
        });
        writer.push(I::Write {
            loc: LocRef::at(v, 0),
            value: E::c(2 * g),
            label,
        });
    }
    writer.push(I::Halt);

    // Reader: retry loop.
    let mut reader = Vec::new();
    let retry = reader.len(); // 0
    reader.push(I::Read {
        loc: LocRef::at(v, 0),
        reg: 0,
        label,
    });
    // Odd version means the writer is mid-update: retry. The language
    // has no modulo, but the version range is bounded by `generations`,
    // so parity is an explicit disjunction over the odd values.
    let mut odd = E::c(0);
    for g in 1..=generations {
        odd = E::or(odd, E::eq(E::r(0), E::c(2 * g - 1)));
    }
    reader.push(I::BranchIf {
        cond: odd,
        target: retry,
    });
    reader.push(I::Read {
        loc: LocRef::at(d1, 0),
        reg: 2,
        label: Label::Ordinary,
    });
    reader.push(I::Read {
        loc: LocRef::at(d2, 0),
        reg: 3,
        label: Label::Ordinary,
    });
    reader.push(I::Read {
        loc: LocRef::at(v, 0),
        reg: 1,
        label,
    });
    reader.push(I::BranchIf {
        cond: E::ne(E::r(0), E::r(1)),
        target: retry,
    });
    // Stable even version: the payload must be one generation's pair
    // (d2 == d1 + 1), or still the initial (0, 0).
    reader.push(I::Assert {
        cond: E::or(
            E::eq(E::r(3), E::add(E::r(2), E::c(1))),
            E::and(E::eq(E::r(2), E::c(0)), E::eq(E::r(3), E::c(0))),
        ),
        msg: "torn seqlock read: payload words from different generations".into(),
    });
    reader.push(I::Halt);

    let p = Program {
        arrays: vec![("v".into(), 1), ("d1".into(), 1), ("d2".into(), 1)],
        threads: vec![writer, reader],
        num_regs: 4,
    };
    debug_assert!(p.validate().is_ok());
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::ProgramWorkload;
    use smc_sim::explore::{explore, ExploreConfig};
    use smc_sim::mem::MemorySystem;
    use smc_sim::{CausalMem, CoherentMem, PramMem, ScMem, TsoMem};

    fn hunt<M: MemorySystem>(mem: M, op_limit: u32) -> Option<String> {
        let p = seqlock(1, smc_history::Label::Ordinary);
        let w = ProgramWorkload::new(p, op_limit);
        let cfg = ExploreConfig {
            collect_histories: false,
            ..Default::default()
        };
        explore(&mem, &w, &cfg).violation.map(|(m, _)| m)
    }

    #[test]
    fn safe_where_writer_order_survives() {
        assert_eq!(hunt(ScMem::new(2, 3), 16), None);
        assert_eq!(hunt(TsoMem::new(2, 3), 16), None);
        assert_eq!(hunt(PramMem::new(2, 3), 16), None);
        assert_eq!(hunt(CausalMem::new(2, 3), 16), None);
    }

    #[test]
    fn torn_read_on_reordering_memory() {
        let v = hunt(CoherentMem::new(2, 3), 16);
        assert!(v.unwrap().contains("torn"), "expected a torn read");
    }

    #[test]
    fn two_generations_safe_on_sc() {
        let p = seqlock(2, smc_history::Label::Ordinary);
        for seed in 0..40 {
            let w = ProgramWorkload::new(p.clone(), 60);
            let r = smc_sim::sched::run_random(ScMem::new(2, 3), w, seed, 100_000);
            assert!(r.violation.is_none(), "seed {seed}: {:?}", r.violation);
        }
    }
}

//! The program representation.

use smc_history::Label;

/// A register- and constant-valued expression, evaluated thread-locally.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A literal.
    Const(i64),
    /// The current value of a register.
    Reg(usize),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Maximum of the operands.
    Max(Box<Expr>, Box<Expr>),
    /// Equality (`1` or `0`).
    Eq(Box<Expr>, Box<Expr>),
    /// Strictly less-than (`1` or `0`).
    Lt(Box<Expr>, Box<Expr>),
    /// Logical and (operands interpreted as booleans: nonzero = true).
    And(Box<Expr>, Box<Expr>),
    /// Logical or.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// The Bakery algorithm's lexicographic ticket order:
    /// `(a, b) < (c, d)`.
    LexLt {
        /// First component of the left pair.
        a: Box<Expr>,
        /// Second component of the left pair.
        b: Box<Expr>,
        /// First component of the right pair.
        c: Box<Expr>,
        /// Second component of the right pair.
        d: Box<Expr>,
    },
}

impl Expr {
    /// Shorthand constructors keep the algorithm builders readable.
    pub fn c(v: i64) -> Expr {
        Expr::Const(v)
    }

    /// Register reference.
    pub fn r(i: usize) -> Expr {
        Expr::Reg(i)
    }

    /// `a + b`.
    #[allow(clippy::should_implement_trait)] // DSL constructor, not ops::Add
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }

    /// `max(a, b)`.
    pub fn max(a: Expr, b: Expr) -> Expr {
        Expr::Max(Box::new(a), Box::new(b))
    }

    /// `a == b`.
    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::Eq(Box::new(a), Box::new(b))
    }

    /// `a != b`.
    pub fn ne(a: Expr, b: Expr) -> Expr {
        Expr::Not(Box::new(Expr::eq(a, b)))
    }

    /// `a < b`.
    pub fn lt(a: Expr, b: Expr) -> Expr {
        Expr::Lt(Box::new(a), Box::new(b))
    }

    /// `a || b`.
    pub fn or(a: Expr, b: Expr) -> Expr {
        Expr::Or(Box::new(a), Box::new(b))
    }

    /// `a && b`.
    pub fn and(a: Expr, b: Expr) -> Expr {
        Expr::And(Box::new(a), Box::new(b))
    }

    /// `!a`.
    #[allow(clippy::should_implement_trait)] // DSL constructor, not ops::Not
    pub fn not(a: Expr) -> Expr {
        Expr::Not(Box::new(a))
    }

    /// `(a, b) < (c, d)` lexicographically.
    pub fn lex_lt(a: Expr, b: Expr, c: Expr, d: Expr) -> Expr {
        Expr::LexLt {
            a: Box::new(a),
            b: Box::new(b),
            c: Box::new(c),
            d: Box::new(d),
        }
    }
}

/// A reference to a shared location: an array plus a computed index.
///
/// Scalars are arrays of length 1 with index `Const(0)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LocRef {
    /// Index into the program's array table.
    pub array: usize,
    /// Element index, evaluated at access time.
    pub index: Expr,
}

impl LocRef {
    /// `array[index]` with a constant index.
    pub fn at(array: usize, index: i64) -> Self {
        LocRef {
            array,
            index: Expr::Const(index),
        }
    }

    /// `array[reg]`.
    pub fn at_reg(array: usize, reg: usize) -> Self {
        LocRef {
            array,
            index: Expr::Reg(reg),
        }
    }
}

/// One instruction. `Read`/`Write` touch shared memory; everything else
/// is thread-local.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Load a shared location into a register.
    Read {
        /// Source location.
        loc: LocRef,
        /// Destination register.
        reg: usize,
        /// Ordinary or labeled access.
        label: Label,
    },
    /// Store an expression's value to a shared location.
    Write {
        /// Target location.
        loc: LocRef,
        /// Value to store.
        value: Expr,
        /// Ordinary or labeled access.
        label: Label,
    },
    /// `reg := value`.
    Assign {
        /// Destination register.
        reg: usize,
        /// Evaluated expression.
        value: Expr,
    },
    /// Jump to `target` when `cond` is nonzero.
    BranchIf {
        /// Branch condition.
        cond: Expr,
        /// Destination instruction index within the thread.
        target: usize,
    },
    /// Unconditional jump.
    Jump(usize),
    /// Enter the critical section (checked by the mutual-exclusion
    /// monitor).
    EnterCs,
    /// Leave the critical section.
    ExitCs,
    /// Fail with `msg` if `cond` is zero.
    Assert {
        /// Must evaluate nonzero.
        cond: Expr,
        /// Violation message.
        msg: String,
    },
    /// Terminate the thread.
    Halt,
}

impl Instr {
    /// `true` for instructions that access shared memory.
    pub fn is_memory_op(&self) -> bool {
        matches!(self, Instr::Read { .. } | Instr::Write { .. })
    }
}

/// A complete multi-threaded program.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Program {
    /// Shared arrays: `(name, length)`. Location ids are assigned
    /// contiguously in declaration order.
    pub arrays: Vec<(String, usize)>,
    /// Instruction list per thread.
    pub threads: Vec<Vec<Instr>>,
    /// Registers per thread (all initially 0).
    pub num_regs: usize,
}

impl Program {
    /// Total number of shared locations.
    pub fn num_locs(&self) -> usize {
        self.arrays.iter().map(|&(_, len)| len).sum()
    }

    /// The flat location id of `array[index]`.
    ///
    /// # Panics
    /// Panics if the array id or index is out of range.
    pub fn loc_id(&self, array: usize, index: usize) -> usize {
        assert!(index < self.arrays[array].1, "array index out of range");
        self.arrays[..array]
            .iter()
            .map(|&(_, len)| len)
            .sum::<usize>()
            + index
    }

    /// Display names for every location (`x` for scalars, `a[i]` for
    /// arrays).
    pub fn loc_names(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.num_locs());
        for (name, len) in &self.arrays {
            if *len == 1 {
                out.push(name.clone());
            } else {
                for i in 0..*len {
                    out.push(format!("{name}[{i}]"));
                }
            }
        }
        out
    }

    /// Structural sanity checks: branch targets in range, register and
    /// array ids in range.
    pub fn validate(&self) -> Result<(), String> {
        fn check_expr(e: &Expr, num_regs: usize) -> Result<(), String> {
            match e {
                Expr::Const(_) => Ok(()),
                Expr::Reg(r) => {
                    if *r < num_regs {
                        Ok(())
                    } else {
                        Err(format!("register r{r} out of range"))
                    }
                }
                Expr::Add(a, b)
                | Expr::Sub(a, b)
                | Expr::Max(a, b)
                | Expr::Eq(a, b)
                | Expr::Lt(a, b)
                | Expr::And(a, b)
                | Expr::Or(a, b) => {
                    check_expr(a, num_regs)?;
                    check_expr(b, num_regs)
                }
                Expr::Not(a) => check_expr(a, num_regs),
                Expr::LexLt { a, b, c, d } => {
                    check_expr(a, num_regs)?;
                    check_expr(b, num_regs)?;
                    check_expr(c, num_regs)?;
                    check_expr(d, num_regs)
                }
            }
        }
        for (t, code) in self.threads.iter().enumerate() {
            for (i, instr) in code.iter().enumerate() {
                let ctx = format!("thread {t} instr {i}");
                match instr {
                    Instr::Read { loc, reg, .. } => {
                        if loc.array >= self.arrays.len() {
                            return Err(format!("{ctx}: bad array id"));
                        }
                        if *reg >= self.num_regs {
                            return Err(format!("{ctx}: bad register"));
                        }
                        check_expr(&loc.index, self.num_regs).map_err(|e| format!("{ctx}: {e}"))?;
                    }
                    Instr::Write { loc, value, .. } => {
                        if loc.array >= self.arrays.len() {
                            return Err(format!("{ctx}: bad array id"));
                        }
                        check_expr(&loc.index, self.num_regs).map_err(|e| format!("{ctx}: {e}"))?;
                        check_expr(value, self.num_regs).map_err(|e| format!("{ctx}: {e}"))?;
                    }
                    Instr::Assign { reg, value } => {
                        if *reg >= self.num_regs {
                            return Err(format!("{ctx}: bad register"));
                        }
                        check_expr(value, self.num_regs).map_err(|e| format!("{ctx}: {e}"))?;
                    }
                    Instr::BranchIf { cond, target } => {
                        check_expr(cond, self.num_regs).map_err(|e| format!("{ctx}: {e}"))?;
                        if *target >= code.len() {
                            return Err(format!("{ctx}: branch target out of range"));
                        }
                    }
                    Instr::Jump(target) => {
                        if *target >= code.len() {
                            return Err(format!("{ctx}: jump target out of range"));
                        }
                    }
                    Instr::Assert { cond, .. } => {
                        check_expr(cond, self.num_regs).map_err(|e| format!("{ctx}: {e}"))?;
                    }
                    Instr::EnterCs | Instr::ExitCs | Instr::Halt => {}
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_ids_are_contiguous() {
        let p = Program {
            arrays: vec![
                ("choosing".into(), 2),
                ("number".into(), 2),
                ("d".into(), 1),
            ],
            threads: vec![],
            num_regs: 0,
        };
        assert_eq!(p.num_locs(), 5);
        assert_eq!(p.loc_id(0, 0), 0);
        assert_eq!(p.loc_id(0, 1), 1);
        assert_eq!(p.loc_id(1, 0), 2);
        assert_eq!(p.loc_id(2, 0), 4);
        assert_eq!(
            p.loc_names(),
            vec!["choosing[0]", "choosing[1]", "number[0]", "number[1]", "d"]
        );
    }

    #[test]
    fn validate_catches_bad_targets_and_regs() {
        let mut p = Program {
            arrays: vec![("x".into(), 1)],
            threads: vec![vec![Instr::Jump(5)]],
            num_regs: 1,
        };
        assert!(p.validate().is_err());
        p.threads = vec![vec![Instr::Assign {
            reg: 3,
            value: Expr::c(0),
        }]];
        assert!(p.validate().is_err());
        p.threads = vec![vec![
            Instr::Read {
                loc: LocRef::at(0, 0),
                reg: 0,
                label: Label::Ordinary,
            },
            Instr::Halt,
        ]];
        assert!(p.validate().is_ok());
    }
}

//! The litmus-test corpus: the paper's figures plus classic shapes, each
//! annotated with the expected verdict per memory model.
//!
//! Expectations use the checker's model names (`SC`, `TSO`, `PC`, `PRAM`,
//! `Causal`, `Coherent`, `CausalCoherent`, `RCsc`, `RCpc`); tests omit
//! models for which the verdict is uninteresting. The corpus is consumed
//! by the integration suite (every expectation is checked), by the
//! Figure 5 lattice harness, and by the `table_matrix` binary.

use smc_history::litmus::{parse_suite, LitmusTest};

/// The corpus source, in the litmus suite format of
/// [`smc_history::litmus`].
pub const SUITE_TEXT: &str = r#"
# ---- The paper's worked examples --------------------------------------

test fig1 "store buffering: allowed by TSO, not by SC (paper Fig. 1)" {
    p: w(x)1 r(y)0
    q: w(y)1 r(x)0
} expect { SC: no, TSO: yes, PC: yes, PRAM: yes, Causal: yes,
           Coherent: yes, CausalCoherent: yes, PCG: yes, Hybrid: yes }

test fig2 "allowed by PC, not by TSO (paper Fig. 2)" {
    p: w(x)1
    q: r(x)1 w(y)1
    r: r(y)1 r(x)0
} expect { SC: no, TSO: no, PC: yes, PRAM: yes, Causal: no,
           Coherent: yes, CausalCoherent: no, PCG: yes }

test fig3 "allowed by PRAM, not by TSO (paper Fig. 3)" {
    p: w(x)1 r(x)1 r(x)2
    q: w(x)2 r(x)2 r(x)1
} expect { SC: no, TSO: no, PC: no, PRAM: yes, Causal: yes,
           Coherent: no, CausalCoherent: no, PCG: no, Hybrid: yes }

test fig4 "allowed by causal, not by TSO (paper Fig. 4)" {
    p: w(x)1 w(y)1
    q: r(y)1 w(z)1 r(x)2
    r: w(x)2 r(x)1 r(z)1 r(y)1
} expect { SC: no, TSO: no, PC: no, PRAM: yes, Causal: yes,
           Coherent: yes, CausalCoherent: no, PCG: no }

# ---- Classic shapes ----------------------------------------------------

test mp_stale "message passing with a stale data read" {
    p: w(d)1 w(f)1
    q: r(f)1 r(d)0
} expect { SC: no, TSO: no, PC: no, PRAM: no, Causal: no,
           Coherent: yes, CausalCoherent: no, RCsc: yes, RCpc: yes,
           PCG: no, Hybrid: yes, WO: yes }

test mp_fresh "message passing done right" {
    p: w(d)1 w(f)1
    q: r(f)1 r(d)1
} expect { SC: yes, TSO: yes, PC: yes, PRAM: yes, Causal: yes,
           Coherent: yes, CausalCoherent: yes, RCsc: yes, RCpc: yes,
           PCG: yes, Hybrid: yes, WO: yes }

test sb_fwd "store buffering with own-write reads: paper-TSO forbids (no forwarding in ppo)" {
    p: w(x)1 r(x)1 r(y)0
    q: w(y)1 r(y)1 r(x)0
} expect { SC: no, TSO: no, PC: yes, PRAM: yes, Causal: yes,
           Coherent: yes, PCG: yes }

test iriw "independent reads of independent writes" {
    p: w(x)1
    q: w(y)1
    r: r(x)1 r(y)0
    s: r(y)1 r(x)0
} expect { SC: no, TSO: no, PC: yes, PRAM: yes, Causal: yes,
           Coherent: yes, CausalCoherent: yes, PCG: yes, Hybrid: yes }

test corr "two readers disagree on the order of two writes" {
    p: w(x)1
    q: w(x)2
    r: r(x)1 r(x)2
    s: r(x)2 r(x)1
} expect { SC: no, TSO: no, PC: no, PRAM: yes, Causal: yes,
           Coherent: no, CausalCoherent: no, PCG: no, Hybrid: yes }

# PC's ordering (sem = ppo ∪ rwb ∪ rrb) does NOT include the plain
# writes-before edge, so the paper's PC admits the load-buffering cycle:
# each view can place the remote write before the local read. Causal
# memory's wb edge makes the cycle visible and forbids it; TSO's store
# order does too.
test lb "load buffering: reads of values written later in program order" {
    p: r(x)1 w(y)1
    q: r(y)1 w(x)1
} expect { SC: no, TSO: no, PC: yes, PRAM: yes, Causal: no,
           Coherent: yes, CausalCoherent: no, PCG: yes, Hybrid: yes }

# A write-read-causality chain through a second writer of the SAME
# location: coherence pins w(x)1 before w(x)2 (the second writer read 1
# first), so the observer reading 2-then-1 is forbidden by every
# coherent model AND by causal memory (w1 →co w2); only PRAM and hybrid,
# blind to cross-processor write order, admit it.
test wrc_coherence "second writer read the first value; observer sees them reversed" {
    p: w(x)1
    q: r(x)1 w(x)2
    r: r(x)2 r(x)1
} expect { SC: no, TSO: no, PC: no, PCG: no, Coherent: no,
           Causal: no, CausalCoherent: no, PRAM: yes, Hybrid: yes }

# Each processor reads the OTHER's write before issuing its own: a
# coherence cycle (each view must place its own write after the other's)
# and a causal cycle (wb + po). PRAM's independent views shrug.
test corw2 "mutual read-then-overwrite of one location" {
    p: r(x)2 w(x)1
    q: r(x)1 w(x)2
} expect { SC: no, TSO: no, PC: no, PCG: no, Coherent: no,
           Causal: no, CausalCoherent: no, PRAM: yes, Hybrid: yes }

test coww "same-processor same-location writes stay ordered everywhere" {
    p: w(x)1 w(x)2
    q: r(x)2 r(x)1
} expect { SC: no, TSO: no, PC: no, PRAM: no, Causal: no, Coherent: no,
           PCG: no, CausalCoherent: no, Hybrid: yes, RCsc: no, RCpc: no }

# ---- Section 7: the new combination models --------------------------------
# Verdicts below were harvested by exhaustive search over small history
# universes (smc-core's histgen) followed by running the checker itself;
# each test pins a separation the combination models introduce.

# Goodman's PC keeps the full program order but drops DASH PC's
# semi-causal edges. Here q's program order pins the x-coherence order to
# 2-then-1; DASH's rwb edge w(x)2 -> r(x)1 then drags w(y)1 behind both
# x-writes in r's view, where r(x)0 has nowhere legal left. PCG has no
# such edge: r may order w(y)1 r(y)1 r(x)0 before either x-write.
test pcg_vs_pc "Goodman's PC admits what DASH's PC refutes (Section 3.3)" {
    p: r(x)1 w(y)1
    q: w(x)2 w(x)1
    r: r(y)1 r(x)0
} expect { SC: no, TSO: no, PC: no, PCG: yes, CausalCoherent: no,
           Causal: no, PRAM: yes, Coherent: yes, RCsc: yes, RCpc: yes,
           WO: yes, Hybrid: yes }

# PRAM alone admits this history, coherent-only memory alone admits it,
# yet their Section 7 combination (PCG) refutes it: coherence forces
# p's w(y)1 before q's w(y)1 in every view, and then r's full program
# order (r(y)1 before r(x)0 before the x-write that po-precedes p's
# w(y)1) closes a cycle. The combination is strictly stronger than the
# intersection of its parts.
test pcg_strict "PCG refutes what PRAM and coherence each admit" {
    p: w(x)1 w(y)1
    q: r(y)1 w(y)1
    r: r(y)1 r(x)0
} expect { SC: no, TSO: no, PC: no, PCG: no, CausalCoherent: no,
           Causal: no, PRAM: yes, Coherent: yes, RCsc: yes, RCpc: yes,
           WO: yes, Hybrid: yes }

# The same phenomenon for causal+coherent: causal memory admits it,
# coherent memory admits it (TSO and even DASH PC do too), but the
# combined model refutes it. Reading y=2 then y=1 needs the coherence
# order w(y)2 before w(y)1; causality then routes r's w(y)1 after p's
# w(x)1, and r's own r(x)0 has no legal slot.
test cc_strict "CausalCoherent refutes what causal and coherence each admit" {
    p: w(x)1 w(y)2
    q: r(y)2 r(y)1
    r: w(y)1 r(x)0
} expect { SC: no, TSO: yes, PC: yes, PCG: no, CausalCoherent: no,
           Causal: yes, PRAM: yes, Coherent: yes, RCsc: yes, RCpc: yes,
           WO: yes, Hybrid: yes }

# Each processor reads the value the OTHER will write, then writes it: a
# future-read exchange. Every model with a mutual-consistency condition
# on writes (coherence or a store order) refutes it; PRAM admits it, and
# hybrid consistency — whose only cross-view condition is agreement on
# LABELED operations, absent here — admits it too.
test hybrid_uncoherent "mutual future reads: only PRAM-like views admit" {
    p: r(x)1 w(x)1
    q: r(x)1 w(x)1
} expect { SC: no, TSO: no, PC: no, PCG: no, CausalCoherent: no,
           Causal: no, PRAM: yes, Coherent: no, RCsc: no, RCpc: no,
           WO: no, Hybrid: yes }

# corr with every operation labeled. Unlabeled memory models treat this
# exactly like corr (causal memory and PRAM admit it), but hybrid's
# agreement condition on labeled operations now bites: c and d observe
# the two labeled writes in opposite orders, so there is no common
# relative order and hybrid refutes — as do all the SC/PC-labeled
# bracketing models.
test corr_labeled "labeled readers disagree on labeled write order" {
    a: wl(s)1
    b: wl(s)2
    c: rl(s)1 rl(s)2
    d: rl(s)2 rl(s)1
} expect { SC: no, TSO: no, PC: no, PCG: no, CausalCoherent: no,
           Causal: yes, PRAM: yes, Coherent: no, RCsc: no, RCpc: no,
           WO: no, Hybrid: no }

# ---- Release consistency (paper Section 3.4 / Section 5) ---------------

test rc_mp_stale "labeled handshake with a stale read: bracketing forbids" {
    q: w(d)1 wl(s)1
    p: rl(s)1 r(d)0
} expect { RCsc: no, RCpc: no, SC: no, WO: no, Hybrid: no }

test rc_mp_fresh "labeled handshake reading fresh data" {
    q: w(d)1 wl(s)1
    p: rl(s)1 r(d)1
} expect { RCsc: yes, RCpc: yes, SC: yes, WO: yes, Hybrid: yes }

test rc_unbracketed "no labels: RC places almost no constraints" {
    p: w(d)1 w(f)1
    q: r(f)1 r(d)0
} expect { RCsc: yes, RCpc: yes, WO: yes }

# RC releases fence only the operations BEFORE them; an ordinary write
# issued AFTER a release may become visible before it. Weak ordering's
# full fences forbid exactly that, separating WO from RC_sc.
test wo_release_fence "ordinary write overtakes the release that precedes it" {
    q: wl(s)1 w(d)1
    p: r(d)1 rl(s)0
} expect { RCsc: yes, RCpc: yes, WO: no, SC: no, Hybrid: no }

# Transitive synchronization: p0 releases s after writing d; p1 acquires
# s and releases t; p2 acquires t and reads d. RC_sc's common labeled
# order forces wl(s) before wl(t), so p2 must see the data. RC_pc's
# per-processor labeled views do NOT order the two releases for p2 —
# synchronization does not compose transitively under RC_pc.
test rc_transitive_stale "stale read through a release chain" {
    p0: w(d)1 wl(s)1
    p1: rl(s)1 wl(t)1
    p2: rl(t)1 r(d)0
} expect { RCsc: no, RCpc: yes, WO: no, Hybrid: no }

test rc_transitive_fresh "fresh read through a release chain" {
    p0: w(d)1 wl(s)1
    p1: rl(s)1 wl(t)1
    p2: rl(t)1 r(d)1
} expect { RCsc: yes, RCpc: yes, WO: yes, Hybrid: yes, SC: yes }

test bakery_s5 "Section 5: both processors pass the Bakery doorway blind" {
    p1: wl(choosing[0])1 rl(number[1])0 wl(number[0])1 wl(choosing[0])0 rl(choosing[1])0 rl(number[1])0
    p2: wl(choosing[1])1 rl(number[0])0 wl(number[1])1 wl(choosing[1])0 rl(choosing[0])0 rl(number[0])0
} expect { RCsc: no, RCpc: yes, WO: no, Hybrid: no }
"#;

/// Parse the embedded corpus.
///
/// # Panics
/// Panics if the embedded text fails to parse (a build-time defect,
/// caught by tests).
pub fn litmus_suite() -> Vec<LitmusTest> {
    parse_suite(SUITE_TEXT).expect("embedded corpus must parse")
}

/// Look up one corpus entry by name.
pub fn by_name(name: &str) -> Option<LitmusTest> {
    litmus_suite().into_iter().find(|t| t.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_parses_and_is_well_formed() {
        let suite = litmus_suite();
        assert!(suite.len() >= 15);
        for t in &suite {
            t.history.validate().unwrap();
            assert!(!t.expectations.is_empty(), "{} has no expectations", t.name);
        }
    }

    #[test]
    fn names_are_unique() {
        let suite = litmus_suite();
        let mut names: Vec<_> = suite.iter().map(|t| t.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), suite.len());
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("fig1").is_some());
        assert!(by_name("bakery_s5").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn every_expectation_names_a_known_model() {
        // Guards against typos in the suite text.
        for t in litmus_suite() {
            for (model, _) in &t.expectations {
                assert!(
                    smc_core::models::by_name(model).is_some(),
                    "{}: unknown model `{model}`",
                    t.name
                );
            }
        }
    }
}

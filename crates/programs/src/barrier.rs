//! A flag-based barrier: the data-then-flag idiom, n-way.

use crate::ast::{Expr as E, Instr as I, LocRef, Program};
use smc_history::Label;

/// Build an `n`-thread one-shot barrier from plain reads and writes:
/// every thread publishes a datum, raises its flag (with `sync_label`),
/// spins until every other flag is up, and then asserts it can read
/// every other thread's datum.
///
/// The assertion holds on any memory that delivers one processor's
/// writes in order (SC, TSO, PRAM, causal — and RC/WO when the flags are
/// labeled), and fails on memories that reorder a processor's writes
/// across locations (the coherent-only machine, RC with ordinary flags).
///
/// Array layout: `data[n]` (array 0), `flag[n]` (array 1).
/// Registers: `r0` scratch.
pub fn barrier(n: usize, sync_label: Label) -> Program {
    assert!(n >= 2, "a barrier needs at least two threads");
    let (data, flag) = (0usize, 1usize);
    let threads = (0..n)
        .map(|i| {
            let mut code = Vec::new();
            // Publish datum, then raise the flag.
            code.push(I::Write {
                loc: LocRef::at(data, i as i64),
                value: E::c(i as i64 + 1),
                label: Label::Ordinary,
            });
            code.push(I::Write {
                loc: LocRef::at(flag, i as i64),
                value: E::c(1),
                label: sync_label,
            });
            // Wait for everyone else's flag.
            for j in 0..n {
                if j == i {
                    continue;
                }
                let spin = code.len();
                code.push(I::Read {
                    loc: LocRef::at(flag, j as i64),
                    reg: 0,
                    label: sync_label,
                });
                code.push(I::BranchIf {
                    cond: E::eq(E::r(0), E::c(0)),
                    target: spin,
                });
            }
            // Behind the barrier: every datum must be visible.
            for j in 0..n {
                if j == i {
                    continue;
                }
                code.push(I::Read {
                    loc: LocRef::at(data, j as i64),
                    reg: 0,
                    label: Label::Ordinary,
                });
                code.push(I::Assert {
                    cond: E::eq(E::r(0), E::c(j as i64 + 1)),
                    msg: format!("thread saw stale data[{j}] after the barrier"),
                });
            }
            code.push(I::Halt);
            code
        })
        .collect();
    let p = Program {
        arrays: vec![("data".into(), n), ("flag".into(), n)],
        threads,
        num_regs: 1,
    };
    debug_assert!(p.validate().is_ok());
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::ProgramWorkload;
    use smc_sim::explore::{explore, ExploreConfig};
    use smc_sim::mem::MemorySystem;
    use smc_sim::rc::{RcMem, SyncMode};
    use smc_sim::{CausalMem, CoherentMem, PramMem, ScMem, TsoMem, WoMem};

    fn hunt<M: MemorySystem>(mem: M, label: Label, op_limit: u32) -> Option<String> {
        let p = barrier(2, label);
        let w = ProgramWorkload::new(p, op_limit);
        let cfg = ExploreConfig {
            collect_histories: false,
            ..Default::default()
        };
        explore(&mem, &w, &cfg).violation.map(|(m, _)| m)
    }

    #[test]
    fn safe_on_ordered_delivery_machines() {
        assert_eq!(hunt(ScMem::new(2, 4), Label::Ordinary, 10), None);
        assert_eq!(hunt(TsoMem::new(2, 4), Label::Ordinary, 10), None);
        assert_eq!(hunt(PramMem::new(2, 4), Label::Ordinary, 10), None);
        assert_eq!(hunt(CausalMem::new(2, 4), Label::Ordinary, 10), None);
    }

    #[test]
    fn unlabeled_breaks_on_reordering_machines() {
        let v = hunt(CoherentMem::new(2, 4), Label::Ordinary, 10);
        assert!(v.unwrap().contains("stale"));
        let v = hunt(RcMem::new(SyncMode::Sc, 2, 4), Label::Ordinary, 10);
        assert!(v.unwrap().contains("stale"));
    }

    #[test]
    fn labeled_flags_restore_safety_on_rc_and_wo() {
        assert_eq!(
            hunt(RcMem::new(SyncMode::Sc, 2, 4), Label::Labeled, 10),
            None
        );
        assert_eq!(
            hunt(RcMem::new(SyncMode::Pc, 2, 4), Label::Labeled, 10),
            None
        );
        assert_eq!(hunt(WoMem::new(2, 4), Label::Labeled, 10), None);
    }

    #[test]
    fn three_way_barrier_safe_on_sc() {
        let p = barrier(3, Label::Ordinary);
        for seed in 0..30 {
            let w = ProgramWorkload::new(p.clone(), 60);
            let r = smc_sim::sched::run_random(ScMem::new(3, 6), w, seed, 100_000);
            assert!(r.violation.is_none(), "seed {seed}: {:?}", r.violation);
            assert!(r.completed);
        }
    }
}

//! The program interpreter, as a [`Workload`] over any memory.

use crate::ast::{Expr, Instr, LocRef, Program};
use smc_history::{Location, ProcId, Value};
use smc_sim::mem::MemorySystem;
use smc_sim::record::Recorder;
use smc_sim::workload::Workload;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Upper bound on consecutive thread-local instructions per step, to
/// catch accidental local-only loops.
const LOCAL_FUEL: usize = 10_000;

/// Interpreter state for one [`Program`], implementing
/// [`Workload`]: thread `t` drives processor `t`.
///
/// One step executes any pending thread-local instructions and then at
/// most one shared-memory access (local instructions are invisible to
/// other threads, so batching them shrinks the exploration state space
/// without losing any observable interleaving). The built-in monitor
/// flags overlapping critical sections and failed `Assert`s via
/// [`Workload::violation`].
///
/// `op_limit` bounds the shared-memory operations each thread may issue —
/// necessary because busy-wait loops (the Bakery's `repeat ... until`)
/// have unbounded executions; exhaustive exploration is then "complete up
/// to the bound".
#[derive(Debug, Clone)]
pub struct ProgramWorkload {
    program: Arc<Program>,
    pcs: Vec<usize>,
    regs: Vec<Vec<i64>>,
    halted: Vec<bool>,
    in_cs: Vec<bool>,
    ops_issued: Vec<u32>,
    op_limit: u32,
    violation: Option<String>,
}

impl PartialEq for ProgramWorkload {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.program, &other.program)
            && self.pcs == other.pcs
            && self.regs == other.regs
            && self.halted == other.halted
            && self.in_cs == other.in_cs
            && self.ops_issued == other.ops_issued
            && self.violation == other.violation
    }
}

impl Eq for ProgramWorkload {}

impl Hash for ProgramWorkload {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // The program is immutable and shared; only dynamic state hashes.
        self.pcs.hash(state);
        self.regs.hash(state);
        self.halted.hash(state);
        self.in_cs.hash(state);
        self.ops_issued.hash(state);
        self.violation.hash(state);
    }
}

impl ProgramWorkload {
    /// A fresh workload with a per-thread shared-operation limit.
    ///
    /// # Panics
    /// Panics if the program fails [`Program::validate`].
    pub fn new(program: Program, op_limit: u32) -> Self {
        program
            .validate()
            .unwrap_or_else(|e| panic!("invalid program: {e}"));
        let threads = program.threads.len();
        let regs = vec![vec![0i64; program.num_regs]; threads];
        ProgramWorkload {
            program: Arc::new(program),
            pcs: vec![0; threads],
            regs,
            halted: vec![false; threads],
            in_cs: vec![false; threads],
            ops_issued: vec![0; threads],
            op_limit,
            violation: None,
        }
    }

    /// The interpreted program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// `true` if any thread stopped because it hit the operation limit
    /// (results of an exploration are then bounded, not exhaustive).
    pub fn hit_op_limit(&self) -> bool {
        self.ops_issued.iter().any(|&n| n >= self.op_limit)
    }

    fn eval(&self, t: usize, e: &Expr) -> i64 {
        match e {
            Expr::Const(v) => *v,
            Expr::Reg(r) => self.regs[t][*r],
            Expr::Add(a, b) => self.eval(t, a).wrapping_add(self.eval(t, b)),
            Expr::Sub(a, b) => self.eval(t, a).wrapping_sub(self.eval(t, b)),
            Expr::Max(a, b) => self.eval(t, a).max(self.eval(t, b)),
            Expr::Eq(a, b) => (self.eval(t, a) == self.eval(t, b)) as i64,
            Expr::Lt(a, b) => (self.eval(t, a) < self.eval(t, b)) as i64,
            Expr::And(a, b) => (self.eval(t, a) != 0 && self.eval(t, b) != 0) as i64,
            Expr::Or(a, b) => (self.eval(t, a) != 0 || self.eval(t, b) != 0) as i64,
            Expr::Not(a) => (self.eval(t, a) == 0) as i64,
            Expr::LexLt { a, b, c, d } => {
                let (a, b, c, d) = (
                    self.eval(t, a),
                    self.eval(t, b),
                    self.eval(t, c),
                    self.eval(t, d),
                );
                (a < c || (a == c && b < d)) as i64
            }
        }
    }

    fn resolve_loc(&self, t: usize, loc: &LocRef) -> Option<Location> {
        let idx = self.eval(t, &loc.index);
        let len = self.program.arrays[loc.array].1;
        if idx < 0 || idx as usize >= len {
            return None;
        }
        Some(Location(self.program.loc_id(loc.array, idx as usize) as u32))
    }

    /// Execute thread-local instructions at `t`'s pc until the pc rests
    /// on a memory access or the thread halts. Returns `false` if a
    /// violation was raised.
    fn run_locals(&mut self, t: usize) -> bool {
        let program = Arc::clone(&self.program);
        let code = &program.threads[t];
        let mut fuel = LOCAL_FUEL;
        loop {
            if self.halted[t] || self.violation.is_some() {
                return self.violation.is_none();
            }
            let Some(instr) = code.get(self.pcs[t]) else {
                self.halted[t] = true;
                return true;
            };
            if instr.is_memory_op() {
                return true;
            }
            if fuel == 0 {
                self.violation = Some(format!("thread {t}: local loop without shared accesses"));
                return false;
            }
            fuel -= 1;
            match instr {
                Instr::Assign { reg, value } => {
                    self.regs[t][*reg] = self.eval(t, value);
                    self.pcs[t] += 1;
                }
                Instr::BranchIf { cond, target } => {
                    if self.eval(t, cond) != 0 {
                        self.pcs[t] = *target;
                    } else {
                        self.pcs[t] += 1;
                    }
                }
                Instr::Jump(target) => self.pcs[t] = *target,
                Instr::EnterCs => {
                    if let Some(other) = (0..self.in_cs.len()).find(|&o| o != t && self.in_cs[o]) {
                        self.violation = Some(format!(
                            "mutual exclusion violated: threads {other} and {t} \
                             are both in the critical section"
                        ));
                        return false;
                    }
                    self.in_cs[t] = true;
                    self.pcs[t] += 1;
                }
                Instr::ExitCs => {
                    self.in_cs[t] = false;
                    self.pcs[t] += 1;
                }
                Instr::Assert { cond, msg } => {
                    if self.eval(t, cond) == 0 {
                        self.violation = Some(format!("thread {t}: {msg}"));
                        return false;
                    }
                    self.pcs[t] += 1;
                }
                Instr::Halt => {
                    self.halted[t] = true;
                    return true;
                }
                Instr::Read { .. } | Instr::Write { .. } => unreachable!(),
            }
        }
    }

    /// The memory access the thread is currently resting on, if any.
    fn pending_access(&self, t: usize) -> Option<&Instr> {
        if self.halted[t] || self.violation.is_some() {
            return None;
        }
        self.program.threads[t]
            .get(self.pcs[t])
            .filter(|i| i.is_memory_op())
    }
}

impl<M: MemorySystem> Workload<M> for ProgramWorkload {
    fn num_threads(&self) -> usize {
        self.pcs.len()
    }

    fn runnable(&self, t: usize, mem: &M) -> bool {
        if self.halted[t] || self.violation.is_some() {
            return false;
        }
        let Some(instr) = self.program.threads[t].get(self.pcs[t]) else {
            // Fell off the end: one step to retire the thread.
            return true;
        };
        match instr {
            Instr::Read { loc, label, .. } => {
                if self.ops_issued[t] >= self.op_limit {
                    return false;
                }
                match self.resolve_loc(t, loc) {
                    // Out-of-range index raises a violation on step.
                    None => true,
                    Some(l) => mem.can_read(ProcId(t as u32), l, *label),
                }
            }
            Instr::Write { loc, label, .. } => {
                if self.ops_issued[t] >= self.op_limit {
                    return false;
                }
                match self.resolve_loc(t, loc) {
                    None => true,
                    Some(l) => mem.can_write(ProcId(t as u32), l, *label),
                }
            }
            _ => true,
        }
    }

    fn step(&mut self, t: usize, mem: &mut M, rec: &mut Recorder) {
        // Execute the access the pc rests on (if any), then run the
        // following local instructions so the next step starts at a
        // memory access again.
        if let Some(instr) = self.pending_access(t).cloned() {
            let p = ProcId(t as u32);
            match instr {
                Instr::Read { loc, reg, label } => match self.resolve_loc(t, &loc) {
                    None => {
                        self.violation = Some(format!("thread {t}: array index out of range"));
                        return;
                    }
                    Some(l) => {
                        let v = mem.read(p, l, label);
                        rec.read(p, l, v, label);
                        self.regs[t][reg] = v.0;
                        self.ops_issued[t] += 1;
                        self.pcs[t] += 1;
                    }
                },
                Instr::Write { loc, value, label } => match self.resolve_loc(t, &loc) {
                    None => {
                        self.violation = Some(format!("thread {t}: array index out of range"));
                        return;
                    }
                    Some(l) => {
                        let v = Value(self.eval(t, &value));
                        mem.write(p, l, v, label);
                        rec.write(p, l, v, label);
                        self.ops_issued[t] += 1;
                        self.pcs[t] += 1;
                    }
                },
                _ => unreachable!(),
            }
        }
        self.run_locals(t);
    }

    fn done(&self) -> bool {
        self.halted.iter().all(|&h| h)
    }

    fn violation(&self) -> Option<String> {
        self.violation.clone()
    }

    fn recorder(&self) -> Recorder {
        Recorder::new(
            (0..self.pcs.len()).map(|t| format!("p{t}")).collect(),
            self.program.loc_names(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Expr as E, Instr as I, LocRef};
    use smc_history::Label::Ordinary;
    use smc_sim::sc::ScMem;
    use smc_sim::sched::run_random;

    fn counter_program() -> Program {
        // Two threads each: read x, write x+1 (racy increment).
        let thread = vec![
            I::Read {
                loc: LocRef::at(0, 0),
                reg: 0,
                label: Ordinary,
            },
            I::Write {
                loc: LocRef::at(0, 0),
                value: E::add(E::r(0), E::c(1)),
                label: Ordinary,
            },
            I::Halt,
        ];
        Program {
            arrays: vec![("x".into(), 1)],
            threads: vec![thread.clone(), thread],
            num_regs: 1,
        }
    }

    #[test]
    fn runs_to_completion_and_records() {
        let w = ProgramWorkload::new(counter_program(), 100);
        let r = run_random(ScMem::new(2, 1), w, 3, 1_000);
        assert!(r.completed);
        assert_eq!(r.history.num_ops(), 4);
        assert!(r.violation.is_none());
    }

    #[test]
    fn spin_loop_waits_for_value() {
        // t0 spins until x == 1; t1 sets it.
        let spin = vec![
            I::Read {
                loc: LocRef::at(0, 0),
                reg: 0,
                label: Ordinary,
            },
            I::BranchIf {
                cond: E::ne(E::r(0), E::c(1)),
                target: 0,
            },
            I::Halt,
        ];
        let set = vec![
            I::Write {
                loc: LocRef::at(0, 0),
                value: E::c(1),
                label: Ordinary,
            },
            I::Halt,
        ];
        let p = Program {
            arrays: vec![("x".into(), 1)],
            threads: vec![spin, set],
            num_regs: 1,
        };
        let w = ProgramWorkload::new(p, 1_000);
        let r = run_random(ScMem::new(2, 1), w, 11, 100_000);
        assert!(r.completed);
        assert!(r.violation.is_none());
    }

    #[test]
    fn cs_overlap_detected() {
        let enter_only = vec![I::EnterCs, I::Halt];
        let p = Program {
            arrays: vec![("x".into(), 1)],
            threads: vec![enter_only.clone(), enter_only],
            num_regs: 0,
        };
        let w = ProgramWorkload::new(p, 10);
        let r = run_random(ScMem::new(2, 1), w, 0, 1_000);
        assert!(r.violation.unwrap().contains("mutual exclusion"));
    }

    #[test]
    fn assert_failure_detected() {
        let p = Program {
            arrays: vec![("x".into(), 1)],
            threads: vec![vec![
                I::Assert {
                    cond: E::c(0),
                    msg: "always fails".into(),
                },
                I::Halt,
            ]],
            num_regs: 0,
        };
        let w = ProgramWorkload::new(p, 10);
        let r = run_random(ScMem::new(1, 1), w, 0, 100);
        assert!(r.violation.unwrap().contains("always fails"));
    }

    #[test]
    fn out_of_range_index_is_a_violation() {
        let p = Program {
            arrays: vec![("x".into(), 1)],
            threads: vec![vec![
                I::Read {
                    loc: LocRef::at_reg(0, 0),
                    reg: 1,
                    label: Ordinary,
                },
                I::Halt,
            ]],
            num_regs: 2,
        };
        let mut w = ProgramWorkload::new(p, 10);
        w.regs[0][0] = 5; // index out of range
        let r = run_random(ScMem::new(1, 1), w, 0, 100);
        assert!(r.violation.unwrap().contains("out of range"));
    }

    #[test]
    fn expression_evaluation_via_asserts() {
        // Exercise every expression constructor through the interpreter:
        // a single thread computes and asserts.
        use crate::ast::Expr;
        let checks: Vec<(Expr, &str)> = vec![
            (E::eq(E::add(E::c(2), E::c(3)), E::c(5)), "add"),
            (
                E::eq(Expr::Sub(Box::new(E::c(2)), Box::new(E::c(3))), E::c(-1)),
                "sub",
            ),
            (E::eq(E::max(E::c(2), E::c(7)), E::c(7)), "max"),
            (E::lt(E::c(-1), E::c(0)), "lt"),
            (Expr::And(Box::new(E::c(1)), Box::new(E::c(2))), "and"),
            (E::or(E::c(0), E::c(5)), "or"),
            (E::not(E::c(0)), "not"),
            (
                E::lex_lt(E::c(1), E::c(2), E::c(1), E::c(3)),
                "lex tie-break",
            ),
            (E::lex_lt(E::c(1), E::c(9), E::c(2), E::c(0)), "lex major"),
            (
                E::not(E::lex_lt(E::c(2), E::c(0), E::c(1), E::c(9))),
                "lex not",
            ),
        ];
        let code: Vec<I> = checks
            .into_iter()
            .map(|(cond, msg)| I::Assert {
                cond,
                msg: msg.to_string(),
            })
            .chain([I::Halt])
            .collect();
        let p = Program {
            arrays: vec![("x".into(), 1)],
            threads: vec![code],
            num_regs: 0,
        };
        let w = ProgramWorkload::new(p, 10);
        let r = run_random(ScMem::new(1, 1), w, 0, 100);
        assert!(r.violation.is_none(), "{:?}", r.violation);
        assert!(r.completed);
    }

    #[test]
    fn op_limit_freezes_thread() {
        // Infinite read loop hits the limit and stops being runnable.
        let p = Program {
            arrays: vec![("x".into(), 1)],
            threads: vec![vec![
                I::Read {
                    loc: LocRef::at(0, 0),
                    reg: 0,
                    label: Ordinary,
                },
                I::Jump(0),
            ]],
            num_regs: 1,
        };
        let w = ProgramWorkload::new(p, 5);
        let r = run_random(ScMem::new(1, 1), w, 0, 10_000);
        assert!(!r.completed);
        assert_eq!(r.history.num_ops(), 5);
    }
}

//! Lamport's Bakery algorithm (Figure 6 of the paper).

use crate::ast::{Expr as E, Instr as I, LocRef, Program};
use smc_history::Label;

/// Build the `n`-processor Bakery algorithm, with every synchronization
/// access (`choosing` and `number`) carrying `sync_label`.
///
/// Each thread makes one pass: doorway, wait loops, critical section,
/// exit. Inside the critical section the thread writes its identity to an
/// *ordinary* shared scalar `d`, reads it back and asserts it unchanged —
/// so critical-section interference is caught both by the
/// mutual-exclusion monitor and by a data check. Labeling matches the
/// paper's Section 5 setup: "we label all read and write operations of
/// the code ... except the ones in the critical and the remainder
/// sections".
///
/// Array layout: `choosing[n]` (array 0), `number[n]` (array 1), `d`
/// (array 2). Registers: `r0` = max / my ticket, `r1` = scratch.
pub fn bakery(n: usize, sync_label: Label) -> Program {
    assert!(n >= 2, "bakery needs at least two processors");
    let (choosing, number, d) = (0usize, 1usize, 2usize);
    let threads = (0..n)
        .map(|i| bakery_thread(n, i, sync_label, choosing, number, d))
        .collect();
    let p = Program {
        arrays: vec![
            ("choosing".into(), n),
            ("number".into(), n),
            ("d".into(), 1),
        ],
        threads,
        num_regs: 2,
    };
    debug_assert!(p.validate().is_ok());
    p
}

fn bakery_thread(
    n: usize,
    i: usize,
    label: Label,
    choosing: usize,
    number: usize,
    d: usize,
) -> Vec<I> {
    let mut code = Vec::new();
    // Doorway: choosing[i] := true.
    code.push(I::Write {
        loc: LocRef::at(choosing, i as i64),
        value: E::c(1),
        label,
    });
    // r0 := 1 + max(number[j] for j != i)  (reads the array).
    code.push(I::Assign {
        reg: 0,
        value: E::c(0),
    });
    for j in 0..n {
        if j == i {
            continue;
        }
        code.push(I::Read {
            loc: LocRef::at(number, j as i64),
            reg: 1,
            label,
        });
        code.push(I::Assign {
            reg: 0,
            value: E::max(E::r(0), E::r(1)),
        });
    }
    code.push(I::Assign {
        reg: 0,
        value: E::add(E::r(0), E::c(1)),
    });
    // number[i] := mine; choosing[i] := false.
    code.push(I::Write {
        loc: LocRef::at(number, i as i64),
        value: E::r(0),
        label,
    });
    code.push(I::Write {
        loc: LocRef::at(choosing, i as i64),
        value: E::c(0),
        label,
    });
    // Wait loops, one pair per other processor.
    for j in 0..n {
        if j == i {
            continue;
        }
        // repeat test := choosing[j] until not test
        let spin_choosing = code.len();
        code.push(I::Read {
            loc: LocRef::at(choosing, j as i64),
            reg: 1,
            label,
        });
        code.push(I::BranchIf {
            cond: E::ne(E::r(1), E::c(0)),
            target: spin_choosing,
        });
        // repeat other := number[j]
        //   until other = 0 or (mine, i) < (other, j)
        let spin_number = code.len();
        code.push(I::Read {
            loc: LocRef::at(number, j as i64),
            reg: 1,
            label,
        });
        code.push(I::BranchIf {
            cond: E::not(E::or(
                E::eq(E::r(1), E::c(0)),
                E::lex_lt(E::r(0), E::c(i as i64), E::r(1), E::c(j as i64)),
            )),
            target: spin_number,
        });
    }
    // Critical section: ordinary accesses to d, checked for
    // interference.
    code.push(I::EnterCs);
    code.push(I::Write {
        loc: LocRef::at(d, 0),
        value: E::c(i as i64 + 1),
        label: Label::Ordinary,
    });
    code.push(I::Read {
        loc: LocRef::at(d, 0),
        reg: 1,
        label: Label::Ordinary,
    });
    code.push(I::Assert {
        cond: E::eq(E::r(1), E::c(i as i64 + 1)),
        msg: "critical-section data overwritten by another processor".into(),
    });
    code.push(I::ExitCs);
    // Exit: number[i] := 0.
    code.push(I::Write {
        loc: LocRef::at(number, i as i64),
        value: E::c(0),
        label,
    });
    code.push(I::Halt);
    code
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::ProgramWorkload;
    use smc_sim::sc::ScMem;
    use smc_sim::sched::run_random;

    #[test]
    fn program_shape() {
        let p = bakery(2, Label::Labeled);
        p.validate().unwrap();
        assert_eq!(p.num_locs(), 5);
        assert_eq!(p.threads.len(), 2);
        let p3 = bakery(3, Label::Ordinary);
        assert_eq!(p3.num_locs(), 7);
        assert_eq!(p3.threads.len(), 3);
    }

    #[test]
    fn correct_on_sequential_consistency_random_runs() {
        let p = bakery(2, Label::Labeled);
        for seed in 0..50 {
            let w = ProgramWorkload::new(p.clone(), 200);
            let r = run_random(ScMem::new(2, p.num_locs()), w, seed, 100_000);
            assert!(
                r.violation.is_none(),
                "seed {seed} violated: {:?}\n{}",
                r.violation,
                r.history
            );
            assert!(r.completed, "seed {seed} did not complete");
        }
    }

    #[test]
    fn three_processors_correct_on_sc() {
        let p = bakery(3, Label::Labeled);
        for seed in 0..10 {
            let w = ProgramWorkload::new(p.clone(), 400);
            let r = run_random(ScMem::new(3, p.num_locs()), w, seed, 400_000);
            assert!(r.violation.is_none(), "seed {seed}: {:?}", r.violation);
            assert!(r.completed, "seed {seed} did not complete");
        }
    }
}

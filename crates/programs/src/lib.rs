//! Concurrent programs for the characterization framework.
//!
//! Section 5 of the paper runs Lamport's Bakery algorithm — a real
//! synchronization algorithm with loops, per-processor arithmetic and an
//! array of shared variables — against two memory models. Reproducing
//! that experiment needs more than scripted access lists, so this crate
//! provides:
//!
//! * [`ast`] — a small imperative language: registers, arithmetic and
//!   comparison expressions (including the Bakery's lexicographic ticket
//!   comparison), shared-array accesses with computed indices, branches,
//!   assertions, and critical-section markers;
//! * [`interp`] — an interpreter that implements
//!   [`smc_sim::Workload`], so any program runs over any of the
//!   operational memories under random or exhaustive scheduling, with a
//!   built-in mutual-exclusion monitor;
//! * [`bakery`], [`peterson`], [`dekker`], [`mp`], [`barrier`],
//!   [`seqlock`] — classic
//!   algorithms as program builders, each parameterized by whether their
//!   synchronization accesses are labeled (for release consistency) or
//!   ordinary;
//! * [`corpus`] — the workspace's litmus-test corpus: the paper's four
//!   figures plus classic shapes, each with expected verdicts per model;
//! * [`pretty`] — pseudo-code rendering of programs (also `Display` on
//!   [`Program`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod bakery;
pub mod barrier;
pub mod corpus;
pub mod dekker;
pub mod interp;
pub mod mp;
pub mod peterson;
pub mod pretty;
pub mod seqlock;

pub use ast::{Expr, Instr, LocRef, Program};
pub use interp::ProgramWorkload;

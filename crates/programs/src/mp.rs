//! Message passing: the producer/consumer handshake that motivates
//! release consistency.

use crate::ast::{Expr as E, Instr as I, LocRef, Program};
use smc_history::Label;

/// Build the message-passing program: a producer writes `payload` to an
/// *ordinary* data location and then sets a flag with `sync_label`; a
/// consumer spins on the flag (same label) and then asserts it reads the
/// fresh payload.
///
/// * With `sync_label = Labeled`, this is the properly-labeled pattern
///   release consistency is designed for: correct on `RC_sc` *and*
///   `RC_pc` (the flag write is a release that waits for the data write
///   to perform everywhere).
/// * With `sync_label = Ordinary`, correctness depends on the memory
///   keeping cross-location program order: fine on SC/TSO/PRAM/causal,
///   broken on the coherent-only memory and on RC.
///
/// Array layout: `d` (array 0), `f` (array 1).
pub fn message_passing(sync_label: Label, payload: i64) -> Program {
    let (d, f) = (0usize, 1usize);
    let producer = vec![
        I::Write {
            loc: LocRef::at(d, 0),
            value: E::c(payload),
            label: Label::Ordinary,
        },
        I::Write {
            loc: LocRef::at(f, 0),
            value: E::c(1),
            label: sync_label,
        },
        I::Halt,
    ];
    let consumer = vec![
        // 0: r0 := f; spin until it is set.
        I::Read {
            loc: LocRef::at(f, 0),
            reg: 0,
            label: sync_label,
        },
        I::BranchIf {
            cond: E::eq(E::r(0), E::c(0)),
            target: 0,
        },
        I::Read {
            loc: LocRef::at(d, 0),
            reg: 1,
            label: Label::Ordinary,
        },
        I::Assert {
            cond: E::eq(E::r(1), E::c(payload)),
            msg: "consumer read stale data after observing the flag".into(),
        },
        I::Halt,
    ];
    let p = Program {
        arrays: vec![("d".into(), 1), ("f".into(), 1)],
        threads: vec![producer, consumer],
        num_regs: 2,
    };
    debug_assert!(p.validate().is_ok());
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::ProgramWorkload;
    use smc_sim::coherent::CoherentMem;
    use smc_sim::explore::{explore, ExploreConfig};
    use smc_sim::rc::{RcMem, SyncMode};
    use smc_sim::sc::ScMem;
    use smc_sim::tso::TsoMem;

    fn check<M: smc_sim::MemorySystem>(mem: M, label: Label, op_limit: u32) -> Option<String> {
        let p = message_passing(label, 42);
        let w = ProgramWorkload::new(p, op_limit);
        let cfg = ExploreConfig {
            collect_histories: false,
            ..Default::default()
        };
        explore(&mem, &w, &cfg).violation.map(|(m, _)| m)
    }

    #[test]
    fn safe_on_sc_and_tso() {
        assert_eq!(check(ScMem::new(2, 2), Label::Ordinary, 8), None);
        assert_eq!(check(TsoMem::new(2, 2), Label::Ordinary, 8), None);
    }

    #[test]
    fn unlabeled_breaks_on_coherent_only_memory() {
        let v = check(CoherentMem::new(2, 2), Label::Ordinary, 8);
        assert!(v.unwrap().contains("stale"));
    }

    #[test]
    fn unlabeled_breaks_on_rc() {
        let v = check(RcMem::new(SyncMode::Sc, 2, 2), Label::Ordinary, 8);
        assert!(v.unwrap().contains("stale"));
    }

    #[test]
    fn properly_labeled_is_safe_on_both_rc_variants() {
        assert_eq!(
            check(RcMem::new(SyncMode::Sc, 2, 2), Label::Labeled, 8),
            None
        );
        assert_eq!(
            check(RcMem::new(SyncMode::Pc, 2, 2), Label::Labeled, 8),
            None
        );
    }
}

//! Peterson's two-processor mutual exclusion algorithm.

use crate::ast::{Expr as E, Instr as I, LocRef, Program};
use smc_history::Label;

/// Build Peterson's algorithm for two processors, with its
/// synchronization accesses (`flag` and `victim`) carrying `sync_label`.
///
/// Like the Bakery algorithm, Peterson's algorithm implements mutual
/// exclusion with plain reads and writes and is correct under sequential
/// consistency; under TSO the buffered `flag` write lets both processors
/// read the other's flag as 0 and enter together — a classic
/// store-buffering failure the test suite demonstrates operationally.
///
/// Array layout: `flag[2]` (array 0), `victim` (array 1), `d` (array 2).
pub fn peterson(sync_label: Label) -> Program {
    let threads = (0..2).map(|i| peterson_thread(i, sync_label)).collect();
    let p = Program {
        arrays: vec![("flag".into(), 2), ("victim".into(), 1), ("d".into(), 1)],
        threads,
        num_regs: 2,
    };
    debug_assert!(p.validate().is_ok());
    p
}

fn peterson_thread(i: usize, label: Label) -> Vec<I> {
    let j = 1 - i;
    let (flag, victim, d) = (0usize, 1usize, 2usize);
    vec![
        // 0: flag[i] := 1
        I::Write {
            loc: LocRef::at(flag, i as i64),
            value: E::c(1),
            label,
        },
        // 1: victim := i
        I::Write {
            loc: LocRef::at(victim, 0),
            value: E::c(i as i64),
            label,
        },
        // 2: r0 := flag[j]
        I::Read {
            loc: LocRef::at(flag, j as i64),
            reg: 0,
            label,
        },
        // 3: if flag[j] == 0 goto 7 (enter)
        I::BranchIf {
            cond: E::eq(E::r(0), E::c(0)),
            target: 7,
        },
        // 4: r1 := victim
        I::Read {
            loc: LocRef::at(victim, 0),
            reg: 1,
            label,
        },
        // 5: if victim != i goto 7 (enter)
        I::BranchIf {
            cond: E::ne(E::r(1), E::c(i as i64)),
            target: 7,
        },
        // 6: retry
        I::Jump(2),
        // 7: critical section
        I::EnterCs,
        I::Write {
            loc: LocRef::at(d, 0),
            value: E::c(i as i64 + 1),
            label: Label::Ordinary,
        },
        I::Read {
            loc: LocRef::at(d, 0),
            reg: 1,
            label: Label::Ordinary,
        },
        I::Assert {
            cond: E::eq(E::r(1), E::c(i as i64 + 1)),
            msg: "critical-section data overwritten by the other processor".into(),
        },
        I::ExitCs,
        // 12: flag[i] := 0
        I::Write {
            loc: LocRef::at(flag, i as i64),
            value: E::c(0),
            label,
        },
        I::Halt,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::ProgramWorkload;
    use smc_sim::explore::{explore, ExploreConfig};
    use smc_sim::sc::ScMem;
    use smc_sim::tso::TsoMem;

    #[test]
    fn correct_under_sc_exhaustively() {
        let p = peterson(Label::Ordinary);
        let w = ProgramWorkload::new(p.clone(), 10);
        let cfg = ExploreConfig {
            collect_histories: false,
            ..Default::default()
        };
        let out = explore(&ScMem::new(2, p.num_locs()), &w, &cfg);
        assert!(out.violation.is_none(), "violation: {:?}", out.violation);
        assert!(!out.truncated, "exploration truncated");
    }

    #[test]
    fn violated_under_tso() {
        let p = peterson(Label::Ordinary);
        let w = ProgramWorkload::new(p.clone(), 10);
        let cfg = ExploreConfig {
            collect_histories: false,
            ..Default::default()
        };
        let out = explore(&TsoMem::new(2, p.num_locs()), &w, &cfg);
        let (msg, history) = out.violation.expect("TSO should break Peterson");
        assert!(
            msg.contains("mutual exclusion") || msg.contains("overwritten"),
            "{msg}"
        );
        assert!(history.num_ops() > 0);
    }
}

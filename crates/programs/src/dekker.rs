//! Dekker's algorithm — the oldest two-processor mutual exclusion
//! protocol built from plain reads and writes.

use crate::ast::{Expr as E, Instr as I, LocRef, Program};
use smc_history::Label;

/// Build Dekker's algorithm for two processors with its synchronization
/// accesses carrying `sync_label`.
///
/// Array layout: `flag[2]` (array 0), `turn` (array 1), `d` (array 2).
pub fn dekker(sync_label: Label) -> Program {
    let threads = (0..2).map(|i| dekker_thread(i, sync_label)).collect();
    let p = Program {
        arrays: vec![("flag".into(), 2), ("turn".into(), 1), ("d".into(), 1)],
        threads,
        num_regs: 2,
    };
    debug_assert!(p.validate().is_ok());
    p
}

fn dekker_thread(i: usize, label: Label) -> Vec<I> {
    let j = 1 - i;
    let (flag, turn, d) = (0usize, 1usize, 2usize);
    vec![
        // 0: flag[i] := 1
        I::Write {
            loc: LocRef::at(flag, i as i64),
            value: E::c(1),
            label,
        },
        // 1: r0 := flag[j]
        I::Read {
            loc: LocRef::at(flag, j as i64),
            reg: 0,
            label,
        },
        // 2: if flag[j] == 0 goto 10 (critical section)
        I::BranchIf {
            cond: E::eq(E::r(0), E::c(0)),
            target: 10,
        },
        // 3: r1 := turn
        I::Read {
            loc: LocRef::at(turn, 0),
            reg: 1,
            label,
        },
        // 4: if turn != j goto 1 (our turn: insist)
        I::BranchIf {
            cond: E::ne(E::r(1), E::c(j as i64)),
            target: 1,
        },
        // 5: back off: flag[i] := 0
        I::Write {
            loc: LocRef::at(flag, i as i64),
            value: E::c(0),
            label,
        },
        // 6: r1 := turn
        I::Read {
            loc: LocRef::at(turn, 0),
            reg: 1,
            label,
        },
        // 7: while turn == j goto 6
        I::BranchIf {
            cond: E::eq(E::r(1), E::c(j as i64)),
            target: 6,
        },
        // 8: flag[i] := 1
        I::Write {
            loc: LocRef::at(flag, i as i64),
            value: E::c(1),
            label,
        },
        // 9: goto 1
        I::Jump(1),
        // 10: critical section
        I::EnterCs,
        I::Write {
            loc: LocRef::at(d, 0),
            value: E::c(i as i64 + 1),
            label: Label::Ordinary,
        },
        I::Read {
            loc: LocRef::at(d, 0),
            reg: 1,
            label: Label::Ordinary,
        },
        I::Assert {
            cond: E::eq(E::r(1), E::c(i as i64 + 1)),
            msg: "critical-section data overwritten by the other processor".into(),
        },
        I::ExitCs,
        // 15: turn := j; flag[i] := 0
        I::Write {
            loc: LocRef::at(turn, 0),
            value: E::c(j as i64),
            label,
        },
        I::Write {
            loc: LocRef::at(flag, i as i64),
            value: E::c(0),
            label,
        },
        I::Halt,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::ProgramWorkload;
    use smc_sim::explore::{explore, ExploreConfig};
    use smc_sim::sc::ScMem;
    use smc_sim::tso::TsoMem;

    #[test]
    fn correct_under_sc_exhaustively() {
        let p = dekker(Label::Ordinary);
        let w = ProgramWorkload::new(p.clone(), 10);
        let cfg = ExploreConfig {
            collect_histories: false,
            ..Default::default()
        };
        let out = explore(&ScMem::new(2, p.num_locs()), &w, &cfg);
        assert!(out.violation.is_none(), "violation: {:?}", out.violation);
        assert!(!out.truncated);
    }

    #[test]
    fn violated_under_tso() {
        let p = dekker(Label::Ordinary);
        let w = ProgramWorkload::new(p.clone(), 10);
        let cfg = ExploreConfig {
            collect_histories: false,
            ..Default::default()
        };
        let out = explore(&TsoMem::new(2, p.num_locs()), &w, &cfg);
        assert!(out.violation.is_some(), "TSO should break Dekker");
    }
}

//! Pseudo-code rendering of programs.

use crate::ast::{Expr, Instr, LocRef, Program};
use std::fmt;
use std::fmt::Write as _;

/// Render an expression in infix notation.
pub fn expr_to_string(e: &Expr) -> String {
    match e {
        Expr::Const(v) => v.to_string(),
        Expr::Reg(r) => format!("r{r}"),
        Expr::Add(a, b) => format!("({} + {})", expr_to_string(a), expr_to_string(b)),
        Expr::Sub(a, b) => format!("({} - {})", expr_to_string(a), expr_to_string(b)),
        Expr::Max(a, b) => format!("max({}, {})", expr_to_string(a), expr_to_string(b)),
        Expr::Eq(a, b) => format!("({} == {})", expr_to_string(a), expr_to_string(b)),
        Expr::Lt(a, b) => format!("({} < {})", expr_to_string(a), expr_to_string(b)),
        Expr::And(a, b) => format!("({} && {})", expr_to_string(a), expr_to_string(b)),
        Expr::Or(a, b) => format!("({} || {})", expr_to_string(a), expr_to_string(b)),
        Expr::Not(a) => format!("!{}", expr_to_string(a)),
        Expr::LexLt { a, b, c, d } => format!(
            "(({}, {}) <lex ({}, {}))",
            expr_to_string(a),
            expr_to_string(b),
            expr_to_string(c),
            expr_to_string(d)
        ),
    }
}

fn loc_to_string(p: &Program, loc: &LocRef) -> String {
    let (name, len) = &p.arrays[loc.array];
    if *len == 1 {
        name.clone()
    } else {
        format!("{name}[{}]", expr_to_string(&loc.index))
    }
}

/// Render one instruction (without its index).
pub fn instr_to_string(p: &Program, i: &Instr) -> String {
    match i {
        Instr::Read { loc, reg, label } => format!(
            "r{reg} := {}{}",
            loc_to_string(p, loc),
            if label.is_labeled() {
                "   (labeled)"
            } else {
                ""
            }
        ),
        Instr::Write { loc, value, label } => format!(
            "{} := {}{}",
            loc_to_string(p, loc),
            expr_to_string(value),
            if label.is_labeled() {
                "   (labeled)"
            } else {
                ""
            }
        ),
        Instr::Assign { reg, value } => format!("r{reg} := {}", expr_to_string(value)),
        Instr::BranchIf { cond, target } => {
            format!("if {} goto {target}", expr_to_string(cond))
        }
        Instr::Jump(target) => format!("goto {target}"),
        Instr::EnterCs => "enter critical section".into(),
        Instr::ExitCs => "exit critical section".into(),
        Instr::Assert { cond, msg } => {
            format!("assert {} \"{msg}\"", expr_to_string(cond))
        }
        Instr::Halt => "halt".into(),
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write!(out, "shared:")?;
        for (name, len) in &self.arrays {
            if *len == 1 {
                write!(out, " {name}")?;
            } else {
                write!(out, " {name}[{len}]")?;
            }
        }
        writeln!(out)?;
        for (t, code) in self.threads.iter().enumerate() {
            writeln!(out, "thread {t}:")?;
            for (i, instr) in code.iter().enumerate() {
                writeln!(out, "  {i:>3}: {}", instr_to_string(self, instr))?;
            }
        }
        f.write_str(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Expr as E, Instr as I};
    use crate::bakery::bakery;
    use smc_history::Label;

    #[test]
    fn expressions_render_infix() {
        let e = E::or(
            E::eq(E::r(1), E::c(0)),
            E::lex_lt(E::r(0), E::c(1), E::r(1), E::c(0)),
        );
        assert_eq!(expr_to_string(&e), "((r1 == 0) || ((r0, 1) <lex (r1, 0)))");
        assert_eq!(expr_to_string(&E::max(E::r(0), E::c(3))), "max(r0, 3)");
        assert_eq!(expr_to_string(&E::not(E::c(0))), "!0");
    }

    #[test]
    fn bakery_renders_completely() {
        let p = bakery(2, Label::Labeled);
        let text = p.to_string();
        assert!(text.contains("shared: choosing[2] number[2] d"));
        assert!(text.contains("thread 0:"));
        assert!(text.contains("thread 1:"));
        assert!(text.contains("(labeled)"));
        assert!(text.contains("enter critical section"));
        assert!(text.contains("<lex"));
        // Every instruction of both threads appears (indented `N: ...`).
        let lines = text
            .lines()
            .filter(|l| {
                let t = l.trim_start();
                t.split(':')
                    .next()
                    .is_some_and(|n| n.chars().all(|c| c.is_ascii_digit()) && !n.is_empty())
            })
            .count();
        assert_eq!(lines, p.threads[0].len() + p.threads[1].len());
    }

    #[test]
    fn scalar_and_array_locations() {
        let p = crate::mp::message_passing(Label::Ordinary, 42);
        let text = p.to_string();
        assert!(text.contains("d := 42"));
        assert!(text.contains("r0 := f"));
        assert!(text.contains("if (r0 == 0) goto 0"));
    }

    #[test]
    fn control_instructions_render() {
        let p = crate::ast::Program {
            arrays: vec![("x".into(), 1)],
            threads: vec![vec![
                I::Jump(0),
                I::Assert {
                    cond: E::c(1),
                    msg: "ok".into(),
                },
                I::Halt,
            ]],
            num_regs: 0,
        };
        let text = p.to_string();
        assert!(text.contains("goto 0"));
        assert!(text.contains("assert 1 \"ok\""));
        assert!(text.contains("halt"));
    }
}

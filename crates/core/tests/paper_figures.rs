//! The paper's worked examples (Figures 1–4) and the Section 5 Bakery
//! result, checked against the decision procedure. Each `Allowed` verdict
//! is additionally validated by the independent witness verifier.

use smc_core::checker::{check, Verdict};
use smc_core::models;
use smc_core::spec::ModelSpec;
use smc_core::verify::verify_witness;
use smc_history::litmus::parse_history;
use smc_history::History;

fn expect(h: &History, spec: &ModelSpec, allowed: bool) {
    match check(h, spec) {
        Verdict::Allowed(w) => {
            verify_witness(h, spec, &w)
                .unwrap_or_else(|e| panic!("{}: witness invalid: {e}\n{h}", spec.name));
            assert!(
                allowed,
                "{} unexpectedly ALLOWS:\n{h}witness views: {:?}",
                spec.name, w.views
            );
        }
        Verdict::Disallowed => {
            assert!(!allowed, "{} unexpectedly FORBIDS:\n{h}", spec.name);
        }
        other => panic!("{}: undecided verdict {other:?} on\n{h}", spec.name),
    }
}

fn fig1() -> History {
    parse_history("p: w(x)1 r(y)0\nq: w(y)1 r(x)0").unwrap()
}

fn fig2() -> History {
    parse_history("p: w(x)1\nq: r(x)1 w(y)1\nr: r(y)1 r(x)0").unwrap()
}

fn fig3() -> History {
    parse_history("p: w(x)1 r(x)1 r(x)2\nq: w(x)2 r(x)2 r(x)1").unwrap()
}

fn fig4() -> History {
    parse_history(
        "p: w(x)1 w(y)1\n\
         q: r(y)1 w(z)1 r(x)2\n\
         r: w(x)2 r(x)1 r(z)1 r(y)1",
    )
    .unwrap()
}

#[test]
fn figure1_tso_but_not_sc() {
    let h = fig1();
    expect(&h, &models::sc(), false);
    expect(&h, &models::tso(), true);
    // TSO ⊆ PC (Section 4), so PC allows it too; PRAM and causal are
    // weaker still.
    expect(&h, &models::pc(), true);
    expect(&h, &models::pram(), true);
    expect(&h, &models::causal(), true);
}

#[test]
fn figure2_pc_but_not_tso() {
    let h = fig2();
    expect(&h, &models::tso(), false);
    expect(&h, &models::pc(), true);
    expect(&h, &models::pram(), true);
    // Section 3.5: once r sees y=1, causality forces it to see x=1 —
    // figure 2 is the PC-but-not-causal witness for incomparability.
    expect(&h, &models::causal(), false);
    expect(&h, &models::sc(), false);
}

#[test]
fn figure3_pram_but_not_tso() {
    let h = fig3();
    expect(&h, &models::tso(), false);
    expect(&h, &models::pram(), true);
    // p and q observe the two writes to x in opposite orders: coherence
    // (hence PC and SC) forbids it; causal memory, lacking any mutual
    // consistency, allows it.
    expect(&h, &models::pc(), false);
    expect(&h, &models::causal(), true);
    expect(&h, &models::sc(), false);
    expect(&h, &models::coherent(), false);
}

#[test]
fn figure4_causal_but_not_tso() {
    let h = fig4();
    expect(&h, &models::tso(), false);
    expect(&h, &models::causal(), true);
    expect(&h, &models::pram(), true);
    // q's view puts w_r(x)2 after w_p(x)1 while r's own view needs the
    // opposite coherence order — PC forbids it (causal ⊄ PC witness).
    expect(&h, &models::pc(), false);
    expect(&h, &models::sc(), false);
}

#[test]
fn section7_causal_coherent_is_between() {
    // Figure 3 violates coherence, so the Section 7 "causal + coherence"
    // memory forbids it even though causal allows it.
    expect(&fig3(), &models::causal_coherent(), false);
    // Figure 4 is causal but NOT causal+coherent: causality forces
    // w_p(x)1 before r_q(x)2 in q's view, while r's view (which reads x=1
    // after its own w(x)2) forces the coherence order w(x)2 < w(x)1 —
    // and then q's read of 2 cannot be most-recent. Adding coherence to
    // causal memory genuinely forbids a causal history, which is exactly
    // the separation the paper's Section 7 anticipates.
    expect(&fig4(), &models::causal_coherent(), false);
    // Figure 1 (no location written twice) is trivially coherent, and
    // remains allowed.
    expect(&fig1(), &models::causal_coherent(), true);
}

#[test]
fn stale_message_passing_is_forbidden_even_by_pram() {
    // p writes data then flag; q sees the flag but stale data. PRAM's
    // pipelined (per-source FIFO) delivery already forbids this: if the
    // flag write arrived, the earlier data write arrived first. Only the
    // coherent-only memory, which drops cross-location program order,
    // admits it.
    let h = parse_history("p: w(d)1 w(f)1\nq: r(f)1 r(d)0").unwrap();
    expect(&h, &models::pram(), false);
    expect(&h, &models::pc(), false);
    expect(&h, &models::causal(), false);
    expect(&h, &models::tso(), false);
    expect(&h, &models::coherent(), true);
}

#[test]
fn paper_tso_has_no_store_forwarding() {
    // Under SPARC TSO a processor may read its own buffered write early
    // (store forwarding). The paper's characterization orders a write
    // before a later read of the SAME location via ppo, so reading your
    // own write pins it into the global store order: this
    // forwarding-dependent history is forbidden by the paper's TSO even
    // though hardware TSO allows it. We reproduce the paper's definition.
    let h = parse_history("p: w(x)1 r(x)1 r(y)0\nq: w(y)1 r(y)1 r(x)0").unwrap();
    expect(&h, &models::sc(), false);
    expect(&h, &models::tso(), false);
    // Dropping the own-read pins (no same-location reads) recovers the
    // classic Figure 1 behaviour.
    expect(&fig1(), &models::tso(), true);
    // PC's per-processor views do admit the forwarding history.
    expect(&h, &models::pc(), true);
}

// --- Release consistency (Section 3.4 / Section 5) -----------------------

#[test]
fn rc_properly_labeled_message_passing() {
    // Release/acquire bracketing: data write before the release, data
    // read after the acquire. Reading stale data is forbidden by both
    // RC variants; fresh data is allowed.
    let stale = parse_history("q: w(d)1 wl(s)1\np: rl(s)1 r(d)0").unwrap();
    expect(&stale, &models::rc_sc(), false);
    expect(&stale, &models::rc_pc(), false);

    let fresh = parse_history("q: w(d)1 wl(s)1\np: rl(s)1 r(d)1").unwrap();
    expect(&fresh, &models::rc_sc(), true);
    expect(&fresh, &models::rc_pc(), true);
}

#[test]
fn rc_unbracketed_data_races_are_weak() {
    // Without labels RC places almost no constraints: the classic
    // message-passing violation is allowed.
    let h = parse_history("p: w(d)1 w(f)1\nq: r(f)1 r(d)0").unwrap();
    expect(&h, &models::rc_sc(), true);
    expect(&h, &models::rc_pc(), true);
}

#[test]
fn rc_checker_reports_mixed_locations_unsupported() {
    let h = parse_history("p: wl(s)1 w(d)1\nq: r(s)1").unwrap();
    match check(&h, &models::rc_sc()) {
        Verdict::Unsupported(msg) => assert!(msg.contains('s'), "{msg}"),
        other => panic!("expected Unsupported, got {other:?}"),
    }
}

/// The Section 5 execution: both processors run the Bakery entry protocol
/// (all synchronization operations labeled) and each observes the other's
/// writes only after all of its own operations. `true`/`false` are 1/0.
fn bakery_section5_history() -> History {
    parse_history(
        "p1: wl(choosing[0])1 rl(number[1])0 wl(number[0])1 wl(choosing[0])0 \
              rl(choosing[1])0 rl(number[1])0\n\
         p2: wl(choosing[1])1 rl(number[0])0 wl(number[1])1 wl(choosing[1])0 \
              rl(choosing[0])0 rl(number[0])0",
    )
    .unwrap()
}

#[test]
fn section5_bakery_violation_allowed_by_rc_pc() {
    // Each processor can order the other's labeled writes after all of
    // its own operations — PC's per-processor views permit exactly that,
    // so both processors pass the entry protocol and the critical section
    // is violated.
    let h = bakery_section5_history();
    expect(&h, &models::rc_pc(), true);
}

#[test]
fn section5_bakery_violation_forbidden_by_rc_sc() {
    // Under RC_sc the labeled operations need one common legal order, and
    // the Bakery algorithm is correct under SC: no such order lets both
    // processors read 0 for the other's `number` after writing their own.
    let h = bakery_section5_history();
    expect(&h, &models::rc_sc(), false);
}

#[test]
fn section5_serialized_bakery_allowed_by_both() {
    // A properly serialized run (p2 starts after p1's exit) must be
    // admitted by both variants.
    let h = parse_history(
        "p1: wl(choosing[0])1 rl(number[1])0 wl(number[0])1 wl(choosing[0])0 \
              rl(choosing[1])0 rl(number[1])0 wl(number[0])0\n\
         p2: wl(choosing[1])1 rl(number[0])0 wl(number[1])1 wl(choosing[1])0 \
              rl(choosing[0])0 rl(number[0])0",
    )
    .unwrap();
    expect(&h, &models::rc_sc(), true);
    expect(&h, &models::rc_pc(), true);
}

//! A sweep-wide concurrent memo table for admission verdicts.
//!
//! Lattice sweeps and batch checks re-decide the same question many
//! times: the same (history, model) pair shows up under processor,
//! location, and value renamings, and `check_matrix` revisits identical
//! histories across models. [`MemoCache`] caches *decided* verdicts keyed
//! by `(`[`HistoryKey`]`, model parameter key)` — the canonical form of
//! the history ([`crate::canon`]) and a hash of the model's parameter
//! point ([`crate::spec::ModelSpec::param_key`]) — so every member of a
//! symmetry class is decided once per model.
//!
//! * `Allowed` entries store their witness in *canonical* coordinates;
//!   on a hit the witness is translated through the querying history's
//!   own permutation maps, so it verifies against that history.
//! * `Exhausted` verdicts are never cached: they depend on the budget
//!   the particular check ran under, not on the question.
//! * `Unsupported` verdicts are never cached: they are cheap to
//!   recompute and their messages embed the model's display name, which
//!   is not part of the parameter key.
//!
//! The table is sharded: 16 shards, each a `Mutex<HashMap>` with FIFO
//! eviction at a fixed per-shard capacity, so concurrent workers rarely
//! contend and the table's memory is bounded. Hit/miss/insert/eviction
//! counters are atomic and surface through `smc corpus --stats`/`--json`.

use crate::canon::{Canon, HistoryKey};
use crate::checker::{Verdict, Witness};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const NUM_SHARDS: usize = 16;

/// Default total capacity (entries across all shards).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// A cached decided verdict, with any witness kept in canonical
/// coordinates.
#[derive(Debug, Clone)]
pub enum CachedVerdict {
    /// Admitted; the canonical-coordinate witness is attached.
    Allowed(Witness),
    /// Not admitted.
    Disallowed,
}

#[derive(Default)]
struct Shard {
    map: HashMap<(u128, u64), CachedVerdict>,
    order: VecDeque<(u128, u64)>,
}

/// Concurrent sharded cache of decided verdicts, keyed by
/// `(canonical history, model parameters)`.
pub struct MemoCache {
    shards: Vec<Mutex<Shard>>,
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
}

/// A snapshot of a cache's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups that found a cached verdict.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries inserted.
    pub inserts: u64,
    /// Entries evicted (FIFO, at capacity).
    pub evictions: u64,
}

impl std::fmt::Debug for MemoCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("MemoCache")
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("inserts", &s.inserts)
            .field("evictions", &s.evictions)
            .finish()
    }
}

impl Default for MemoCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl MemoCache {
    /// A cache bounded to roughly `capacity` entries (rounded up to a
    /// multiple of the shard count).
    pub fn with_capacity(capacity: usize) -> Self {
        MemoCache {
            shards: (0..NUM_SHARDS)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            shard_capacity: capacity.div_ceil(NUM_SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: HistoryKey, model: u64) -> &Mutex<Shard> {
        let mix = (key.0 as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_right(17)
            ^ model;
        &self.shards[(mix as usize) % NUM_SHARDS]
    }

    /// Look up the cached verdict for `(key, model)`, counting the hit or
    /// miss.
    pub fn lookup(&self, key: HistoryKey, model: u64) -> Option<CachedVerdict> {
        let shard = match self.shard_of(key, model).lock() {
            Ok(s) => s,
            Err(p) => p.into_inner(),
        };
        match shard.map.get(&(key.0, model)) {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a decided verdict for `(key, model)`, evicting the oldest
    /// entry of the shard if it is at capacity. Re-inserting an existing
    /// key replaces the value in place.
    pub fn insert(&self, key: HistoryKey, model: u64, verdict: CachedVerdict) {
        let mut shard = match self.shard_of(key, model).lock() {
            Ok(s) => s,
            Err(p) => p.into_inner(),
        };
        let k = (key.0, model);
        if shard.map.insert(k, verdict).is_none() {
            shard.order.push_back(k);
            self.inserts.fetch_add(1, Ordering::Relaxed);
            while shard.map.len() > self.shard_capacity {
                if let Some(old) = shard.order.pop_front() {
                    shard.map.remove(&old);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                } else {
                    break;
                }
            }
        }
    }

    /// Record a checker verdict if it is cacheable (decided), translating
    /// any witness into canonical coordinates first.
    pub fn record(&self, canon: &Canon, model: u64, verdict: &Verdict) {
        match verdict {
            Verdict::Allowed(w) => self.insert(
                canon.key,
                model,
                CachedVerdict::Allowed(canon.witness_to_canon(w)),
            ),
            Verdict::Disallowed => self.insert(canon.key, model, CachedVerdict::Disallowed),
            Verdict::Exhausted | Verdict::Unsupported(_) => {}
        }
    }

    /// Turn a cached verdict into a [`Verdict`] for the querying history,
    /// translating the witness out of canonical coordinates.
    pub fn rehydrate(canon: &Canon, hit: CachedVerdict) -> Verdict {
        match hit {
            CachedVerdict::Allowed(w) => Verdict::Allowed(Box::new(canon.witness_from_canon(&w))),
            CachedVerdict::Disallowed => Verdict::Disallowed,
        }
    }

    /// Number of entries currently cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| match s.lock() {
                Ok(s) => s.map.len(),
                Err(p) => p.into_inner().map.len(),
            })
            .sum()
    }

    /// `true` if the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the hit/miss/insert/eviction counters.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u128) -> HistoryKey {
        HistoryKey(n)
    }

    #[test]
    fn hit_after_insert() {
        let cache = MemoCache::with_capacity(64);
        assert!(cache.lookup(key(1), 7).is_none());
        cache.insert(key(1), 7, CachedVerdict::Disallowed);
        assert!(matches!(
            cache.lookup(key(1), 7),
            Some(CachedVerdict::Disallowed)
        ));
        // Same history, different model: distinct entry.
        assert!(cache.lookup(key(1), 8).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 2, 1));
    }

    #[test]
    fn eviction_is_fifo_and_bounded() {
        let cache = MemoCache::with_capacity(NUM_SHARDS); // 1 entry per shard
        for i in 0..1000u64 {
            cache.insert(key(i as u128), 0, CachedVerdict::Disallowed);
        }
        assert!(cache.len() <= NUM_SHARDS);
        assert!(cache.stats().evictions > 0);
    }

    #[test]
    fn concurrent_use_is_safe() {
        let cache = MemoCache::with_capacity(1024);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..500u64 {
                        cache.insert(key((i % 64) as u128), t, CachedVerdict::Disallowed);
                        let _ = cache.lookup(key((i % 64) as u128), t);
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 2000);
        assert!(!cache.is_empty());
    }
}

//! A sweep-wide concurrent memo table for admission verdicts.
//!
//! Lattice sweeps and batch checks re-decide the same question many
//! times: the same (history, model) pair shows up under processor,
//! location, and value renamings, and `check_matrix` revisits identical
//! histories across models. [`MemoCache`] caches *decided* verdicts keyed
//! by `(`[`HistoryKey`]`, model parameter key)` — the canonical form of
//! the history ([`crate::canon`]) and a hash of the model's parameter
//! point ([`crate::spec::ModelSpec::param_key`]) — so every member of a
//! symmetry class is decided once per model.
//!
//! * `Allowed` entries store their witness in *canonical* coordinates;
//!   on a hit the witness is translated through the querying history's
//!   own permutation maps, so it verifies against that history.
//! * `Exhausted` verdicts are never cached: they depend on the budget
//!   the particular check ran under, not on the question.
//! * `Unsupported` verdicts are never cached: they are cheap to
//!   recompute and their messages embed the model's display name, which
//!   is not part of the parameter key.
//!
//! The table is sharded: 16 shards, each a `Mutex<HashMap>` with FIFO
//! eviction at a fixed per-shard capacity, so concurrent workers rarely
//! contend and the table's memory is bounded. Hit/miss/insert/eviction
//! counters are atomic and surface through `smc corpus --stats`/`--json`.

use crate::binfmt::{write_u32, Reader};
use crate::canon::{Canon, HistoryKey};
use crate::checker::{Verdict, Witness};
use smc_history::OpId;
use std::collections::{HashMap, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const NUM_SHARDS: usize = 16;

/// Default total capacity (entries across all shards).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// A cached decided verdict, with any witness kept in canonical
/// coordinates.
#[derive(Debug, Clone)]
pub enum CachedVerdict {
    /// Admitted; the canonical-coordinate witness is attached.
    Allowed(Witness),
    /// Not admitted.
    Disallowed,
}

#[derive(Default)]
struct Shard {
    map: HashMap<(u128, u64), CachedVerdict>,
    order: VecDeque<(u128, u64)>,
}

/// Concurrent sharded cache of decided verdicts, keyed by
/// `(canonical history, model parameters)`.
pub struct MemoCache {
    shards: Vec<Mutex<Shard>>,
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
}

/// A snapshot of a cache's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups that found a cached verdict.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries inserted.
    pub inserts: u64,
    /// Entries evicted (FIFO, at capacity).
    pub evictions: u64,
}

impl std::fmt::Debug for MemoCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("MemoCache")
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("inserts", &s.inserts)
            .field("evictions", &s.evictions)
            .finish()
    }
}

impl Default for MemoCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl MemoCache {
    /// A cache bounded to roughly `capacity` entries (rounded up to a
    /// multiple of the shard count).
    pub fn with_capacity(capacity: usize) -> Self {
        MemoCache {
            shards: (0..NUM_SHARDS)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            shard_capacity: capacity.div_ceil(NUM_SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: HistoryKey, model: u64) -> &Mutex<Shard> {
        let mix = (key.0 as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_right(17)
            ^ model;
        &self.shards[(mix as usize) % NUM_SHARDS]
    }

    /// Look up the cached verdict for `(key, model)`, counting the hit or
    /// miss.
    pub fn lookup(&self, key: HistoryKey, model: u64) -> Option<CachedVerdict> {
        let shard = match self.shard_of(key, model).lock() {
            Ok(s) => s,
            Err(p) => p.into_inner(),
        };
        match shard.map.get(&(key.0, model)) {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a decided verdict for `(key, model)`, evicting the oldest
    /// entry of the shard if it is at capacity. Re-inserting an existing
    /// key replaces the value in place.
    pub fn insert(&self, key: HistoryKey, model: u64, verdict: CachedVerdict) {
        let mut shard = match self.shard_of(key, model).lock() {
            Ok(s) => s,
            Err(p) => p.into_inner(),
        };
        let k = (key.0, model);
        if shard.map.insert(k, verdict).is_none() {
            shard.order.push_back(k);
            self.inserts.fetch_add(1, Ordering::Relaxed);
            while shard.map.len() > self.shard_capacity {
                if let Some(old) = shard.order.pop_front() {
                    shard.map.remove(&old);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                } else {
                    break;
                }
            }
        }
    }

    /// Record a checker verdict if it is cacheable (decided), translating
    /// any witness into canonical coordinates first.
    pub fn record(&self, canon: &Canon, model: u64, verdict: &Verdict) {
        match verdict {
            Verdict::Allowed(w) => self.insert(
                canon.key,
                model,
                CachedVerdict::Allowed(canon.witness_to_canon(w)),
            ),
            Verdict::Disallowed => self.insert(canon.key, model, CachedVerdict::Disallowed),
            Verdict::Exhausted | Verdict::Unsupported(_) => {}
        }
    }

    /// Turn a cached verdict into a [`Verdict`] for the querying history,
    /// translating the witness out of canonical coordinates.
    pub fn rehydrate(canon: &Canon, hit: CachedVerdict) -> Verdict {
        match hit {
            CachedVerdict::Allowed(w) => Verdict::Allowed(Box::new(canon.witness_from_canon(&w))),
            CachedVerdict::Disallowed => Verdict::Disallowed,
        }
    }

    /// Number of entries currently cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| match s.lock() {
                Ok(s) => s.map.len(),
                Err(p) => p.into_inner().map.len(),
            })
            .sum()
    }

    /// `true` if the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the hit/miss/insert/eviction counters.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Write every cached entry to `path` in the versioned binary format
    /// described at [`MAGIC`]. Returns the number of entries written.
    ///
    /// Entries are written in each shard's insertion (FIFO) order, so a
    /// later [`MemoCache::load`] into a same-capacity cache evicts the
    /// same entries a live cache would have.
    pub fn save(&self, path: &Path) -> std::io::Result<usize> {
        let mut entries: Vec<((u128, u64), CachedVerdict)> = Vec::new();
        for shard in &self.shards {
            let shard = match shard.lock() {
                Ok(s) => s,
                Err(p) => p.into_inner(),
            };
            for k in &shard.order {
                if let Some(v) = shard.map.get(k) {
                    entries.push((*k, v.clone()));
                }
            }
        }
        // Param-key table: verdicts reference their model by index, so the
        // common case (thousands of histories, a handful of models) pays
        // 4 bytes per record instead of 8.
        let mut models: Vec<u64> = Vec::new();
        for ((_, m), _) in &entries {
            if !models.contains(m) {
                models.push(*m);
            }
        }

        let mut buf: Vec<u8> = Vec::new();
        buf.extend_from_slice(MAGIC);
        write_u32(&mut buf, models.len() as u32);
        for m in &models {
            buf.extend_from_slice(&m.to_le_bytes());
        }
        write_u32(&mut buf, entries.len() as u32);
        for ((key, model), verdict) in &entries {
            buf.extend_from_slice(&key.to_le_bytes());
            let idx = models.iter().position(|m| m == model).unwrap_or(0);
            write_u32(&mut buf, idx as u32);
            match verdict {
                CachedVerdict::Disallowed => buf.push(0),
                CachedVerdict::Allowed(w) => {
                    buf.push(1);
                    write_witness(&mut buf, w);
                }
            }
        }
        crate::binfmt::write_file(path, &buf)?;
        Ok(entries.len())
    }

    /// Load entries saved by [`MemoCache::save`] into this cache (on top
    /// of whatever it already holds). Returns the number of entries
    /// loaded, or a description of why the file was rejected — callers
    /// are expected to warn and continue with a cold cache, never panic.
    pub fn load(&self, path: &Path) -> Result<usize, String> {
        let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let mut r = Reader::new(&bytes);
        let magic = r.take(MAGIC.len())?;
        if magic != MAGIC {
            return Err(format!(
                "{}: not a memo file (bad magic or version)",
                path.display()
            ));
        }
        let num_models = r.u32()? as usize;
        let mut models = Vec::new();
        for _ in 0..num_models {
            models.push(r.u64()?);
        }
        let num_entries = r.u32()? as usize;
        let mut loaded = 0usize;
        for _ in 0..num_entries {
            let key = r.u128()?;
            let pos = r.pos();
            let idx = r.u32()? as usize;
            let model = *models
                .get(idx)
                .ok_or_else(|| format!("model index {idx} out of range at byte {pos}"))?;
            let pos = r.pos();
            let verdict = match r.u8()? {
                0 => CachedVerdict::Disallowed,
                1 => CachedVerdict::Allowed(read_witness(&mut r)?),
                t => return Err(format!("unknown verdict tag {t} at byte {pos}")),
            };
            self.insert(HistoryKey(key), model, verdict);
            loaded += 1;
        }
        Ok(loaded)
    }
}

/// File magic for [`MemoCache::save`]: `SMCMEMO` plus a format version
/// byte. The payload is little-endian throughout: a `u32` count of model
/// parameter keys followed by those keys as `u64`s, then a `u32` record
/// count, then records of `(HistoryKey as u128, model index u32, tag u8,
/// witness if tag = 1)`. Witnesses are length-prefixed vectors of `u32`
/// operation ids in canonical coordinates.
pub const MAGIC: &[u8; 8] = b"SMCMEMO\x01";

fn write_ids(buf: &mut Vec<u8>, ids: &[OpId]) {
    write_u32(buf, ids.len() as u32);
    for id in ids {
        write_u32(buf, id.0);
    }
}

fn write_opt_ids(buf: &mut Vec<u8>, ids: Option<&Vec<OpId>>) {
    match ids {
        None => buf.push(0),
        Some(ids) => {
            buf.push(1);
            write_ids(buf, ids);
        }
    }
}

fn write_witness(buf: &mut Vec<u8>, w: &Witness) {
    write_u32(buf, w.views.len() as u32);
    for view in &w.views {
        write_ids(buf, view);
    }
    write_opt_ids(buf, w.store_order.as_ref());
    match &w.coherence {
        None => buf.push(0),
        Some(orders) => {
            buf.push(1);
            write_u32(buf, orders.len() as u32);
            for o in orders {
                write_ids(buf, o);
            }
        }
    }
    write_opt_ids(buf, w.labeled_order.as_ref());
    match &w.reads_from {
        None => buf.push(0),
        Some(rf) => {
            buf.push(1);
            write_u32(buf, rf.len() as u32);
            for src in rf {
                match src {
                    None => buf.push(0),
                    Some(id) => {
                        buf.push(1);
                        write_u32(buf, id.0);
                    }
                }
            }
        }
    }
}

fn read_ids(r: &mut Reader<'_>) -> Result<Vec<OpId>, String> {
    let n = r.len_prefix(4)?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(OpId(r.u32()?));
    }
    Ok(v)
}

fn read_opt_ids(r: &mut Reader<'_>) -> Result<Option<Vec<OpId>>, String> {
    let pos = r.pos();
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(read_ids(r)?)),
        t => Err(format!("unknown option tag {t} at byte {pos}")),
    }
}

fn read_witness(r: &mut Reader<'_>) -> Result<Witness, String> {
    let num_views = r.len_prefix(4)?;
    let mut views = Vec::with_capacity(num_views);
    for _ in 0..num_views {
        views.push(read_ids(r)?);
    }
    let store_order = read_opt_ids(r)?;
    let pos = r.pos();
    let coherence = match r.u8()? {
        0 => None,
        1 => {
            let n = r.len_prefix(4)?;
            let mut orders = Vec::with_capacity(n);
            for _ in 0..n {
                orders.push(read_ids(r)?);
            }
            Some(orders)
        }
        t => return Err(format!("unknown option tag {t} at byte {pos}")),
    };
    let labeled_order = read_opt_ids(r)?;
    let pos = r.pos();
    let reads_from = match r.u8()? {
        0 => None,
        1 => {
            let n = r.len_prefix(1)?;
            let mut rf = Vec::with_capacity(n);
            for _ in 0..n {
                let pos = r.pos();
                rf.push(match r.u8()? {
                    0 => None,
                    1 => Some(OpId(r.u32()?)),
                    t => return Err(format!("unknown reads-from tag {t} at byte {pos}")),
                });
            }
            Some(rf)
        }
        t => return Err(format!("unknown option tag {t} at byte {pos}")),
    };
    Ok(Witness {
        views,
        store_order,
        coherence,
        labeled_order,
        reads_from,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u128) -> HistoryKey {
        HistoryKey(n)
    }

    #[test]
    fn hit_after_insert() {
        let cache = MemoCache::with_capacity(64);
        assert!(cache.lookup(key(1), 7).is_none());
        cache.insert(key(1), 7, CachedVerdict::Disallowed);
        assert!(matches!(
            cache.lookup(key(1), 7),
            Some(CachedVerdict::Disallowed)
        ));
        // Same history, different model: distinct entry.
        assert!(cache.lookup(key(1), 8).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 2, 1));
    }

    #[test]
    fn eviction_is_fifo_and_bounded() {
        let cache = MemoCache::with_capacity(NUM_SHARDS); // 1 entry per shard
        for i in 0..1000u64 {
            cache.insert(key(i as u128), 0, CachedVerdict::Disallowed);
        }
        assert!(cache.len() <= NUM_SHARDS);
        assert!(cache.stats().evictions > 0);
    }

    fn sample_witness() -> Witness {
        Witness {
            views: vec![vec![OpId(0), OpId(2)], vec![OpId(1)]],
            store_order: Some(vec![OpId(0), OpId(1)]),
            coherence: Some(vec![vec![OpId(0)], vec![OpId(1)]]),
            labeled_order: None,
            reads_from: Some(vec![None, Some(OpId(0)), None]),
        }
    }

    #[test]
    fn save_load_round_trips() {
        let dir = std::env::temp_dir().join("smc-memo-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.smcmemo");
        let cache = MemoCache::with_capacity(64);
        cache.insert(key(10), 3, CachedVerdict::Disallowed);
        cache.insert(key(11), 3, CachedVerdict::Allowed(sample_witness()));
        cache.insert(key(11), 9, CachedVerdict::Disallowed);
        assert_eq!(cache.save(&path).unwrap(), 3);

        let fresh = MemoCache::with_capacity(64);
        assert_eq!(fresh.load(&path).unwrap(), 3);
        assert_eq!(fresh.len(), 3);
        assert!(matches!(
            fresh.lookup(key(10), 3),
            Some(CachedVerdict::Disallowed)
        ));
        match fresh.lookup(key(11), 3) {
            Some(CachedVerdict::Allowed(w)) => assert_eq!(w, sample_witness()),
            other => panic!("expected Allowed, got {other:?}"),
        }
        assert!(fresh.lookup(key(12), 3).is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_and_truncated_files_are_rejected_not_panicked() {
        let dir = std::env::temp_dir().join("smc-memo-corrupt");
        std::fs::create_dir_all(&dir).unwrap();

        // Wrong magic.
        let bad = dir.join("bad.smcmemo");
        std::fs::write(&bad, b"NOTMEMO\x01garbage").unwrap();
        assert!(MemoCache::default().load(&bad).is_err());

        // Wrong version byte.
        let ver = dir.join("ver.smcmemo");
        std::fs::write(&ver, b"SMCMEMO\x7f").unwrap();
        assert!(MemoCache::default().load(&ver).is_err());

        // Every truncation of a valid file must fail cleanly (or load a
        // prefix of the records), never panic or over-allocate.
        let good = dir.join("good.smcmemo");
        let cache = MemoCache::with_capacity(64);
        cache.insert(key(1), 5, CachedVerdict::Allowed(sample_witness()));
        cache.insert(key(2), 5, CachedVerdict::Disallowed);
        cache.save(&good).unwrap();
        let bytes = std::fs::read(&good).unwrap();
        let trunc = dir.join("trunc.smcmemo");
        for cut in 0..bytes.len() {
            std::fs::write(&trunc, &bytes[..cut]).unwrap();
            assert!(MemoCache::default().load(&trunc).is_err(), "cut at {cut}");
        }

        // Flipping the declared record count far past the payload must be
        // caught by bounds checks.
        let mut huge = bytes.clone();
        let counts_at = MAGIC.len() + 4 + 8; // one model key in the table
        huge[counts_at..counts_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&trunc, &huge).unwrap();
        assert!(MemoCache::default().load(&trunc).is_err());

        // A bad structural tag is reported with the byte offset of the
        // offending byte, so a warning can point into the file.
        let mut tagged = bytes.clone();
        let first_record = MAGIC.len() + 4 + 8 + 4; // model table + entry count
        let tag_at = first_record + 16 + 4; // key + model index
        tagged[tag_at] = 0x7e;
        std::fs::write(&trunc, &tagged).unwrap();
        let e = MemoCache::default().load(&trunc).unwrap_err();
        assert!(
            e.contains(&format!("at byte {tag_at}")),
            "error should name byte {tag_at}: {e}"
        );

        for f in [bad, ver, good, trunc] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn concurrent_use_is_safe() {
        let cache = MemoCache::with_capacity(1024);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..500u64 {
                        cache.insert(key((i % 64) as u128), t, CachedVerdict::Disallowed);
                        let _ = cache.lookup(key((i % 64) as u128), t);
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 2000);
        assert!(!cache.is_empty());
    }
}

//! Parallel batch checking: fan (history × model) pairs — or the inner
//! enumerations of a single check — across a thread pool.
//!
//! Three entry points, all built on [`crate::budget::SharedBudget`] and
//! `std::thread::scope` (no external runtime):
//!
//! * [`check_batch`] — check many independent (history, model) pairs;
//!   workers pull pairs from a shared index, results come back in input
//!   order regardless of completion order.
//! * [`check_matrix`] — convenience wrapper: every history against every
//!   model, history-major.
//! * [`check_parallel`] — parallelize a *single* check: reads-from
//!   assignments fan out across workers drawing on one shared node pool,
//!   and for models with no shared orders the per-processor view searches
//!   run concurrently. The first worker to reach a verdict cancels the
//!   rest.
//!
//! Determinism: `check_batch`/`check_matrix` results are positionally
//! identical to running [`crate::checker::check_with_stats`] on each pair
//! (each pair gets its own budget of `cfg.node_budget` nodes, exactly as
//! in the sequential case). `check_parallel` returns the lowest-index
//! decided outcome; because its workers share one node pool it may
//! *decide* an instance where the sequential order of exploration
//! exhausts first, but it never contradicts a sequential `Allowed` or
//! `Disallowed`, and every `Allowed` carries a witness that
//! [`crate::verify::verify_witness`] accepts.

use crate::budget::SharedBudget;
use crate::checker::{
    check_with_budget, check_with_rf, check_with_stats, proc_constraints, view_op_sets,
    CheckConfig, CheckStats, Stage, Step, Verdict, Witness,
};
use crate::constraints::{assemble_global, BaseOrders, Candidates};
use crate::rf::{enumerate_reads_from, ReadsFrom};
use crate::spec::ModelSpec;
use crate::view::{find_legal_extension, LegalityMode, SearchOutcome, ViewProblem};
use smc_history::History;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Outcome of one (history, model) pair in a batch.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Position of the pair in the input slice.
    pub index: usize,
    /// The checker's answer for this pair.
    pub verdict: Verdict,
    /// Work accounting for this pair.
    pub stats: CheckStats,
}

/// Check every (history, model) pair on up to `jobs` worker threads.
///
/// `results[i]` always corresponds to `pairs[i]`; each pair is checked
/// under its own `cfg.node_budget`, so verdicts are identical to calling
/// [`crate::checker::check_with_config`] on each pair in turn.
pub fn check_batch(
    pairs: &[(&History, &ModelSpec)],
    cfg: &CheckConfig,
    jobs: usize,
) -> Vec<BatchResult> {
    let jobs = jobs.max(1).min(pairs.len().max(1));
    if jobs <= 1 || pairs.len() <= 1 {
        return pairs
            .iter()
            .enumerate()
            .map(|(index, (h, m))| {
                let (verdict, stats) = check_with_stats(h, m, cfg);
                BatchResult {
                    index,
                    verdict,
                    stats,
                }
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<BatchResult>>> =
        Mutex::new((0..pairs.len()).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= pairs.len() {
                    break;
                }
                let (h, m) = pairs[index];
                let (verdict, stats) = check_with_stats(h, m, cfg);
                let done = BatchResult {
                    index,
                    verdict,
                    stats,
                };
                match slots.lock() {
                    Ok(mut slots) => slots[index] = Some(done),
                    // A sibling panicked while holding the lock; the
                    // scope is about to propagate that panic anyway.
                    Err(_) => break,
                }
            });
        }
    });
    let slots = match slots.into_inner() {
        Ok(slots) => slots,
        Err(poisoned) => poisoned.into_inner(),
    };
    slots
        .into_iter()
        .enumerate()
        .map(|(index, r)| {
            r.unwrap_or_else(|| BatchResult {
                index,
                verdict: Verdict::Exhausted,
                stats: CheckStats::default(),
            })
        })
        .collect()
}

/// Check every history against every model, history-major: the result for
/// `(histories[i], models[j])` is at index `i * models.len() + j`.
pub fn check_matrix(
    histories: &[History],
    models: &[ModelSpec],
    cfg: &CheckConfig,
    jobs: usize,
) -> Vec<BatchResult> {
    let pairs: Vec<(&History, &ModelSpec)> = histories
        .iter()
        .flat_map(|h| models.iter().map(move |m| (h, m)))
        .collect();
    check_batch(&pairs, cfg, jobs)
}

/// `true` if the model requires no agreement between views beyond the
/// reads-from assignment — the case in which per-processor view searches
/// are fully independent and can run on separate threads.
fn views_decouple(spec: &ModelSpec) -> bool {
    !spec.identical_views && !spec.global_write_order && !spec.coherence && spec.labeled.is_none()
}

/// Run a single check on up to `jobs` threads sharing one pool of
/// `cfg.node_budget` search nodes.
///
/// Parallelism comes from two sources, chosen by the model's shape:
/// reads-from assignments fan out across workers (causal, PC, RC — any
/// model that enumerates explanations), and for models with no shared
/// orders (PRAM-like) the per-processor view searches run concurrently.
/// Models that are sequential-only under this scheme (e.g. SC's single
/// global search) fall back to [`check_with_stats`].
pub fn check_parallel(
    h: &History,
    spec: &ModelSpec,
    cfg: &CheckConfig,
    jobs: usize,
) -> (Verdict, CheckStats) {
    let jobs = jobs.max(1);
    if jobs == 1 {
        return check_with_stats(h, spec, cfg);
    }
    if let Err(e) = spec.validate() {
        return (Verdict::Unsupported(e), CheckStats::default());
    }
    let start = Instant::now();
    let base = BaseOrders::new(h);

    let (verdict, mut stats) = if spec.needs_reads_from() {
        let (rfs, truncated) = enumerate_reads_from(h, cfg.max_rf);
        if rfs.is_empty() {
            (Verdict::Disallowed, CheckStats::default())
        } else if rfs.len() == 1 && views_decouple(spec) {
            parallel_views(h, spec, &base, Some(&rfs[0]), cfg, jobs)
        } else {
            let (v, mut st) = parallel_rf(h, spec, &base, &rfs, cfg, jobs);
            if truncated {
                st.rf_truncated = true;
                if v.is_disallowed() {
                    st.exhausted_stage = Some(Stage::ReadsFrom);
                    return finish(Verdict::Exhausted, st, start);
                }
            }
            (v, st)
        }
    } else if views_decouple(spec) {
        parallel_views(h, spec, &base, None, cfg, jobs)
    } else {
        // Shared-order enumerations (SC's single global search, TSO's
        // store orders, coherence, labeled orders) are inherently
        // sequential in this engine; use the plain checker.
        return check_with_stats(h, spec, cfg);
    };
    stats.wall = start.elapsed();
    (verdict, stats)
}

fn finish(v: Verdict, mut stats: CheckStats, start: Instant) -> (Verdict, CheckStats) {
    stats.wall = start.elapsed();
    (v, stats)
}

/// Fan the reads-from assignments across workers sharing one node pool;
/// the first decided outcome cancels the remaining workers.
fn parallel_rf(
    h: &History,
    spec: &ModelSpec,
    base: &BaseOrders,
    rfs: &[ReadsFrom],
    cfg: &CheckConfig,
    jobs: usize,
) -> (Verdict, CheckStats) {
    let pool = SharedBudget::new(cfg.node_budget);
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Step>>> = Mutex::new((0..rfs.len()).map(|_| None).collect());
    let tried = AtomicUsize::new(0);
    let nodes = Mutex::new(0u64);

    let jobs = jobs.min(rfs.len());
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| {
                let budget = pool.attach();
                loop {
                    if pool.is_cancelled() {
                        break;
                    }
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= rfs.len() {
                        break;
                    }
                    tried.fetch_add(1, Ordering::Relaxed);
                    let step = check_with_rf(h, spec, base, Some(&rfs[index]), &budget);
                    // A decided outcome (witness found, or the model is
                    // out of scope) makes the remaining assignments moot.
                    if matches!(step, Step::Allowed(_) | Step::Unsupported(_)) {
                        pool.cancel();
                    }
                    if let Ok(mut slots) = slots.lock() {
                        slots[index] = Some(step);
                    } else {
                        break;
                    }
                }
                budget.release();
                if let Ok(mut nodes) = nodes.lock() {
                    *nodes += budget.spent();
                }
            });
        }
    });

    let slots = match slots.into_inner() {
        Ok(s) => s,
        Err(p) => p.into_inner(),
    };
    let mut stats = CheckStats {
        nodes_spent: match nodes.into_inner() {
            Ok(n) => n,
            Err(p) => p.into_inner(),
        },
        rf_assignments_tried: tried.load(Ordering::Relaxed),
        ..CheckStats::default()
    };

    // Lowest-index decided outcome wins; cancelled or genuinely exhausted
    // workers leave `Exhausted`/`None` slots that only matter if nothing
    // was decided anywhere.
    let mut exhausted: Option<Stage> = None;
    let mut skipped = false;
    for slot in slots {
        match slot {
            Some(Step::Allowed(w)) => return (Verdict::Allowed(w), stats),
            Some(Step::Unsupported(e)) => return (Verdict::Unsupported(e), stats),
            Some(Step::Disallowed) => {}
            Some(Step::Exhausted(stage)) => exhausted = exhausted.or(Some(stage)),
            None => skipped = true,
        }
    }
    match exhausted {
        Some(stage) => {
            stats.exhausted_stage = Some(stage);
            (Verdict::Exhausted, stats)
        }
        // `skipped` without a decided slot can only mean cancellation
        // raced a decided outcome that then failed to record; treat as
        // exhaustion rather than claiming `Disallowed` for unchecked rfs.
        None if skipped => {
            stats.exhausted_stage = Some(Stage::ReadsFrom);
            (Verdict::Exhausted, stats)
        }
        None => (Verdict::Disallowed, stats),
    }
}

/// Search each processor's view on its own thread (models with no shared
/// orders, so the views are independent once the reads-from assignment —
/// if any — is fixed). Any processor with no legal view refutes the whole
/// history and cancels the sibling searches.
fn parallel_views(
    h: &History,
    spec: &ModelSpec,
    base: &BaseOrders,
    rf: Option<&ReadsFrom>,
    cfg: &CheckConfig,
    jobs: usize,
) -> (Verdict, CheckStats) {
    let legality = match rf {
        Some(rf) => LegalityMode::ByReadsFrom(rf),
        None => LegalityMode::ByValue,
    };
    let cand = Candidates::default();
    let g = match assemble_global(h, spec, base, rf, &cand, None) {
        Ok(g) => g,
        Err(e) => return (Verdict::Unsupported(e), CheckStats::default()),
    };
    let mut stats = CheckStats::default();
    if rf.is_some() {
        stats.rf_assignments_tried = 1;
    }
    if !g.is_acyclic() {
        return (Verdict::Disallowed, stats);
    }

    let pool = SharedBudget::new(cfg.node_budget);
    let op_sets = view_op_sets(h, spec.delta);
    let procs = h.num_procs();
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<SearchOutcome>>> = Mutex::new((0..procs).map(|_| None).collect());
    let nodes = Mutex::new(0u64);

    let jobs = jobs.min(procs.max(1));
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| {
                let budget = pool.attach();
                loop {
                    if pool.is_cancelled() {
                        break;
                    }
                    let p = next.fetch_add(1, Ordering::Relaxed);
                    if p >= procs {
                        break;
                    }
                    let constraints = proc_constraints(h, spec, base, &g, p);
                    let problem = ViewProblem {
                        history: h,
                        ops: op_sets[p].clone(),
                        constraints: &constraints,
                        legality,
                    };
                    let out = find_legal_extension(&problem, &budget);
                    // A missing view refutes the history outright.
                    if matches!(out, SearchOutcome::NotFound) {
                        pool.cancel();
                    }
                    if let Ok(mut slots) = slots.lock() {
                        slots[p] = Some(out);
                    } else {
                        break;
                    }
                }
                budget.release();
                if let Ok(mut nodes) = nodes.lock() {
                    *nodes += budget.spent();
                }
            });
        }
    });

    let slots = match slots.into_inner() {
        Ok(s) => s,
        Err(p) => p.into_inner(),
    };
    stats.nodes_spent = match nodes.into_inner() {
        Ok(n) => n,
        Err(p) => p.into_inner(),
    };

    let mut views = Vec::with_capacity(procs);
    let mut exhausted = false;
    for slot in slots {
        match slot {
            Some(SearchOutcome::Found(v)) => views.push(v),
            Some(SearchOutcome::NotFound) => return (Verdict::Disallowed, stats),
            Some(SearchOutcome::Exhausted) | None => exhausted = true,
        }
    }
    if exhausted {
        stats.exhausted_stage = Some(Stage::ViewSearch);
        return (Verdict::Exhausted, stats);
    }
    (
        Verdict::Allowed(Box::new(Witness {
            views,
            store_order: None,
            coherence: None,
            labeled_order: None,
            reads_from: rf.map(|r| r.as_slice().to_vec()),
        })),
        stats,
    )
}

/// Run a whole batch against one shared node pool (used by callers that
/// want a global ceiling across many checks rather than a per-check
/// budget; verdicts may then differ from per-check budgeting by
/// exhausting earlier).
pub fn check_batch_shared(
    pairs: &[(&History, &ModelSpec)],
    cfg: &CheckConfig,
    jobs: usize,
    pool_nodes: u64,
) -> Vec<BatchResult> {
    let jobs = jobs.max(1).min(pairs.len().max(1));
    let pool = SharedBudget::new(pool_nodes);
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<BatchResult>>> =
        Mutex::new((0..pairs.len()).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| {
                let budget = pool.attach();
                loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= pairs.len() {
                        break;
                    }
                    let (h, m) = pairs[index];
                    let (verdict, stats) = check_with_budget(h, m, cfg, &budget);
                    let done = BatchResult {
                        index,
                        verdict,
                        stats,
                    };
                    match slots.lock() {
                        Ok(mut slots) => slots[index] = Some(done),
                        Err(_) => break,
                    }
                }
                budget.release();
            });
        }
    });
    let slots = match slots.into_inner() {
        Ok(s) => s,
        Err(p) => p.into_inner(),
    };
    slots
        .into_iter()
        .enumerate()
        .map(|(index, r)| {
            r.unwrap_or_else(|| BatchResult {
                index,
                verdict: Verdict::Exhausted,
                stats: CheckStats::default(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check_with_config;
    use crate::models;
    use crate::verify::verify_witness;
    use smc_history::litmus::parse_history;

    fn figures() -> Vec<History> {
        [
            "p: w(x)1 r(y)0\nq: w(y)1 r(x)0",
            "p: w(x)1\nq: r(x)1 w(y)1\nr: r(y)1 r(x)0",
            "p: w(x)1 r(x)1 r(x)2\nq: w(x)2 r(x)2 r(x)1",
            "p: w(x)1 w(y)1\nq: r(y)1 w(z)1 r(x)2\nr: w(x)2 r(x)1 r(z)1 r(y)1",
            "p: w(x)5\nq: w(x)5\nr: r(x)5 r(x)5",
        ]
        .iter()
        .map(|t| parse_history(t).expect("litmus fixture parses"))
        .collect()
    }

    #[test]
    fn batch_matches_sequential_on_figures() {
        let histories = figures();
        let models = models::all_models();
        let cfg = CheckConfig::default();
        let results = check_matrix(&histories, &models, &cfg, 4);
        assert_eq!(results.len(), histories.len() * models.len());
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.index, i);
            let h = &histories[i / models.len()];
            let m = &models[i % models.len()];
            let seq = check_with_config(h, m, &cfg);
            assert_eq!(
                r.verdict.decided(),
                seq.decided(),
                "{} on history {}",
                m.name,
                i / models.len()
            );
            if let Verdict::Allowed(w) = &r.verdict {
                verify_witness(h, m, w).expect("batch witness verifies");
            }
        }
    }

    #[test]
    fn batch_on_empty_input() {
        let cfg = CheckConfig::default();
        assert!(check_batch(&[], &cfg, 4).is_empty());
    }

    #[test]
    fn parallel_single_check_agrees() {
        let cfg = CheckConfig::default();
        for h in figures() {
            for m in models::all_models() {
                let seq = check_with_config(&h, &m, &cfg);
                let (par, stats) = check_parallel(&h, &m, &cfg, 4);
                if let (Some(a), Some(b)) = (seq.decided(), par.decided()) {
                    assert_eq!(a, b, "{} disagrees", m.name);
                }
                if let Verdict::Allowed(w) = &par {
                    verify_witness(&h, &m, w).expect("parallel witness verifies");
                    assert!(stats.nodes_spent > 0 || h.num_ops() == 0);
                }
            }
        }
    }

    #[test]
    fn parallel_views_refute_pram_violation() {
        // PRAM forbids reordering one processor's writes in another's view.
        let h = parse_history("p: w(x)1 w(y)1\nq: r(y)1 r(x)0").unwrap();
        let cfg = CheckConfig::default();
        let (v, _) = check_parallel(&h, &models::pram(), &cfg, 4);
        assert!(v.is_disallowed());
        assert!(check_with_config(&h, &models::pram(), &cfg).is_disallowed());
    }

    #[test]
    fn shared_pool_batch_exhausts_instead_of_lying() {
        let histories = figures();
        let models = [models::sc()];
        let cfg = CheckConfig::default();
        let pairs: Vec<(&History, &ModelSpec)> = histories
            .iter()
            .flat_map(|h| models.iter().map(move |m| (h, m)))
            .collect();
        // A pool far too small to decide anything: every result must be
        // Exhausted, never a fabricated decision.
        let results = check_batch_shared(&pairs, &cfg, 2, 1);
        assert!(results
            .iter()
            .all(|r| matches!(r.verdict, Verdict::Exhausted)));
    }
}

//! Parallel batch checking: fan (history × model) pairs — or the inner
//! enumerations of a single check — across a thread pool.
//!
//! Three entry points, all built on [`crate::budget::SharedBudget`] and
//! `std::thread::scope` (no external runtime):
//!
//! * [`check_batch`] — check many independent (history, model) pairs;
//!   workers pull pairs from a shared index, results come back in input
//!   order regardless of completion order.
//! * [`check_matrix`] — convenience wrapper: every history against every
//!   model, history-major.
//! * [`check_parallel`] — parallelize a *single* check: reads-from
//!   assignments fan out across workers drawing on one shared node pool,
//!   and for models with no shared orders the per-processor view searches
//!   run concurrently. The first worker to reach a verdict cancels the
//!   rest.
//!
//! Determinism: `check_batch`/`check_matrix` results are positionally
//! identical to running [`crate::checker::check_with_stats`] on each pair
//! (each pair gets its own budget of `cfg.node_budget` nodes, exactly as
//! in the sequential case). `check_parallel` returns the lowest-index
//! decided outcome; because its workers share one node pool it may
//! *decide* an instance where the sequential order of exploration
//! exhausts first, but it never contradicts a sequential `Allowed` or
//! `Disallowed`, and every `Allowed` carries a witness that
//! [`crate::verify::verify_witness`] accepts.

use crate::budget::{Budget, SharedBudget};
use crate::canon::canonicalize;
use crate::checker::{
    check_with_budget, check_with_rf, check_with_stats, check_with_store_order, proc_constraints,
    view_op_sets, CheckConfig, CheckStats, SchedulerKind, Stage, Step, Verdict, Witness,
};
use crate::constraints::{assemble_global, BaseOrders, Candidates};
use crate::memo::MemoCache;
use crate::rf::{enumerate_reads_from, ReadsFrom};
use crate::spec::ModelSpec;
use crate::steal::{run_units, steal_search, SharedFailedSet, StealDriver, Unit};
use crate::view::{
    find_legal_extension, find_legal_extension_from, split_prefixes, LegalityMode, PrefixSplit,
    SearchOutcome, ViewProblem,
};
use smc_history::{History, OpId};
use smc_relation::BitSet;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Above this many (store order × processor) units, the work-stealing
/// TSO fan-out would preprocess too many scheduling contexts up front;
/// the coarse per-store fan-out takes over.
const STEAL_UNIT_CAP: usize = 1024;

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Outcome of one (history, model) pair in a batch.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Position of the pair in the input slice.
    pub index: usize,
    /// The checker's answer for this pair.
    pub verdict: Verdict,
    /// Work accounting for this pair.
    pub stats: CheckStats,
}

/// Check every (history, model) pair on up to `jobs` worker threads.
///
/// `results[i]` always corresponds to `pairs[i]`; each pair is checked
/// under its own `cfg.node_budget`, so verdicts are identical to calling
/// [`crate::checker::check_with_config`] on each pair in turn.
pub fn check_batch(
    pairs: &[(&History, &ModelSpec)],
    cfg: &CheckConfig,
    jobs: usize,
) -> Vec<BatchResult> {
    let jobs = jobs.max(1).min(pairs.len().max(1));
    if jobs <= 1 || pairs.len() <= 1 {
        return pairs
            .iter()
            .enumerate()
            .map(|(index, (h, m))| {
                let (verdict, stats) = check_with_stats(h, m, cfg);
                BatchResult {
                    index,
                    verdict,
                    stats,
                }
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<BatchResult>>> =
        Mutex::new((0..pairs.len()).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= pairs.len() {
                    break;
                }
                let (h, m) = pairs[index];
                let (verdict, stats) = check_with_stats(h, m, cfg);
                let done = BatchResult {
                    index,
                    verdict,
                    stats,
                };
                match slots.lock() {
                    Ok(mut slots) => slots[index] = Some(done),
                    // A sibling panicked while holding the lock; the
                    // scope is about to propagate that panic anyway.
                    Err(_) => break,
                }
            });
        }
    });
    let slots = match slots.into_inner() {
        Ok(slots) => slots,
        Err(poisoned) => poisoned.into_inner(),
    };
    slots
        .into_iter()
        .enumerate()
        .map(|(index, r)| {
            r.unwrap_or_else(|| BatchResult {
                index,
                verdict: Verdict::Exhausted,
                stats: CheckStats::default(),
            })
        })
        .collect()
}

/// Check every history against every model, history-major: the result for
/// `(histories[i], models[j])` is at index `i * models.len() + j`.
pub fn check_matrix(
    histories: &[History],
    models: &[ModelSpec],
    cfg: &CheckConfig,
    jobs: usize,
) -> Vec<BatchResult> {
    let pairs: Vec<(&History, &ModelSpec)> = histories
        .iter()
        .flat_map(|h| models.iter().map(move |m| (h, m)))
        .collect();
    check_batch(&pairs, cfg, jobs)
}

/// `true` if the model requires no agreement between views beyond the
/// reads-from assignment — the case in which per-processor view searches
/// are fully independent and can run on separate threads.
fn views_decouple(spec: &ModelSpec) -> bool {
    !spec.identical_views && !spec.global_write_order && !spec.coherence && spec.labeled.is_none()
}

/// Run a single check on up to `jobs` threads sharing one pool of
/// `cfg.node_budget` search nodes.
///
/// Parallelism is chosen by the model's shape: reads-from assignments fan
/// out across workers (causal, PC, RC — any model that enumerates
/// explanations); for models with no shared orders (PRAM-like) the
/// per-processor view searches run concurrently; identical-views models
/// (SC) prefix-partition the single global view search into work-stealing
/// subtrees; and global-write-order models (TSO) fan the store orders out
/// (up to `cfg.store_order_cap`, beyond which they stream sequentially).
/// Coherence and labeled-order enumerations fall back to
/// [`check_with_stats`]. All sub-searches inherit the caller's
/// `CheckConfig` (budget, split factor, caps) rather than re-deriving
/// defaults.
pub fn check_parallel(
    h: &History,
    spec: &ModelSpec,
    cfg: &CheckConfig,
    jobs: usize,
) -> (Verdict, CheckStats) {
    // Worker-count sanity: like `check_batch`'s `jobs.min(pairs.len())`
    // clamp above, every fan-out below caps its thread count by the work
    // actually available (reads-from assignments, processors, store
    // orders, view operations), so an oversubscribed `--jobs` never
    // spawns workers that only pay pool/cancel setup.
    let jobs = jobs.max(1);
    if jobs == 1 {
        // The sequential checker consults the memo itself.
        let (verdict, mut stats) = check_with_stats(h, spec, cfg);
        stats.ran_sequential = !stats.memo_hit;
        return (verdict, stats);
    }
    // Memoized path: consult and update the cache here, and run the
    // parallel engine below with the memo detached so the inner
    // sub-checks don't re-canonicalize.
    if let Some(memo) = &cfg.memo {
        let start = Instant::now();
        let canon = canonicalize(h);
        if let Some(hit) = memo.lookup(canon.key, spec.param_key()) {
            let stats = CheckStats {
                memo_hit: true,
                wall: start.elapsed(),
                ..CheckStats::default()
            };
            return (MemoCache::rehydrate(&canon, hit), stats);
        }
        let inner = CheckConfig {
            memo: None,
            ..cfg.clone()
        };
        let (verdict, stats) = check_parallel_inner(h, spec, &inner, jobs);
        memo.record(&canon, spec.param_key(), &verdict);
        return (verdict, stats);
    }
    check_parallel_inner(h, spec, cfg, jobs)
}

fn check_parallel_inner(
    h: &History,
    spec: &ModelSpec,
    cfg: &CheckConfig,
    jobs: usize,
) -> (Verdict, CheckStats) {
    if let Err(e) = spec.validate() {
        return (Verdict::Unsupported(e), CheckStats::default());
    }
    let start = Instant::now();
    // The saturation engine never enumerates, so there is no fan-out to
    // parallelize; run it directly under the full node budget. This is
    // how big-history checks reach the engine through `check_parallel`
    // (and through the monitor's batch fallback) without every caller
    // re-implementing the routing.
    if cfg.resolve_engine(h, spec) == crate::checker::Engine::Saturate {
        let (verdict, mut stats) = check_with_stats(h, spec, cfg);
        stats.ran_sequential = !stats.memo_hit;
        return finish(verdict, stats, start);
    }
    // Adaptive sequential cutover: most instances (every litmus-sized
    // one) decide in far fewer nodes than the fixed cost of spawning
    // workers and zeroing a shared failed-state set is worth, so run a
    // budget-bounded sequential probe first and fan out only if it
    // exhausts. The probe explores exactly like `--jobs 1`, so a probe
    // decision (verdict and witness) is bit-identical to the sequential
    // checker's; on fall-through the wasted work is bounded by
    // `cfg.parallel_cutover` nodes.
    if cfg.parallel_cutover > 0 {
        let probe_budget = cfg.parallel_cutover.min(cfg.node_budget);
        let probe = Budget::local(probe_budget);
        let (verdict, mut stats) = check_with_budget(h, spec, cfg, &probe);
        stats.probe_nodes = probe.spent();
        if !matches!(verdict, Verdict::Exhausted) || probe_budget >= cfg.node_budget {
            // Decided — or the probe already had the full node budget,
            // in which case a parallel re-run could only re-cover the
            // same exhausted space.
            stats.ran_sequential = true;
            return finish(verdict, stats, start);
        }
        let probe_nodes = probe.spent();
        let (verdict, mut stats) = fan_out(h, spec, cfg, jobs, start);
        stats.probe_nodes = probe_nodes;
        stats.nodes_spent += probe_nodes;
        stats.wall = start.elapsed();
        return (verdict, stats);
    }
    fan_out(h, spec, cfg, jobs, start)
}

/// The parallel dispatch proper: pick a fan-out strategy from the
/// model's shape and run it. Reached only when the cutover probe is
/// disabled or has exhausted its node budget.
fn fan_out(
    h: &History,
    spec: &ModelSpec,
    cfg: &CheckConfig,
    jobs: usize,
    start: Instant,
) -> (Verdict, CheckStats) {
    let base = BaseOrders::new(h);

    let (verdict, mut stats) = if spec.needs_reads_from() {
        let (rfs, truncated) = enumerate_reads_from(h, cfg.max_rf);
        if rfs.is_empty() {
            (Verdict::Disallowed, CheckStats::default())
        } else if rfs.len() == 1 && views_decouple(spec) {
            parallel_views(h, spec, &base, Some(&rfs[0]), cfg, jobs)
        } else {
            let (v, mut st) = parallel_rf(h, spec, &base, &rfs, cfg, jobs);
            if truncated {
                st.rf_truncated = true;
                if v.is_disallowed() {
                    st.exhausted_stage = Some(Stage::ReadsFrom);
                    return finish(Verdict::Exhausted, st, start);
                }
            }
            (v, st)
        }
    } else if views_decouple(spec) {
        parallel_views(h, spec, &base, None, cfg, jobs)
    } else if spec.identical_views {
        // SC-like: run the single global view search on the scheduler
        // selected by `cfg.scheduler` (work-stealing frontier tasks, or
        // static prefix partitions over one shared pool).
        parallel_identical_views(h, spec, &base, cfg, jobs)
    } else if spec.global_write_order {
        // TSO-like: collect the store orders up front and fan them out.
        match parallel_store_orders(h, spec, &base, cfg, jobs) {
            Some(r) => r,
            // Too many store orders to collect: stream them sequentially.
            None => return check_with_stats(h, spec, cfg),
        }
    } else {
        // Coherence and labeled-order enumerations are inherently
        // sequential in this engine; use the plain checker.
        return check_with_stats(h, spec, cfg);
    };
    stats.wall = start.elapsed();
    (verdict, stats)
}

fn finish(v: Verdict, mut stats: CheckStats, start: Instant) -> (Verdict, CheckStats) {
    stats.wall = start.elapsed();
    (v, stats)
}

/// Fan the reads-from assignments across workers sharing one node pool;
/// the first decided outcome cancels the remaining workers.
fn parallel_rf(
    h: &History,
    spec: &ModelSpec,
    base: &BaseOrders,
    rfs: &[ReadsFrom],
    cfg: &CheckConfig,
    jobs: usize,
) -> (Verdict, CheckStats) {
    let pool = SharedBudget::new(cfg.node_budget);
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Step>>> = Mutex::new((0..rfs.len()).map(|_| None).collect());
    let tried = AtomicUsize::new(0);
    let nodes = Mutex::new(0u64);

    let jobs = jobs.min(rfs.len());
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| {
                let budget = pool.attach();
                loop {
                    if pool.is_cancelled() {
                        break;
                    }
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= rfs.len() {
                        break;
                    }
                    tried.fetch_add(1, Ordering::Relaxed);
                    let step = check_with_rf(h, spec, base, Some(&rfs[index]), &budget);
                    // A decided outcome (witness found, or the model is
                    // out of scope) makes the remaining assignments moot.
                    if matches!(step, Step::Allowed(_) | Step::Unsupported(_)) {
                        pool.cancel();
                    }
                    if let Ok(mut slots) = slots.lock() {
                        slots[index] = Some(step);
                    } else {
                        break;
                    }
                }
                budget.release();
                if let Ok(mut nodes) = nodes.lock() {
                    *nodes += budget.spent();
                }
            });
        }
    });

    let slots = match slots.into_inner() {
        Ok(s) => s,
        Err(p) => p.into_inner(),
    };
    let mut stats = CheckStats {
        nodes_spent: match nodes.into_inner() {
            Ok(n) => n,
            Err(p) => p.into_inner(),
        },
        rf_assignments_tried: tried.load(Ordering::Relaxed),
        ..CheckStats::default()
    };

    // Lowest-index decided outcome wins; cancelled or genuinely exhausted
    // workers leave `Exhausted`/`None` slots that only matter if nothing
    // was decided anywhere.
    let mut exhausted: Option<Stage> = None;
    let mut skipped = false;
    for slot in slots {
        match slot {
            Some(Step::Allowed(w)) => return (Verdict::Allowed(w), stats),
            Some(Step::Unsupported(e)) => return (Verdict::Unsupported(e), stats),
            Some(Step::Disallowed) => {}
            Some(Step::Exhausted(stage)) => exhausted = exhausted.or(Some(stage)),
            None => skipped = true,
        }
    }
    match exhausted {
        Some(stage) => {
            stats.exhausted_stage = Some(stage);
            (Verdict::Exhausted, stats)
        }
        // `skipped` without a decided slot can only mean cancellation
        // raced a decided outcome that then failed to record; treat as
        // exhaustion rather than claiming `Disallowed` for unchecked rfs.
        None if skipped => {
            stats.exhausted_stage = Some(Stage::ReadsFrom);
            (Verdict::Exhausted, stats)
        }
        None => (Verdict::Disallowed, stats),
    }
}

/// Driver for independent per-processor view units: the history is
/// admitted iff *every* unit finds a view, so the run is decided early
/// either when the last missing view lands or when any unit is refuted.
struct AllViewsDriver {
    views: Mutex<Vec<Option<Vec<OpId>>>>,
    missing: AtomicUsize,
    refuted: AtomicBool,
}

impl StealDriver for AllViewsDriver {
    fn found(&self, unit: usize, order: Vec<OpId>) -> bool {
        let mut views = lock(&self.views);
        if views[unit].is_none() {
            views[unit] = Some(order);
            return self.missing.fetch_sub(1, Ordering::SeqCst) == 1;
        }
        false
    }

    fn refuted(&self, _unit: usize) -> bool {
        self.refuted.store(true, Ordering::SeqCst);
        true
    }

    fn skip(&self, _unit: usize) -> bool {
        false
    }
}

/// Search each processor's view concurrently (models with no shared
/// orders, so the views are independent once the reads-from assignment —
/// if any — is fixed). Any processor with no legal view refutes the whole
/// history and cancels the sibling searches. Under the work-stealing
/// scheduler all processors' searches feed one task pool; under
/// [`SchedulerKind::StaticPrefix`] each processor is one coarse task.
fn parallel_views(
    h: &History,
    spec: &ModelSpec,
    base: &BaseOrders,
    rf: Option<&ReadsFrom>,
    cfg: &CheckConfig,
    jobs: usize,
) -> (Verdict, CheckStats) {
    let legality = match rf {
        Some(rf) => LegalityMode::ByReadsFrom(rf),
        None => LegalityMode::ByValue,
    };
    let cand = Candidates::default();
    let g = match assemble_global(h, spec, base, rf, &cand, None) {
        Ok(g) => g,
        Err(e) => return (Verdict::Unsupported(e), CheckStats::default()),
    };
    let mut stats = CheckStats::default();
    if rf.is_some() {
        stats.rf_assignments_tried = 1;
    }
    if !g.is_acyclic() {
        return (Verdict::Disallowed, stats);
    }

    let op_sets = view_op_sets(h, spec.delta);
    let procs = h.num_procs();

    if cfg.scheduler == SchedulerKind::WorkStealing {
        let constraints: Vec<_> = (0..procs)
            .map(|p| proc_constraints(h, spec, base, &g, p))
            .collect();
        let units: Vec<Unit<'_>> = (0..procs)
            .map(|p| Unit::from_parts(h, &op_sets[p], &constraints[p], legality, p as u64 + 1))
            .collect();
        let driver = AllViewsDriver {
            views: Mutex::new((0..procs).map(|_| None).collect()),
            missing: AtomicUsize::new(procs),
            refuted: AtomicBool::new(false),
        };
        let pool = SharedBudget::new(cfg.node_budget);
        let failed = SharedFailedSet::with_capacity(cfg.failed_set_capacity);
        let end = run_units(&units, &driver, jobs, &pool, &failed);
        stats.nodes_spent = end.nodes;
        stats.work_stealing_ran = true;
        stats.failed_set = failed.stats();
        if driver.refuted.load(Ordering::SeqCst) {
            return (Verdict::Disallowed, stats);
        }
        let views = std::mem::take(&mut *lock(&driver.views));
        if end.exhausted || views.iter().any(Option::is_none) {
            stats.exhausted_stage = Some(Stage::ViewSearch);
            return (Verdict::Exhausted, stats);
        }
        return (
            Verdict::Allowed(Box::new(Witness {
                views: views.into_iter().flatten().collect(),
                store_order: None,
                coherence: None,
                labeled_order: None,
                reads_from: rf.map(|r| r.as_slice().to_vec()),
            })),
            stats,
        );
    }

    let pool = SharedBudget::new(cfg.node_budget);
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<SearchOutcome>>> = Mutex::new((0..procs).map(|_| None).collect());
    let nodes = Mutex::new(0u64);

    let jobs = jobs.min(procs.max(1));
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| {
                let budget = pool.attach();
                loop {
                    if pool.is_cancelled() {
                        break;
                    }
                    let p = next.fetch_add(1, Ordering::Relaxed);
                    if p >= procs {
                        break;
                    }
                    let constraints = proc_constraints(h, spec, base, &g, p);
                    let problem = ViewProblem {
                        history: h,
                        ops: op_sets[p].clone(),
                        constraints: &constraints,
                        legality,
                    };
                    let out = find_legal_extension(&problem, &budget);
                    // A missing view refutes the history outright.
                    if matches!(out, SearchOutcome::NotFound) {
                        pool.cancel();
                    }
                    if let Ok(mut slots) = slots.lock() {
                        slots[p] = Some(out);
                    } else {
                        break;
                    }
                }
                budget.release();
                if let Ok(mut nodes) = nodes.lock() {
                    *nodes += budget.spent();
                }
            });
        }
    });

    let slots = match slots.into_inner() {
        Ok(s) => s,
        Err(p) => p.into_inner(),
    };
    stats.nodes_spent = match nodes.into_inner() {
        Ok(n) => n,
        Err(p) => p.into_inner(),
    };

    let mut views = Vec::with_capacity(procs);
    let mut exhausted = false;
    for slot in slots {
        match slot {
            Some(SearchOutcome::Found(v)) => views.push(v),
            Some(SearchOutcome::NotFound) => return (Verdict::Disallowed, stats),
            Some(SearchOutcome::Exhausted) | None => exhausted = true,
        }
    }
    if exhausted {
        stats.exhausted_stage = Some(Stage::ViewSearch);
        return (Verdict::Exhausted, stats);
    }
    (
        Verdict::Allowed(Box::new(Witness {
            views,
            store_order: None,
            coherence: None,
            labeled_order: None,
            reads_from: rf.map(|r| r.as_slice().to_vec()),
        })),
        stats,
    )
}

/// Parallelize an identical-views (SC-like) check. Under the default
/// [`SchedulerKind::WorkStealing`], the single global legal-extension
/// search runs on the frontier scheduler in [`crate::steal`], with workers
/// stealing subtrees from each other and sharing dead-state fingerprints
/// through one [`SharedFailedSet`]. Under [`SchedulerKind::StaticPrefix`]
/// (the pre-stealing engine, kept for comparison), the search space is
/// prefix-partitioned up front ([`split_prefixes`]) and each subtree is
/// handed to a worker over one shared node pool. Either way the first
/// complete legal order cancels the rest, and all-`NotFound` refutes the
/// history exactly as the sequential DFS would.
fn parallel_identical_views(
    h: &History,
    spec: &ModelSpec,
    base: &BaseOrders,
    cfg: &CheckConfig,
    jobs: usize,
) -> (Verdict, CheckStats) {
    let cand = Candidates::default();
    let g = match assemble_global(h, spec, base, None, &cand, None) {
        Ok(g) => g,
        Err(e) => return (Verdict::Unsupported(e), CheckStats::default()),
    };
    let mut stats = CheckStats::default();
    if !g.is_acyclic() {
        return (Verdict::Disallowed, stats);
    }
    let problem = ViewProblem {
        history: h,
        ops: BitSet::full(h.num_ops()),
        constraints: &g,
        legality: LegalityMode::ByValue,
    };
    let witness = |order: Vec<OpId>| {
        Verdict::Allowed(Box::new(Witness {
            views: vec![order; h.num_procs()],
            store_order: None,
            coherence: None,
            labeled_order: None,
            reads_from: None,
        }))
    };

    if cfg.scheduler == SchedulerKind::WorkStealing {
        let pool = SharedBudget::new(cfg.node_budget);
        let failed = SharedFailedSet::with_capacity(cfg.failed_set_capacity);
        let (out, nodes) = steal_search(&problem, jobs, &pool, &failed);
        stats.nodes_spent = nodes;
        stats.work_stealing_ran = true;
        stats.failed_set = failed.stats();
        return match out {
            SearchOutcome::Found(order) => (witness(order), stats),
            SearchOutcome::NotFound => (Verdict::Disallowed, stats),
            SearchOutcome::Exhausted => {
                stats.exhausted_stage = Some(Stage::ViewSearch);
                (Verdict::Exhausted, stats)
            }
        };
    }

    let pool = SharedBudget::new(cfg.node_budget);
    let seed = pool.attach();
    let split = split_prefixes(&problem, jobs * cfg.split_prefix_factor.max(1), &seed);
    seed.release();
    let seed_spent = seed.spent();
    let prefixes = match split {
        PrefixSplit::Found(order) => {
            stats.nodes_spent = seed_spent;
            return (witness(order), stats);
        }
        PrefixSplit::NoExtension => {
            stats.nodes_spent = seed_spent;
            return (Verdict::Disallowed, stats);
        }
        PrefixSplit::Split(p) => p,
    };

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<SearchOutcome>>> =
        Mutex::new((0..prefixes.len()).map(|_| None).collect());
    let nodes = Mutex::new(seed_spent);
    let workers = jobs.min(prefixes.len().max(1));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let budget = pool.attach();
                loop {
                    if pool.is_cancelled() {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= prefixes.len() {
                        break;
                    }
                    let out = find_legal_extension_from(&problem, &prefixes[i], &budget);
                    if matches!(out, SearchOutcome::Found(_)) {
                        pool.cancel();
                    }
                    if let Ok(mut slots) = slots.lock() {
                        slots[i] = Some(out);
                    } else {
                        break;
                    }
                }
                budget.release();
                if let Ok(mut nodes) = nodes.lock() {
                    *nodes += budget.spent();
                }
            });
        }
    });

    let slots = match slots.into_inner() {
        Ok(s) => s,
        Err(p) => p.into_inner(),
    };
    stats.nodes_spent = match nodes.into_inner() {
        Ok(n) => n,
        Err(p) => p.into_inner(),
    };
    let mut exhausted = false;
    for slot in slots {
        match slot {
            Some(SearchOutcome::Found(order)) => return (witness(order), stats),
            Some(SearchOutcome::NotFound) => {}
            // A `None` slot means a worker was cancelled (or died) before
            // recording; without a decided outcome that subtree is
            // unexplored, so the honest answer is exhaustion.
            Some(SearchOutcome::Exhausted) | None => exhausted = true,
        }
    }
    if exhausted {
        stats.exhausted_stage = Some(Stage::ViewSearch);
        return (Verdict::Exhausted, stats);
    }
    (Verdict::Disallowed, stats)
}

/// Per-store-order state inside a [`StoreDriver`]: which processor views
/// have landed, and whether some processor already refuted this order.
struct StoreSlot {
    refuted: AtomicBool,
    missing: AtomicUsize,
    views: Mutex<Vec<Option<Vec<OpId>>>>,
}

/// Driver for global-write-order (TSO-like) checks: an OR over store
/// orders of an AND over processors. Unit `i` is processor `i % procs`
/// under store order slot `i / procs`. A slot whose every processor finds
/// a view decides the run (`Allowed`); a refuted unit kills only its own
/// slot — sibling units of that slot become skippable, and the workers
/// that were grinding on them steal subtrees from slots still alive.
struct StoreDriver {
    procs: usize,
    slots: Vec<StoreSlot>,
    /// Slot index of the first store order to complete, `usize::MAX` if
    /// none has.
    winner: AtomicUsize,
}

impl StealDriver for StoreDriver {
    fn found(&self, unit: usize, order: Vec<OpId>) -> bool {
        let slot = &self.slots[unit / self.procs];
        if slot.refuted.load(Ordering::SeqCst) {
            return false;
        }
        let mut views = lock(&slot.views);
        if views[unit % self.procs].is_none() {
            views[unit % self.procs] = Some(order);
            if slot.missing.fetch_sub(1, Ordering::SeqCst) == 1 {
                let _ = self.winner.compare_exchange(
                    usize::MAX,
                    unit / self.procs,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                return true;
            }
        }
        false
    }

    fn refuted(&self, unit: usize) -> bool {
        self.slots[unit / self.procs]
            .refuted
            .store(true, Ordering::SeqCst);
        false
    }

    fn skip(&self, unit: usize) -> bool {
        self.slots[unit / self.procs].refuted.load(Ordering::SeqCst)
    }
}

/// Run the collected store orders on the work-stealing scheduler: one
/// unit per (store order, processor), all feeding one task pool and one
/// failed-state set, so a worker that finishes its store order steals
/// extension subtrees from the others instead of idling.
#[allow(clippy::too_many_arguments)]
fn steal_store_orders(
    h: &History,
    spec: &ModelSpec,
    base: &BaseOrders,
    cfg: &CheckConfig,
    jobs: usize,
    pool: &Arc<SharedBudget>,
    stores: &[Vec<OpId>],
    seed_spent: u64,
    collect_exhausted: bool,
) -> (Verdict, CheckStats) {
    let procs = h.num_procs();
    let op_sets = view_op_sets(h, spec.delta);
    let mut stats = CheckStats {
        nodes_spent: seed_spent,
        ..CheckStats::default()
    };

    // Preprocess each store order into per-processor units. A store order
    // whose assembled global relation is cyclic is refuted without any
    // search, exactly as the sequential per-order check rejects it early.
    let mut units: Vec<Unit<'_>> = Vec::new();
    let mut kept: Vec<usize> = Vec::new();
    let mut slots: Vec<StoreSlot> = Vec::new();
    for (si, store) in stores.iter().enumerate() {
        let cand = Candidates {
            store_order: Some(store),
            ..Candidates::default()
        };
        let g = match assemble_global(h, spec, base, None, &cand, None) {
            Ok(g) => g,
            Err(e) => return (Verdict::Unsupported(e), stats),
        };
        if !g.is_acyclic() {
            continue;
        }
        kept.push(si);
        slots.push(StoreSlot {
            refuted: AtomicBool::new(false),
            missing: AtomicUsize::new(procs),
            views: Mutex::new((0..procs).map(|_| None).collect()),
        });
        for (p, ops) in op_sets.iter().enumerate() {
            let constraints = proc_constraints(h, spec, base, &g, p);
            let salt = units.len() as u64 + 1;
            units.push(Unit::from_parts(
                h,
                ops,
                &constraints,
                LegalityMode::ByValue,
                salt,
            ));
        }
    }

    // No processors: any store order that survived assembly admits the
    // history vacuously (no views to find).
    if procs == 0 {
        return match kept.first() {
            Some(&si) => (
                Verdict::Allowed(Box::new(Witness {
                    views: Vec::new(),
                    store_order: Some(stores[si].clone()),
                    coherence: None,
                    labeled_order: None,
                    reads_from: None,
                })),
                stats,
            ),
            None if collect_exhausted => {
                stats.exhausted_stage = Some(Stage::StoreOrders);
                (Verdict::Exhausted, stats)
            }
            None => (Verdict::Disallowed, stats),
        };
    }

    let driver = StoreDriver {
        procs,
        slots,
        winner: AtomicUsize::new(usize::MAX),
    };
    let failed = SharedFailedSet::with_capacity(cfg.failed_set_capacity);
    let end = run_units(&units, &driver, jobs, pool, &failed);
    stats.nodes_spent = seed_spent + end.nodes;
    stats.work_stealing_ran = true;
    stats.failed_set = failed.stats();

    let winner = driver.winner.load(Ordering::SeqCst);
    if winner != usize::MAX {
        let views = std::mem::take(&mut *lock(&driver.slots[winner].views));
        let views: Vec<Vec<OpId>> = views.into_iter().flatten().collect();
        // `winner` is only set once every processor's view landed.
        debug_assert_eq!(views.len(), procs);
        if views.len() == procs {
            return (
                Verdict::Allowed(Box::new(Witness {
                    views,
                    store_order: Some(stores[kept[winner]].clone()),
                    coherence: None,
                    labeled_order: None,
                    reads_from: None,
                })),
                stats,
            );
        }
    }
    if end.exhausted || collect_exhausted {
        stats.exhausted_stage = Some(if end.exhausted {
            Stage::ViewSearch
        } else {
            Stage::StoreOrders
        });
        return (Verdict::Exhausted, stats);
    }
    (Verdict::Disallowed, stats)
}

/// Parallelize a global-write-order (TSO-like) check: collect the store
/// orders up front (bounded by `cfg.store_order_cap`), then fan them out.
/// Under the work-stealing scheduler every (store order, processor) pair
/// becomes a schedulable unit ([`steal_store_orders`]); under
/// [`SchedulerKind::StaticPrefix`] — or when the unit grid would exceed
/// [`STEAL_UNIT_CAP`] — each store order is one coarse task. Returns
/// `None` when the enumeration exceeds the cap, in which case the caller
/// streams the orders sequentially.
fn parallel_store_orders(
    h: &History,
    spec: &ModelSpec,
    base: &BaseOrders,
    cfg: &CheckConfig,
    jobs: usize,
) -> Option<(Verdict, CheckStats)> {
    let writes = BitSet::from_iter(
        h.num_ops(),
        h.ops()
            .iter()
            .filter(|o| o.is_write())
            .map(|o| o.id.index()),
    );
    let pool = SharedBudget::new(cfg.node_budget);
    let seed = pool.attach();
    let mut stores: Vec<Vec<OpId>> = Vec::new();
    let mut over_cap = false;
    let mut collect_exhausted = false;
    let _ = smc_relation::linext::for_each_linear_extension(&base.ppo, &writes, |ext| {
        if stores.len() >= cfg.store_order_cap {
            over_cap = true;
            return ControlFlow::Break(());
        }
        // Mirror the sequential loop's cost: one budget unit per order.
        if !seed.try_spend() {
            collect_exhausted = true;
            return ControlFlow::Break(());
        }
        stores.push(ext.iter().map(|&i| OpId(i as u32)).collect());
        ControlFlow::Continue(())
    });
    seed.release();
    let seed_spent = seed.spent();
    if over_cap {
        return None;
    }

    if cfg.scheduler == SchedulerKind::WorkStealing
        && stores.len().saturating_mul(h.num_procs().max(1)) <= STEAL_UNIT_CAP
    {
        return Some(steal_store_orders(
            h,
            spec,
            base,
            cfg,
            jobs,
            &pool,
            &stores,
            seed_spent,
            collect_exhausted,
        ));
    }

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Step>>> = Mutex::new((0..stores.len()).map(|_| None).collect());
    let nodes = Mutex::new(seed_spent);
    let workers = jobs.min(stores.len().max(1));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let budget = pool.attach();
                loop {
                    if pool.is_cancelled() {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= stores.len() {
                        break;
                    }
                    let step = check_with_store_order(
                        h,
                        spec,
                        base,
                        None,
                        LegalityMode::ByValue,
                        &stores[i],
                        &budget,
                    );
                    if matches!(step, Step::Allowed(_) | Step::Unsupported(_)) {
                        pool.cancel();
                    }
                    if let Ok(mut slots) = slots.lock() {
                        slots[i] = Some(step);
                    } else {
                        break;
                    }
                }
                budget.release();
                if let Ok(mut nodes) = nodes.lock() {
                    *nodes += budget.spent();
                }
            });
        }
    });

    let slots = match slots.into_inner() {
        Ok(s) => s,
        Err(p) => p.into_inner(),
    };
    let mut stats = CheckStats {
        nodes_spent: match nodes.into_inner() {
            Ok(n) => n,
            Err(p) => p.into_inner(),
        },
        ..CheckStats::default()
    };
    let mut exhausted: Option<Stage> = None;
    let mut skipped = false;
    for slot in slots {
        match slot {
            Some(Step::Allowed(w)) => return Some((Verdict::Allowed(w), stats)),
            Some(Step::Unsupported(e)) => return Some((Verdict::Unsupported(e), stats)),
            Some(Step::Disallowed) => {}
            Some(Step::Exhausted(stage)) => exhausted = exhausted.or(Some(stage)),
            None => skipped = true,
        }
    }
    if collect_exhausted {
        exhausted = exhausted.or(Some(Stage::StoreOrders));
    }
    if skipped {
        exhausted = exhausted.or(Some(Stage::ViewSearch));
    }
    Some(match exhausted {
        Some(stage) => {
            stats.exhausted_stage = Some(stage);
            (Verdict::Exhausted, stats)
        }
        None => (Verdict::Disallowed, stats),
    })
}

/// Run a whole batch against one shared node pool (used by callers that
/// want a global ceiling across many checks rather than a per-check
/// budget; verdicts may then differ from per-check budgeting by
/// exhausting earlier).
pub fn check_batch_shared(
    pairs: &[(&History, &ModelSpec)],
    cfg: &CheckConfig,
    jobs: usize,
    pool_nodes: u64,
) -> Vec<BatchResult> {
    let jobs = jobs.max(1).min(pairs.len().max(1));
    let pool = SharedBudget::new(pool_nodes);
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<BatchResult>>> =
        Mutex::new((0..pairs.len()).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| {
                let budget = pool.attach();
                loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= pairs.len() {
                        break;
                    }
                    let (h, m) = pairs[index];
                    let (verdict, stats) = check_with_budget(h, m, cfg, &budget);
                    let done = BatchResult {
                        index,
                        verdict,
                        stats,
                    };
                    match slots.lock() {
                        Ok(mut slots) => slots[index] = Some(done),
                        Err(_) => break,
                    }
                }
                budget.release();
            });
        }
    });
    let slots = match slots.into_inner() {
        Ok(s) => s,
        Err(p) => p.into_inner(),
    };
    slots
        .into_iter()
        .enumerate()
        .map(|(index, r)| {
            r.unwrap_or_else(|| BatchResult {
                index,
                verdict: Verdict::Exhausted,
                stats: CheckStats::default(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check_with_config;
    use crate::models;
    use crate::verify::verify_witness;
    use smc_history::litmus::parse_history;

    fn figures() -> Vec<History> {
        [
            "p: w(x)1 r(y)0\nq: w(y)1 r(x)0",
            "p: w(x)1\nq: r(x)1 w(y)1\nr: r(y)1 r(x)0",
            "p: w(x)1 r(x)1 r(x)2\nq: w(x)2 r(x)2 r(x)1",
            "p: w(x)1 w(y)1\nq: r(y)1 w(z)1 r(x)2\nr: w(x)2 r(x)1 r(z)1 r(y)1",
            "p: w(x)5\nq: w(x)5\nr: r(x)5 r(x)5",
        ]
        .iter()
        .map(|t| parse_history(t).expect("litmus fixture parses"))
        .collect()
    }

    #[test]
    fn batch_matches_sequential_on_figures() {
        let histories = figures();
        let models = models::all_models();
        let cfg = CheckConfig::default();
        let results = check_matrix(&histories, &models, &cfg, 4);
        assert_eq!(results.len(), histories.len() * models.len());
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.index, i);
            let h = &histories[i / models.len()];
            let m = &models[i % models.len()];
            let seq = check_with_config(h, m, &cfg);
            assert_eq!(
                r.verdict.decided(),
                seq.decided(),
                "{} on history {}",
                m.name,
                i / models.len()
            );
            if let Verdict::Allowed(w) = &r.verdict {
                verify_witness(h, m, w).expect("batch witness verifies");
            }
        }
    }

    #[test]
    fn batch_on_empty_input() {
        let cfg = CheckConfig::default();
        assert!(check_batch(&[], &cfg, 4).is_empty());
    }

    #[test]
    fn parallel_single_check_agrees() {
        let cfg = CheckConfig::default();
        for h in figures() {
            for m in models::all_models() {
                let seq = check_with_config(&h, &m, &cfg);
                let (par, stats) = check_parallel(&h, &m, &cfg, 4);
                if let (Some(a), Some(b)) = (seq.decided(), par.decided()) {
                    assert_eq!(a, b, "{} disagrees", m.name);
                }
                if let Verdict::Allowed(w) = &par {
                    verify_witness(&h, &m, w).expect("parallel witness verifies");
                    assert!(stats.nodes_spent > 0 || h.num_ops() == 0);
                }
            }
        }
    }

    #[test]
    fn parallel_views_refute_pram_violation() {
        // PRAM forbids reordering one processor's writes in another's view.
        let h = parse_history("p: w(x)1 w(y)1\nq: r(y)1 r(x)0").unwrap();
        let cfg = CheckConfig::default();
        let (v, _) = check_parallel(&h, &models::pram(), &cfg, 4);
        assert!(v.is_disallowed());
        assert!(check_with_config(&h, &models::pram(), &cfg).is_disallowed());
    }

    #[test]
    fn split_dfs_agrees_with_sequential_on_sc_and_tso() {
        let cfg = CheckConfig::default();
        for h in figures() {
            for m in [models::sc(), models::tso()] {
                let seq = check_with_config(&h, &m, &cfg);
                for jobs in [2, 4] {
                    let (par, _) = check_parallel(&h, &m, &cfg, jobs);
                    assert_eq!(
                        par.decided(),
                        seq.decided(),
                        "{} at jobs={jobs} disagrees",
                        m.name
                    );
                    if let Verdict::Allowed(w) = &par {
                        verify_witness(&h, &m, w).expect("split witness verifies");
                    }
                }
            }
        }
    }

    #[test]
    fn both_schedulers_agree_with_sequential() {
        // The pre-stealing static-prefix engine stays selectable (it is
        // the benchmark baseline); both schedulers must match the
        // sequential verdicts on every figure.
        for scheduler in [SchedulerKind::WorkStealing, SchedulerKind::StaticPrefix] {
            let cfg = CheckConfig {
                scheduler,
                ..CheckConfig::default()
            };
            for h in figures() {
                for m in [
                    models::sc(),
                    models::tso(),
                    models::pram(),
                    models::causal(),
                ] {
                    let seq = check_with_config(&h, &m, &cfg);
                    let (par, stats) = check_parallel(&h, &m, &cfg, 4);
                    assert_eq!(
                        par.decided(),
                        seq.decided(),
                        "{} under {scheduler:?} disagrees",
                        m.name
                    );
                    if let Verdict::Allowed(w) = &par {
                        verify_witness(&h, &m, w).expect("witness verifies");
                    }
                    if scheduler == SchedulerKind::StaticPrefix {
                        let z = crate::steal::FailedSetStats::default();
                        assert_eq!(stats.failed_set, z, "static path must not touch the set");
                        assert!(
                            !stats.work_stealing_ran,
                            "static path must not claim a stealing run"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn memoized_parallel_hits_across_renamings() {
        // The same history under a processor/location/value renaming must
        // hit the cache and still return a verifying witness.
        let a = parse_history("p: w(x)1\nq: r(x)1 w(y)1\nr: r(y)1 r(x)0").unwrap();
        let b = parse_history("u: w(c)7\nv: r(c)7 w(d)3\nw: r(d)3 r(c)0").unwrap();
        let cfg = CheckConfig::default().with_memo();
        let memo = cfg.memo.clone().unwrap();
        for m in [models::causal(), models::sc(), models::tso()] {
            let (va, _) = check_parallel(&a, &m, &cfg, 4);
            let (vb, sb) = check_parallel(&b, &m, &cfg, 4);
            assert_eq!(va.decided(), vb.decided(), "{} memo disagrees", m.name);
            assert!(sb.memo_hit, "{} second check missed the memo", m.name);
            if let Verdict::Allowed(w) = &vb {
                verify_witness(&b, &m, w).expect("rehydrated witness verifies");
            }
        }
        assert!(memo.stats().hits >= 3);
    }

    #[test]
    fn shared_pool_batch_exhausts_instead_of_lying() {
        let histories = figures();
        let models = [models::sc()];
        let cfg = CheckConfig::default();
        let pairs: Vec<(&History, &ModelSpec)> = histories
            .iter()
            .flat_map(|h| models.iter().map(move |m| (h, m)))
            .collect();
        // A pool far too small to decide anything: every result must be
        // Exhausted, never a fabricated decision.
        let results = check_batch_shared(&pairs, &cfg, 2, 1);
        assert!(results
            .iter()
            .all(|r| matches!(r.verdict, Verdict::Exhausted)));
    }
}

//! Exhaustive generation of small abstract histories.
//!
//! The paper's Figure 5 relates models by inclusion of their admitted
//! history sets. We make the figure *empirical* by enumerating every
//! history in a bounded universe (processors × operations × locations ×
//! values), classifying each against each model, and computing the
//! inclusion matrix ([`crate::lattice`]).

use smc_history::{History, HistoryBuilder};
use std::ops::ControlFlow;

/// The bounded universe of histories to enumerate.
#[derive(Debug, Clone, Copy)]
pub struct GenParams {
    /// Number of processors.
    pub procs: usize,
    /// Operations per processor (every processor issues exactly this
    /// many).
    pub ops_per_proc: usize,
    /// Number of distinct locations (`x`, `y`, ...).
    pub locs: usize,
    /// Writes store values `1..=values`; reads may return `0..=values`.
    pub values: i64,
}

impl GenParams {
    /// Number of choices for a single operation slot.
    pub fn choices_per_slot(&self) -> usize {
        // Reads: locs * (values + 1); writes: locs * values.
        self.locs * (self.values as usize + 1) + self.locs * self.values as usize
    }

    /// Total number of histories in the universe.
    pub fn universe_size(&self) -> u128 {
        let slots = (self.procs * self.ops_per_proc) as u32;
        (self.choices_per_slot() as u128).pow(slots)
    }
}

const PROC_NAMES: [&str; 8] = ["p", "q", "r", "s", "t", "u", "v", "w"];
const LOC_NAMES: [&str; 8] = ["x", "y", "z", "a", "b", "c", "d", "e"];

fn decode_slot(params: &GenParams, mut code: usize) -> (bool, usize, i64) {
    // Returns (is_write, loc, value).
    let reads = params.locs * (params.values as usize + 1);
    if code < reads {
        let loc = code / (params.values as usize + 1);
        let val = (code % (params.values as usize + 1)) as i64;
        (false, loc, val)
    } else {
        code -= reads;
        let loc = code / params.values as usize;
        let val = (code % params.values as usize) as i64 + 1;
        (true, loc, val)
    }
}

/// Visit every history in the universe, in a fixed deterministic order.
///
/// The visitor may break to stop early. Histories where some read's value
/// is unexplainable by any write (e.g. `r(x)2` with no `w(x)2` anywhere)
/// are still produced — they are simply disallowed by every model, which
/// the lattice treats uniformly.
pub fn for_each_history<B>(
    params: &GenParams,
    mut visit: impl FnMut(&History) -> ControlFlow<B>,
) -> ControlFlow<B> {
    assert!(params.procs <= PROC_NAMES.len(), "too many processors");
    assert!(params.locs <= LOC_NAMES.len(), "too many locations");
    let slots = params.procs * params.ops_per_proc;
    let choices = params.choices_per_slot();
    let mut code = vec![0usize; slots];
    loop {
        let mut b = HistoryBuilder::new();
        // Register processors and locations up-front so ids are stable
        // across the enumeration.
        for name in &PROC_NAMES[..params.procs] {
            b.add_proc(name);
        }
        for name in &LOC_NAMES[..params.locs] {
            b.add_loc(name);
        }
        for (slot, &c) in code.iter().enumerate() {
            let p = slot / params.ops_per_proc;
            let (is_write, loc, val) = decode_slot(params, c);
            if is_write {
                b.write(PROC_NAMES[p], LOC_NAMES[loc], val);
            } else {
                b.read(PROC_NAMES[p], LOC_NAMES[loc], val);
            }
        }
        visit(&b.build())?;
        // Odometer.
        let mut i = 0;
        loop {
            if i == slots {
                return ControlFlow::Continue(());
            }
            code[i] += 1;
            if code[i] < choices {
                break;
            }
            code[i] = 0;
            i += 1;
        }
    }
}

/// Collect every history of the universe into a vector (use only for
/// small parameter sets; see [`GenParams::universe_size`]).
pub fn all_histories(params: &GenParams) -> Vec<History> {
    let mut out = Vec::new();
    let flow = for_each_history(params, |h| {
        out.push(h.clone());
        ControlFlow::<()>::Continue(())
    });
    debug_assert!(flow.is_continue());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universe_size_matches_enumeration() {
        let params = GenParams {
            procs: 2,
            ops_per_proc: 1,
            locs: 1,
            values: 1,
        };
        // Per slot: reads r(x)0, r(x)1; writes w(x)1 → 3 choices; 2 slots.
        assert_eq!(params.choices_per_slot(), 3);
        assert_eq!(params.universe_size(), 9);
        assert_eq!(all_histories(&params).len(), 9);
    }

    #[test]
    fn histories_are_distinct_and_well_formed() {
        let params = GenParams {
            procs: 2,
            ops_per_proc: 1,
            locs: 2,
            values: 1,
        };
        let all = all_histories(&params);
        for h in &all {
            h.validate().unwrap();
            assert_eq!(h.num_ops(), 2);
        }
        let mut rendered: Vec<String> = all.iter().map(History::to_string).collect();
        rendered.sort();
        rendered.dedup();
        assert_eq!(rendered.len(), all.len());
    }

    #[test]
    fn early_break_stops() {
        let params = GenParams {
            procs: 1,
            ops_per_proc: 2,
            locs: 1,
            values: 1,
        };
        let mut n = 0;
        let flow = for_each_history(&params, |_| {
            n += 1;
            if n == 4 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert!(flow.is_break());
        assert_eq!(n, 4);
    }

    #[test]
    fn contains_the_store_buffering_shape() {
        // The Figure 1 history must appear in the 2×2×2×1 universe.
        let params = GenParams {
            procs: 2,
            ops_per_proc: 2,
            locs: 2,
            values: 1,
        };
        let target = "p: w(x)1 r(y)0\nq: w(y)1 r(x)0\n";
        let mut found = false;
        let _ = for_each_history(&params, |h| {
            if h.to_string() == target {
                found = true;
                ControlFlow::Break(())
            } else {
                ControlFlow::<()>::Continue(())
            }
        });
        assert!(found);
    }
}

//! Exhaustive generation of small abstract histories.
//!
//! The paper's Figure 5 relates models by inclusion of their admitted
//! history sets. We make the figure *empirical* by enumerating every
//! history in a bounded universe (processors × operations × locations ×
//! values), classifying each against each model, and computing the
//! inclusion matrix ([`crate::lattice`]).

use smc_history::{History, HistoryBuilder};
use std::ops::ControlFlow;

/// The bounded universe of histories to enumerate.
#[derive(Debug, Clone, Copy)]
pub struct GenParams {
    /// Number of processors.
    pub procs: usize,
    /// Operations per processor (every processor issues exactly this
    /// many).
    pub ops_per_proc: usize,
    /// Number of distinct locations (`x`, `y`, ...).
    pub locs: usize,
    /// Writes store values `1..=values`; reads may return `0..=values`.
    pub values: i64,
}

impl GenParams {
    /// Number of choices for a single operation slot.
    pub fn choices_per_slot(&self) -> usize {
        // Reads: locs * (values + 1); writes: locs * values.
        self.locs * (self.values as usize + 1) + self.locs * self.values as usize
    }

    /// Total number of histories in the universe, saturating at
    /// `u128::MAX` for parameter sets too large to enumerate anyway.
    pub fn universe_size(&self) -> u128 {
        let slots = (self.procs * self.ops_per_proc) as u32;
        (self.choices_per_slot() as u128)
            .checked_pow(slots)
            .unwrap_or(u128::MAX)
    }

    /// Estimated number of renaming-symmetry classes in the universe: the
    /// raw size divided by the order of the renaming group (`procs!` ×
    /// `locs!` × per-location `values!`). Histories with repeated rows or
    /// unused names have smaller orbits, so this is a lower bound, but it
    /// is the right order of magnitude to report before a long
    /// enumeration.
    pub fn reduced_universe_estimate(&self) -> u128 {
        fn fact(n: u128) -> u128 {
            (2..=n).fold(1u128, u128::saturating_mul)
        }
        let mut denom = fact(self.procs as u128).saturating_mul(fact(self.locs as u128));
        for _ in 0..self.locs {
            denom = denom.saturating_mul(fact(self.values.max(0) as u128));
        }
        (self.universe_size() / denom.max(1)).max(1)
    }

    /// The conventional `PxOxLxV` label, e.g. `3x2x2x2`.
    pub fn label(&self) -> String {
        format!(
            "{}x{}x{}x{}",
            self.procs, self.ops_per_proc, self.locs, self.values
        )
    }
}

const PROC_NAMES: [&str; 8] = ["p", "q", "r", "s", "t", "u", "v", "w"];
const LOC_NAMES: [&str; 8] = ["x", "y", "z", "a", "b", "c", "d", "e"];

fn decode_slot(params: &GenParams, mut code: usize) -> (bool, usize, i64) {
    // Returns (is_write, loc, value).
    let reads = params.locs * (params.values as usize + 1);
    if code < reads {
        let loc = code / (params.values as usize + 1);
        let val = (code % (params.values as usize + 1)) as i64;
        (false, loc, val)
    } else {
        code -= reads;
        let loc = code / params.values as usize;
        let val = (code % params.values as usize) as i64 + 1;
        (true, loc, val)
    }
}

/// Materialize the history encoded by a full slot-code vector.
fn build_history(params: &GenParams, code: &[usize]) -> History {
    let mut b = HistoryBuilder::new();
    // Register processors and locations up-front so ids are stable
    // across the enumeration.
    for name in &PROC_NAMES[..params.procs] {
        b.add_proc(name);
    }
    for name in &LOC_NAMES[..params.locs] {
        b.add_loc(name);
    }
    for (slot, &c) in code.iter().enumerate() {
        let p = slot / params.ops_per_proc;
        let (is_write, loc, val) = decode_slot(params, c);
        if is_write {
            b.write(PROC_NAMES[p], LOC_NAMES[loc], val);
        } else {
            b.read(PROC_NAMES[p], LOC_NAMES[loc], val);
        }
    }
    b.build()
}

/// The slot-code vector of the history at `index` in enumeration order.
///
/// The odometer of [`for_each_history`] increments slot 0 fastest, so the
/// code vector is exactly the little-endian base-`choices_per_slot`
/// representation of the index — which makes random access (and therefore
/// chunked parallel scanning) O(slots).
fn code_at(params: &GenParams, mut index: u128) -> Vec<usize> {
    let choices = params.choices_per_slot() as u128;
    let slots = params.procs * params.ops_per_proc;
    let mut code = vec![0usize; slots];
    for c in code.iter_mut() {
        *c = (index % choices) as usize;
        index /= choices;
    }
    debug_assert_eq!(index, 0, "index out of range for universe");
    code
}

/// The history at `index` (0-based) in the order [`for_each_history`]
/// visits; `index` must be below [`GenParams::universe_size`].
pub fn history_at(params: &GenParams, index: u128) -> History {
    assert!(params.procs <= PROC_NAMES.len(), "too many processors");
    assert!(params.locs <= LOC_NAMES.len(), "too many locations");
    build_history(params, &code_at(params, index))
}

/// Visit every history in the universe, in a fixed deterministic order.
///
/// The visitor may break to stop early. Histories where some read's value
/// is unexplainable by any write (e.g. `r(x)2` with no `w(x)2` anywhere)
/// are still produced — they are simply disallowed by every model, which
/// the lattice treats uniformly.
pub fn for_each_history<B>(
    params: &GenParams,
    mut visit: impl FnMut(&History) -> ControlFlow<B>,
) -> ControlFlow<B> {
    assert!(params.procs <= PROC_NAMES.len(), "too many processors");
    assert!(params.locs <= LOC_NAMES.len(), "too many locations");
    let slots = params.procs * params.ops_per_proc;
    let choices = params.choices_per_slot();
    let mut code = vec![0usize; slots];
    loop {
        visit(&build_history(params, &code))?;
        // Odometer.
        let mut i = 0;
        loop {
            if i == slots {
                return ControlFlow::Continue(());
            }
            code[i] += 1;
            if code[i] < choices {
                break;
            }
            code[i] = 0;
            i += 1;
        }
    }
}

/// Counters from a (filtered) range enumeration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RangeStats {
    /// Indices visited (i.e. `end - start`).
    pub enumerated: u64,
    /// Histories skipped because they are not the first-occurrence
    /// representative of their location/value renaming orbit.
    pub skipped_form: u64,
    /// Histories skipped because some read returns a value no write
    /// stores (refuted by every model, so useless for separation).
    pub skipped_unexplainable: u64,
    /// Histories actually handed to the visitor.
    pub yielded: u64,
}

impl RangeStats {
    /// Accumulate another range's counters into this one.
    pub fn merge(&mut self, other: &RangeStats) {
        self.enumerated += other.enumerated;
        self.skipped_form += other.skipped_form;
        self.skipped_unexplainable += other.skipped_unexplainable;
        self.yielded += other.yielded;
    }
}

/// Visit the histories at indices `start..end` of the enumeration order,
/// unfiltered. The visitor receives each history's index.
pub fn for_each_history_range(
    params: &GenParams,
    start: u64,
    end: u64,
    mut visit: impl FnMut(u64, &History),
) -> RangeStats {
    assert!(params.procs <= PROC_NAMES.len(), "too many processors");
    assert!(params.locs <= LOC_NAMES.len(), "too many locations");
    let choices = params.choices_per_slot();
    let mut code = code_at(params, start as u128);
    let mut stats = RangeStats::default();
    for index in start..end {
        stats.enumerated += 1;
        stats.yielded += 1;
        visit(index, &build_history(params, &code));
        advance(&mut code, choices);
    }
    stats
}

/// Visit only the *representative* histories at indices `start..end`: the
/// unique member of each location/value renaming orbit in first-occurrence
/// form, with every read explainable by some write.
///
/// First-occurrence form means locations first appear in increasing id
/// order, and at each location the distinct nonzero values first appear as
/// `1, 2, ...` in order (reads and writes counted alike). Any history can
/// be renamed into this form without leaving the universe, so skipping the
/// rest loses no symmetry class; processor-permutation symmetry is *not*
/// reduced here (callers dedup via [`crate::canon::HistoryKey`]).
/// Histories with an unexplainable read are refuted by every model —
/// renaming preserves that, so their whole orbit is useless as a
/// separation witness and is skipped too.
pub fn for_each_representative_range(
    params: &GenParams,
    start: u64,
    end: u64,
    mut visit: impl FnMut(u64, &History),
) -> RangeStats {
    assert!(params.procs <= PROC_NAMES.len(), "too many processors");
    assert!(params.locs <= LOC_NAMES.len(), "too many locations");
    assert!(params.values <= 60, "value-seen bitmasks hold ≤ 60 values");
    let choices = params.choices_per_slot();
    let mut code = code_at(params, start as u128);
    let mut stats = RangeStats::default();
    for index in start..end {
        stats.enumerated += 1;
        match classify_code(params, &code) {
            CodeClass::NotRepresentative => stats.skipped_form += 1,
            CodeClass::Unexplainable => stats.skipped_unexplainable += 1,
            CodeClass::Representative => {
                stats.yielded += 1;
                visit(index, &build_history(params, &code));
            }
        }
        advance(&mut code, choices);
    }
    stats
}

fn advance(code: &mut [usize], choices: usize) {
    for c in code.iter_mut() {
        *c += 1;
        if *c < choices {
            return;
        }
        *c = 0;
    }
}

enum CodeClass {
    Representative,
    NotRepresentative,
    Unexplainable,
}

/// Decide, on the raw slot codes (before any allocation), whether this
/// history is the first-occurrence representative of its location/value
/// renaming orbit and whether every read is explainable.
fn classify_code(params: &GenParams, code: &[usize]) -> CodeClass {
    let mut next_loc = 0usize;
    let mut next_val = [0i64; 8];
    let mut seen_vals = [0u64; 8];
    let mut written = [0u64; 8];
    let mut read = [0u64; 8];
    for &c in code {
        let (is_write, loc, val) = decode_slot(params, c);
        // Locations must first appear as x, y, z, ... in order.
        if loc > next_loc {
            return CodeClass::NotRepresentative;
        }
        if loc == next_loc {
            next_loc += 1;
        }
        if val > 0 {
            let bit = 1u64 << val;
            // Distinct nonzero values at a location must first appear as
            // 1, 2, ... in order (reads and writes counted alike).
            if seen_vals[loc] & bit == 0 {
                if val != next_val[loc] + 1 {
                    return CodeClass::NotRepresentative;
                }
                next_val[loc] = val;
                seen_vals[loc] |= bit;
            }
            if is_write {
                written[loc] |= bit;
            } else {
                read[loc] |= bit;
            }
        }
    }
    for l in 0..params.locs {
        if read[l] & !written[l] != 0 {
            return CodeClass::Unexplainable;
        }
    }
    CodeClass::Representative
}

/// Collect every history of the universe into a vector (use only for
/// small parameter sets; see [`GenParams::universe_size`]).
pub fn all_histories(params: &GenParams) -> Vec<History> {
    let mut out = Vec::new();
    let flow = for_each_history(params, |h| {
        out.push(h.clone());
        ControlFlow::<()>::Continue(())
    });
    debug_assert!(flow.is_continue());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universe_size_matches_enumeration() {
        let params = GenParams {
            procs: 2,
            ops_per_proc: 1,
            locs: 1,
            values: 1,
        };
        // Per slot: reads r(x)0, r(x)1; writes w(x)1 → 3 choices; 2 slots.
        assert_eq!(params.choices_per_slot(), 3);
        assert_eq!(params.universe_size(), 9);
        assert_eq!(all_histories(&params).len(), 9);
    }

    #[test]
    fn histories_are_distinct_and_well_formed() {
        let params = GenParams {
            procs: 2,
            ops_per_proc: 1,
            locs: 2,
            values: 1,
        };
        let all = all_histories(&params);
        for h in &all {
            h.validate().unwrap();
            assert_eq!(h.num_ops(), 2);
        }
        let mut rendered: Vec<String> = all.iter().map(History::to_string).collect();
        rendered.sort();
        rendered.dedup();
        assert_eq!(rendered.len(), all.len());
    }

    #[test]
    fn early_break_stops() {
        let params = GenParams {
            procs: 1,
            ops_per_proc: 2,
            locs: 1,
            values: 1,
        };
        let mut n = 0;
        let flow = for_each_history(&params, |_| {
            n += 1;
            if n == 4 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert!(flow.is_break());
        assert_eq!(n, 4);
    }

    #[test]
    fn universe_size_saturates_instead_of_overflowing() {
        let params = GenParams {
            procs: 8,
            ops_per_proc: 8,
            locs: 8,
            values: 8,
        };
        // 136^64 overflows u128 by a wide margin; the old `pow` panicked.
        assert_eq!(params.universe_size(), u128::MAX);
        assert!(params.reduced_universe_estimate() > 0);
        assert_eq!(params.label(), "8x8x8x8");
    }

    #[test]
    fn reduced_estimate_divides_out_renaming_group() {
        let params = GenParams {
            procs: 2,
            ops_per_proc: 2,
            locs: 2,
            values: 1,
        };
        // 6^4 = 1296 histories; group order 2! · 2! · (1!)^2 = 4.
        assert_eq!(params.reduced_universe_estimate(), 1296 / 4);
    }

    #[test]
    fn history_at_matches_enumeration_order() {
        let params = GenParams {
            procs: 2,
            ops_per_proc: 2,
            locs: 2,
            values: 1,
        };
        let all = all_histories(&params);
        for (i, h) in all.iter().enumerate().step_by(97) {
            assert_eq!(&history_at(&params, i as u128), h, "index {i}");
        }
        assert_eq!(
            &history_at(&params, all.len() as u128 - 1),
            all.last().unwrap()
        );
    }

    #[test]
    fn ranged_enumeration_covers_the_universe() {
        let params = GenParams {
            procs: 2,
            ops_per_proc: 1,
            locs: 2,
            values: 1,
        };
        let all = all_histories(&params);
        let mut got = Vec::new();
        let total = all.len() as u64;
        for chunk_start in (0..total).step_by(7) {
            let end = (chunk_start + 7).min(total);
            let stats = for_each_history_range(&params, chunk_start, end, |i, h| {
                got.push((i, h.clone()));
            });
            assert_eq!(stats.enumerated, end - chunk_start);
        }
        assert_eq!(got.len(), all.len());
        for (i, h) in got {
            assert_eq!(&all[i as usize], &h, "index {i}");
        }
    }

    #[test]
    fn representatives_cover_every_loc_value_orbit() {
        use crate::canon::canonicalize;
        use std::collections::HashSet;
        let params = GenParams {
            procs: 2,
            ops_per_proc: 2,
            locs: 2,
            values: 2,
        };
        let total = params.universe_size() as u64;
        // Canonical keys of every explainable history in the universe...
        let mut full_keys = HashSet::new();
        let _ = for_each_history(&params, |h| {
            let explainable =
                h.ops().iter().filter(|o| o.is_read()).all(|r| {
                    r.value.is_initial() || h.writes_to(r.loc).any(|w| w.value == r.value)
                });
            if explainable {
                full_keys.insert(canonicalize(h).key);
            }
            ControlFlow::<()>::Continue(())
        });
        // ...must all be reachable through representatives alone.
        let mut rep_keys = HashSet::new();
        let mut stats = RangeStats::default();
        stats.merge(&for_each_representative_range(&params, 0, total, |_, h| {
            rep_keys.insert(canonicalize(h).key);
        }));
        assert_eq!(stats.enumerated, total);
        assert!(stats.yielded < total / 4, "filter too weak: {stats:?}");
        assert_eq!(rep_keys, full_keys);
    }

    #[test]
    fn contains_the_store_buffering_shape() {
        // The Figure 1 history must appear in the 2×2×2×1 universe.
        let params = GenParams {
            procs: 2,
            ops_per_proc: 2,
            locs: 2,
            values: 1,
        };
        let target = "p: w(x)1 r(y)0\nq: w(y)1 r(x)0\n";
        let mut found = false;
        let _ = for_each_history(&params, |h| {
            if h.to_string() == target {
                found = true;
                ControlFlow::Break(())
            } else {
                ControlFlow::<()>::Continue(())
            }
        });
        assert!(found);
    }
}

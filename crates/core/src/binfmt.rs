//! Shared binary-format helpers for the on-disk artifacts this
//! workspace writes: memo caches ([`crate::memo`]) and monitor
//! checkpoints (the `smc-monitor` lifecycle subsystem).
//!
//! Every format built on this module follows the same contract:
//!
//! * little-endian fixed-width integers throughout;
//! * an 8-byte magic whose last byte is the format version;
//! * length prefixes validated against the remaining input, so a
//!   corrupt count can never trigger an oversized allocation;
//! * loaders return `Err(String)` naming the byte offset of the first
//!   offending byte — callers warn and continue, they never panic.

use std::io::Write;

/// Append a `u32` in little-endian order.
pub fn write_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` in little-endian order.
pub fn write_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append an `i64` in little-endian order.
pub fn write_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u32`-length-prefixed UTF-8 string.
pub fn write_str(buf: &mut Vec<u8>, s: &str) {
    write_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Write an assembled buffer to `path` in one create-and-write.
pub fn write_file(path: &std::path::Path, buf: &[u8]) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(buf)
}

/// Bounds-checked cursor over untrusted bytes: every read is validated
/// against the remaining input, so truncated or garbage files surface
/// as `Err` with the byte offset of the failure, never a panic or an
/// oversized allocation.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A cursor at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Current byte offset (for error messages pointing into the file).
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// `true` once every byte has been consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }

    /// Bytes not yet consumed. Loaders compare declared element counts
    /// against this before allocating.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Consume the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| format!("truncated input at byte {}", self.pos))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Consume one byte.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    /// Consume a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Consume a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Consume a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, String> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Consume a little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, String> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// A length prefix for items of at least `item_bytes` each;
    /// rejected when the remaining input is too short to hold that
    /// many, which caps allocations by the file size.
    pub fn len_prefix(&mut self, item_bytes: usize) -> Result<usize, String> {
        let pos = self.pos;
        let n = self.u32()? as usize;
        if n.saturating_mul(item_bytes) > self.bytes.len() - self.pos {
            return Err(format!("length {n} at byte {pos} exceeds remaining input"));
        }
        Ok(n)
    }

    /// Consume a `u32`-length-prefixed UTF-8 string (see [`write_str`]).
    pub fn str(&mut self) -> Result<String, String> {
        let n = self.len_prefix(1)?;
        let pos = self.pos;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| format!("invalid utf-8 string at byte {pos}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_strings() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 7);
        write_u64(&mut buf, u64::MAX - 1);
        write_i64(&mut buf, -42);
        write_str(&mut buf, "héllo");
        let mut r = Reader::new(&buf);
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.str().unwrap(), "héllo");
        assert!(r.is_at_end());
    }

    #[test]
    fn truncation_errors_name_the_offset() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 1);
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            let e = r.u64().unwrap_err();
            assert!(e.contains("at byte 0"), "{e}");
        }
        let mut r = Reader::new(&buf);
        r.u32().unwrap();
        let e = r.u64().unwrap_err();
        assert!(e.contains("at byte 4"), "{e}");
    }

    #[test]
    fn hostile_length_prefixes_are_rejected() {
        let mut buf = Vec::new();
        write_u32(&mut buf, u32::MAX);
        let mut r = Reader::new(&buf);
        let e = r.len_prefix(4).unwrap_err();
        assert!(e.contains("exceeds remaining input"), "{e}");
        // A string length past the payload is caught the same way.
        let mut r = Reader::new(&buf);
        assert!(r.str().is_err());
    }
}

//! The order-constraint saturation engine: a second checking backend
//! that never enumerates schedules.
//!
//! The exhaustive checker ([`crate::checker`]) realizes the paper's
//! existential quantifiers literally — it enumerates reads-from
//! assignments, store orders, coherence orders and view interleavings.
//! That is exact but exponential, which caps it at litmus scale. This
//! module decides the same question by *constraint saturation*, in the
//! spirit of Qadeer's order-constraint encoding for SC model checking
//! (arXiv:cs/0108016) and the per-model polynomial procedures of Chini &
//! Saivasan (arXiv:2007.11398):
//!
//! * Each processor view becomes a **context**: a transitively-closed
//!   [`Relation`] over the history's operations, confined to the view's
//!   operation set and seeded with the model's derived base order
//!   (`po`, `ppo`, or per-location `po`).
//! * Mutual-consistency parameters become **shared edges**: TSO's global
//!   write order broadcasts every write/write edge to every context;
//!   coherence broadcasts same-location write/write edges; causal models
//!   maintain one global `(po ∪ wb)+` closure whose edges flow into every
//!   context that contains both endpoints.
//! * Read legality becomes **recency triples**: if read `r` returns write
//!   `w`, every other same-location write `w'` in the view must satisfy
//!   `w' ≺ w ∨ r ≺ w'`.
//!
//! Propagation is *watched*, SAT-solver style: every inserted closure
//! edge flows through one queue, and the only work done per edge is (a)
//! the share broadcast, (b) killing the reads-from candidates the edge
//! refutes, and (c) waking the recency triples that registered a watch
//! on that edge — there are no per-round rescans. The residual choice
//! points (ambiguous reads-from, open triples, unordered write pairs)
//! are handled by a conflict-driven solver: every edge carries a bitmask
//! of the decision levels it was derived from, a conflict's mask drives
//! conflict-directed backjumping, exhausted decision prefixes and
//! bit-exact reason cuts are learned into a [`crate::kernel::NogoodStore`]
//! so aliasing-symmetric subtrees are never re-explored, and branching
//! follows a VSIDS-style activity score under a Luby restart schedule
//! that keeps the learned cuts. Backtracking is chronological trail
//! undo, not replay.
//!
//! The engine handles every model whose mutual-consistency requirements
//! are expressible as edge broadcasting ([`supports`]); the labeled /
//! bracketing / semi-causal models stay with the exhaustive checker. On
//! every history where both engines decide, the verdicts agree and the
//! saturation witness re-checks under [`crate::verify::verify_witness`]
//! (property-tested in `tests/engine_equiv.rs` and
//! `tests/saturate_learning.rs`).

use crate::budget::Budget;
use crate::checker::{view_op_sets, CheckConfig, CheckStats, Stage, Verdict, Witness};
use crate::kernel::NogoodStore;
use crate::orders;
use crate::spec::{GlobalOrder, ModelSpec, OwnerOrder};
use smc_history::{History, OpId};
use smc_relation::{BitSet, Relation};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Reads-from value: not yet decided.
const UNASSIGNED: u32 = u32::MAX;
/// Reads-from value: the read returns the location's initial value.
const FROM_INITIAL: u32 = u32::MAX - 1;

/// Words per learned-nogood row — also the largest decision-set size
/// (sorted codes, zero-padded) the store can represent.
const NOGOOD_STRIDE: usize = 32;
/// Upper bound on learned rows (bounds arena memory).
const NOGOOD_MAX_ROWS: usize = 16_384;
/// VSIDS bump growth per conflict (MiniSat's 1/0.95).
const ACT_DECAY: f64 = 1.0 / 0.95;
/// Rescale threshold for activity scores.
const ACT_RESCALE: f64 = 1e100;

/// Decision-code tags (high nibble of the packed `u64`).
const CODE_RF: u64 = 1 << 60;
const CODE_EDGE: u64 = 2 << 60;
const CODE_PAIR: u64 = 3 << 60;

/// Pack a context edge into a watch/code key.
#[inline]
fn ekey(c: usize, a: usize, b: usize) -> u64 {
    ((c as u64) << 48) | ((a as u64) << 24) | b as u64
}

/// The `i`-th Luby restart multiplier (0-indexed): 1,1,2,1,1,2,4,…
fn luby(mut x: u64) -> u64 {
    let mut size: u64 = 1;
    let mut seq: u32 = 0;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

/// A fast multiply-xor hasher for the watch map's small integer keys
/// (SipHash is measurable on the hot propagation path).
#[derive(Default)]
struct FxHash(u64);

impl Hasher for FxHash {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }
    fn write_u64(&mut self, x: u64) {
        self.0 = (self.0.rotate_left(5) ^ x).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

type WatchMap = HashMap<u64, Vec<(u32, u32)>, BuildHasherDefault<FxHash>>;

/// Whether the saturation engine can decide `spec`.
///
/// Supported: every model whose mutual-consistency requirements reduce to
/// edge broadcasting between per-processor constraint contexts — SC, TSO,
/// PRAM, causal, coherent, causal+coherent and Goodman's PC. Unsupported:
/// labeled submodels (RC, WO, hybrid), owner-only orders, and the
/// semi-causal order (DASH PC), whose derived order depends on the
/// enumerated coherence order in a way that is not a per-edge rule.
pub fn supports(spec: &ModelSpec) -> bool {
    spec.labeled.is_none()
        && !spec.rc_bracketing
        && !spec.fence_bracketing
        && matches!(spec.owner_order, OwnerOrder::None)
        && !matches!(spec.global_order, GlobalOrder::SemiCausalOrder)
        && spec.validate().is_ok()
}

/// How write/write edges discovered in one context bind the others.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Share {
    /// No cross-view write agreement (PRAM, causal).
    None,
    /// All views order all writes identically (TSO).
    AllWrites,
    /// All views order same-location writes identically (coherence).
    SameLoc,
}

enum Fail {
    /// The current partial assignment is contradictory; the mask is the
    /// union of the decision levels the contradiction was derived from
    /// (bit `min(level, 63)`; zero means base-implied).
    Conflict(u64),
    /// The budget ran out mid-propagation.
    Budget,
}

/// A residual choice point.
enum Choice {
    /// An ambiguous read: which write (or the initial value) it returns.
    /// `options` is the candidate list as alive at decision time.
    Rf { slot: usize, options: Vec<u32> },
    /// An open recency triple for read `read` (whose source is already
    /// assigned) against same-location write `wprime`: option 0 orders
    /// `wprime` before the source, option 1 orders `read` before
    /// `wprime`.
    Triple { ctx: u32, read: u32, wprime: u32 },
    /// A same-location write pair still unordered by the shared
    /// coherence order (coherence models only): option 0 orders
    /// `a` before `b`, option 1 the reverse. These must be decided
    /// *inside* the search because an orientation broadcast to every
    /// context can conflict with a context's private cross-location
    /// edges only jointly with other orientations — extraction-time
    /// totalization would be incomplete.
    WritePair { a: u32, b: u32 },
}

impl Choice {
    fn arity(&self) -> usize {
        match self {
            Choice::Rf { options, .. } => options.len(),
            Choice::Triple { .. } | Choice::WritePair { .. } => 2,
        }
    }
}

struct Frame {
    choice: Choice,
    /// Index of the currently-applied option.
    next: usize,
    /// Trail length before this frame's option was applied.
    trail_mark: usize,
    /// Union of the conflict masks seen under this frame's options
    /// (own level bit removed) — the CBJ conflict set.
    blame: u64,
    /// Packed code of the currently-applied option, for nogood rows.
    code: u64,
}

/// One reversible state mutation, for chronological trail undo.
enum Change {
    /// Context edge `a → b` in context `c`.
    Edge(u32, u32, u32),
    /// Shared store/coherence edge `a → b`.
    SEdge(u32, u32),
    /// Global causal edge `a → b`.
    GEdge(u32, u32),
    /// Reads-from slot assigned.
    Rf(u32),
    /// `(slot, wprime)` recency triple marked resolved.
    Resolved(u32, u32),
    /// `(slot, cand_idx)` reads-from candidate killed.
    Dead(u32, u32),
    /// Triple watch registered under `key`.
    Watch(u64),
}

/// A relation kept closed under transitivity, with predecessor rows
/// maintained alongside the successor rows so incremental closure never
/// pays a column scan.
struct Dir {
    rel: Relation,
    pred: Vec<BitSet>,
}

/// The mutable solver state, restored by trail undo on backtracking.
struct State {
    /// Per-context transitively-closed constraint relation, confined to
    /// the context's view operations.
    ctx: Vec<Dir>,
    /// Per-context edge reason masks, `n × n` flattened (decision-level
    /// bits the edge was derived from; base edges stay zero).
    emask: Vec<Vec<u64>>,
    /// The global `(po ∪ wb)+` closure for causal models.
    global: Option<Dir>,
    /// Reason masks for `global` (empty unless causal).
    gmask: Vec<u64>,
    /// Accumulated shared write/write edges (the store order or the
    /// per-location coherence orders, as a partial order).
    shared: Relation,
    /// Reason masks for `shared` (empty when `Share::None`).
    smask: Vec<u64>,
    /// Per read slot: `UNASSIGNED`, `FROM_INITIAL`, or a write op index.
    rf: Vec<u32>,
    /// Per read slot: reason mask of its assignment (level bit for a
    /// decision, union of killer masks for a propagated unit).
    assign_mask: Vec<u64>,
    /// Per read slot: same-location writes whose recency triple is
    /// already satisfied or oriented.
    resolved: Vec<BitSet>,
    /// Flattened per-candidate kill flags (indexed by `slot_off`).
    dead: Vec<bool>,
    /// Reason mask for each killed candidate (read only while dead).
    killer: Vec<u64>,
    /// Surviving candidate count per read slot.
    alive: Vec<u32>,
    /// Newly-inserted context edges pending share/kill/wake processing.
    queue: Vec<(u32, u32, u32)>,
    /// Read slots reduced to a single candidate, pending assignment.
    units: Vec<u32>,
    /// The undo trail.
    trail: Vec<Change>,
    /// Watches registered by open recency triples: edge key → list of
    /// `(slot, wprime)` triples to wake when that edge appears.
    twatch: WatchMap,
}

/// The immutable problem description plus solver counters.
struct Solver<'a> {
    h: &'a History,
    spec: &'a ModelSpec,
    n: usize,
    /// View operation set per context (one per processor; a single full
    /// context for identical-view models).
    views: Vec<BitSet>,
    /// The reads-from-independent base order, transitively closed, over
    /// all operations.
    base: Relation,
    share: Share,
    causal: bool,
    /// Op indices of all reads, ascending.
    reads: Vec<u32>,
    /// Op index → read slot (`u32::MAX` for writes).
    read_slot: Vec<u32>,
    /// Context owning each read slot.
    home: Vec<u32>,
    /// Per read slot: reads-from candidates (`FROM_INITIAL` first when
    /// present, then write op indices ascending), mirroring
    /// [`crate::rf`]'s candidate rule.
    cands: Vec<Vec<u32>>,
    /// Prefix sums of `cands` lengths (flattened candidate indexing).
    slot_off: Vec<usize>,
    /// Whether `cands[slot][0]` is `FROM_INITIAL`.
    has_initial: Vec<bool>,
    /// Location index → write op indices, ascending.
    writes_by_loc: Vec<Vec<u32>>,
    is_write: BitSet,
    budget: &'a Budget,
    /// Conflict-driven learning enabled ([`CheckConfig::saturate_learning`]).
    learn: bool,
    /// Conflicts per Luby unit between restarts; 0 disables restarts.
    restart_unit: u64,
    /// Learned nogoods: canonicalized decision sets (exhausted prefixes
    /// and conflict cuts) that admit no solution. Survives restarts.
    nogoods: NogoodStore,
    /// VSIDS activity per read slot.
    act: Vec<f64>,
    act_inc: f64,
    since_restart: u64,
    restart_idx: u64,
    steps: u64,
    branches: u64,
    wakeups: u64,
    conflicts: u64,
    learned: u64,
    restarts: u64,
    /// Reusable buffers (closure target/source words, triple wake list,
    /// nogood row assembly).
    tbuf: Vec<u64>,
    pbuf: Vec<u64>,
    wake_buf: Vec<(u32, u32)>,
    code_buf: Vec<u64>,
}

/// Decide `h` against `spec` by constraint saturation.
///
/// Returns [`Verdict::Unsupported`] when [`supports`] is false. Respects
/// `budget` (each inserted closure edge and each decision charges one
/// node); exhaustion reports [`Stage::Saturation`].
pub(crate) fn check_saturate(
    h: &History,
    spec: &ModelSpec,
    cfg: &CheckConfig,
    budget: &Budget,
    stats: &mut CheckStats,
) -> Verdict {
    if let Err(e) = spec.validate() {
        return Verdict::Unsupported(e);
    }
    if !supports(spec) {
        return Verdict::Unsupported(format!(
            "{}: the saturation engine does not handle labeled, owner-ordered or \
             semi-causal models; use the exhaustive engine",
            spec.name
        ));
    }
    let mut solver = Solver::new(h, spec, cfg, budget);
    let verdict = solver.run(stats);
    stats.saturation_steps = solver.steps;
    stats.saturation_branches = solver.branches;
    stats.saturation_wakeups = solver.wakeups;
    stats.saturation_conflicts = solver.conflicts;
    stats.saturation_learned = solver.learned;
    stats.saturation_restarts = solver.restarts;
    verdict
}

impl<'a> Solver<'a> {
    fn new(h: &'a History, spec: &'a ModelSpec, cfg: &CheckConfig, budget: &'a Budget) -> Self {
        let n = h.num_ops();
        let views = if spec.identical_views {
            vec![BitSet::full(n)]
        } else {
            view_op_sets(h, spec.delta)
        };
        let causal = matches!(spec.global_order, GlobalOrder::CausalOrder);
        let base = match spec.global_order {
            GlobalOrder::ProgramOrder | GlobalOrder::CausalOrder => orders::program_order(h),
            GlobalOrder::PartialProgramOrder => orders::partial_program_order(h),
            GlobalOrder::PerLocationProgramOrder => orders::per_location_program_order(h),
            GlobalOrder::None => Relation::new(n),
            GlobalOrder::SemiCausalOrder => unreachable!("rejected by supports()"),
        };
        let share = if spec.global_write_order {
            Share::AllWrites
        } else if spec.coherence {
            Share::SameLoc
        } else {
            Share::None
        };
        let mut reads = Vec::new();
        let mut read_slot = vec![u32::MAX; n];
        let mut writes_by_loc = vec![Vec::new(); h.num_locs()];
        let mut is_write = BitSet::new(n);
        for op in h.ops() {
            let i = op.id.index();
            if op.is_write() {
                is_write.insert(i);
                writes_by_loc[op.loc.index()].push(i as u32);
            } else {
                read_slot[i] = reads.len() as u32;
                reads.push(i as u32);
            }
        }
        let home = reads
            .iter()
            .map(|&r| {
                if spec.identical_views {
                    0
                } else {
                    h.op(OpId(r)).proc.index() as u32
                }
            })
            .collect();
        // Reads-from candidates, mirroring crate::rf: the initial value
        // if the read returns it, plus every same-location write of the
        // same value. All writes are present in every view, so the
        // candidate set needs no per-view filtering.
        let mut has_initial = Vec::with_capacity(reads.len());
        let cands: Vec<Vec<u32>> = reads
            .iter()
            .map(|&r| {
                let read = h.op(OpId(r));
                let mut out = Vec::new();
                if read.value == smc_history::Value::INITIAL {
                    out.push(FROM_INITIAL);
                }
                has_initial.push(!out.is_empty());
                for &w in &writes_by_loc[read.loc.index()] {
                    if h.op(OpId(w)).value == read.value {
                        out.push(w);
                    }
                }
                out
            })
            .collect();
        let mut slot_off = Vec::with_capacity(reads.len() + 1);
        let mut off = 0usize;
        for c in &cands {
            slot_off.push(off);
            off += c.len();
        }
        slot_off.push(off);
        let act = vec![0.0; reads.len()];
        Solver {
            h,
            spec,
            n,
            views,
            base,
            share,
            causal,
            reads,
            read_slot,
            home,
            cands,
            slot_off,
            has_initial,
            writes_by_loc,
            is_write,
            budget,
            learn: cfg.saturate_learning,
            restart_unit: cfg.saturate_restart_unit,
            nogoods: NogoodStore::new(NOGOOD_STRIDE, NOGOOD_MAX_ROWS),
            act,
            act_inc: 1.0,
            since_restart: 0,
            restart_idx: 0,
            steps: 0,
            branches: 0,
            wakeups: 0,
            conflicts: 0,
            learned: 0,
            restarts: 0,
            tbuf: Vec::new(),
            pbuf: Vec::new(),
            wake_buf: Vec::new(),
            code_buf: Vec::new(),
        }
    }

    fn init_state(&mut self) -> State {
        let n = self.n;
        let mut ctx = Vec::with_capacity(self.views.len());
        let mut emask = Vec::with_capacity(self.views.len());
        let mut queue = Vec::new();
        for (c, view) in self.views.iter().enumerate() {
            let mut rel = Relation::new(n);
            let mut pred = vec![BitSet::new(n); n];
            for a in view.iter() {
                let mut row = self.base.successors(a).clone();
                row.intersect_with(view);
                for b in row.iter() {
                    rel.add(a, b);
                    pred[b].insert(a);
                    // Seed the queue with every base edge so root-level
                    // propagation (share broadcast, candidate kills)
                    // sees them uniformly.
                    queue.push((c as u32, a as u32, b as u32));
                }
            }
            ctx.push(Dir { rel, pred });
            emask.push(vec![0u64; n * n]);
        }
        let global = self.causal.then(|| {
            let rel = self.base.clone();
            let mut pred = vec![BitSet::new(n); n];
            for a in 0..n {
                for b in rel.successors(a).iter() {
                    pred[b].insert(a);
                }
            }
            Dir { rel, pred }
        });
        let mut units = Vec::new();
        let mut alive = Vec::with_capacity(self.cands.len());
        for (slot, cs) in self.cands.iter().enumerate() {
            alive.push(cs.len() as u32);
            if cs.len() == 1 {
                units.push(slot as u32);
            }
        }
        let total = *self.slot_off.last().unwrap_or(&0);
        State {
            ctx,
            emask,
            global,
            gmask: if self.causal {
                vec![0u64; n * n]
            } else {
                Vec::new()
            },
            shared: Relation::new(n),
            smask: if self.share != Share::None {
                vec![0u64; n * n]
            } else {
                Vec::new()
            },
            rf: vec![UNASSIGNED; self.reads.len()],
            assign_mask: vec![0u64; self.reads.len()],
            resolved: vec![BitSet::new(n); self.reads.len()],
            dead: vec![false; total],
            killer: vec![0u64; total],
            alive,
            queue,
            units,
            trail: Vec::new(),
            twatch: WatchMap::default(),
        }
    }

    fn run(&mut self, stats: &mut CheckStats) -> Verdict {
        // A read with an empty candidate list is unsatisfiable under
        // every model the engine supports.
        if self.cands.iter().any(|c| c.is_empty()) {
            return Verdict::Disallowed;
        }
        let mut st = self.init_state();
        match self.propagate(&mut st) {
            Ok(()) => {}
            Err(Fail::Conflict(_)) => return Verdict::Disallowed,
            Err(Fail::Budget) => return self.exhausted(stats),
        }
        let mut frames: Vec<Frame> = Vec::new();
        loop {
            if self.restart_unit > 0
                && !frames.is_empty()
                && self.since_restart >= self.restart_unit * luby(self.restart_idx)
            {
                // Luby restart: rewind to the root, keep the learned
                // nogoods and activity scores.
                self.restarts += 1;
                self.restart_idx += 1;
                self.since_restart = 0;
                let mark = frames[0].trail_mark;
                frames.clear();
                self.undo_to(&mut st, mark);
                continue;
            }
            if self.nogood_probe(&frames) {
                // The current decision set is a known nogood (reached
                // here in a different order): conflict on every level.
                let mask = if frames.len() >= 63 {
                    u64::MAX
                } else {
                    (1u64 << frames.len()) - 1
                };
                self.note_conflict(&frames, mask);
                match self.resolve(&mut frames, &mut st, mask) {
                    Ok(()) => continue,
                    Err(Fail::Conflict(_)) => return Verdict::Disallowed,
                    Err(Fail::Budget) => return self.exhausted(stats),
                }
            }
            let Some(choice) = self.pick(&st) else {
                return self.extract(&mut st);
            };
            frames.push(Frame {
                choice,
                next: 0,
                trail_mark: st.trail.len(),
                blame: 0,
                code: 0,
            });
            self.branches += 1;
            if !self.budget.try_spend() {
                return self.exhausted(stats);
            }
            let applied = self
                .apply_frame(&mut st, &mut frames)
                .and_then(|()| self.propagate(&mut st));
            match applied {
                Ok(()) => {}
                Err(Fail::Budget) => return self.exhausted(stats),
                Err(Fail::Conflict(m)) => {
                    self.note_conflict(&frames, m);
                    match self.resolve(&mut frames, &mut st, m) {
                        Ok(()) => {}
                        Err(Fail::Conflict(_)) => return Verdict::Disallowed,
                        Err(Fail::Budget) => return self.exhausted(stats),
                    }
                }
            }
        }
    }

    fn exhausted(&self, stats: &mut CheckStats) -> Verdict {
        stats.exhausted_stage = Some(Stage::Saturation);
        Verdict::Exhausted
    }

    /// Conflict bookkeeping: count it, advance the restart clock, and
    /// bump the activity of every decision slot the conflict blames.
    fn note_conflict(&mut self, frames: &[Frame], mask: u64) {
        self.conflicts += 1;
        self.since_restart += 1;
        self.act_inc *= ACT_DECAY;
        let mut rescale = false;
        for (i, f) in frames.iter().enumerate() {
            if mask & (1u64 << i.min(63)) == 0 {
                continue;
            }
            let slot = match f.choice {
                Choice::Rf { slot, .. } => slot,
                Choice::Triple { read, .. } => self.read_slot[read as usize] as usize,
                Choice::WritePair { .. } => continue,
            };
            self.act[slot] += self.act_inc;
            rescale |= self.act[slot] > ACT_RESCALE;
        }
        if rescale {
            for a in &mut self.act {
                *a *= 1e-100;
            }
            self.act_inc *= 1e-100;
        }
    }

    /// Conflict-directed backjumping: rewind to the deepest decision
    /// level the conflict mask blames, advance that frame's option, and
    /// keep resolving until an option survives propagation. Frames that
    /// exhaust every option are popped, their exhaustion reason is
    /// learned ([`Solver::record_nogoods`]), and the reason becomes the
    /// conflict mask one level up. `Err(Conflict)` here means the whole
    /// search space is refuted.
    fn resolve(&mut self, frames: &mut Vec<Frame>, st: &mut State, mask: u64) -> Result<(), Fail> {
        let mut mask = if self.learn { mask } else { u64::MAX };
        loop {
            if frames.is_empty() || mask == 0 {
                // Either no decision to revise or a base-implied
                // contradiction: the history is refuted outright.
                return Err(Fail::Conflict(0));
            }
            let target = if mask & (1u64 << 63) != 0 {
                // Levels ≥ 63 share the conservative bit: rewind
                // chronologically.
                frames.len() - 1
            } else {
                ((63 - mask.leading_zeros()) as usize).min(frames.len() - 1)
            };
            frames.truncate(target + 1);
            let mark = frames[target].trail_mark;
            self.undo_to(st, mark);
            let f = &mut frames[target];
            f.blame |= if target < 63 {
                mask & !(1u64 << target)
            } else {
                // The shared bit may blame other deep frames: keep it.
                mask
            };
            f.next += 1;
            if f.next >= f.choice.arity() {
                // Every option failed: the exhaustion reason is the
                // accumulated blame plus whatever made the option list
                // itself exhaustive.
                let mut em = f.blame;
                match &f.choice {
                    Choice::Rf { slot, .. } => {
                        // Candidates already dead at decision time were
                        // excluded for their killers' reasons.
                        let off = self.slot_off[*slot];
                        for i in 0..self.cands[*slot].len() {
                            if st.dead[off + i] {
                                em |= st.killer[off + i];
                            }
                        }
                    }
                    Choice::Triple { read, .. } => {
                        // The triple's dichotomy presumes the read's
                        // source assignment.
                        let slot = self.read_slot[*read as usize] as usize;
                        em |= st.assign_mask[slot];
                    }
                    // A write pair must be ordered one way or the other
                    // unconditionally.
                    Choice::WritePair { .. } => {}
                }
                if self.learn {
                    self.record_nogoods(frames, em);
                }
                frames.pop();
                mask = if self.learn { em } else { u64::MAX };
                continue;
            }
            self.branches += 1;
            if !self.budget.try_spend() {
                return Err(Fail::Budget);
            }
            match self
                .apply_frame(st, frames)
                .and_then(|()| self.propagate(st))
            {
                Ok(()) => return Ok(()),
                Err(Fail::Budget) => return Err(Fail::Budget),
                Err(Fail::Conflict(m)) => {
                    self.note_conflict(frames, m);
                    mask = if self.learn { m } else { u64::MAX };
                }
            }
        }
    }

    /// Whether the current decision set (order-independent) is a learned
    /// nogood. Propagation is a confluent closure operator, so the state
    /// is a function of the decision *set* — any permutation of an
    /// exhausted prefix is equally unsatisfiable.
    fn nogood_probe(&mut self, frames: &[Frame]) -> bool {
        if !self.learn
            || frames.is_empty()
            || frames.len() > NOGOOD_STRIDE
            || self.nogoods.is_empty()
        {
            return false;
        }
        let mut row = std::mem::take(&mut self.code_buf);
        row.clear();
        row.extend(frames.iter().map(|f| f.code));
        row.sort_unstable();
        row.dedup();
        row.resize(NOGOOD_STRIDE, 0);
        let hit = self.nogoods.contains(&row);
        self.code_buf = row;
        hit
    }

    /// Learn from an exhausted frame (the last of `frames`): its
    /// decision prefix is a nogood, and so is the subset of decisions at
    /// the levels in `em` (the reason cut) when `em` is exact (no
    /// conservative bit).
    fn record_nogoods(&mut self, frames: &[Frame], em: u64) {
        let d = frames.len() - 1;
        let mut row = std::mem::take(&mut self.code_buf);
        if (1..=NOGOOD_STRIDE).contains(&d) {
            row.clear();
            row.extend(frames[..d].iter().map(|f| f.code));
            row.sort_unstable();
            row.dedup();
            row.resize(NOGOOD_STRIDE, 0);
            if self.nogoods.insert(&row) {
                self.learned += 1;
            }
        }
        if em & (1u64 << 63) == 0 {
            let bits = em.count_ones() as usize;
            if bits > 0 && bits < d && bits <= NOGOOD_STRIDE {
                row.clear();
                let mut m = em;
                while m != 0 {
                    let i = m.trailing_zeros() as usize;
                    m &= m - 1;
                    if i < d {
                        row.push(frames[i].code);
                    }
                }
                row.sort_unstable();
                row.dedup();
                row.resize(NOGOOD_STRIDE, 0);
                if self.nogoods.insert(&row) {
                    self.learned += 1;
                }
            }
        }
        self.code_buf = row;
    }

    /// Apply the deepest frame's current option.
    fn apply_frame(&mut self, st: &mut State, frames: &mut [Frame]) -> Result<(), Fail> {
        let i = frames.len() - 1;
        let level_mask = 1u64 << i.min(63);
        let f = &mut frames[i];
        match f.choice {
            Choice::Rf { slot, ref options } => {
                let val = options[f.next];
                f.code = CODE_RF | ((slot as u64) << 32) | val as u64;
                self.assign(st, slot, val, level_mask)
            }
            Choice::Triple { ctx, read, wprime } => {
                let slot = self.read_slot[read as usize] as usize;
                let src = st.rf[slot];
                debug_assert!(src != UNASSIGNED && src != FROM_INITIAL);
                let (from, to) = if f.next == 0 {
                    (wprime, src)
                } else {
                    (read, wprime)
                };
                f.code = CODE_EDGE | ekey(ctx as usize, from as usize, to as usize);
                st.resolved[slot].insert(wprime as usize);
                st.trail.push(Change::Resolved(slot as u32, wprime));
                self.add_edge(st, ctx as usize, from as usize, to as usize, level_mask)
            }
            Choice::WritePair { a, b } => {
                let (x, y) = if f.next == 0 { (a, b) } else { (b, a) };
                f.code = CODE_PAIR | ((x as u64) << 24) | y as u64;
                for c in 0..st.ctx.len() {
                    self.add_edge(st, c, x as usize, y as usize, level_mask)?;
                }
                Ok(())
            }
        }
    }

    /// Assign read `slot` to `val` with reason `mask`, derive the
    /// consequences, and register watches for the recency triples the
    /// closure leaves open.
    fn assign(&mut self, st: &mut State, slot: usize, val: u32, mask: u64) -> Result<(), Fail> {
        debug_assert_eq!(st.rf[slot], UNASSIGNED);
        st.rf[slot] = val;
        st.assign_mask[slot] = mask;
        st.trail.push(Change::Rf(slot as u32));
        let r = self.reads[slot] as usize;
        let c = self.home[slot] as usize;
        let n = self.n;
        if val == FROM_INITIAL {
            // The read precedes every same-location write in its view;
            // that resolves all its recency triples at once.
            let loc = self.h.op(OpId(r as u32)).loc.index();
            for i in 0..self.writes_by_loc[loc].len() {
                let w = self.writes_by_loc[loc][i] as usize;
                st.resolved[slot].insert(w);
                st.trail.push(Change::Resolved(slot as u32, w as u32));
                self.add_edge(st, c, r, w, mask)?;
            }
            return Ok(());
        }
        let w = val as usize;
        st.resolved[slot].insert(w);
        st.trail.push(Change::Resolved(slot as u32, w as u32));
        self.add_edge(st, c, w, r, mask)?;
        if self.causal {
            self.global_insert(st, w, r, mask)?;
        }
        // Recency triples: orient the ones the closure already forces,
        // watch the rest.
        let loc = self.h.op(OpId(r as u32)).loc.index();
        for i in 0..self.writes_by_loc[loc].len() {
            let wp = self.writes_by_loc[loc][i] as usize;
            if wp == w || st.resolved[slot].contains(wp) {
                continue;
            }
            let rel = &st.ctx[c].rel;
            if rel.has(wp, w) || rel.has(r, wp) {
                st.resolved[slot].insert(wp);
                st.trail.push(Change::Resolved(slot as u32, wp as u32));
                continue;
            }
            let blocked_before = rel.has(w, wp);
            let blocked_after = rel.has(wp, r);
            match (blocked_before, blocked_after) {
                (true, true) => {
                    return Err(Fail::Conflict(
                        mask | st.emask[c][w * n + wp] | st.emask[c][wp * n + r],
                    ))
                }
                (true, false) => {
                    let m = mask | st.emask[c][w * n + wp];
                    st.resolved[slot].insert(wp);
                    st.trail.push(Change::Resolved(slot as u32, wp as u32));
                    self.add_edge(st, c, r, wp, m)?;
                }
                (false, true) => {
                    let m = mask | st.emask[c][wp * n + r];
                    st.resolved[slot].insert(wp);
                    st.trail.push(Change::Resolved(slot as u32, wp as u32));
                    self.add_edge(st, c, wp, w, m)?;
                }
                (false, false) => {
                    // Genuinely open: wake on any of the four edges that
                    // could decide or satisfy the triple.
                    for key in [
                        ekey(c, w, wp),
                        ekey(c, wp, r),
                        ekey(c, wp, w),
                        ekey(c, r, wp),
                    ] {
                        st.twatch
                            .entry(key)
                            .or_default()
                            .push((slot as u32, wp as u32));
                        st.trail.push(Change::Watch(key));
                    }
                }
            }
        }
        Ok(())
    }

    /// Run propagation to a fixpoint: every inserted edge flows through
    /// the queue exactly once (share broadcast, candidate kills, triple
    /// wakes), and slots reduced to one candidate are assigned.
    fn propagate(&mut self, st: &mut State) -> Result<(), Fail> {
        loop {
            if let Some((c, a, b)) = st.queue.pop() {
                self.process_edge(st, c as usize, a as usize, b as usize)?;
                continue;
            }
            if let Some(slot) = st.units.pop() {
                let slot = slot as usize;
                if st.rf[slot] != UNASSIGNED {
                    continue;
                }
                debug_assert_eq!(st.alive[slot], 1);
                // The forced value's reason is the union of the reasons
                // every sibling candidate died.
                let off = self.slot_off[slot];
                let mut m = 0u64;
                let mut val = UNASSIGNED;
                for i in 0..self.cands[slot].len() {
                    if st.dead[off + i] {
                        m |= st.killer[off + i];
                    } else {
                        val = self.cands[slot][i];
                    }
                }
                debug_assert_ne!(val, UNASSIGNED);
                self.assign(st, slot, val, m)?;
                continue;
            }
            return Ok(());
        }
    }

    /// React to context edge `a → b` in context `c`: broadcast it if the
    /// share mode claims it, kill the reads-from candidates it refutes,
    /// and wake the recency triples watching it.
    fn process_edge(&mut self, st: &mut State, c: usize, a: usize, b: usize) -> Result<(), Fail> {
        let n = self.n;
        let mask = st.emask[c][a * n + b];
        let hit = match self.share {
            Share::None => false,
            Share::AllWrites => self.is_write.contains(a) && self.is_write.contains(b),
            Share::SameLoc => {
                self.is_write.contains(a)
                    && self.is_write.contains(b)
                    && self.h.op(OpId(a as u32)).loc == self.h.op(OpId(b as u32)).loc
            }
        };
        if hit && !st.shared.has(a, b) {
            st.shared.add(a, b);
            st.smask[a * n + b] = mask;
            st.trail.push(Change::SEdge(a as u32, b as u32));
            for c2 in 0..st.ctx.len() {
                if c2 != c {
                    self.add_edge(st, c2, a, b, mask)?;
                }
            }
        }
        // Candidate kills need no watch lists: an edge touching a read
        // in its home context names the only slot it can constrain.
        let ra = self.read_slot[a];
        let rb = self.read_slot[b];
        if ra != u32::MAX && rb == u32::MAX {
            // read → write: reading `b` would need `b ≺ a`, a cycle.
            let slot = ra as usize;
            if self.home[slot] as usize == c && st.rf[slot] == UNASSIGNED {
                if let Some(idx) = self.cand_index(slot, b as u32) {
                    self.kill(st, slot, idx, mask)?;
                }
            }
        } else if rb != u32::MAX && ra == u32::MAX {
            // write → read, same location: the read cannot return the
            // initial value any more.
            let slot = rb as usize;
            if self.home[slot] as usize == c
                && st.rf[slot] == UNASSIGNED
                && self.has_initial[slot]
                && self.h.op(OpId(a as u32)).loc == self.h.op(OpId(b as u32)).loc
            {
                self.kill(st, slot, 0, mask)?;
            }
        }
        if !st.twatch.is_empty() {
            let key = ekey(c, a, b);
            if st.twatch.contains_key(&key) {
                let mut buf = std::mem::take(&mut self.wake_buf);
                buf.clear();
                buf.extend_from_slice(&st.twatch[&key]);
                let mut res = Ok(());
                for &(slot, wp) in &buf {
                    if let Err(e) = self.wake_triple(st, slot as usize, wp as usize) {
                        res = Err(e);
                        break;
                    }
                }
                self.wake_buf = buf;
                return res;
            }
        }
        Ok(())
    }

    /// Index of write `w` in `cands[slot]`, if it is a candidate.
    fn cand_index(&self, slot: usize, w: u32) -> Option<usize> {
        let start = self.has_initial[slot] as usize;
        self.cands[slot][start..]
            .binary_search(&w)
            .ok()
            .map(|i| start + i)
    }

    /// Kill candidate `idx` of `slot` for reason `mask`; a slot left
    /// with one candidate becomes a unit, with none a conflict.
    fn kill(&mut self, st: &mut State, slot: usize, idx: usize, mask: u64) -> Result<(), Fail> {
        let off = self.slot_off[slot];
        if st.dead[off + idx] {
            return Ok(());
        }
        self.wakeups += 1;
        st.dead[off + idx] = true;
        st.killer[off + idx] = mask;
        st.alive[slot] -= 1;
        st.trail.push(Change::Dead(slot as u32, idx as u32));
        match st.alive[slot] {
            0 => {
                let mut m = 0u64;
                for i in 0..self.cands[slot].len() {
                    m |= st.killer[off + i];
                }
                Err(Fail::Conflict(m))
            }
            1 => {
                st.units.push(slot as u32);
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Re-examine a watched recency triple after one of its four edges
    /// appeared: satisfied triples resolve, half-blocked triples force
    /// the surviving disjunct, fully-blocked triples conflict.
    fn wake_triple(&mut self, st: &mut State, slot: usize, wp: usize) -> Result<(), Fail> {
        self.wakeups += 1;
        if st.resolved[slot].contains(wp) {
            return Ok(());
        }
        let src = st.rf[slot];
        debug_assert!(src != UNASSIGNED && src != FROM_INITIAL);
        let w = src as usize;
        let r = self.reads[slot] as usize;
        let c = self.home[slot] as usize;
        let n = self.n;
        let rel = &st.ctx[c].rel;
        if rel.has(wp, w) || rel.has(r, wp) {
            st.resolved[slot].insert(wp);
            st.trail.push(Change::Resolved(slot as u32, wp as u32));
            return Ok(());
        }
        let am = st.assign_mask[slot];
        let blocked_before = rel.has(w, wp);
        let blocked_after = rel.has(wp, r);
        match (blocked_before, blocked_after) {
            (true, true) => Err(Fail::Conflict(
                am | st.emask[c][w * n + wp] | st.emask[c][wp * n + r],
            )),
            (true, false) => {
                let m = am | st.emask[c][w * n + wp];
                st.resolved[slot].insert(wp);
                st.trail.push(Change::Resolved(slot as u32, wp as u32));
                self.add_edge(st, c, r, wp, m)
            }
            (false, true) => {
                let m = am | st.emask[c][wp * n + r];
                st.resolved[slot].insert(wp);
                st.trail.push(Change::Resolved(slot as u32, wp as u32));
                self.add_edge(st, c, wp, w, m)
            }
            (false, false) => Ok(()),
        }
    }

    /// Insert `a → b` into context `c` with reason `mask` and restore
    /// transitive closure incrementally, word-parallel: the derived edge
    /// `x → y` exists for `x ∈ pred(a) ∪ {a}`, `y ∈ succ(b) ∪ {b}`, and
    /// a source already reaching `b` is skipped whole (closure says it
    /// has every target). Every new edge is charged, masked with the
    /// composition of its constituents, trailed, and queued. Fails on a
    /// cycle or on budget exhaustion.
    fn add_edge(
        &mut self,
        st: &mut State,
        c: usize,
        a: usize,
        b: usize,
        mask: u64,
    ) -> Result<(), Fail> {
        let n = self.n;
        if a == b || st.ctx[c].rel.has(b, a) {
            let back = if a == b { 0 } else { st.emask[c][b * n + a] };
            return Err(Fail::Conflict(mask | back));
        }
        if st.ctx[c].rel.has(a, b) {
            return Ok(());
        }
        debug_assert!(self.views[c].contains(a) && self.views[c].contains(b));
        let words = n.div_ceil(64);
        self.tbuf.clear();
        self.tbuf
            .extend_from_slice(st.ctx[c].rel.successors(b).words());
        self.tbuf[b / 64] |= 1u64 << (b % 64);
        self.pbuf.clear();
        self.pbuf.extend_from_slice(st.ctx[c].pred[a].words());
        self.pbuf[a / 64] |= 1u64 << (a % 64);
        for wi in 0..words {
            let mut pw = self.pbuf[wi];
            while pw != 0 {
                let x = wi * 64 + pw.trailing_zeros() as usize;
                pw &= pw - 1;
                if st.ctx[c].rel.has(x, b) {
                    continue;
                }
                let mx = if x == a { 0 } else { st.emask[c][x * n + a] };
                for wj in 0..words {
                    let mut new = self.tbuf[wj] & !st.ctx[c].rel.successors(x).words()[wj];
                    while new != 0 {
                        let y = wj * 64 + new.trailing_zeros() as usize;
                        new &= new - 1;
                        let my = if y == b { 0 } else { st.emask[c][b * n + y] };
                        st.ctx[c].rel.add(x, y);
                        st.ctx[c].pred[y].insert(x);
                        st.emask[c][x * n + y] = mask | mx | my;
                        st.trail.push(Change::Edge(c as u32, x as u32, y as u32));
                        st.queue.push((c as u32, x as u32, y as u32));
                        self.steps += 1;
                        if !self.budget.try_spend() {
                            return Err(Fail::Budget);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Insert a writes-before edge into the global causal closure and
    /// push every newly-derived edge into the contexts containing both
    /// endpoints. A causal cycle refutes the current assignment.
    fn global_insert(&mut self, st: &mut State, a: usize, b: usize, mask: u64) -> Result<(), Fail> {
        let n = self.n;
        {
            let g = st.global.as_ref().expect("causal models only");
            if a == b || g.rel.has(b, a) {
                let back = if a == b { 0 } else { st.gmask[b * n + a] };
                return Err(Fail::Conflict(mask | back));
            }
            if g.rel.has(a, b) {
                return Ok(());
            }
        }
        let words = n.div_ceil(64);
        let mut fresh: Vec<(u32, u32)> = Vec::new();
        {
            let g = st.global.as_mut().expect("causal models only");
            self.tbuf.clear();
            self.tbuf.extend_from_slice(g.rel.successors(b).words());
            self.tbuf[b / 64] |= 1u64 << (b % 64);
            self.pbuf.clear();
            self.pbuf.extend_from_slice(g.pred[a].words());
            self.pbuf[a / 64] |= 1u64 << (a % 64);
            for wi in 0..words {
                let mut pw = self.pbuf[wi];
                while pw != 0 {
                    let x = wi * 64 + pw.trailing_zeros() as usize;
                    pw &= pw - 1;
                    if g.rel.has(x, b) {
                        continue;
                    }
                    let mx = if x == a { 0 } else { st.gmask[x * n + a] };
                    for wj in 0..words {
                        let mut new = self.tbuf[wj] & !g.rel.successors(x).words()[wj];
                        while new != 0 {
                            let y = wj * 64 + new.trailing_zeros() as usize;
                            new &= new - 1;
                            let my = if y == b { 0 } else { st.gmask[b * n + y] };
                            g.rel.add(x, y);
                            g.pred[y].insert(x);
                            st.gmask[x * n + y] = mask | mx | my;
                            st.trail.push(Change::GEdge(x as u32, y as u32));
                            fresh.push((x as u32, y as u32));
                            self.steps += 1;
                            if !self.budget.try_spend() {
                                return Err(Fail::Budget);
                            }
                        }
                    }
                }
            }
        }
        for (x, y) in fresh {
            let (x, y) = (x as usize, y as usize);
            let m = st.gmask[x * n + y];
            for c in 0..st.ctx.len() {
                if self.views[c].contains(x) && self.views[c].contains(y) {
                    self.add_edge(st, c, x, y, m)?;
                }
            }
        }
        Ok(())
    }

    /// Rewind the trail to `mark` and discard pending work (anything
    /// queued above a decision fixpoint is re-derivable only from the
    /// undone edges, so dropping it is exact).
    fn undo_to(&mut self, st: &mut State, mark: usize) {
        while st.trail.len() > mark {
            match st.trail.pop().unwrap() {
                Change::Edge(c, a, b) => {
                    let (c, a, b) = (c as usize, a as usize, b as usize);
                    st.ctx[c].rel.remove(a, b);
                    st.ctx[c].pred[b].remove(a);
                }
                Change::SEdge(a, b) => {
                    st.shared.remove(a as usize, b as usize);
                }
                Change::GEdge(a, b) => {
                    let g = st.global.as_mut().expect("causal models only");
                    g.rel.remove(a as usize, b as usize);
                    g.pred[b as usize].remove(a as usize);
                }
                Change::Rf(slot) => {
                    st.rf[slot as usize] = UNASSIGNED;
                }
                Change::Resolved(slot, wp) => {
                    st.resolved[slot as usize].remove(wp as usize);
                }
                Change::Dead(slot, idx) => {
                    let slot = slot as usize;
                    st.dead[self.slot_off[slot] + idx as usize] = false;
                    st.alive[slot] += 1;
                }
                Change::Watch(key) => {
                    st.twatch.get_mut(&key).expect("trailed watch key").pop();
                }
            }
        }
        st.queue.clear();
        st.units.clear();
    }

    /// Select the next choice point: the unassigned read with the
    /// highest conflict activity (ties to the fewest surviving
    /// candidates), else the first open recency triple, else an
    /// unordered write pair. `None` means the state is a solution.
    fn pick(&self, st: &State) -> Option<Choice> {
        let mut best: Option<(f64, u32, usize)> = None;
        for slot in 0..self.reads.len() {
            if st.rf[slot] != UNASSIGNED {
                continue;
            }
            let a = self.act[slot];
            let alive = st.alive[slot];
            let better = match &best {
                None => true,
                Some((ba, balive, _)) => a > *ba || (a == *ba && alive < *balive),
            };
            if better {
                best = Some((a, alive, slot));
            }
        }
        if let Some((_, _, slot)) = best {
            let off = self.slot_off[slot];
            let mut options: Vec<u32> = self.cands[slot]
                .iter()
                .enumerate()
                .filter(|(i, _)| !st.dead[off + i])
                .map(|(_, &cand)| cand)
                .collect();
            // Recency-first value ordering: on real traces a read almost
            // always returns the *nearest preceding* same-value write, so
            // try candidates before the read in descending op order, then
            // later writes, then the initial value. Pure branching order —
            // completeness and verdicts are unaffected, but on aliased
            // SC-simulated traces the first descent is near conflict-free
            // instead of refuting every stale candidate bottom-up.
            let r_id = self.reads[slot];
            options.sort_by_key(|&c| {
                if c == FROM_INITIAL {
                    (2u8, 0i64)
                } else if c < r_id {
                    (0, -i64::from(c))
                } else {
                    (1, i64::from(c))
                }
            });
            debug_assert!(options.len() >= 2, "propagate left a unit read");
            return Some(Choice::Rf { slot, options });
        }
        for slot in 0..self.reads.len() {
            let src = st.rf[slot];
            if src == FROM_INITIAL {
                continue;
            }
            let r = self.reads[slot] as usize;
            let c = self.home[slot] as usize;
            let loc = self.h.op(OpId(r as u32)).loc.index();
            for &wp in &self.writes_by_loc[loc] {
                let wp = wp as usize;
                if wp == src as usize || st.resolved[slot].contains(wp) {
                    continue;
                }
                if st.ctx[c].rel.has(wp, src as usize) || st.ctx[c].rel.has(r, wp) {
                    continue;
                }
                return Some(Choice::Triple {
                    ctx: c as u32,
                    read: r as u32,
                    wprime: wp as u32,
                });
            }
        }
        if self.share == Share::SameLoc {
            // Coherence must be a *total* per-location order; orient the
            // leftover same-location write pairs as first-class
            // decisions so conflicts with context-private edges
            // backtrack instead of failing at extraction.
            for ws in &self.writes_by_loc {
                for (i, &a) in ws.iter().enumerate() {
                    for &b in &ws[i + 1..] {
                        if !st.shared.has(a as usize, b as usize)
                            && !st.shared.has(b as usize, a as usize)
                        {
                            return Some(Choice::WritePair { a, b });
                        }
                    }
                }
            }
        }
        None
    }

    /// Turn a solved state into a witness: linearize the shared order
    /// into the store / coherence certificate, then topologically sort
    /// each context. Every recency triple is resolved, so any linear
    /// extension of a context is a legal view.
    fn extract(&mut self, st: &mut State) -> Verdict {
        let internal = |what: &str| {
            Verdict::Unsupported(format!(
                "saturate: internal error — {what} (please report; \
                 --engine exhaustive is unaffected)"
            ))
        };
        let mut store_order = None;
        let mut coherence = None;
        match self.share {
            Share::None => {}
            Share::AllWrites => {
                let Some(topo) = st.shared.topo_sort() else {
                    return internal("shared store order is cyclic");
                };
                let seq: Vec<usize> = topo
                    .into_iter()
                    .filter(|&i| self.is_write.contains(i))
                    .collect();
                for dir in &mut st.ctx {
                    dir.rel.add_total_order(&seq);
                }
                store_order = Some(seq.into_iter().map(|i| OpId(i as u32)).collect());
            }
            Share::SameLoc => {
                let Some(topo) = st.shared.topo_sort() else {
                    return internal("shared coherence order is cyclic");
                };
                let mut per_loc: Vec<Vec<usize>> = vec![Vec::new(); self.h.num_locs()];
                for i in topo {
                    if self.is_write.contains(i) {
                        per_loc[self.h.op(OpId(i as u32)).loc.index()].push(i);
                    }
                }
                for dir in &mut st.ctx {
                    for seq in &per_loc {
                        dir.rel.add_total_order(seq);
                    }
                }
                coherence = Some(
                    per_loc
                        .into_iter()
                        .map(|seq| seq.into_iter().map(|i| OpId(i as u32)).collect())
                        .collect(),
                );
            }
        }
        let mut views = Vec::with_capacity(self.h.num_procs());
        for p in 0..self.h.num_procs() {
            let c = if self.spec.identical_views { 0 } else { p };
            let Some(topo) = st.ctx[c].rel.topo_sort() else {
                return internal("context became cyclic during linearization");
            };
            views.push(
                topo.into_iter()
                    .filter(|&i| self.views[c].contains(i))
                    .map(|i| OpId(i as u32))
                    .collect::<Vec<OpId>>(),
            );
        }
        let reads_from = self.spec.needs_reads_from().then(|| {
            let mut v: Vec<Option<OpId>> = vec![None; self.n];
            for (slot, &r) in self.reads.iter().enumerate() {
                let src = st.rf[slot];
                debug_assert!(src != UNASSIGNED);
                if src != FROM_INITIAL {
                    v[r as usize] = Some(OpId(src));
                }
            }
            v
        });
        let witness = Witness {
            views,
            store_order,
            coherence,
            labeled_order: None,
            reads_from,
        };
        // Belt and braces: a saturation bug must never surface as a bogus
        // `Allowed`. Verification is linear-ish in the witness size —
        // negligible next to the search that produced it.
        if let Err(e) = crate::verify::verify_witness(self.h, self.spec, &witness) {
            return internal(&format!("witness failed self-verification: {e}"));
        }
        Verdict::Allowed(Box::new(witness))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{check, CheckConfig, EngineKind};
    use crate::models;
    use smc_history::litmus::parse_history;

    fn saturate_cfg() -> CheckConfig {
        CheckConfig {
            engine: EngineKind::Saturate,
            ..CheckConfig::default()
        }
    }

    fn run(h: &smc_history::History, spec: &ModelSpec) -> (Verdict, CheckStats) {
        crate::checker::check_with_stats(h, spec, &saturate_cfg())
    }

    #[test]
    fn supports_matches_model_zoo() {
        let names: Vec<String> = models::all_models()
            .iter()
            .filter(|m| supports(m))
            .map(|m| m.name.clone())
            .collect();
        assert_eq!(
            names,
            [
                "SC",
                "TSO",
                "PCG",
                "CausalCoherent",
                "Causal",
                "PRAM",
                "Coherent"
            ]
        );
        let sat: Vec<String> = models::saturating_models()
            .iter()
            .map(|m| m.name.clone())
            .collect();
        assert_eq!(names, sat);
    }

    #[test]
    fn figure1_verdicts_match_exhaustive() {
        let h = parse_history("p: w(x)1 r(y)0\nq: w(y)1 r(x)0").unwrap();
        let (sc, stats) = run(&h, &models::sc());
        assert!(sc.is_disallowed());
        assert_eq!(stats.engine_used, crate::checker::Engine::Saturate);
        let (tso, _) = run(&h, &models::tso());
        assert!(tso.is_allowed());
    }

    #[test]
    fn witnesses_verify_across_supported_models() {
        let h = parse_history("p: w(x)1 w(y)1\nq: r(y)1 r(x)0").unwrap();
        for m in models::all_models().iter().filter(|m| supports(m)) {
            let (v, _) = run(&h, m);
            let e = check(&h, m);
            assert_eq!(v.decided(), e.decided(), "model {}", m.name);
        }
    }

    #[test]
    fn unsupported_model_is_loud() {
        let h = parse_history("p: w(x)1").unwrap();
        let (v, _) = run(&h, &models::pc());
        assert!(matches!(v, Verdict::Unsupported(_)));
    }

    #[test]
    fn tiny_budget_reports_saturation_stage() {
        let h = parse_history("p: w(x)1 w(x)2 r(x)1\nq: w(x)3 r(x)2 r(x)3").unwrap();
        let cfg = CheckConfig {
            engine: EngineKind::Saturate,
            node_budget: 1,
            ..CheckConfig::default()
        };
        let (v, stats) = crate::checker::check_with_stats(&h, &models::sc(), &cfg);
        assert_eq!(v, Verdict::Exhausted);
        assert_eq!(stats.exhausted_stage, Some(Stage::Saturation));
    }

    #[test]
    fn luby_sequence_is_standard() {
        let seq: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(seq, [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn learning_and_restart_knobs_do_not_change_verdicts() {
        let h =
            parse_history("p: w(x)1 w(x)1 r(x)1 w(y)1\nq: w(x)1 r(x)1 r(y)1 w(y)1\nr: r(y)1 r(x)1")
                .unwrap();
        for spec in models::saturating_models() {
            let base = crate::checker::check_with_stats(&h, &spec, &saturate_cfg()).0;
            for (learning, unit) in [(false, 0), (true, 0), (true, 1)] {
                let cfg = CheckConfig {
                    engine: EngineKind::Saturate,
                    saturate_learning: learning,
                    saturate_restart_unit: unit,
                    ..CheckConfig::default()
                };
                let (v, _) = crate::checker::check_with_stats(&h, &spec, &cfg);
                assert_eq!(
                    v.decided(),
                    base.decided(),
                    "{}: learning={learning} restart_unit={unit}",
                    spec.name
                );
            }
        }
    }
}

//! The order-constraint saturation engine: a second checking backend
//! that never enumerates schedules.
//!
//! The exhaustive checker ([`crate::checker`]) realizes the paper's
//! existential quantifiers literally — it enumerates reads-from
//! assignments, store orders, coherence orders and view interleavings.
//! That is exact but exponential, which caps it at litmus scale. This
//! module decides the same question by *constraint saturation*, in the
//! spirit of Qadeer's order-constraint encoding for SC model checking
//! (arXiv:cs/0108016) and the per-model polynomial procedures of Chini &
//! Saivasan (arXiv:2007.11398):
//!
//! * Each processor view becomes a **context**: a transitively-closed
//!   [`Relation`] over the history's operations, confined to the view's
//!   operation set and seeded with the model's derived base order
//!   (`po`, `ppo`, or per-location `po`).
//! * Mutual-consistency parameters become **shared edges**: TSO's global
//!   write order broadcasts every write/write edge to every context;
//!   coherence broadcasts same-location write/write edges; causal models
//!   maintain one global `(po ∪ wb)+` closure whose edges flow into every
//!   context that contains both endpoints.
//! * Read legality becomes **recency triples**: if read `r` returns write
//!   `w`, every other same-location write `w'` in the view must satisfy
//!   `w' ≺ w ∨ r ≺ w'`. Triples whose disjunct is forced by the current
//!   closure propagate immediately; genuinely open triples and ambiguous
//!   reads-from choices are the only residual choice points, handled by a
//!   small backtracking solver with replay-based state restoration and a
//!   packed failed-state memo reusing the [`crate::kernel`] machinery.
//!
//! The engine handles every model whose mutual-consistency requirements
//! are expressible as edge broadcasting ([`supports`]); the labeled /
//! bracketing / semi-causal models stay with the exhaustive checker. On
//! every history where both engines decide, the verdicts agree and the
//! saturation witness re-checks under [`crate::verify::verify_witness`]
//! (property-tested in `tests/engine_equiv.rs`); unlike the exhaustive
//! search the work here is polynomial in the history size per decision,
//! which moves the practical ceiling from ~12-op litmus tests into the
//! 100–1000-op regime.

use crate::budget::Budget;
use crate::checker::{view_op_sets, CheckStats, Stage, Verdict, Witness};
use crate::kernel::{hash_words, set_u32, StateSpace};
use crate::orders;
use crate::spec::{GlobalOrder, ModelSpec, OwnerOrder};
use smc_history::{History, OpId};
use smc_relation::{BitSet, Relation};

/// Reads-from value: not yet decided.
const UNASSIGNED: u32 = u32::MAX;
/// Reads-from value: the read returns the location's initial value.
const FROM_INITIAL: u32 = u32::MAX - 1;

/// Snapshot the pre-decision state for the failed-state memo only at
/// depths below this (shallow subtrees are the ones worth deduplicating,
/// and packing is linear in the state size).
const SNAPSHOT_DEPTH: usize = 6;
/// Skip failed-state snapshots entirely when a packed row would exceed
/// this many `u64` words (large histories would pay more for packing
/// than the dedup saves).
const SNAPSHOT_MAX_STRIDE: usize = 4096;
/// Upper bound on failed-state rows (bounds arena memory at
/// `SNAPSHOT_MAX_STRIDE × 8` bytes each).
const SNAPSHOT_MAX_ROWS: usize = 4096;

/// Whether the saturation engine can decide `spec`.
///
/// Supported: every model whose mutual-consistency requirements reduce to
/// edge broadcasting between per-processor constraint contexts — SC, TSO,
/// PRAM, causal, coherent, causal+coherent and Goodman's PC. Unsupported:
/// labeled submodels (RC, WO, hybrid), owner-only orders, and the
/// semi-causal order (DASH PC), whose derived order depends on the
/// enumerated coherence order in a way that is not a per-edge rule.
pub fn supports(spec: &ModelSpec) -> bool {
    spec.labeled.is_none()
        && !spec.rc_bracketing
        && !spec.fence_bracketing
        && matches!(spec.owner_order, OwnerOrder::None)
        && !matches!(spec.global_order, GlobalOrder::SemiCausalOrder)
        && spec.validate().is_ok()
}

/// How write/write edges discovered in one context bind the others.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Share {
    /// No cross-view write agreement (PRAM, causal).
    None,
    /// All views order all writes identically (TSO).
    AllWrites,
    /// All views order same-location writes identically (coherence).
    SameLoc,
}

enum Fail {
    /// The current partial assignment is contradictory.
    Conflict,
    /// The budget ran out mid-propagation.
    Budget,
}

/// A residual choice point.
enum Choice {
    /// An ambiguous read: which write (or the initial value) it returns.
    /// `options` is the candidate list as filtered at decision time.
    Rf { slot: usize, options: Vec<u32> },
    /// An open recency triple for read `read` (whose source is already
    /// assigned) against same-location write `wprime`: option 0 orders
    /// `wprime` before the source, option 1 orders `read` before
    /// `wprime`.
    Triple { ctx: u32, read: u32, wprime: u32 },
    /// A same-location write pair still unordered by the shared
    /// coherence order (coherence models only): option 0 orders
    /// `a` before `b`, option 1 the reverse. These must be decided
    /// *inside* the search because an orientation broadcast to every
    /// context can conflict with a context's private cross-location
    /// edges only jointly with other orientations — extraction-time
    /// totalization would be incomplete.
    WritePair { a: u32, b: u32 },
}

impl Choice {
    fn arity(&self) -> usize {
        match self {
            Choice::Rf { options, .. } => options.len(),
            Choice::Triple { .. } | Choice::WritePair { .. } => 2,
        }
    }
}

struct Frame {
    choice: Choice,
    /// Index of the currently-applied option.
    next: usize,
    /// Packed pre-decision state, kept at shallow depths for the
    /// failed-state memo.
    packed: Option<Vec<u64>>,
}

/// The mutable solver state: rebuilt by replay on backtracking, so the
/// solver never clones it per decision.
struct State {
    /// Per-context transitively-closed constraint relation, confined to
    /// the context's view operations.
    ctx: Vec<Relation>,
    /// The global `(po ∪ wb)+` closure for causal models.
    global: Option<Relation>,
    /// Accumulated shared write/write edges (the store order or the
    /// per-location coherence orders, as a partial order).
    shared: Relation,
    /// Per read slot: `UNASSIGNED`, `FROM_INITIAL`, or a write op index.
    rf: Vec<u32>,
    /// Per read slot: same-location writes whose recency triple is
    /// already satisfied by the closure (monotone — edges are only
    /// added, so a resolved triple stays resolved).
    resolved: Vec<BitSet>,
    /// Newly-inserted context edges pending share/broadcast processing.
    queue: Vec<(u32, u32, u32)>,
}

/// The immutable problem description plus solver counters.
struct Solver<'a> {
    h: &'a History,
    spec: &'a ModelSpec,
    n: usize,
    /// View operation set per context (one per processor; a single full
    /// context for identical-view models).
    views: Vec<BitSet>,
    /// The reads-from-independent base order, transitively closed, over
    /// all operations.
    base: Relation,
    share: Share,
    causal: bool,
    /// Op indices of all reads, ascending.
    reads: Vec<u32>,
    /// Op index → read slot (`u32::MAX` for writes).
    read_slot: Vec<u32>,
    /// Context owning each read slot.
    home: Vec<u32>,
    /// Per read slot: reads-from candidates (`FROM_INITIAL` and/or write
    /// op indices), mirroring [`crate::rf`]'s candidate rule.
    cands: Vec<Vec<u32>>,
    /// Location index → write op indices, ascending.
    writes_by_loc: Vec<Vec<u32>>,
    is_write: BitSet,
    budget: &'a Budget,
    steps: u64,
    branches: u64,
    /// True while rebuilding state in [`Solver::replay`]: replayed edge
    /// insertions were already charged when first derived, so they do
    /// not draw from the budget again (replay work stays bounded — at
    /// most one replay per charged branch, each at most the state size).
    replaying: bool,
    /// Packed unsatisfiable pre-decision states ([`StateSpace`] reuse);
    /// `None` when the packed row would be too wide to pay off.
    failed: Option<StateSpace>,
    scratch: Vec<u64>,
}

/// Decide `h` against `spec` by constraint saturation.
///
/// Returns [`Verdict::Unsupported`] when [`supports`] is false. Respects
/// `budget` (each inserted closure edge and each decision charges one
/// node); exhaustion reports [`Stage::Saturation`].
pub(crate) fn check_saturate(
    h: &History,
    spec: &ModelSpec,
    budget: &Budget,
    stats: &mut CheckStats,
) -> Verdict {
    if let Err(e) = spec.validate() {
        return Verdict::Unsupported(e);
    }
    if !supports(spec) {
        return Verdict::Unsupported(format!(
            "{}: the saturation engine does not handle labeled, owner-ordered or \
             semi-causal models; use the exhaustive engine",
            spec.name
        ));
    }
    let mut solver = Solver::new(h, spec, budget);
    let verdict = solver.run(stats);
    stats.saturation_steps = solver.steps;
    stats.saturation_branches = solver.branches;
    verdict
}

impl<'a> Solver<'a> {
    fn new(h: &'a History, spec: &'a ModelSpec, budget: &'a Budget) -> Self {
        let n = h.num_ops();
        let views = if spec.identical_views {
            vec![BitSet::full(n)]
        } else {
            view_op_sets(h, spec.delta)
        };
        let causal = matches!(spec.global_order, GlobalOrder::CausalOrder);
        let base = match spec.global_order {
            GlobalOrder::ProgramOrder | GlobalOrder::CausalOrder => orders::program_order(h),
            GlobalOrder::PartialProgramOrder => orders::partial_program_order(h),
            GlobalOrder::PerLocationProgramOrder => orders::per_location_program_order(h),
            GlobalOrder::None => Relation::new(n),
            GlobalOrder::SemiCausalOrder => unreachable!("rejected by supports()"),
        };
        let share = if spec.global_write_order {
            Share::AllWrites
        } else if spec.coherence {
            Share::SameLoc
        } else {
            Share::None
        };
        let mut reads = Vec::new();
        let mut read_slot = vec![u32::MAX; n];
        let mut writes_by_loc = vec![Vec::new(); h.num_locs()];
        let mut is_write = BitSet::new(n);
        for op in h.ops() {
            let i = op.id.index();
            if op.is_write() {
                is_write.insert(i);
                writes_by_loc[op.loc.index()].push(i as u32);
            } else {
                read_slot[i] = reads.len() as u32;
                reads.push(i as u32);
            }
        }
        let home = reads
            .iter()
            .map(|&r| {
                if spec.identical_views {
                    0
                } else {
                    h.op(OpId(r)).proc.index() as u32
                }
            })
            .collect();
        // Reads-from candidates, mirroring crate::rf: the initial value
        // if the read returns it, plus every same-location write of the
        // same value. All writes are present in every view, so the
        // candidate set needs no per-view filtering.
        let cands = reads
            .iter()
            .map(|&r| {
                let read = h.op(OpId(r));
                let mut out = Vec::new();
                if read.value == smc_history::Value::INITIAL {
                    out.push(FROM_INITIAL);
                }
                for &w in &writes_by_loc[read.loc.index()] {
                    if h.op(OpId(w)).value == read.value {
                        out.push(w);
                    }
                }
                out
            })
            .collect();
        let ctxs = views.len();
        let stride = ctxs * n * n.div_ceil(64) + reads.len().div_ceil(2);
        let failed = (stride <= SNAPSHOT_MAX_STRIDE && stride > 0).then(|| StateSpace::new(stride));
        Solver {
            h,
            spec,
            n,
            views,
            base,
            share,
            causal,
            reads,
            read_slot,
            home,
            cands,
            writes_by_loc,
            is_write,
            budget,
            steps: 0,
            branches: 0,
            replaying: false,
            failed,
            scratch: Vec::new(),
        }
    }

    fn init_state(&mut self) -> State {
        let n = self.n;
        let mut ctx = Vec::with_capacity(self.views.len());
        let mut queue = Vec::new();
        for (c, view) in self.views.iter().enumerate() {
            let mut rel = Relation::new(n);
            for a in view.iter() {
                let mut row = self.base.successors(a).clone();
                row.intersect_with(view);
                for b in row.iter() {
                    rel.add(a, b);
                    // Seed the share queue so the base's write/write
                    // edges reach `shared` (the final store/coherence
                    // orders must extend them).
                    if self.share != Share::None {
                        queue.push((c as u32, a as u32, b as u32));
                    }
                }
            }
            ctx.push(rel);
        }
        State {
            ctx,
            global: self.causal.then(|| self.base.clone()),
            shared: Relation::new(n),
            rf: vec![UNASSIGNED; self.reads.len()],
            resolved: vec![BitSet::new(n); self.reads.len()],
            queue,
        }
    }

    fn run(&mut self, stats: &mut CheckStats) -> Verdict {
        let mut st = self.init_state();
        match self.propagate(&mut st) {
            Ok(()) => {}
            Err(Fail::Conflict) => return Verdict::Disallowed,
            Err(Fail::Budget) => return self.exhausted(stats),
        }
        let mut frames: Vec<Frame> = Vec::new();
        loop {
            let Some(choice) = self.pick(&st) else {
                return self.extract(&mut st);
            };
            let packed = self.snapshot(frames.len(), &st);
            if let Some(row) = &packed {
                if let Some(space) = &self.failed {
                    if space.find(hash_words(0, row), row).is_some() {
                        // This exact state already exhausted every
                        // option on an earlier branch.
                        match self.backtrack(&mut frames, &mut st) {
                            Ok(()) => continue,
                            Err(Fail::Conflict) => return Verdict::Disallowed,
                            Err(Fail::Budget) => return self.exhausted(stats),
                        }
                    }
                }
            }
            self.branches += 1;
            if !self.budget.try_spend() {
                return self.exhausted(stats);
            }
            frames.push(Frame {
                choice,
                next: 0,
                packed,
            });
            let frame = frames.last().unwrap();
            let mut applied = self.apply(&mut st, frame);
            if applied.is_ok() {
                applied = self.propagate(&mut st);
            }
            match applied {
                Ok(()) => {}
                Err(Fail::Budget) => return self.exhausted(stats),
                Err(Fail::Conflict) => match self.backtrack(&mut frames, &mut st) {
                    Ok(()) => {}
                    Err(Fail::Conflict) => return Verdict::Disallowed,
                    Err(Fail::Budget) => return self.exhausted(stats),
                },
            }
        }
    }

    fn exhausted(&self, stats: &mut CheckStats) -> Verdict {
        stats.exhausted_stage = Some(Stage::Saturation);
        Verdict::Exhausted
    }

    /// Pack the current state for the failed-state memo, when enabled
    /// and shallow enough. The row is the per-context closure rows plus
    /// the reads-from vector; `resolved` is a derived cache and `shared`
    /// / `global` are determined by the rest, so they are omitted.
    fn snapshot(&mut self, depth: usize, st: &State) -> Option<Vec<u64>> {
        let space = self.failed.as_ref()?;
        if depth >= SNAPSHOT_DEPTH || space.len() >= SNAPSHOT_MAX_ROWS {
            return None;
        }
        let stride = space.stride();
        self.scratch.clear();
        for rel in &st.ctx {
            for a in 0..self.n {
                self.scratch.extend_from_slice(rel.successors(a).words());
            }
        }
        let rf_base = self.scratch.len();
        self.scratch.resize(stride, 0);
        for (i, &v) in st.rf.iter().enumerate() {
            set_u32(&mut self.scratch[rf_base..], i, v);
        }
        Some(std::mem::take(&mut self.scratch))
    }

    /// Advance the deepest frame to its next option and rebuild the
    /// state by replaying the decision prefix. Frames that run out of
    /// options are popped (recording their pre-decision state as
    /// unsatisfiable); an empty stack means the whole search space is
    /// refuted.
    fn backtrack(&mut self, frames: &mut Vec<Frame>, st: &mut State) -> Result<(), Fail> {
        loop {
            let Some(top) = frames.last_mut() else {
                return Err(Fail::Conflict);
            };
            top.next += 1;
            if top.next >= top.choice.arity() {
                let dead = frames.pop().unwrap();
                if let (Some(row), Some(space)) = (dead.packed, self.failed.as_mut()) {
                    let hash = hash_words(0, &row);
                    if space.len() < SNAPSHOT_MAX_ROWS && space.find(hash, &row).is_none() {
                        space.insert_new(hash, &row);
                    }
                }
                continue;
            }
            match self.replay(frames) {
                Ok(next) => {
                    *st = next;
                    return Ok(());
                }
                Err(Fail::Conflict) => continue,
                Err(Fail::Budget) => return Err(Fail::Budget),
            }
        }
    }

    /// Rebuild the solver state from scratch under the frames' current
    /// option indices. Propagation is a monotone closure operator, so
    /// replaying the same decisions reaches the same fixpoint the
    /// incremental path would have.
    fn replay(&mut self, frames: &[Frame]) -> Result<State, Fail> {
        self.replaying = true;
        let result = (|| {
            let mut st = self.init_state();
            self.propagate(&mut st)?;
            for f in frames {
                self.apply(&mut st, f)?;
                self.propagate(&mut st)?;
            }
            Ok(st)
        })();
        self.replaying = false;
        result
    }

    fn apply(&mut self, st: &mut State, frame: &Frame) -> Result<(), Fail> {
        match &frame.choice {
            Choice::Rf { slot, options } => self.assign(st, *slot, options[frame.next]),
            Choice::Triple { ctx, read, wprime } => {
                let slot = self.read_slot[*read as usize] as usize;
                let src = st.rf[slot];
                debug_assert!(src != UNASSIGNED && src != FROM_INITIAL);
                st.resolved[slot].insert(*wprime as usize);
                if frame.next == 0 {
                    self.add_edge(st, *ctx as usize, *wprime as usize, src as usize)
                } else {
                    self.add_edge(st, *ctx as usize, *read as usize, *wprime as usize)
                }
            }
            Choice::WritePair { a, b } => {
                let (x, y) = if frame.next == 0 { (*a, *b) } else { (*b, *a) };
                for c in 0..st.ctx.len() {
                    self.add_edge(st, c, x as usize, y as usize)?;
                }
                Ok(())
            }
        }
    }

    fn assign(&mut self, st: &mut State, slot: usize, val: u32) -> Result<(), Fail> {
        debug_assert_eq!(st.rf[slot], UNASSIGNED);
        st.rf[slot] = val;
        let r = self.reads[slot] as usize;
        let c = self.home[slot] as usize;
        if val == FROM_INITIAL {
            // The read precedes every same-location write in its view;
            // that resolves all its recency triples at once.
            let loc = self.h.op(OpId(r as u32)).loc.index();
            for i in 0..self.writes_by_loc[loc].len() {
                let w = self.writes_by_loc[loc][i] as usize;
                st.resolved[slot].insert(w);
                self.add_edge(st, c, r, w)?;
            }
        } else {
            let w = val as usize;
            st.resolved[slot].insert(w);
            self.add_edge(st, c, w, r)?;
            if self.causal {
                self.global_insert(st, w, r)?;
            }
        }
        Ok(())
    }

    /// Run unit propagation to a fixpoint: drain the share queue, force
    /// single-candidate reads, and orient every recency triple with only
    /// one open disjunct.
    fn propagate(&mut self, st: &mut State) -> Result<(), Fail> {
        loop {
            self.drain_queue(st)?;
            let mut changed = false;
            for slot in 0..self.reads.len() {
                match st.rf[slot] {
                    UNASSIGNED => {
                        let mut count = 0usize;
                        let mut only = UNASSIGNED;
                        for i in 0..self.cands[slot].len() {
                            let cand = self.cands[slot][i];
                            if self.viable(st, slot, cand) {
                                count += 1;
                                only = cand;
                            }
                        }
                        match count {
                            0 => return Err(Fail::Conflict),
                            1 => {
                                self.assign(st, slot, only)?;
                                changed = true;
                            }
                            _ => {}
                        }
                    }
                    FROM_INITIAL => {}
                    src => changed |= self.enforce_recency(st, slot, src)?,
                }
            }
            if !changed && st.queue.is_empty() {
                return Ok(());
            }
        }
    }

    /// Whether candidate `cand` is still consistent with the read's home
    /// context.
    fn viable(&self, st: &State, slot: usize, cand: u32) -> bool {
        let r = self.reads[slot] as usize;
        let c = self.home[slot] as usize;
        if cand == FROM_INITIAL {
            let loc = self.h.op(OpId(r as u32)).loc.index();
            self.writes_by_loc[loc]
                .iter()
                .all(|&w| !st.ctx[c].has(w as usize, r))
        } else {
            !st.ctx[c].has(r, cand as usize)
        }
    }

    /// Enforce the recency triples of an assigned read: for its source
    /// `w` and every other same-location write `w'`, require
    /// `w' ≺ w ∨ r ≺ w'`; orient the pair when only one disjunct is
    /// open, fail when neither is.
    fn enforce_recency(&mut self, st: &mut State, slot: usize, src: u32) -> Result<bool, Fail> {
        let r = self.reads[slot] as usize;
        let c = self.home[slot] as usize;
        let w = src as usize;
        let loc = self.h.op(OpId(r as u32)).loc.index();
        let mut changed = false;
        for i in 0..self.writes_by_loc[loc].len() {
            let wp = self.writes_by_loc[loc][i] as usize;
            if wp == w || st.resolved[slot].contains(wp) {
                continue;
            }
            if st.ctx[c].has(wp, w) || st.ctx[c].has(r, wp) {
                st.resolved[slot].insert(wp);
                continue;
            }
            let before_ok = !st.ctx[c].has(w, wp);
            let after_ok = !st.ctx[c].has(wp, r);
            match (before_ok, after_ok) {
                (false, false) => return Err(Fail::Conflict),
                (true, false) => {
                    st.resolved[slot].insert(wp);
                    self.add_edge(st, c, wp, w)?;
                    changed = true;
                }
                (false, true) => {
                    st.resolved[slot].insert(wp);
                    self.add_edge(st, c, r, wp)?;
                    changed = true;
                }
                (true, true) => {}
            }
        }
        Ok(changed)
    }

    /// Process pending context edges: write/write edges matching the
    /// share mode enter `shared` and broadcast into every sibling
    /// context.
    fn drain_queue(&mut self, st: &mut State) -> Result<(), Fail> {
        while let Some((c, a, b)) = st.queue.pop() {
            let (a, b) = (a as usize, b as usize);
            let hit = match self.share {
                Share::None => false,
                Share::AllWrites => self.is_write.contains(a) && self.is_write.contains(b),
                Share::SameLoc => {
                    self.is_write.contains(a)
                        && self.is_write.contains(b)
                        && self.h.op(OpId(a as u32)).loc == self.h.op(OpId(b as u32)).loc
                }
            };
            if hit && st.shared.add(a, b) {
                for c2 in 0..st.ctx.len() {
                    if c2 != c as usize {
                        self.add_edge(st, c2, a, b)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Insert `a → b` into context `c` and restore transitive closure
    /// incrementally; every newly-created edge is queued for share
    /// processing. Fails on a cycle or on budget exhaustion.
    fn add_edge(&mut self, st: &mut State, c: usize, a: usize, b: usize) -> Result<(), Fail> {
        let rel = &mut st.ctx[c];
        if a == b || rel.has(b, a) {
            return Err(Fail::Conflict);
        }
        if rel.has(a, b) {
            return Ok(());
        }
        debug_assert!(self.views[c].contains(a) && self.views[c].contains(b));
        let mut sources = rel.predecessors(a);
        sources.insert(a);
        let mut targets = rel.successors(b).clone();
        targets.insert(b);
        for x in sources.iter() {
            for y in targets.iter() {
                if st.ctx[c].add(x, y) {
                    self.steps += 1;
                    if !self.replaying && !self.budget.try_spend() {
                        return Err(Fail::Budget);
                    }
                    st.queue.push((c as u32, x as u32, y as u32));
                }
            }
        }
        Ok(())
    }

    /// Insert a writes-before edge into the global causal closure and
    /// push every newly-derived edge into the contexts containing both
    /// endpoints. A causal cycle refutes the current assignment.
    fn global_insert(&mut self, st: &mut State, a: usize, b: usize) -> Result<(), Fail> {
        let global = st.global.as_mut().expect("causal models only");
        if a == b || global.has(b, a) {
            return Err(Fail::Conflict);
        }
        if global.has(a, b) {
            return Ok(());
        }
        let mut sources = global.predecessors(a);
        sources.insert(a);
        let mut targets = global.successors(b).clone();
        targets.insert(b);
        let mut fresh = Vec::new();
        for x in sources.iter() {
            for y in targets.iter() {
                if global.add(x, y) {
                    self.steps += 1;
                    if !self.replaying && !self.budget.try_spend() {
                        return Err(Fail::Budget);
                    }
                    fresh.push((x, y));
                }
            }
        }
        for (x, y) in fresh {
            for c in 0..st.ctx.len() {
                if self.views[c].contains(x) && self.views[c].contains(y) {
                    self.add_edge(st, c, x, y)?;
                }
            }
        }
        Ok(())
    }

    /// Deterministically select the next choice point: the unassigned
    /// read with the fewest surviving candidates, else the first open
    /// recency triple. `None` means the state is a solution.
    fn pick(&self, st: &State) -> Option<Choice> {
        let mut best: Option<(usize, Vec<u32>)> = None;
        for slot in 0..self.reads.len() {
            if st.rf[slot] != UNASSIGNED {
                continue;
            }
            let options: Vec<u32> = self.cands[slot]
                .iter()
                .copied()
                .filter(|&cand| self.viable(st, slot, cand))
                .collect();
            debug_assert!(options.len() >= 2, "propagate left a unit read");
            let better = best.as_ref().is_none_or(|(_, b)| options.len() < b.len());
            if better {
                let decided = options.len() == 2;
                best = Some((slot, options));
                if decided {
                    break;
                }
            }
        }
        if let Some((slot, options)) = best {
            return Some(Choice::Rf { slot, options });
        }
        for slot in 0..self.reads.len() {
            let src = st.rf[slot];
            if src == FROM_INITIAL {
                continue;
            }
            let r = self.reads[slot] as usize;
            let c = self.home[slot] as usize;
            let loc = self.h.op(OpId(r as u32)).loc.index();
            for &wp in &self.writes_by_loc[loc] {
                let wp = wp as usize;
                if wp == src as usize || st.resolved[slot].contains(wp) {
                    continue;
                }
                if st.ctx[c].has(wp, src as usize) || st.ctx[c].has(r, wp) {
                    continue;
                }
                return Some(Choice::Triple {
                    ctx: c as u32,
                    read: r as u32,
                    wprime: wp as u32,
                });
            }
        }
        if self.share == Share::SameLoc {
            // Coherence must be a *total* per-location order; orient the
            // leftover same-location write pairs as first-class
            // decisions so conflicts with context-private edges
            // backtrack instead of failing at extraction.
            for ws in &self.writes_by_loc {
                for (i, &a) in ws.iter().enumerate() {
                    for &b in &ws[i + 1..] {
                        if !st.shared.has(a as usize, b as usize)
                            && !st.shared.has(b as usize, a as usize)
                        {
                            return Some(Choice::WritePair { a, b });
                        }
                    }
                }
            }
        }
        None
    }

    /// Turn a solved state into a witness: linearize the shared order
    /// into the store / coherence certificate, then topologically sort
    /// each context. Every recency triple is resolved, so any linear
    /// extension of a context is a legal view.
    fn extract(&mut self, st: &mut State) -> Verdict {
        let internal = |what: &str| {
            Verdict::Unsupported(format!(
                "saturate: internal error — {what} (please report; \
                 --engine exhaustive is unaffected)"
            ))
        };
        let mut store_order = None;
        let mut coherence = None;
        match self.share {
            Share::None => {}
            Share::AllWrites => {
                let Some(topo) = st.shared.topo_sort() else {
                    return internal("shared store order is cyclic");
                };
                let seq: Vec<usize> = topo
                    .into_iter()
                    .filter(|&i| self.is_write.contains(i))
                    .collect();
                for rel in &mut st.ctx {
                    rel.add_total_order(&seq);
                }
                store_order = Some(seq.into_iter().map(|i| OpId(i as u32)).collect());
            }
            Share::SameLoc => {
                let Some(topo) = st.shared.topo_sort() else {
                    return internal("shared coherence order is cyclic");
                };
                let mut per_loc: Vec<Vec<usize>> = vec![Vec::new(); self.h.num_locs()];
                for i in topo {
                    if self.is_write.contains(i) {
                        per_loc[self.h.op(OpId(i as u32)).loc.index()].push(i);
                    }
                }
                for rel in &mut st.ctx {
                    for seq in &per_loc {
                        rel.add_total_order(seq);
                    }
                }
                coherence = Some(
                    per_loc
                        .into_iter()
                        .map(|seq| seq.into_iter().map(|i| OpId(i as u32)).collect())
                        .collect(),
                );
            }
        }
        let mut views = Vec::with_capacity(self.h.num_procs());
        for p in 0..self.h.num_procs() {
            let c = if self.spec.identical_views { 0 } else { p };
            let Some(topo) = st.ctx[c].topo_sort() else {
                return internal("context became cyclic during linearization");
            };
            views.push(
                topo.into_iter()
                    .filter(|&i| self.views[c].contains(i))
                    .map(|i| OpId(i as u32))
                    .collect::<Vec<OpId>>(),
            );
        }
        let reads_from = self.spec.needs_reads_from().then(|| {
            let mut v: Vec<Option<OpId>> = vec![None; self.n];
            for (slot, &r) in self.reads.iter().enumerate() {
                let src = st.rf[slot];
                debug_assert!(src != UNASSIGNED);
                if src != FROM_INITIAL {
                    v[r as usize] = Some(OpId(src));
                }
            }
            v
        });
        let witness = Witness {
            views,
            store_order,
            coherence,
            labeled_order: None,
            reads_from,
        };
        // Belt and braces: a saturation bug must never surface as a bogus
        // `Allowed`. Verification is linear-ish in the witness size —
        // negligible next to the search that produced it.
        if let Err(e) = crate::verify::verify_witness(self.h, self.spec, &witness) {
            return internal(&format!("witness failed self-verification: {e}"));
        }
        Verdict::Allowed(Box::new(witness))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{check, CheckConfig, EngineKind};
    use crate::models;
    use smc_history::litmus::parse_history;

    fn saturate_cfg() -> CheckConfig {
        CheckConfig {
            engine: EngineKind::Saturate,
            ..CheckConfig::default()
        }
    }

    fn run(h: &smc_history::History, spec: &ModelSpec) -> (Verdict, CheckStats) {
        crate::checker::check_with_stats(h, spec, &saturate_cfg())
    }

    #[test]
    fn supports_matches_model_zoo() {
        let names: Vec<String> = models::all_models()
            .iter()
            .filter(|m| supports(m))
            .map(|m| m.name.clone())
            .collect();
        assert_eq!(
            names,
            [
                "SC",
                "TSO",
                "PCG",
                "CausalCoherent",
                "Causal",
                "PRAM",
                "Coherent"
            ]
        );
        let sat: Vec<String> = models::saturating_models()
            .iter()
            .map(|m| m.name.clone())
            .collect();
        assert_eq!(names, sat);
    }

    #[test]
    fn figure1_verdicts_match_exhaustive() {
        let h = parse_history("p: w(x)1 r(y)0\nq: w(y)1 r(x)0").unwrap();
        let (sc, stats) = run(&h, &models::sc());
        assert!(sc.is_disallowed());
        assert_eq!(stats.engine_used, crate::checker::Engine::Saturate);
        let (tso, _) = run(&h, &models::tso());
        assert!(tso.is_allowed());
    }

    #[test]
    fn witnesses_verify_across_supported_models() {
        let h = parse_history("p: w(x)1 w(y)1\nq: r(y)1 r(x)0").unwrap();
        for m in models::all_models().iter().filter(|m| supports(m)) {
            let (v, _) = run(&h, m);
            let e = check(&h, m);
            assert_eq!(v.decided(), e.decided(), "model {}", m.name);
        }
    }

    #[test]
    fn unsupported_model_is_loud() {
        let h = parse_history("p: w(x)1").unwrap();
        let (v, _) = run(&h, &models::pc());
        assert!(matches!(v, Verdict::Unsupported(_)));
    }

    #[test]
    fn tiny_budget_reports_saturation_stage() {
        let h = parse_history("p: w(x)1 w(x)2 r(x)1\nq: w(x)3 r(x)2 r(x)3").unwrap();
        let cfg = CheckConfig {
            engine: EngineKind::Saturate,
            node_budget: 1,
            ..CheckConfig::default()
        };
        let (v, stats) = crate::checker::check_with_stats(&h, &models::sc(), &cfg);
        assert_eq!(v, Verdict::Exhausted);
        assert_eq!(stats.exhausted_stage, Some(Stage::Saturation));
    }
}

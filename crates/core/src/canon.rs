//! Canonical forms of histories under symmetry.
//!
//! Admission verdicts are invariant under bijective renamings of
//! processors, locations, and (per location) written/read values: renaming
//! carries legal views to legal views and derived orders to derived
//! orders, so two histories that differ only by such a renaming are
//! admitted by exactly the same models. This module computes a
//! deterministic *canonical form* — processors, locations, and values
//! relabeled by first-occurrence order, with processors tie-broken by a
//! stable fingerprint of their operation sequences — plus a 128-bit
//! [`HistoryKey`] hash of that form. Canonically-equal histories can then
//! share one cached verdict ([`crate::memo`]), and a cached witness can be
//! translated through the recorded permutations so it remains valid for
//! every history in the symmetry class.
//!
//! Value renaming is sound *per location*: the legality of a view only
//! ever compares a read's value against the most recent write to the same
//! location, so a bijection on the values used at each location (fixing
//! the initial value `0`) preserves legality. Processor renaming permutes
//! the views; location renaming permutes the per-location coherence
//! orders. None of the model parameters mention concrete names.
//!
//! Processor tie groups (processors whose local fingerprints coincide) are
//! resolved by trying every permutation within the groups and keeping the
//! lexicographically least global encoding, capped at [`TIE_CAP`]
//! candidate orders. Exceeding the cap falls back to the fingerprint
//! order, which is still deterministic — it can only *miss* symmetries
//! (fewer cache hits), never conflate non-isomorphic histories.

use smc_history::{History, HistoryBuilder, Label, Location, OpId, OpKind, ProcId};

/// Maximum candidate processor orders tried when resolving fingerprint
/// ties (6! — every history with at most 6 mutually-tied processors is
/// canonicalized exactly).
pub const TIE_CAP: usize = 720;

/// Separator token between per-processor blocks in the canonical
/// encoding.
const SEP: u64 = u64::MAX;

/// A 128-bit hash of a history's canonical encoding. Equal keys mean the
/// canonical encodings collided under FNV-1a, which for equal-length
/// streams in this domain means the encodings — and hence the canonical
/// histories — are equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HistoryKey(pub u128);

impl std::fmt::Debug for HistoryKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HistoryKey({:032x})", self.0)
    }
}

impl std::fmt::Display for HistoryKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// FNV-1a over a token stream, widened to 128 bits.
fn fnv128(tokens: &[u64]) -> u128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013B;
    let mut h = OFFSET;
    for t in tokens {
        for b in t.to_le_bytes() {
            h ^= b as u128;
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// A history's canonical form: the relabeled history, its key, and the
/// permutations needed to translate witnesses between the original and
/// canonical coordinates.
#[derive(Debug, Clone)]
pub struct Canon {
    /// Hash of the canonical encoding.
    pub key: HistoryKey,
    /// The canonical history itself (processors `p0, p1, ...`, locations
    /// `x0, x1, ...`, values renumbered per location).
    pub history: History,
    op_to_canon: Vec<OpId>,
    op_from_canon: Vec<OpId>,
    proc_to_canon: Vec<ProcId>,
    loc_to_canon: Vec<Option<Location>>,
    loc_from_canon: Vec<Location>,
    orig_procs: usize,
    orig_locs: usize,
}

/// Per-processor fingerprint: the operation sequence with locations and
/// values relabeled by first occurrence *within this processor*. Invariant
/// under any global renaming, so it gives a renaming-independent sort key
/// for processors.
fn local_fingerprint(h: &History, p: usize) -> Vec<u64> {
    let mut locs: Vec<u32> = Vec::new();
    // Per local-location value tables; values keyed by original i64.
    let mut vals: Vec<Vec<i64>> = Vec::new();
    let mut out = Vec::new();
    for o in h.proc_ops(ProcId(p as u32)) {
        let l = match locs.iter().position(|&x| x == o.loc.0) {
            Some(i) => i,
            None => {
                locs.push(o.loc.0);
                vals.push(Vec::new());
                locs.len() - 1
            }
        };
        let v = if o.value.is_initial() {
            0
        } else {
            match vals[l].iter().position(|&x| x == o.value.0) {
                Some(i) => (i + 1) as u64,
                None => {
                    vals[l].push(o.value.0);
                    vals[l].len() as u64
                }
            }
        };
        out.push(op_tag(o.kind, o.label));
        out.push(l as u64);
        out.push(v);
    }
    out
}

fn op_tag(kind: OpKind, label: Label) -> u64 {
    (matches!(kind, OpKind::Write) as u64) | ((matches!(label, Label::Labeled) as u64) << 1)
}

/// Encode the history under a candidate processor order with global
/// first-occurrence relabeling of locations and per-location values.
fn encode_order(h: &History, order: &[usize]) -> Vec<u64> {
    let mut loc_map: Vec<Option<u64>> = vec![None; h.num_locs()];
    let mut next_loc = 0u64;
    let mut vals: Vec<Vec<i64>> = Vec::new();
    let mut out = Vec::with_capacity(3 * h.num_ops() + h.num_procs() + 1);
    out.push(h.num_procs() as u64);
    for &p in order {
        out.push(SEP);
        for o in h.proc_ops(ProcId(p as u32)) {
            let l = match loc_map[o.loc.index()] {
                Some(l) => l,
                None => {
                    loc_map[o.loc.index()] = Some(next_loc);
                    vals.push(Vec::new());
                    next_loc += 1;
                    next_loc - 1
                }
            };
            let v = if o.value.is_initial() {
                0
            } else {
                let table = &mut vals[l as usize];
                match table.iter().position(|&x| x == o.value.0) {
                    Some(i) => (i + 1) as u64,
                    None => {
                        table.push(o.value.0);
                        table.len() as u64
                    }
                }
            };
            out.push(op_tag(o.kind, o.label));
            out.push(l);
            out.push(v);
        }
    }
    out
}

/// Enumerate candidate processor orders: the fingerprint-sorted base
/// order, with every permutation inside each tie group — unless the
/// combination count exceeds [`TIE_CAP`], in which case only the base
/// order is tried.
fn candidate_orders(base: &[usize], groups: &[std::ops::Range<usize>]) -> Vec<Vec<usize>> {
    let mut combos: usize = 1;
    for g in groups {
        let k = g.len();
        let fact: usize = (1..=k).product();
        combos = combos.saturating_mul(fact);
        if combos > TIE_CAP {
            return vec![base.to_vec()];
        }
    }
    let mut out = vec![base.to_vec()];
    for g in groups {
        if g.len() < 2 {
            continue;
        }
        let mut next = Vec::new();
        for prefix in &out {
            let members: Vec<usize> = prefix[g.clone()].to_vec();
            for perm in permutations(&members) {
                let mut cand = prefix.clone();
                cand[g.clone()].copy_from_slice(&perm);
                next.push(cand);
            }
        }
        out = next;
    }
    out
}

/// All permutations of `items`, in a deterministic order.
fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    if items.len() <= 1 {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    for (i, &head) in items.iter().enumerate() {
        let mut rest = items.to_vec();
        rest.remove(i);
        for mut tail in permutations(&rest) {
            tail.insert(0, head);
            out.push(tail);
        }
    }
    out
}

/// Compute the canonical form of `h`.
pub fn canonicalize(h: &History) -> Canon {
    // 1. Fingerprint-sort the processors (stable, so the base order is
    //    deterministic; ties are resolved by encoding minimization below).
    let fingerprints: Vec<Vec<u64>> = (0..h.num_procs())
        .map(|p| local_fingerprint(h, p))
        .collect();
    let mut base: Vec<usize> = (0..h.num_procs()).collect();
    base.sort_by(|&a, &b| fingerprints[a].cmp(&fingerprints[b]));

    // 2. Tie groups: maximal runs of equal fingerprints in the base order.
    let mut groups: Vec<std::ops::Range<usize>> = Vec::new();
    let mut start = 0;
    for i in 1..=base.len() {
        if i == base.len() || fingerprints[base[i]] != fingerprints[base[start]] {
            if i - start > 1 {
                groups.push(start..i);
            }
            start = i;
        }
    }

    // 3. Lexicographically least encoding over the candidate orders.
    let mut best_order = base.clone();
    let mut best_enc = encode_order(h, &base);
    for cand in candidate_orders(&base, &groups) {
        if cand == base {
            continue;
        }
        let enc = encode_order(h, &cand);
        if enc < best_enc {
            best_enc = enc;
            best_order = cand;
        }
    }

    // 4. Materialize the maps and the canonical history for the winner.
    let mut proc_to_canon = vec![ProcId(0); h.num_procs()];
    for (c, &p) in best_order.iter().enumerate() {
        proc_to_canon[p] = ProcId(c as u32);
    }
    let mut loc_to_canon: Vec<Option<Location>> = vec![None; h.num_locs()];
    let mut loc_from_canon: Vec<Location> = Vec::new();
    let mut vals: Vec<Vec<i64>> = Vec::new();
    let mut op_to_canon = vec![OpId(0); h.num_ops()];
    let mut op_from_canon = Vec::with_capacity(h.num_ops());
    let mut b = HistoryBuilder::new();
    for (c, &p) in best_order.iter().enumerate() {
        let pname = format!("p{c}");
        b.add_proc(&pname);
        for o in h.proc_ops(ProcId(p as u32)) {
            let l = match loc_to_canon[o.loc.index()] {
                Some(l) => l,
                None => {
                    let l = Location(loc_from_canon.len() as u32);
                    loc_to_canon[o.loc.index()] = Some(l);
                    loc_from_canon.push(o.loc);
                    vals.push(Vec::new());
                    l
                }
            };
            let v: i64 = if o.value.is_initial() {
                0
            } else {
                let table = &mut vals[l.index()];
                match table.iter().position(|&x| x == o.value.0) {
                    Some(i) => (i + 1) as i64,
                    None => {
                        table.push(o.value.0);
                        table.len() as i64
                    }
                }
            };
            op_to_canon[o.id.index()] = OpId(op_from_canon.len() as u32);
            op_from_canon.push(o.id);
            b.push(&pname, o.kind, &format!("x{}", l.index()), v, o.label);
        }
    }
    let history = b.build();
    debug_assert_eq!(history.num_ops(), h.num_ops());

    Canon {
        key: HistoryKey(fnv128(&best_enc)),
        history,
        op_to_canon,
        op_from_canon,
        proc_to_canon,
        loc_to_canon,
        loc_from_canon,
        orig_procs: h.num_procs(),
        orig_locs: h.num_locs(),
    }
}

impl Canon {
    /// Map an original operation id into canonical coordinates.
    pub fn op_to_canon(&self, o: OpId) -> OpId {
        self.op_to_canon[o.index()]
    }

    /// Map a canonical operation id back to original coordinates.
    pub fn op_from_canon(&self, o: OpId) -> OpId {
        self.op_from_canon[o.index()]
    }

    fn map_ops(&self, ops: &[OpId]) -> Vec<OpId> {
        ops.iter().map(|&o| self.op_to_canon[o.index()]).collect()
    }

    fn unmap_ops(&self, ops: &[OpId]) -> Vec<OpId> {
        ops.iter().map(|&o| self.op_from_canon[o.index()]).collect()
    }

    /// Translate a witness for the *original* history into canonical
    /// coordinates (valid for [`Canon::history`] by the renaming-symmetry
    /// of all witness components).
    pub fn witness_to_canon(&self, w: &crate::checker::Witness) -> crate::checker::Witness {
        let mut views = vec![Vec::new(); self.orig_procs];
        for (p, view) in w.views.iter().enumerate() {
            views[self.proc_to_canon[p].index()] = self.map_ops(view);
        }
        let coherence = w.coherence.as_ref().map(|coh| {
            self.loc_from_canon
                .iter()
                .map(|lo| self.map_ops(&coh[lo.index()]))
                .collect()
        });
        let reads_from = w.reads_from.as_ref().map(|rf| {
            let mut out = vec![None; rf.len()];
            for (i, src) in rf.iter().enumerate() {
                out[self.op_to_canon[i].index()] = src.map(|s| self.op_to_canon[s.index()]);
            }
            out
        });
        crate::checker::Witness {
            views,
            store_order: w.store_order.as_deref().map(|s| self.map_ops(s)),
            coherence,
            labeled_order: w.labeled_order.as_deref().map(|t| self.map_ops(t)),
            reads_from,
        }
    }

    /// Translate a witness in canonical coordinates back into a witness
    /// for the original history.
    pub fn witness_from_canon(&self, w: &crate::checker::Witness) -> crate::checker::Witness {
        let views = (0..self.orig_procs)
            .map(|p| self.unmap_ops(&w.views[self.proc_to_canon[p].index()]))
            .collect();
        let coherence = w.coherence.as_ref().map(|coh| {
            (0..self.orig_locs)
                .map(|l| match self.loc_to_canon[l] {
                    Some(lc) => self.unmap_ops(&coh[lc.index()]),
                    // A location the history never touches has no writes.
                    None => Vec::new(),
                })
                .collect()
        });
        let reads_from = w.reads_from.as_ref().map(|rf| {
            let mut out = vec![None; rf.len()];
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = rf[self.op_to_canon[i].index()].map(|s| self.op_from_canon[s.index()]);
            }
            out
        });
        crate::checker::Witness {
            views,
            store_order: w.store_order.as_deref().map(|s| self.unmap_ops(s)),
            coherence,
            labeled_order: w.labeled_order.as_deref().map(|t| self.unmap_ops(t)),
            reads_from,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smc_history::litmus::parse_history;

    #[test]
    fn canonical_form_is_idempotent() {
        for text in [
            "p: w(x)1 r(y)0\nq: w(y)1 r(x)0",
            "p: w(x)5\nq: w(x)5\nr: r(x)5 r(x)5",
            "a: w(m)3 wl(s)1\nb: rl(s)1 r(m)3",
        ] {
            let h = parse_history(text).unwrap();
            let c1 = canonicalize(&h);
            let c2 = canonicalize(&c1.history);
            assert_eq!(c1.key, c2.key, "{text}");
            assert_eq!(c1.history, c2.history, "{text}");
        }
    }

    #[test]
    fn renamed_histories_share_a_key() {
        // Same history with processors swapped, locations renamed, and
        // values shifted (7 ↔ 1, 9 ↔ 1 per location).
        let a = parse_history("p: w(x)1 r(y)0\nq: w(y)1 r(x)0").unwrap();
        let b = parse_history("u: w(n)9 r(m)0\nt: w(m)7 r(n)0").unwrap();
        assert_eq!(canonicalize(&a).key, canonicalize(&b).key);
        assert_eq!(canonicalize(&a).history, canonicalize(&b).history);
    }

    #[test]
    fn different_histories_get_different_keys() {
        let a = parse_history("p: w(x)1 r(y)0\nq: w(y)1 r(x)0").unwrap();
        let b = parse_history("p: w(x)1 r(y)1\nq: w(y)1 r(x)0").unwrap();
        let c = parse_history("p: w(x)1\nq: r(x)1").unwrap();
        assert_ne!(canonicalize(&a).key, canonicalize(&b).key);
        assert_ne!(canonicalize(&a).key, canonicalize(&c).key);
    }

    #[test]
    fn value_renaming_is_per_location() {
        // Values are renamed per location, so cross-location value
        // equality must NOT be canonicalized away: these two differ (the
        // first reuses 1 across locations, the second doesn't) yet both
        // canonicalize to the same form because value identity only
        // matters within a location.
        let a = parse_history("p: w(x)1 w(y)1").unwrap();
        let b = parse_history("p: w(x)1 w(y)2").unwrap();
        assert_eq!(canonicalize(&a).key, canonicalize(&b).key);
        // ...but reusing a value at the SAME location is structural.
        let c = parse_history("p: w(x)1 w(x)1").unwrap();
        let d = parse_history("p: w(x)1 w(x)2").unwrap();
        assert_ne!(canonicalize(&c).key, canonicalize(&d).key);
    }

    #[test]
    fn empty_and_tiny_histories() {
        let empty = smc_history::HistoryBuilder::new().build();
        let c = canonicalize(&empty);
        assert_eq!(c.history.num_ops(), 0);
        let single = parse_history("p: w(x)1").unwrap();
        let c = canonicalize(&single);
        assert_eq!(c.history.num_ops(), 1);
        assert_eq!(canonicalize(&c.history).key, c.key);
    }

    #[test]
    fn tie_broken_processors_are_invariant() {
        // Three processors with identical shapes; any listing order must
        // canonicalize identically.
        let a = parse_history("p: w(x)1\nq: w(x)2\nr: r(x)1").unwrap();
        let b = parse_history("p: r(x)7\nq: w(x)7\nr: w(x)3").unwrap();
        // a: procs write/write/read; b: read/write/write with renamed
        // values. Isomorphic via p↔r swap and value bijection.
        assert_eq!(canonicalize(&a).key, canonicalize(&b).key);
    }

    #[test]
    fn witness_round_trip() {
        let h = parse_history("q: w(y)1\np: r(y)1").unwrap();
        let c = canonicalize(&h);
        let w = crate::checker::Witness {
            views: vec![vec![OpId(0), OpId(1)], vec![OpId(0), OpId(1)]],
            store_order: Some(vec![OpId(0)]),
            coherence: Some(vec![vec![OpId(0)]]),
            labeled_order: None,
            reads_from: Some(vec![None, Some(OpId(0))]),
        };
        let back = c.witness_from_canon(&c.witness_to_canon(&w));
        assert_eq!(back, w);
    }
}

//! Search for legal sequential views.
//!
//! Section 2 of the paper requires, for each processor `p`, a *legal*
//! sequential history `S_{p+δp}`: a total order over `p`'s operations and
//! the model-selected remote operations in which every read returns the
//! value of the most recent preceding write to its location (initial value
//! `0` if none). The model's ordering and mutual-consistency parameters
//! contribute a partial order that the view must extend.
//!
//! This module answers the per-view question: *given the operation set and
//! the required partial order, does a legal linear extension exist?* — by
//! depth-first search over schedulable operations with
//!
//! * dead-state pruning (a read whose explanation has been overwritten can
//!   never be scheduled), and
//! * memoization of failed states, keyed by the scheduled-set bit mask and
//!   the per-location last writes (the only state the future depends on).
//!
//! The scheduling state itself — context preprocessing, successor
//! generation, state packing and hashing — lives in [`crate::kernel`] and
//! is shared with the work-stealing engine and the frontier closure; this
//! module owns only the DFS driving it.
//!
//! Deciding this question is NP-complete in general (it subsumes checking
//! sequential consistency), but litmus-scale instances are instant.

use crate::budget::Budget;
use crate::kernel::{pack_state, state_hash, Ctx, StateSpace, NO_WRITE};
use crate::rf::ReadsFrom;
use smc_history::{History, OpId, Value};
use smc_relation::{BitSet, Relation};
use std::collections::VecDeque;
use std::ops::ControlFlow;

/// How read legality is judged during the search.
#[derive(Clone, Copy)]
pub enum LegalityMode<'a> {
    /// A read of value `v` may be scheduled whenever the most recent write
    /// to its location (if any) stored `v`, or `v = 0` with no write yet.
    /// Used by models whose derived orders do not mention reads-from
    /// (SC, TSO, PRAM, coherent memory).
    ByValue,
    /// A read must be explained by exactly its assigned source write
    /// (or the initial value). Used by models whose ordering constraints
    /// are derived from a reads-from assignment (causal, PC, RC).
    ByReadsFrom(&'a ReadsFrom),
}

/// One per-view satisfiability problem.
pub struct ViewProblem<'a> {
    /// The full history the operations come from.
    pub history: &'a History,
    /// Global ids of the operations that form the view (`H_p ∪ δ_p`).
    pub ops: BitSet,
    /// Required partial order over global ids; only edges between two
    /// members of `ops` constrain the view.
    pub constraints: &'a Relation,
    /// Read-legality mode.
    pub legality: LegalityMode<'a>,
}

/// Outcome of a bounded search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchOutcome {
    /// A legal extension exists; the witness view is attached.
    Found(Vec<OpId>),
    /// No legal extension exists.
    NotFound,
    /// The node budget ran out before the search completed.
    Exhausted,
}

/// Result of a visitor-driven enumeration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchEnd<B> {
    /// Every legal extension was visited without the visitor breaking.
    Completed,
    /// The visitor broke with this value.
    Broke(B),
    /// The node budget ran out.
    Exhausted,
}

/// Tuning knobs for the view search, exposed for the ablation
/// benchmarks (`bench_ablation`): disabling either optimization keeps the
/// search correct but changes its cost profile.
#[derive(Debug, Clone, Copy)]
pub struct SearchOptions {
    /// Memoize failed `(scheduled set, last writes)` states.
    pub memoize: bool,
    /// Prune states in which some unscheduled read can never again be
    /// scheduled.
    pub dead_prune: bool,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            memoize: true,
            dead_prune: true,
        }
    }
}

/// Exact (collision-free) memo of failed states for the sequential DFS:
/// a packed [`StateSpace`] arena bucketed by [`state_hash`], so the hot
/// path probes by hash first (computed straight off the live state, no
/// packing) and packs the `(scheduled set, last writes)` key into the
/// scratch row only on the rare bucket hit — or when a refuted state is
/// inserted. Unlike a plain `HashSet<(BitSet, Vec<u32>)>`, a lookup
/// never clones or allocates.
struct LocalFailed {
    space: StateSpace,
    scratch: Vec<u64>,
}

impl LocalFailed {
    fn new(ctx: &Ctx<'_>) -> Self {
        LocalFailed {
            space: StateSpace::new(ctx.packed_stride()),
            scratch: Vec::new(),
        }
    }

    fn contains(&mut self, hash: u64, placed: &BitSet, last_write: &[u32]) -> bool {
        if !self.space.has_bucket(hash) {
            return false;
        }
        pack_state(&mut self.scratch, placed, last_write);
        self.space.find(hash, &self.scratch).is_some()
    }

    fn insert(&mut self, hash: u64, placed: &BitSet, last_write: &[u32]) {
        pack_state(&mut self.scratch, placed, last_write);
        if self.space.find(hash, &self.scratch).is_none() {
            self.space.insert_new(hash, &self.scratch);
        }
    }
}

/// Search for one legal extension of the problem, charging one unit of
/// `budget` per search node (the same budget can be shared across
/// sub-searches, nested enumerations, and — via
/// [`crate::budget::SharedBudget`] — worker threads).
pub fn find_legal_extension(p: &ViewProblem<'_>, budget: &Budget) -> SearchOutcome {
    find_legal_extension_with(p, budget, SearchOptions::default())
}

/// [`find_legal_extension`] with explicit [`SearchOptions`].
pub fn find_legal_extension_with(
    p: &ViewProblem<'_>,
    budget: &Budget,
    opts: SearchOptions,
) -> SearchOutcome {
    let ctx = Ctx::new(p);
    let m = ctx.elems.len();
    let mut placed = BitSet::new(m);
    let mut last_write = vec![NO_WRITE; ctx.num_locs];
    let mut order: Vec<usize> = Vec::with_capacity(m);
    let mut memo = LocalFailed::new(&ctx);
    // `memoize == false` really bypasses the failed set: no hash is
    // computed, no key is built, and the (unallocated, empty) table is
    // never touched.
    let failed = if opts.memoize { Some(&mut memo) } else { None };
    search_rec(
        &ctx,
        &mut placed,
        &mut last_write,
        &mut order,
        failed,
        budget,
        opts,
    )
}

/// The core DFS over schedulable operations, shared by the whole-problem
/// search and the resume-from-prefix search used by the static-prefix
/// splits in [`crate::batch`]. `failed` is `Some` iff failed-state
/// memoization is on; the hash-first probe means a lookup costs one hash
/// of the live state and (on the rare bucket hit) reference comparisons —
/// the key is cloned only when a refuted state is inserted.
#[allow(clippy::too_many_arguments)]
fn search_rec(
    ctx: &Ctx<'_>,
    placed: &mut BitSet,
    last_write: &mut Vec<u32>,
    order: &mut Vec<usize>,
    mut failed: Option<&mut LocalFailed>,
    budget: &Budget,
    opts: SearchOptions,
) -> SearchOutcome {
    if order.len() == ctx.elems.len() {
        return SearchOutcome::Found(order.iter().map(|&l| OpId(ctx.elems[l] as u32)).collect());
    }
    if !budget.try_spend() {
        return SearchOutcome::Exhausted;
    }
    if opts.dead_prune && ctx.dead(placed, last_write) {
        return SearchOutcome::NotFound;
    }
    let mut key_hash = 0;
    if let Some(f) = failed.as_mut() {
        key_hash = state_hash(0, placed, last_write);
        if f.contains(key_hash, placed, last_write) {
            return SearchOutcome::NotFound;
        }
    }
    let mut cursor = 0;
    while let Some(i) = ctx.next_ready(placed, last_write, cursor) {
        cursor = i + 1;
        let saved = ctx.apply(i, placed, last_write);
        order.push(i);
        let sub = search_rec(
            ctx,
            placed,
            last_write,
            order,
            failed.as_deref_mut(),
            budget,
            opts,
        );
        order.pop();
        ctx.undo(i, saved, placed, last_write);
        match sub {
            SearchOutcome::NotFound => {}
            done => return done,
        }
    }
    if let Some(f) = failed {
        f.insert(key_hash, placed, last_write);
    }
    SearchOutcome::NotFound
}

/// Result of prefix-partitioning a view search for work stealing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixSplit {
    /// BFS expansion already reached a complete legal extension.
    Found(Vec<OpId>),
    /// The frontier emptied: no legal extension exists.
    NoExtension,
    /// Schedule prefixes (global op ids) that jointly partition the
    /// remaining search space: the problem has a legal extension iff some
    /// prefix extends to one.
    Split(Vec<Vec<OpId>>),
}

/// Breadth-first expand the search frontier into at least `target`
/// schedule prefixes, stopping early on a complete extension or an empty
/// frontier. Each expansion charges one budget unit, mirroring the DFS
/// cost of visiting the same node; on budget failure the popped prefix is
/// pushed back so the returned split still covers the whole space (the
/// workers then re-report exhaustion under the same shared pool).
pub fn split_prefixes(p: &ViewProblem<'_>, target: usize, budget: &Budget) -> PrefixSplit {
    let ctx = Ctx::new(p);
    let m = ctx.elems.len();
    let to_global = |prefix: &[usize]| -> Vec<OpId> {
        prefix.iter().map(|&l| OpId(ctx.elems[l] as u32)).collect()
    };
    let mut frontier: VecDeque<Vec<usize>> = VecDeque::new();
    frontier.push_back(Vec::new());
    while frontier.len() < target.max(1) {
        let Some(prefix) = frontier.pop_front() else {
            return PrefixSplit::NoExtension;
        };
        if prefix.len() == m {
            return PrefixSplit::Found(to_global(&prefix));
        }
        if !budget.try_spend() {
            frontier.push_front(prefix);
            break;
        }
        // Replay the prefix to recover the scheduling state.
        let mut placed = BitSet::new(m);
        let mut last_write = vec![NO_WRITE; ctx.num_locs];
        for &i in &prefix {
            if ctx.op(i).is_write() {
                last_write[ctx.op(i).loc.index()] = i as u32;
            }
            placed.insert(i);
        }
        if ctx.dead(&placed, &last_write) {
            continue;
        }
        let mut cursor = 0;
        while let Some(i) = ctx.next_ready(&placed, &last_write, cursor) {
            cursor = i + 1;
            let mut child = prefix.clone();
            child.push(i);
            frontier.push_back(child);
        }
        // A prefix with no schedulable successor (and not complete) is
        // refuted; it simply drops out of the frontier.
    }
    if frontier.is_empty() {
        return PrefixSplit::NoExtension;
    }
    PrefixSplit::Split(frontier.iter().map(|pfx| to_global(pfx)).collect())
}

/// Resume the legal-extension DFS from a schedule prefix produced by
/// [`split_prefixes`]. A `Found` order includes the prefix.
pub fn find_legal_extension_from(
    p: &ViewProblem<'_>,
    prefix: &[OpId],
    budget: &Budget,
) -> SearchOutcome {
    let ctx = Ctx::new(p);
    let m = ctx.elems.len();
    let mut placed = BitSet::new(m);
    let mut last_write = vec![NO_WRITE; ctx.num_locs];
    let mut order: Vec<usize> = Vec::with_capacity(m);
    for &g in prefix {
        let local = ctx
            .elems
            .binary_search(&g.index())
            .expect("prefix op outside the view's operation set");
        debug_assert!(ctx.preds[local].is_subset(&placed));
        debug_assert!(ctx.schedulable(local, &last_write));
        if ctx.op(local).is_write() {
            last_write[ctx.op(local).loc.index()] = local as u32;
        }
        placed.insert(local);
        order.push(local);
    }
    let mut memo = LocalFailed::new(&ctx);
    search_rec(
        &ctx,
        &mut placed,
        &mut last_write,
        &mut order,
        Some(&mut memo),
        budget,
        SearchOptions::default(),
    )
}

/// Visit every legal extension of the problem (no failure memoization, so
/// the visitor sees each distinct extension exactly once).
pub fn for_each_legal_extension<B>(
    p: &ViewProblem<'_>,
    budget: &Budget,
    mut visit: impl FnMut(&[OpId]) -> ControlFlow<B>,
) -> SearchEnd<B> {
    let ctx = Ctx::new(p);
    let m = ctx.elems.len();
    let mut placed = BitSet::new(m);
    let mut last_write = vec![NO_WRITE; ctx.num_locs];
    let mut order: Vec<OpId> = Vec::with_capacity(m);

    fn rec<B>(
        ctx: &Ctx<'_>,
        placed: &mut BitSet,
        last_write: &mut Vec<u32>,
        order: &mut Vec<OpId>,
        budget: &Budget,
        visit: &mut impl FnMut(&[OpId]) -> ControlFlow<B>,
    ) -> SearchEnd<B> {
        if order.len() == ctx.elems.len() {
            return match visit(order) {
                ControlFlow::Continue(()) => SearchEnd::Completed,
                ControlFlow::Break(b) => SearchEnd::Broke(b),
            };
        }
        if !budget.try_spend() {
            return SearchEnd::Exhausted;
        }
        if ctx.dead(placed, last_write) {
            return SearchEnd::Completed;
        }
        let mut cursor = 0;
        while let Some(i) = ctx.next_ready(placed, last_write, cursor) {
            cursor = i + 1;
            let saved = ctx.apply(i, placed, last_write);
            order.push(OpId(ctx.elems[i] as u32));
            let end = rec(ctx, placed, last_write, order, budget, visit);
            order.pop();
            ctx.undo(i, saved, placed, last_write);
            match end {
                SearchEnd::Completed => {}
                other => return other,
            }
        }
        SearchEnd::Completed
    }

    rec(
        &ctx,
        &mut placed,
        &mut last_write,
        &mut order,
        budget,
        &mut visit,
    )
}

/// Check that `order` is a legal sequence for the history: every read
/// returns the most recent preceding write's value (initial `0` if none).
/// Used to validate witnesses independently of the search.
pub fn is_legal_sequence(h: &History, order: &[OpId]) -> bool {
    let mut last: Vec<Option<Value>> = vec![None; h.num_locs()];
    for &id in order {
        let o = h.op(id);
        if o.is_write() {
            last[o.loc.index()] = Some(o.value);
        } else {
            let expect = last[o.loc.index()].unwrap_or(Value::INITIAL);
            if o.value != expect {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orders::program_order;
    use crate::rf::unique_reads_from;
    use smc_history::litmus::parse_history;

    fn all_ops(h: &History) -> BitSet {
        BitSet::full(h.num_ops())
    }

    fn find(h: &History, constraints: &Relation, legality: LegalityMode<'_>) -> SearchOutcome {
        let p = ViewProblem {
            history: h,
            ops: all_ops(h),
            constraints,
            legality,
        };
        let budget = Budget::local(1_000_000);
        find_legal_extension(&p, &budget)
    }

    #[test]
    fn message_passing_has_legal_po_extension() {
        let h = parse_history("p: w(d)1 w(f)1\nq: r(f)1 r(d)1").unwrap();
        let po = program_order(&h);
        match find(&h, &po, LegalityMode::ByValue) {
            SearchOutcome::Found(order) => {
                assert!(is_legal_sequence(&h, &order));
                assert!(po.respects(&order.iter().map(|o| o.index()).collect::<Vec<_>>()));
            }
            other => panic!("expected Found, got {other:?}"),
        }
    }

    #[test]
    fn fig1_has_no_global_po_extension() {
        // The SC-violating store-buffering history: no single legal
        // sequence respects both program orders.
        let h = parse_history("p: w(x)1 r(y)0\nq: w(y)1 r(x)0").unwrap();
        let po = program_order(&h);
        assert_eq!(
            find(&h, &po, LegalityMode::ByValue),
            SearchOutcome::NotFound
        );
    }

    #[test]
    fn reads_from_mode_pins_the_source() {
        let h = parse_history("p: w(x)1 w(x)2\nq: r(x)1").unwrap();
        let rf = unique_reads_from(&h).unwrap();
        let po = program_order(&h);
        let p = ViewProblem {
            history: &h,
            ops: all_ops(&h),
            constraints: &po,
            legality: LegalityMode::ByReadsFrom(&rf),
        };
        let budget = Budget::local(1_000_000);
        match find_legal_extension(&p, &budget) {
            SearchOutcome::Found(order) => {
                // r(x)1 must land strictly between the two writes.
                let pos = |id: u32| order.iter().position(|o| o.0 == id).unwrap();
                assert!(pos(0) < pos(2) && pos(2) < pos(1));
            }
            other => panic!("expected Found, got {other:?}"),
        }
    }

    #[test]
    fn subset_views_ignore_outside_ops() {
        // Only q's ops + p's writes, as in S_{q+w}.
        let h = parse_history("p: w(x)1 r(z)0\nq: r(x)1").unwrap();
        let po = program_order(&h);
        let ops = BitSet::from_iter(h.num_ops(), [0usize, 2]);
        let p = ViewProblem {
            history: &h,
            ops,
            constraints: &po,
            legality: LegalityMode::ByValue,
        };
        let budget = Budget::local(1_000);
        match find_legal_extension(&p, &budget) {
            SearchOutcome::Found(order) => assert_eq!(order.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn budget_exhaustion_reported() {
        let h = parse_history("p: w(x)1 r(y)0\nq: w(y)1 r(x)0").unwrap();
        let po = program_order(&h);
        let p = ViewProblem {
            history: &h,
            ops: all_ops(&h),
            constraints: &po,
            legality: LegalityMode::ByValue,
        };
        let budget = Budget::local(1);
        assert_eq!(find_legal_extension(&p, &budget), SearchOutcome::Exhausted);
    }

    #[test]
    fn enumeration_visits_each_extension_once() {
        // Two independent writes to different locations: 2 interleavings.
        let h = parse_history("p: w(x)1\nq: w(y)1").unwrap();
        let cons = Relation::new(h.num_ops());
        let p = ViewProblem {
            history: &h,
            ops: all_ops(&h),
            constraints: &cons,
            legality: LegalityMode::ByValue,
        };
        let budget = Budget::local(1_000);
        let mut seen = Vec::new();
        let end = for_each_legal_extension(&p, &budget, |ext| {
            seen.push(ext.to_vec());
            ControlFlow::<()>::Continue(())
        });
        assert!(matches!(end, SearchEnd::Completed));
        assert_eq!(seen.len(), 2);
        assert_ne!(seen[0], seen[1]);
    }

    #[test]
    fn enumeration_prunes_illegal_prefixes() {
        // r(x)0 cannot follow w(x)1, so only one legal order exists.
        let h = parse_history("p: w(x)1\nq: r(x)0").unwrap();
        let cons = Relation::new(h.num_ops());
        let p = ViewProblem {
            history: &h,
            ops: all_ops(&h),
            constraints: &cons,
            legality: LegalityMode::ByValue,
        };
        let budget = Budget::local(1_000);
        let mut count = 0;
        for_each_legal_extension(&p, &budget, |_| {
            count += 1;
            ControlFlow::<()>::Continue(())
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn enumeration_break_propagates() {
        let h = parse_history("p: w(x)1\nq: w(y)1").unwrap();
        let cons = Relation::new(h.num_ops());
        let p = ViewProblem {
            history: &h,
            ops: all_ops(&h),
            constraints: &cons,
            legality: LegalityMode::ByValue,
        };
        let budget = Budget::local(1_000);
        let end = for_each_legal_extension(&p, &budget, |_| ControlFlow::Break(42));
        assert!(matches!(end, SearchEnd::Broke(42)));
    }

    #[test]
    fn split_prefixes_partition_preserves_answer() {
        // Positive instance: some prefix must extend to a legal view.
        let h = parse_history("p: w(d)1 w(f)1\nq: r(f)1 r(d)1").unwrap();
        let po = program_order(&h);
        let p = ViewProblem {
            history: &h,
            ops: all_ops(&h),
            constraints: &po,
            legality: LegalityMode::ByValue,
        };
        let budget = Budget::local(1_000_000);
        match split_prefixes(&p, 4, &budget) {
            PrefixSplit::Split(prefixes) => {
                assert!(prefixes.len() >= 4);
                let found: Vec<Vec<OpId>> = prefixes
                    .iter()
                    .filter_map(|pfx| match find_legal_extension_from(&p, pfx, &budget) {
                        SearchOutcome::Found(o) => Some(o),
                        SearchOutcome::NotFound => None,
                        SearchOutcome::Exhausted => panic!("unexpected exhaustion"),
                    })
                    .collect();
                assert!(!found.is_empty());
                for o in found {
                    assert!(is_legal_sequence(&h, &o));
                    assert!(po.respects(&o.iter().map(|x| x.index()).collect::<Vec<_>>()));
                }
            }
            PrefixSplit::Found(o) => assert!(is_legal_sequence(&h, &o)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn split_prefixes_refutation_is_complete() {
        // Negative instance: every prefix must fail.
        let h = parse_history("p: w(x)1 r(y)0\nq: w(y)1 r(x)0").unwrap();
        let po = program_order(&h);
        let p = ViewProblem {
            history: &h,
            ops: all_ops(&h),
            constraints: &po,
            legality: LegalityMode::ByValue,
        };
        let budget = Budget::local(1_000_000);
        match split_prefixes(&p, 3, &budget) {
            PrefixSplit::Split(prefixes) => {
                for pfx in &prefixes {
                    assert_eq!(
                        find_legal_extension_from(&p, pfx, &budget),
                        SearchOutcome::NotFound
                    );
                }
            }
            PrefixSplit::NoExtension => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn split_prefixes_finds_complete_order_on_tiny_instance() {
        let h = parse_history("p: w(x)1").unwrap();
        let cons = Relation::new(h.num_ops());
        let p = ViewProblem {
            history: &h,
            ops: all_ops(&h),
            constraints: &cons,
            legality: LegalityMode::ByValue,
        };
        let budget = Budget::local(1_000);
        // Asking for more prefixes than the tree has leaves pushes BFS all
        // the way to a complete order.
        assert_eq!(
            split_prefixes(&p, 64, &budget),
            PrefixSplit::Found(vec![OpId(0)])
        );
    }

    #[test]
    fn is_legal_sequence_checks_values() {
        let h = parse_history("p: w(x)1 r(x)1 r(x)0").unwrap();
        let good = vec![OpId(2), OpId(0), OpId(1)];
        assert!(is_legal_sequence(&h, &good));
        let bad = vec![OpId(0), OpId(1), OpId(2)];
        assert!(!is_legal_sequence(&h, &bad));
    }
}

//! The standard memory models of Sections 3–5, plus the new parameter
//! combinations the paper's Section 7 suggests, all as [`ModelSpec`]
//! instances.
//!
//! ```
//! use smc_core::{checker, models};
//! use smc_history::litmus::parse_history;
//!
//! // Message passing with a stale read: PRAM's pipelines forbid it,
//! // the coherent-only memory allows it.
//! let h = parse_history("p: w(d)1 w(f)1\nq: r(f)1 r(d)0").unwrap();
//! assert!(checker::check(&h, &models::pram()).is_disallowed());
//! assert!(checker::check(&h, &models::coherent()).is_allowed());
//! ```

use crate::spec::{GlobalOrder, LabeledModel, ModelSpec, OperationSet, OwnerOrder};

fn base(name: &str) -> ModelSpec {
    ModelSpec {
        name: name.to_owned(),
        delta: OperationSet::WritesOnly,
        identical_views: false,
        global_write_order: false,
        coherence: false,
        labeled: None,
        global_order: GlobalOrder::None,
        owner_order: OwnerOrder::None,
        rc_bracketing: false,
        fence_bracketing: false,
    }
}

/// Sequential consistency (Lamport): all processors share one legal view
/// of *all* operations, respecting program order.
pub fn sc() -> ModelSpec {
    ModelSpec {
        delta: OperationSet::AllOps,
        identical_views: true,
        global_order: GlobalOrder::ProgramOrder,
        ..base("SC")
    }
}

/// Total store ordering (Section 3.2): views contain the writes of
/// others, all views agree on a single store order, and the partial
/// program order `→ppo` is preserved (reads may bypass buffered writes).
pub fn tso() -> ModelSpec {
    ModelSpec {
        global_write_order: true,
        global_order: GlobalOrder::PartialProgramOrder,
        ..base("TSO")
    }
}

/// Processor consistency as implemented by DASH (Section 3.3): coherence
/// plus preservation of the semi-causality order
/// `→sem = (ppo ∪ rwb ∪ rrb)+`.
pub fn pc() -> ModelSpec {
    ModelSpec {
        coherence: true,
        global_order: GlobalOrder::SemiCausalOrder,
        ..base("PC")
    }
}

/// Pipelined RAM (Section 3.5): per-processor views with no mutual
/// consistency at all; only program order is preserved.
pub fn pram() -> ModelSpec {
    ModelSpec {
        global_order: GlobalOrder::ProgramOrder,
        ..base("PRAM")
    }
}

/// Causal memory (Section 3.5): like PRAM but the full causal order
/// `→co = (po ∪ wb)+` must be preserved in every view.
pub fn causal() -> ModelSpec {
    ModelSpec {
        global_order: GlobalOrder::CausalOrder,
        ..base("Causal")
    }
}

/// Coherent-only memory: per-location agreement on write order and
/// per-location program order, nothing else. Not named in the paper's
/// figures but the canonical weakest coherent point in the parameter
/// space.
pub fn coherent() -> ModelSpec {
    ModelSpec {
        coherence: true,
        global_order: GlobalOrder::PerLocationProgramOrder,
        ..base("Coherent")
    }
}

/// Causal memory strengthened with coherence — one of the *new* memories
/// Section 7 derives from the framework ("a mutual consistency condition
/// that requires coherence can be added to causal memory").
pub fn causal_coherent() -> ModelSpec {
    ModelSpec {
        coherence: true,
        global_order: GlobalOrder::CausalOrder,
        ..base("CausalCoherent")
    }
}

fn rc(name: &str, labeled: LabeledModel) -> ModelSpec {
    ModelSpec {
        coherence: true,
        labeled: Some(labeled),
        owner_order: OwnerOrder::PartialProgramOrder,
        rc_bracketing: true,
        ..base(name)
    }
}

/// Release consistency with sequentially consistent labeled operations
/// (`RC_sc`, Section 3.4).
pub fn rc_sc() -> ModelSpec {
    rc("RCsc", LabeledModel::SequentiallyConsistent)
}

/// Release consistency with processor-consistent labeled operations
/// (`RC_pc`, Section 3.4).
pub fn rc_pc() -> ModelSpec {
    rc("RCpc", LabeledModel::ProcessorConsistent)
}

/// Goodman's processor consistency, as formalized by Ahamad, Bazzi,
/// John, Kohli & Neiger (the paper's reference [2]): PRAM plus
/// coherence. Section 3.3 notes it is distinct from (and incomparable
/// with) the DASH definition; having both in the registry lets the
/// lattice harness exhibit the difference.
pub fn pc_goodman() -> ModelSpec {
    ModelSpec {
        coherence: true,
        global_order: GlobalOrder::ProgramOrder,
        ..base("PCG")
    }
}

/// Weak ordering (Dubois, Scheurich & Briggs — the paper's reference
/// [1]), expressed in the framework: labeled (synchronization)
/// operations are sequentially consistent, coherence holds for ordinary
/// operations, and every ordinary operation is fenced against every
/// labeled operation of its processor in both directions — strictly
/// stronger bracketing than release consistency's.
pub fn weak_ordering() -> ModelSpec {
    ModelSpec {
        coherence: true,
        labeled: Some(LabeledModel::SequentiallyConsistent),
        owner_order: OwnerOrder::PartialProgramOrder,
        rc_bracketing: true,
        fence_bracketing: true,
        ..base("WO")
    }
}

/// Hybrid consistency (Attiya & Friedman — the paper's reference [4]),
/// approximated in the framework: all processors agree on the relative
/// order of labeled (strong) operations (without requiring that common
/// order to be legal by itself), and ordinary (weak) operations are
/// fenced against the labeled operations of their processor.
pub fn hybrid() -> ModelSpec {
    ModelSpec {
        labeled: Some(LabeledModel::AgreementOnly),
        owner_order: OwnerOrder::ProgramOrder,
        fence_bracketing: true,
        ..base("Hybrid")
    }
}

/// Every model the crate defines, strongest first (by the paper's
/// Figure 5 where comparable).
pub fn all_models() -> Vec<ModelSpec> {
    vec![
        sc(),
        tso(),
        pc(),
        pc_goodman(),
        causal_coherent(),
        causal(),
        pram(),
        coherent(),
        rc_sc(),
        rc_pc(),
        weak_ordering(),
        hybrid(),
    ]
}

/// The models of the paper's Figure 5 (the inclusion lattice), strongest
/// first.
pub fn figure5_models() -> Vec<ModelSpec> {
    vec![sc(), tso(), pc(), causal(), pram()]
}

/// The unlabeled models — everything
/// [`crate::lattice::known_inclusions`] speaks about, and the model set
/// `smc separate --all` sweeps (the generated universes contain no
/// labeled operations, so the labeled models cannot be separated there).
pub fn lattice_models() -> Vec<ModelSpec> {
    all_models()
        .into_iter()
        .filter(|m| m.labeled.is_none())
        .collect()
}

/// The models the order-constraint saturation engine can decide
/// ([`crate::saturate::supports`]) — the capability flag the `--engine
/// auto` routing and the engine-equivalence harness consult.
pub fn saturating_models() -> Vec<ModelSpec> {
    all_models()
        .into_iter()
        .filter(crate::saturate::supports)
        .collect()
}

/// Look a model up by (case-insensitive) name; accepts the common
/// spellings used in litmus expectations (`RC_sc`, `RCsc`, ...).
pub fn by_name(name: &str) -> Option<ModelSpec> {
    let canon: String = name
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect::<String>()
        .to_ascii_lowercase();
    let m = match canon.as_str() {
        "sc" => sc(),
        "tso" => tso(),
        "pc" => pc(),
        "pram" => pram(),
        "causal" => causal(),
        "coherent" | "coherence" => coherent(),
        "causalcoherent" => causal_coherent(),
        "rcsc" => rc_sc(),
        "rcpc" => rc_pc(),
        // DASH's processor consistency (Section 3.3) — distinct from
        // Goodman's, hence the explicit aliases.
        "dashpc" | "pcdash" => pc(),
        "pcg" | "pcgoodman" | "goodman" | "goodmanpc" => pc_goodman(),
        "wo" | "weakordering" => weak_ordering(),
        "hybrid" => hybrid(),
        _ => return None,
    };
    Some(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_all_distinct_names() {
        let all = all_models();
        let mut names: Vec<_> = all.iter().map(|m| m.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn by_name_resolves_spelling_variants() {
        assert_eq!(by_name("SC").unwrap().name, "SC");
        assert_eq!(by_name("sc").unwrap().name, "SC");
        assert_eq!(by_name("RC_sc").unwrap().name, "RCsc");
        assert_eq!(by_name("rc-pc").unwrap().name, "RCpc");
        assert_eq!(by_name("Causal").unwrap().name, "Causal");
        assert_eq!(by_name("dash_pc").unwrap().name, "PC");
        assert_eq!(by_name("goodman_pc").unwrap().name, "PCG");
        assert!(by_name("nonsense").is_none());
    }

    #[test]
    fn lattice_models_are_exactly_the_unlabeled_ones() {
        let names: Vec<String> = lattice_models().iter().map(|m| m.name.clone()).collect();
        assert_eq!(
            names,
            [
                "SC",
                "TSO",
                "PC",
                "PCG",
                "CausalCoherent",
                "Causal",
                "PRAM",
                "Coherent"
            ]
        );
    }

    #[test]
    fn every_registered_model_resolvable_by_name() {
        for m in all_models() {
            let resolved = by_name(&m.name).unwrap();
            assert_eq!(resolved, m);
        }
    }
}

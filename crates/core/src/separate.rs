//! Automated model-separation witness search (the `smc separate` engine).
//!
//! Every edge and non-edge of the paper's Figure 5 lattice is certified
//! by a *witness history* — one a weaker model admits and a stronger
//! model refutes. This module finds such witnesses mechanically: given a
//! list of models it sweeps universes of increasing size
//! ([`crate::histgen::GenParams`]) and, for every ordered direction
//! `(admits, refutes)` not ruled out by
//! [`crate::lattice::known_inclusions`], records the *first* history (in
//! enumeration order) that the one model admits and the other refutes.
//!
//! The sweep is:
//!
//! * **symmetry-reduced** — only first-occurrence location/value
//!   representatives are materialized
//!   ([`crate::histgen::for_each_representative_range`]), and verdicts
//!   are cached per [`crate::canon::HistoryKey`] so each
//!   processor-permutation orbit is classified once;
//! * **parallel** — workers claim fixed-size index chunks from an atomic
//!   counter; because each direction keeps the *minimum* witnessing
//!   index and workers only stop once no open direction can improve, the
//!   reported witnesses are identical for every job count;
//! * **lattice-aware** — directions along a known inclusion are marked
//!   [`DirectionStatus::Impossible`] up front, and within one history a
//!   decided verdict propagates along the inclusion closure (admitted by
//!   a stronger model ⇒ admitted by the weaker; refuted by a weaker ⇒
//!   refuted by the stronger), so one check serves several pairs.
//!
//! Found witnesses are shrunk by [`minimize_witness`] (greedy op
//! deletion, empty-processor dropping, and value collapsing — see the
//! function docs) to a local minimum that still separates the pair.

use crate::canon::{canonicalize, HistoryKey};
use crate::checker::{check_with_config, CheckConfig};
use crate::histgen::{
    for_each_history_range, for_each_representative_range, GenParams, RangeStats,
};
use crate::lattice::inclusion_closure;
use crate::spec::ModelSpec;
use smc_history::{History, HistoryBuilder, Location};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// One search direction: find a history `models[admits]` admits and
/// `models[refutes]` refutes (a witness that `admits ⊄ refutes`).
#[derive(Debug, Clone)]
pub struct Direction {
    /// Index (into the searcher's model list) of the model that must
    /// admit the witness.
    pub admits: usize,
    /// Index of the model that must refute it.
    pub refutes: usize,
    /// What the search has established for this direction so far.
    pub status: DirectionStatus,
}

/// Outcome of the search for one direction.
#[derive(Debug, Clone)]
pub enum DirectionStatus {
    /// No witness found yet (or the searched universes exhausted without
    /// one — consistent with `admits ⊆ refutes`).
    Open,
    /// `admits ⊆ refutes` is a known inclusion; no witness can exist.
    Impossible,
    /// A witness was found.
    Found(SeparationWitness),
}

/// A history admitted by one model and refuted by another.
#[derive(Debug, Clone)]
pub struct SeparationWitness {
    /// The witness history (minimized if [`Separator::minimize_found`]
    /// ran).
    pub history: History,
    /// The universe the original witness was found in.
    pub universe: GenParams,
    /// Its index in that universe's enumeration order — the minimum over
    /// all witnessing indices, independent of the job count.
    pub index: u64,
    /// Whether `history` has been minimized.
    pub minimized: bool,
}

/// Work counters accumulated across every universe a [`Separator`] ran.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeparateStats {
    /// Enumeration indices visited.
    pub enumerated: u64,
    /// Histories skipped by the first-occurrence representative filter.
    pub skipped_form: u64,
    /// Histories skipped for an unexplainable read.
    pub skipped_unexplainable: u64,
    /// Distinct canonical classes classified.
    pub classes: u64,
    /// Representatives that hit an already-seen canonical class.
    pub class_hits: u64,
    /// Verdicts decided by running the checker.
    pub checked: u64,
    /// Verdicts decided for free along known inclusions.
    pub propagated: u64,
    /// Checks that came back undecided (budget).
    pub undecided: u64,
    /// Wall time spent scanning universes.
    pub wall: Duration,
}

/// The universes the search may visit, smallest first. The ladder stops
/// at ~10M histories: beyond that a single scan is hours, and every
/// separation among the registered models appears far earlier.
pub fn full_ladder() -> Vec<GenParams> {
    let gp = |procs, ops_per_proc, locs, values| GenParams {
        procs,
        ops_per_proc,
        locs,
        values,
    };
    let mut v = vec![
        gp(2, 1, 1, 1),
        gp(2, 2, 1, 1),
        gp(2, 2, 2, 1),
        gp(2, 2, 2, 2),
        gp(2, 3, 2, 1),
        gp(3, 2, 2, 1),
        gp(2, 3, 2, 2),
        gp(3, 2, 2, 2),
        gp(4, 2, 2, 1),
        gp(3, 3, 2, 1),
    ];
    v.sort_by_key(|p| (p.universe_size(), p.procs, p.ops_per_proc));
    v
}

/// Resolve a `--max-universe` spec into a universe schedule: the presets
/// `small` (≤ 50k histories), `medium` (≤ 2M, the default), `large`
/// (≤ 12M), or an explicit `PxOxLxV` cap like `3x2x2x2` (ladder entries
/// component-wise ≤ the cap, plus the cap itself).
pub fn ladder(spec: &str) -> Result<Vec<GenParams>, String> {
    let by_size = |cap: u128| -> Vec<GenParams> {
        full_ladder()
            .into_iter()
            .filter(|p| p.universe_size() <= cap)
            .collect()
    };
    match spec {
        "small" => Ok(by_size(50_000)),
        "medium" => Ok(by_size(2_000_000)),
        "large" => Ok(by_size(12_000_000)),
        custom => {
            let parts: Vec<usize> = custom
                .split('x')
                .map(|s| s.parse::<usize>().ok().filter(|&n| n >= 1))
                .collect::<Option<Vec<_>>>()
                .unwrap_or_default();
            let [procs, ops, locs, values] = parts[..] else {
                return Err(format!(
                    "`{custom}` is not small/medium/large or a PxOxLxV cap like 3x2x2x2"
                ));
            };
            if procs > 8 || locs > 8 || values > 60 {
                return Err(format!("cap `{custom}` exceeds 8 procs/8 locs/60 values"));
            }
            let cap = GenParams {
                procs,
                ops_per_proc: ops,
                locs,
                values: values as i64,
            };
            let mut out: Vec<GenParams> = full_ladder()
                .into_iter()
                .filter(|u| {
                    u.procs <= cap.procs
                        && u.ops_per_proc <= cap.ops_per_proc
                        && u.locs <= cap.locs
                        && u.values <= cap.values
                })
                .collect();
            if !out.iter().any(|u| u.label() == cap.label()) {
                out.push(cap);
                out.sort_by_key(|p| (p.universe_size(), p.procs, p.ops_per_proc));
            }
            Ok(out)
        }
    }
}

/// Chunk of enumeration indices one worker claims at a time.
const CHUNK: u64 = 4096;
/// Shards of the per-universe canonical-class verdict cache.
const CACHE_SHARDS: usize = 16;

/// Minimum witnessing index plus the history found there, updated under
/// one lock so the stored history always matches the stored index; the
/// atomic mirror lets workers read the current bound without contending.
struct BestSlot {
    hint: AtomicU64,
    slot: Mutex<(u64, Option<History>)>,
}

impl BestSlot {
    fn new() -> Self {
        BestSlot {
            hint: AtomicU64::new(u64::MAX),
            slot: Mutex::new((u64::MAX, None)),
        }
    }

    fn record(&self, index: u64, h: &History) {
        let mut g = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        if index < g.0 {
            *g = (index, Some(h.clone()));
            self.hint.store(index, Ordering::Release);
        }
    }
}

/// The separation search engine. Construct with the models of interest,
/// feed it universes (smallest first), then read [`Self::directions`].
pub struct Separator {
    models: Vec<ModelSpec>,
    stronger: Vec<Vec<bool>>,
    cfg: CheckConfig,
    jobs: usize,
    naive: bool,
    directions: Vec<Direction>,
    /// Accumulated work counters.
    pub stats: SeparateStats,
}

/// One shard of the per-universe canonical-class verdict cache: the
/// `Vec<Option<bool>>` is indexed by model position (None = undecided).
type VerdictShard = Mutex<HashMap<HistoryKey, Vec<Option<bool>>>>;

impl Separator {
    /// Set up a search over all ordered pairs of `models`. Directions
    /// along the closure of [`crate::lattice::known_inclusions`] start as
    /// [`DirectionStatus::Impossible`]; everything else starts open.
    pub fn new(models: Vec<ModelSpec>, cfg: CheckConfig, jobs: usize) -> Self {
        let stronger = inclusion_closure(&models);
        let n = models.len();
        let mut directions = Vec::with_capacity(n * (n - 1));
        for (admits, stronger_row) in stronger.iter().enumerate() {
            for (refutes, &included) in stronger_row.iter().enumerate() {
                if admits == refutes {
                    continue;
                }
                let status = if included {
                    DirectionStatus::Impossible
                } else {
                    DirectionStatus::Open
                };
                directions.push(Direction {
                    admits,
                    refutes,
                    status,
                });
            }
        }
        Separator {
            models,
            stronger,
            cfg,
            jobs: jobs.max(1),
            naive: false,
            directions,
            stats: SeparateStats::default(),
        }
    }

    /// Disable the representative filter and the canonical-class verdict
    /// cache (every history classified from scratch). Exists only so the
    /// throughput benchmark can measure what symmetry reduction buys;
    /// results are still correct but enumeration order minimality is then
    /// over the raw universe.
    pub fn set_naive(&mut self, naive: bool) {
        self.naive = naive;
    }

    /// The models under comparison, as passed to [`Self::new`].
    pub fn models(&self) -> &[ModelSpec] {
        &self.models
    }

    /// Every ordered direction and its current status.
    pub fn directions(&self) -> &[Direction] {
        &self.directions
    }

    /// Number of directions still without a witness or impossibility.
    pub fn open_directions(&self) -> usize {
        self.directions
            .iter()
            .filter(|d| matches!(d.status, DirectionStatus::Open))
            .count()
    }

    /// Scan one universe for every still-open direction. Returns the
    /// number of directions resolved by this universe.
    pub fn run_universe(&mut self, params: &GenParams) -> usize {
        let open: Vec<usize> = self
            .directions
            .iter()
            .enumerate()
            .filter(|(_, d)| matches!(d.status, DirectionStatus::Open))
            .map(|(i, _)| i)
            .collect();
        if open.is_empty() {
            return 0;
        }
        let t0 = std::time::Instant::now();
        let total = params.universe_size().min(u64::MAX as u128) as u64;
        let best: Vec<BestSlot> = self.directions.iter().map(|_| BestSlot::new()).collect();
        let cache: Vec<VerdictShard> = (0..CACHE_SHARDS)
            .map(|_| Mutex::new(HashMap::new()))
            .collect();
        let next = AtomicU64::new(0);
        let range_stats = Mutex::new(RangeStats::default());
        let classes = AtomicU64::new(0);
        let class_hits = AtomicU64::new(0);
        let checked = AtomicU64::new(0);
        let propagated = AtomicU64::new(0);
        let undecided = AtomicU64::new(0);

        let worker = || {
            loop {
                let start = next.fetch_add(1, Ordering::Relaxed).saturating_mul(CHUNK);
                if start >= total {
                    break;
                }
                // Every open direction keeps its minimum witnessing index;
                // once no open direction can improve below this chunk, the
                // scan is over. Bounds only shrink, so a skipped chunk
                // could never have improved the final answer — which makes
                // the reported witnesses independent of the job count.
                let bound = open
                    .iter()
                    .map(|&d| best[d].hint.load(Ordering::Acquire))
                    .max()
                    .unwrap_or(0);
                if start >= bound {
                    break;
                }
                let end = (start + CHUNK).min(total);
                let visit = |index: u64, h: &History| {
                    self.classify_candidate(
                        index,
                        h,
                        &open,
                        &best,
                        &cache,
                        &classes,
                        &class_hits,
                        &checked,
                        &propagated,
                        &undecided,
                    );
                };
                let rs = if self.naive {
                    for_each_history_range(params, start, end, visit)
                } else {
                    for_each_representative_range(params, start, end, visit)
                };
                range_stats
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .merge(&rs);
            }
        };
        if self.jobs == 1 {
            worker();
        } else {
            std::thread::scope(|s| {
                for _ in 0..self.jobs {
                    s.spawn(worker);
                }
            });
        }

        let rs = range_stats.into_inner().unwrap_or_else(|p| p.into_inner());
        self.stats.enumerated += rs.enumerated;
        self.stats.skipped_form += rs.skipped_form;
        self.stats.skipped_unexplainable += rs.skipped_unexplainable;
        self.stats.classes += classes.load(Ordering::Relaxed);
        self.stats.class_hits += class_hits.load(Ordering::Relaxed);
        self.stats.checked += checked.load(Ordering::Relaxed);
        self.stats.propagated += propagated.load(Ordering::Relaxed);
        self.stats.undecided += undecided.load(Ordering::Relaxed);
        self.stats.wall += t0.elapsed();

        let mut resolved = 0;
        for &d in &open {
            let (index, history) = {
                let g = best[d].slot.lock().unwrap_or_else(|p| p.into_inner());
                (g.0, g.1.clone())
            };
            if let Some(history) = history {
                self.directions[d].status = DirectionStatus::Found(SeparationWitness {
                    history,
                    universe: *params,
                    index,
                    minimized: false,
                });
                resolved += 1;
            }
        }
        resolved
    }

    /// Classify one candidate history against every direction still able
    /// to improve, consulting and updating the canonical-class verdict
    /// cache.
    #[allow(clippy::too_many_arguments)] // internal worker plumbing
    fn classify_candidate(
        &self,
        index: u64,
        h: &History,
        open: &[usize],
        best: &[BestSlot],
        cache: &[VerdictShard],
        classes: &AtomicU64,
        class_hits: &AtomicU64,
        checked: &AtomicU64,
        propagated: &AtomicU64,
        undecided: &AtomicU64,
    ) {
        let n = self.models.len();
        let key = if self.naive {
            None
        } else {
            Some(canonicalize(h).key)
        };
        let mut verdicts: Vec<Option<bool>> = match &key {
            Some(k) => {
                let shard = &cache[(k.0 as usize) % CACHE_SHARDS];
                let g = shard.lock().unwrap_or_else(|p| p.into_inner());
                match g.get(k) {
                    Some(v) => {
                        class_hits.fetch_add(1, Ordering::Relaxed);
                        v.clone()
                    }
                    None => {
                        classes.fetch_add(1, Ordering::Relaxed);
                        vec![None; n]
                    }
                }
            }
            None => vec![None; n],
        };
        let mut dirty = false;
        // Lazily decide the verdict for model `j`, propagating along the
        // inclusion closure before running the checker.
        let verdict = |j: usize, verdicts: &mut Vec<Option<bool>>, dirty: &mut bool| {
            if let Some(v) = verdicts[j] {
                return Some(v);
            }
            let forced = if (0..n).any(|i| self.stronger[i][j] && verdicts[i] == Some(true)) {
                Some(true)
            } else if (0..n).any(|k| self.stronger[j][k] && verdicts[k] == Some(false)) {
                Some(false)
            } else {
                None
            };
            let v = match forced {
                Some(v) => {
                    propagated.fetch_add(1, Ordering::Relaxed);
                    Some(v)
                }
                None => {
                    checked.fetch_add(1, Ordering::Relaxed);
                    let v = check_with_config(h, &self.models[j], &self.cfg).decided();
                    if v.is_none() {
                        undecided.fetch_add(1, Ordering::Relaxed);
                    }
                    v
                }
            };
            if v.is_some() {
                verdicts[j] = v;
                *dirty = true;
            }
            v
        };
        for &d in open {
            if best[d].hint.load(Ordering::Acquire) <= index {
                continue; // cannot improve this direction
            }
            let (a, r) = (self.directions[d].admits, self.directions[d].refutes);
            if verdict(a, &mut verdicts, &mut dirty) != Some(true) {
                continue;
            }
            if verdict(r, &mut verdicts, &mut dirty) == Some(false) {
                best[d].record(index, h);
            }
        }
        if dirty {
            if let Some(k) = key {
                let shard = &cache[(k.0 as usize) % CACHE_SHARDS];
                let mut g = shard.lock().unwrap_or_else(|p| p.into_inner());
                let entry = g.entry(k).or_insert_with(|| vec![None; n]);
                for (slot, v) in entry.iter_mut().zip(&verdicts) {
                    if slot.is_none() {
                        *slot = *v;
                    }
                }
            }
        }
    }

    /// Minimize every found witness in place (see [`minimize_witness`]).
    pub fn minimize_found(&mut self) {
        for d in &mut self.directions {
            if let DirectionStatus::Found(w) = &mut d.status {
                if !w.minimized {
                    w.history = minimize_witness(
                        &w.history,
                        &self.models[d.admits],
                        &self.models[d.refutes],
                        &self.cfg,
                    );
                    w.minimized = true;
                }
            }
        }
    }
}

/// Run the search over a universe schedule, stopping early once every
/// direction is resolved, then minimize the witnesses.
pub fn separate(
    models: Vec<ModelSpec>,
    universes: &[GenParams],
    cfg: CheckConfig,
    jobs: usize,
) -> Separator {
    let mut s = Separator::new(models, cfg, jobs);
    for u in universes {
        if s.open_directions() == 0 {
            break;
        }
        s.run_universe(u);
    }
    s.minimize_found();
    s
}

/// `true` iff `admits` admits `h` and `refutes` refutes it — i.e. `h`
/// witnesses that the admitted set of `admits` is not contained in that
/// of `refutes`.
pub fn separates(h: &History, admits: &ModelSpec, refutes: &ModelSpec, cfg: &CheckConfig) -> bool {
    check_with_config(h, admits, cfg).is_allowed()
        && check_with_config(h, refutes, cfg).is_disallowed()
}

/// `h` with the operation whose dense id is `idx` removed (processors and
/// their order preserved, even if left empty).
pub fn without_op(h: &History, idx: usize) -> History {
    let mut b = HistoryBuilder::new();
    for ph in h.procs() {
        let name = h.proc_name(ph.proc);
        b.add_proc(name);
        for o in ph.ops {
            if o.id.index() == idx {
                continue;
            }
            b.push(name, o.kind, h.loc_name(o.loc), o.value.0, o.label);
        }
    }
    b.build()
}

/// `h` with processors that issued no operations removed.
fn without_empty_procs(h: &History) -> History {
    let mut b = HistoryBuilder::new();
    for ph in h.procs() {
        if ph.ops.is_empty() {
            continue;
        }
        let name = h.proc_name(ph.proc);
        b.add_proc(name);
        for o in ph.ops {
            b.push(name, o.kind, h.loc_name(o.loc), o.value.0, o.label);
        }
    }
    b.build()
}

/// `h` with every operation on `loc` of value `from` rewritten to `to`.
/// When `to` is 0 only reads are rewritten (a write of the initial value
/// is not expressible in the universe and rarely meaningful).
fn with_value_replaced(h: &History, loc: Location, from: i64, to: i64) -> History {
    let mut b = HistoryBuilder::new();
    for ph in h.procs() {
        let name = h.proc_name(ph.proc);
        b.add_proc(name);
        for o in ph.ops {
            let mut v = o.value.0;
            if o.loc == loc && v == from && (to != 0 || o.is_read()) {
                v = to;
            }
            b.push(name, o.kind, h.loc_name(o.loc), v, o.label);
        }
    }
    b.build()
}

/// Shrink a separating history to a local minimum that still separates
/// the pair: repeatedly (1) delete the lowest-id operation whose removal
/// preserves separation, (2) drop processors left without operations, and
/// (3) collapse a value at some location onto a smaller one (reads may
/// collapse onto the initial value 0). Deterministic: candidates are
/// tried in a fixed order and the first improvement restarts the loop.
///
/// The result is op-deletion-minimal — no single remaining operation can
/// be deleted without losing the separation.
pub fn minimize_witness(
    h: &History,
    admits: &ModelSpec,
    refutes: &ModelSpec,
    cfg: &CheckConfig,
) -> History {
    debug_assert!(separates(h, admits, refutes, cfg));
    let mut cur = h.clone();
    loop {
        let mut improved = false;
        for i in 0..cur.num_ops() {
            let cand = without_op(&cur, i);
            if separates(&cand, admits, refutes, cfg) {
                cur = cand;
                improved = true;
                break;
            }
        }
        if improved {
            continue;
        }
        let cand = without_empty_procs(&cur);
        if cand.num_procs() < cur.num_procs() && separates(&cand, admits, refutes, cfg) {
            cur = cand;
            continue;
        }
        'collapse: for l in 0..cur.num_locs() {
            let loc = Location(l as u32);
            let mut vals: Vec<i64> = cur
                .ops()
                .iter()
                .filter(|o| o.loc == loc && o.value.0 > 0)
                .map(|o| o.value.0)
                .collect();
            vals.sort_unstable();
            vals.dedup();
            for &from in vals.iter().rev() {
                // Targets: every smaller used value, plus 0 (reads only)
                // and 1 as normalizing anchors.
                let mut targets: Vec<i64> = vals.iter().copied().filter(|&t| t < from).collect();
                if from > 1 && !targets.contains(&1) {
                    targets.push(1);
                }
                targets.push(0);
                targets.sort_unstable();
                for &to in &targets {
                    let cand = with_value_replaced(&cur, loc, from, to);
                    if cand != cur && separates(&cand, admits, refutes, cfg) {
                        cur = cand;
                        improved = true;
                        break 'collapse;
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use smc_history::litmus::parse_history;

    #[test]
    fn ladder_specs_resolve() {
        let small = ladder("small").unwrap();
        assert!(!small.is_empty());
        assert!(small.iter().all(|u| u.universe_size() <= 50_000));
        let medium = ladder("medium").unwrap();
        assert!(medium.len() > small.len());
        // Sorted ascending by size.
        for w in medium.windows(2) {
            assert!(w[0].universe_size() <= w[1].universe_size());
        }
        let capped = ladder("3x2x2x2").unwrap();
        assert!(capped.iter().any(|u| u.label() == "3x2x2x2"));
        assert!(capped
            .iter()
            .all(|u| u.procs <= 3 && u.ops_per_proc <= 2 && u.locs <= 2 && u.values <= 2));
        assert!(ladder("huge").is_err());
        assert!(ladder("3x2x2").is_err());
        assert!(ladder("0x2x2x2").is_err());
    }

    #[test]
    fn known_inclusions_mark_directions_impossible() {
        let s = Separator::new(vec![models::sc(), models::tso()], CheckConfig::default(), 1);
        // SC ⊆ TSO: the SC-admits/TSO-refutes direction cannot exist.
        let d_sc_tso = s
            .directions()
            .iter()
            .find(|d| d.admits == 0 && d.refutes == 1)
            .unwrap();
        assert!(matches!(d_sc_tso.status, DirectionStatus::Impossible));
        let d_tso_sc = s
            .directions()
            .iter()
            .find(|d| d.admits == 1 && d.refutes == 0)
            .unwrap();
        assert!(matches!(d_tso_sc.status, DirectionStatus::Open));
    }

    #[test]
    fn finds_the_store_buffering_separation() {
        let s = separate(
            vec![models::sc(), models::tso()],
            &ladder("2x2x2x1").unwrap(),
            CheckConfig::default(),
            2,
        );
        let d = s
            .directions()
            .iter()
            .find(|d| d.admits == 1 && d.refutes == 0)
            .unwrap();
        let DirectionStatus::Found(w) = &d.status else {
            panic!("TSO-admits/SC-refutes witness not found: {:?}", d.status);
        };
        assert!(separates(
            &w.history,
            &models::tso(),
            &models::sc(),
            &CheckConfig::default()
        ));
        // The minimal TSO/SC separation is store buffering: 4 operations.
        assert_eq!(w.history.num_ops(), 4, "{}", w.history);
    }

    #[test]
    fn witness_indices_are_job_count_independent() {
        let run = |jobs: usize| {
            separate(
                vec![models::sc(), models::causal()],
                &ladder("2x2x2x1").unwrap(),
                CheckConfig::default(),
                jobs,
            )
        };
        let a = run(1);
        let b = run(4);
        for (da, db) in a.directions().iter().zip(b.directions()) {
            match (&da.status, &db.status) {
                (DirectionStatus::Found(wa), DirectionStatus::Found(wb)) => {
                    assert_eq!(wa.index, wb.index);
                    assert_eq!(wa.history, wb.history);
                }
                (DirectionStatus::Open, DirectionStatus::Open)
                | (DirectionStatus::Impossible, DirectionStatus::Impossible) => {}
                other => panic!("statuses diverge across job counts: {other:?}"),
            }
        }
    }

    #[test]
    fn minimization_reaches_local_minimum() {
        // Store buffering padded with an irrelevant third processor and a
        // redundant high value; minimization must strip both.
        let h = parse_history("p: w(x)1 r(y)0\nq: w(y)2 r(x)0\nr: w(x)1").unwrap();
        let cfg = CheckConfig::default();
        let (tso, sc) = (models::tso(), models::sc());
        assert!(separates(&h, &tso, &sc, &cfg));
        let m = minimize_witness(&h, &tso, &sc, &cfg);
        assert!(separates(&m, &tso, &sc, &cfg));
        assert_eq!(m.num_ops(), 4, "{m}");
        assert_eq!(m.num_procs(), 2, "{m}");
        // Values collapsed to 1.
        assert!(m.ops().iter().all(|o| o.value.0 <= 1), "{m}");
        // Op-deletion minimal.
        for i in 0..m.num_ops() {
            assert!(!separates(&without_op(&m, i), &tso, &sc, &cfg));
        }
    }
}

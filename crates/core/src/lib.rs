//! The characterization framework of Kohli, Neiger & Ahamad,
//! *A Characterization of Scalable Shared Memories* (ICPP 1993) — the
//! paper's primary contribution, executable.
//!
//! The paper characterizes a memory consistency model *non-operationally*
//! by the set of system execution histories it admits: `H` is admitted iff
//! every processor `p` has a legal sequential **view** `S_{p+δp}` subject
//! to three parameters — the set of remote operations included
//! ([`spec::OperationSet`]), mutual-consistency requirements across views,
//! and an ordering derived from `H` that each view must respect. This
//! crate turns the characterization into a decision procedure:
//!
//! * [`spec`] — the three parameters as data; a [`spec::ModelSpec`] is a
//!   point in parameter space.
//! * [`models`] — SC, TSO, PC, PRAM, causal, RC_sc, RC_pc and the
//!   Section 7 extensions, each as a parameter choice.
//! * [`orders`] — the derived orders `po`, `ppo`, `wb`, `co`, `rwb`,
//!   `rrb`, `sem`.
//! * [`rf`] — reads-from resolution (and enumeration, when written values
//!   collide).
//! * [`coherence`] — per-location write orders and their enumeration.
//! * [`view`] — the legal-extension search for a single view.
//! * [`kernel`] — the shared state-space kernel under `view`, `steal`
//!   and `frontier`: one successor-generation function and a packed,
//!   arena-allocated visited-state table.
//! * [`frontier`] — the same question as a resumable state machine: all
//!   reachable scheduling states of a view, extendable one operation at
//!   a time (the streaming monitor's engine).
//! * [`checker`] — the full decision procedure: [`checker::check`]
//!   returns [`checker::Verdict::Allowed`] with a [`checker::Witness`],
//!   or `Disallowed`, under explicit resource budgets;
//!   [`checker::check_with_stats`] also reports [`checker::CheckStats`].
//! * [`saturate`] — the order-constraint saturation engine: a second
//!   backend that never enumerates schedules, deciding 100–1000-op
//!   histories by incremental closure + cycle detection over per-view
//!   constraint graphs (`--engine {exhaustive,saturate,auto}`).
//! * [`budget`] — the search-node budget: a thread-local fast path over
//!   an optional shared atomic pool with early cancellation.
//! * [`batch`] — the parallel engine: [`batch::check_batch`] fans
//!   (history, model) pairs across a thread pool; [`batch::check_parallel`]
//!   parallelizes a single check's inner enumerations.
//! * [`steal`] — the work-stealing frontier scheduler and the shared
//!   concurrent failed-state set behind `check_parallel`.
//! * [`canon`] — a canonical normal form for histories under
//!   processor/location/value renamings, with a 128-bit [`canon::HistoryKey`].
//! * [`memo`] — a sharded concurrent memo table of decided verdicts keyed
//!   by `(HistoryKey, model parameter key)`, shared across sweeps.
//! * [`binfmt`] — the shared binary-format helpers (bounds-checked
//!   reader, little-endian writers) behind memo files and monitor
//!   checkpoints.
//! * [`explain`] — best-effort cycle certificates for refutations.
//! * [`verify`] — independent validation of witnesses (used heavily by
//!   the test suite: every `Allowed` must verify).
//! * [`lattice`] — empirical comparison of models over history corpora,
//!   reproducing the paper's Figure 5.
//! * [`histgen`] — exhaustive generation of small abstract histories for
//!   the lattice experiments.
//!
//! # Quickstart
//!
//! ```
//! use smc_core::{checker, models};
//! use smc_history::litmus;
//!
//! // Figure 1 of the paper: admitted by TSO, forbidden by SC.
//! let h = litmus::parse_history("p: w(x)1 r(y)0\nq: w(y)1 r(x)0").unwrap();
//! assert!(checker::check(&h, &models::tso()).is_allowed());
//! assert!(checker::check(&h, &models::sc()).is_disallowed());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod binfmt;
pub mod budget;
pub mod canon;
pub mod checker;
pub mod coherence;
pub mod constraints;
pub mod explain;
pub mod frontier;
pub mod histgen;
pub mod kernel;
pub mod lattice;
pub mod memo;
pub mod models;
pub mod orders;
pub mod rf;
pub mod saturate;
pub mod separate;
pub mod spec;
pub mod steal;
pub mod verify;
pub mod view;

pub use batch::{check_batch, check_batch_shared, check_matrix, check_parallel, BatchResult};
pub use budget::{Budget, SharedBudget};
pub use canon::{canonicalize, Canon, HistoryKey};
pub use checker::{
    check, check_with_config, check_with_stats, CheckConfig, CheckStats, Engine, EngineKind,
    SchedulerKind, Stage, Verdict, Witness,
};
pub use frontier::{AppendReport, FrontierEngine, FrontierStats, SealReport, ViewOp};
pub use memo::{MemoCache, MemoStats};
pub use separate::{
    minimize_witness, separates, Direction, DirectionStatus, SeparateStats, SeparationWitness,
    Separator,
};
pub use spec::ModelSpec;
pub use steal::{FailedSetStats, SharedFailedSet};

//! The derived orders of Section 2 and Section 3.3.
//!
//! All orders are materialized as [`Relation`]s over the dense operation
//! ids of a [`History`]:
//!
//! * [`program_order`] — the paper's `→po`: total per processor.
//! * [`partial_program_order`] — `→ppo`: `po` minus write→read pairs on
//!   different locations, transitively closed (reads may bypass buffered
//!   writes, as in TSO and PC).
//! * [`writes_before`] — `→wb`: each write before the reads that return
//!   its value (relative to a reads-from assignment).
//! * [`causal_order`] — `→co = (po ∪ wb)+` (Lamport's happened-before
//!   adapted to shared memory).
//! * [`remote_writes_before`], [`remote_reads_before`], [`semi_causal`] —
//!   the `→rwb`, `→rrb` and `→sem = (ppo ∪ rwb ∪ rrb)+` orders that define
//!   processor consistency; `rrb` is relative to a per-location coherence
//!   order.

use crate::coherence::CoherenceOrders;
use crate::rf::ReadsFrom;
use smc_history::History;
use smc_relation::Relation;

/// The paper's program order `→po`: `o_{p,i} → o_{p,j}` for `i < j`.
pub fn program_order(h: &History) -> Relation {
    let mut r = Relation::new(h.num_ops());
    for ph in h.procs() {
        for i in 0..ph.ops.len() {
            for j in i + 1..ph.ops.len() {
                r.add(ph.ops[i].id.index(), ph.ops[j].id.index());
            }
        }
    }
    r
}

/// The partial program order `→ppo` (Section 2, Ordering).
///
/// For `o1 →po o2`, the direct cases are: same location; both reads; both
/// writes; or `o1` a read and `o2` a write. The omitted case — a write
/// followed by a read of a *different* location — is what lets reads
/// bypass buffered writes. The paper closes the direct cases transitively
/// (through operations of the same processor); we do the same.
pub fn partial_program_order(h: &History) -> Relation {
    let mut r = Relation::new(h.num_ops());
    for ph in h.procs() {
        for i in 0..ph.ops.len() {
            for j in i + 1..ph.ops.len() {
                let (a, b) = (&ph.ops[i], &ph.ops[j]);
                let direct = a.loc == b.loc
                    || (a.is_read() && b.is_read())
                    || (a.is_write() && b.is_write())
                    || (a.is_read() && b.is_write());
                if direct {
                    r.add(a.id.index(), b.id.index());
                }
            }
        }
    }
    r.transitive_closure();
    r
}

/// Program order restricted to pairs on the same location (the ordering
/// requirement of a coherent-only memory).
pub fn per_location_program_order(h: &History) -> Relation {
    let mut r = Relation::new(h.num_ops());
    for ph in h.procs() {
        for i in 0..ph.ops.len() {
            for j in i + 1..ph.ops.len() {
                if ph.ops[i].loc == ph.ops[j].loc {
                    r.add(ph.ops[i].id.index(), ph.ops[j].id.index());
                }
            }
        }
    }
    r
}

/// The writes-before order `→wb`: `w →wb r` when `r` returns the value
/// written by `w` under the given reads-from assignment.
pub fn writes_before(h: &History, rf: &ReadsFrom) -> Relation {
    let mut r = Relation::new(h.num_ops());
    for o in h.ops() {
        if o.is_read() {
            if let Some(w) = rf.source(o.id) {
                r.add(w.index(), o.id.index());
            }
        }
    }
    r
}

/// The causal order `→co = (→po ∪ →wb)+` (Section 2, Ordering).
pub fn causal_order(h: &History, rf: &ReadsFrom) -> Relation {
    let mut r = program_order(h);
    r.union_with(&writes_before(h, rf));
    r.transitive_closure();
    r
}

/// The remote writes-before order `→rwb` (Section 3.3).
///
/// `o1 →rwb o2` iff `o1 = w(x)v`, `o2 = r(y)u`, and there is a write
/// `o' = w(y)u` with `o1 →ppo o'` and `o2` reads from `o'`.
pub fn remote_writes_before(h: &History, rf: &ReadsFrom, ppo: &Relation) -> Relation {
    let mut r = Relation::new(h.num_ops());
    for o2 in h.ops() {
        if !o2.is_read() {
            continue;
        }
        let Some(oprime) = rf.source(o2.id) else {
            continue;
        };
        for o1 in h.ops() {
            if o1.is_write() && o1.id != oprime && ppo.has(o1.id.index(), oprime.index()) {
                r.add(o1.id.index(), o2.id.index());
            }
        }
    }
    r
}

/// The remote reads-before order `→rrb` (Section 3.3).
///
/// `o1 →rrb o2` iff `o1 = r(x)v`, `o2 = w(y)u`, and there is a write
/// `o' = w(x)v'` such that `o1` precedes `o'` in coherence order and
/// `o' →ppo o2`. A read "precedes a write in coherence order" when its
/// source write does (a read of the initial value precedes every write to
/// the location).
pub fn remote_reads_before(
    h: &History,
    rf: &ReadsFrom,
    ppo: &Relation,
    coherence: &CoherenceOrders,
) -> Relation {
    let mut r = Relation::new(h.num_ops());
    for o1 in h.ops() {
        if !o1.is_read() {
            continue;
        }
        let src = rf.source(o1.id);
        for oprime in h.writes_to(o1.loc) {
            let newer = match src {
                None => true,
                Some(s) => s != oprime.id && coherence.precedes(o1.loc, s, oprime.id),
            };
            if !newer {
                continue;
            }
            for o2 in h.ops() {
                if o2.is_write() && ppo.has(oprime.id.index(), o2.id.index()) {
                    r.add(o1.id.index(), o2.id.index());
                }
            }
        }
    }
    r
}

/// The semi-causality order `→sem = (→ppo ∪ →rwb ∪ →rrb)+` that defines
/// the ordering requirement of processor consistency.
pub fn semi_causal(
    h: &History,
    rf: &ReadsFrom,
    ppo: &Relation,
    coherence: &CoherenceOrders,
) -> Relation {
    let mut r = ppo.clone();
    r.union_with(&remote_writes_before(h, rf, ppo));
    r.union_with(&remote_reads_before(h, rf, ppo, coherence));
    r.transitive_closure();
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coherence::CoherenceOrders;
    use crate::rf::unique_reads_from;
    use smc_history::litmus::parse_history;
    use smc_history::OpId;

    fn id(i: u32) -> usize {
        OpId(i).index()
    }

    #[test]
    fn po_is_total_per_processor() {
        let h = parse_history("p: w(x)1 r(y)0 w(z)2\nq: r(x)0").unwrap();
        let po = program_order(&h);
        assert!(po.has(id(0), id(1)) && po.has(id(1), id(2)) && po.has(id(0), id(2)));
        assert!(!po.has(id(1), id(0)));
        assert!(!po.has(id(0), id(3)) && !po.has(id(3), id(0)));
        assert_eq!(po.num_edges(), 3);
    }

    #[test]
    fn ppo_lets_reads_bypass_writes() {
        // w(x)1 then r(y)0: different locations, write→read — NOT ppo.
        let h = parse_history("p: w(x)1 r(y)0").unwrap();
        let ppo = partial_program_order(&h);
        assert!(!ppo.has(id(0), id(1)));
        // But w(x)1 then r(x)0: same location — ppo.
        let h2 = parse_history("p: w(x)1 r(x)1").unwrap();
        assert!(partial_program_order(&h2).has(id(0), id(1)));
    }

    #[test]
    fn ppo_keeps_rr_ww_rw_pairs() {
        let h = parse_history("p: r(x)0 r(y)0\nq: w(x)1 w(y)1\nr: r(x)0 w(y)1").unwrap();
        let ppo = partial_program_order(&h);
        assert!(ppo.has(id(0), id(1))); // read read
        assert!(ppo.has(id(2), id(3))); // write write
        assert!(ppo.has(id(4), id(5))); // read write
    }

    #[test]
    fn ppo_transitive_through_intermediate() {
        // w(x) → r(z) not direct, but w(x) →ppo w(y) →ppo ... no read path;
        // instead w(x) → r(x) (same loc) → r(z) (both reads) closes to
        // w(x) → r(z).
        let h = parse_history("p: w(x)1 r(x)1 r(z)0").unwrap();
        let ppo = partial_program_order(&h);
        assert!(ppo.has(id(0), id(2)));
    }

    #[test]
    fn per_location_po_only_same_loc() {
        let h = parse_history("p: w(x)1 r(y)0 r(x)1").unwrap();
        let plo = per_location_program_order(&h);
        assert!(plo.has(id(0), id(2)));
        assert!(!plo.has(id(0), id(1)));
        assert!(!plo.has(id(1), id(2)));
    }

    #[test]
    fn wb_and_causal() {
        // Message passing: q sees the flag then the data must be visible.
        let h = parse_history("p: w(d)1 w(f)1\nq: r(f)1 r(d)1").unwrap();
        let rf = unique_reads_from(&h).unwrap();
        let wb = writes_before(&h, &rf);
        assert!(wb.has(id(1), id(2))); // w(f)1 → r(f)1
        assert!(wb.has(id(0), id(3)));
        let co = causal_order(&h, &rf);
        // w(d)1 →po w(f)1 →wb r(f)1 →po r(d)1, closed:
        assert!(co.has(id(0), id(3)));
        assert!(co.has(id(0), id(2)));
        assert!(!co.has(id(2), id(0)));
    }

    #[test]
    fn initial_reads_have_no_wb_edge() {
        let h = parse_history("p: w(x)1\nq: r(x)0").unwrap();
        let rf = unique_reads_from(&h).unwrap();
        assert_eq!(writes_before(&h, &rf).num_edges(), 0);
    }

    #[test]
    fn rwb_relates_earlier_write_to_remote_read() {
        // p writes x then y; q reads y's new value → w(x)1 →rwb r(y)1.
        let h = parse_history("p: w(x)1 w(y)1\nq: r(y)1").unwrap();
        let rf = unique_reads_from(&h).unwrap();
        let ppo = partial_program_order(&h);
        let rwb = remote_writes_before(&h, &rf, &ppo);
        assert!(rwb.has(id(0), id(2)));
        // The direct writes-before pair w(y)1→r(y)1 is NOT in rwb
        // (o1 must differ from o').
        assert!(!rwb.has(id(1), id(2)));
    }

    #[test]
    fn rrb_relates_old_read_to_later_write() {
        // q reads x's initial value; p writes x then writes y.
        // r(x)0 →rrb w(y)1 via o' = w(x)1.
        let h = parse_history("p: w(x)1 w(y)1\nq: r(x)0").unwrap();
        let rf = unique_reads_from(&h).unwrap();
        let ppo = partial_program_order(&h);
        let coh = CoherenceOrders::from_single(&h);
        let rrb = remote_reads_before(&h, &rf, &ppo, &coh);
        assert!(rrb.has(id(2), id(1)));
        // Not related to the x-write itself (needs o' →ppo o2, o2 ≠ o').
        assert!(!rrb.has(id(2), id(0)));
    }

    #[test]
    fn sem_contains_ppo() {
        let h = parse_history("p: w(x)1 w(y)1\nq: r(y)1 r(x)0").unwrap();
        let rf = unique_reads_from(&h).unwrap();
        let ppo = partial_program_order(&h);
        let coh = CoherenceOrders::from_single(&h);
        let sem = semi_causal(&h, &rf, &ppo, &coh);
        assert!(ppo.is_subrelation(&sem));
        // w(x)1 →rwb r(y)1 →ppo r(x)0 closes to w(x)1 →sem r(x)0, which is
        // exactly why PC forbids this message-passing violation.
        assert!(sem.has(id(0), id(3)));
    }
}

#[cfg(test)]
mod order_properties {
    use super::*;
    use crate::coherence::CoherenceOrders;
    use crate::rf::enumerate_reads_from;
    use smc_history::HistoryBuilder;

    /// A deterministic pseudo-random history generator (no external
    /// dependency needed for these little algebraic checks).
    fn histories() -> Vec<smc_history::History> {
        let mut out = Vec::new();
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..40 {
            let mut b = HistoryBuilder::new();
            let procs = 1 + (next() % 3) as usize;
            for p in 0..procs {
                let name = ["p", "q", "r"][p];
                b.add_proc(name);
                let ops = (next() % 4) as usize;
                for _ in 0..ops {
                    let loc = ["x", "y"][(next() % 2) as usize];
                    let val = (next() % 3) as i64;
                    if next() % 2 == 0 {
                        b.write(name, loc, val.max(1));
                    } else {
                        b.read(name, loc, val);
                    }
                }
            }
            out.push(b.build());
        }
        out
    }

    #[test]
    fn algebra_po_ppo_co_sem() {
        for h in histories() {
            let po = program_order(&h);
            let ppo = partial_program_order(&h);
            let plpo = per_location_program_order(&h);
            // ppo ⊆ po⁺ = po (po is transitively closed by construction),
            // and per-location po ⊆ ppo ⊆ po.
            assert!(ppo.is_subrelation(&po), "ppo ⊄ po on\n{h}");
            assert!(plpo.is_subrelation(&ppo), "plpo ⊄ ppo on\n{h}");
            // All three are acyclic.
            assert!(po.is_acyclic() && ppo.is_acyclic() && plpo.is_acyclic());

            let (rfs, _) = enumerate_reads_from(&h, 64);
            for rf in &rfs {
                let co = causal_order(&h, rf);
                // po ⊆ co; co is transitively closed.
                assert!(po.is_subrelation(&co));
                assert_eq!(co.closed(), co);
                let coh = CoherenceOrders::from_single(&h);
                let sem = semi_causal(&h, rf, &ppo, &coh);
                assert!(ppo.is_subrelation(&sem));
                assert_eq!(sem.closed(), sem);
            }
        }
    }
}

//! Best-effort refutation certificates.
//!
//! When a history is disallowed, the most useful artifact is a *cycle*:
//! a set of operations whose required orderings (derived order ∪
//! reads-from legality) cannot all hold in any view. Such a certificate
//! exists whenever the refutation is "structural"; refutations that only
//! emerge from the interplay of several views (e.g. a store order that
//! fails in one view for each choice) have no single-cycle witness and
//! are reported as search-based.
//!
//! Certificates currently cover the models without shared-order
//! enumeration (PRAM, causal memory): for those, the history is
//! disallowed iff **every** reads-from assignment produces a cyclic
//! constraint graph once per-view legality edges are added — and the
//! cycle of the first assignment is a faithful explanation.

use crate::checker::view_op_sets;
use crate::constraints::{assemble_global, BaseOrders, Candidates};
use crate::rf::{enumerate_reads_from, ReadsFrom};
use crate::spec::{GlobalOrder, ModelSpec};
use smc_history::{History, OpId, ProcId};
use smc_relation::scc::cycle_nodes;
use smc_relation::Relation;

/// A refutation certificate: operations that form an unsatisfiable
/// ordering cycle *within one processor's view*, under a specific
/// reads-from assignment.
#[derive(Debug, Clone)]
pub struct CycleCertificate {
    /// The processor whose view cannot be constructed.
    pub proc: ProcId,
    /// Operations on the cycle, ascending by id.
    pub ops: Vec<OpId>,
    /// The reads-from assignment the cycle is relative to.
    pub reads_from: Vec<Option<OpId>>,
}

impl CycleCertificate {
    /// Render the certificate in the paper's notation.
    pub fn render(&self, h: &History) -> String {
        let ops: Vec<String> = self
            .ops
            .iter()
            .map(|&o| h.format_op_subscripted(o))
            .collect();
        format!(
            "no view exists for {}: unsatisfiable ordering cycle among: {}",
            h.proc_name(self.proc),
            ops.join("  ")
        )
    }
}

/// The legality edges a fixed reads-from assignment forces inside
/// processor `p`'s view (only `p`'s own reads appear there): the source
/// write precedes its read, and a read of the initial value precedes
/// every write to its location.
fn legality_edges_for(h: &History, rf: &ReadsFrom, p: ProcId) -> Relation {
    let mut r = Relation::new(h.num_ops());
    for o in h.proc_ops(p) {
        if !o.is_read() {
            continue;
        }
        match rf.source(o.id) {
            None => {
                for w in h.writes_to(o.loc) {
                    r.add(o.id.index(), w.id.index());
                }
            }
            Some(src) => {
                r.add(src.index(), o.id.index());
            }
        }
    }
    r
}

/// Try to produce a cycle certificate for `h` being disallowed by
/// `spec`. Returns `None` when the model needs shared-order enumeration
/// (no single-cycle certificate in general), when the history is in fact
/// satisfiable at this level, or when some assignment is acyclic (the
/// refutation, if any, is search-based).
pub fn explain_disallowed(h: &History, spec: &ModelSpec) -> Option<CycleCertificate> {
    // Only the enumeration-free models have per-assignment certificates.
    let enumeration_free = !spec.identical_views
        && !spec.global_write_order
        && !spec.coherence
        && spec.labeled.is_none()
        && matches!(
            spec.global_order,
            GlobalOrder::ProgramOrder | GlobalOrder::CausalOrder | GlobalOrder::None
        );
    if !enumeration_free {
        return None;
    }
    let base = BaseOrders::new(h);
    let (rfs, truncated) = enumerate_reads_from(h, 4096);
    if truncated {
        return None;
    }
    if rfs.is_empty() {
        // Unexplainable read: certificate is the read itself — but there
        // is no cycle to show; treat as no certificate.
        return None;
    }
    let op_sets = view_op_sets(h, spec.delta);
    let mut first = None;
    for rf in &rfs {
        let g = assemble_global(h, spec, &base, Some(rf), &Candidates::default(), None).ok()?;
        // The assignment is refuted only if SOME view's constraint graph
        // is cyclic (cycles must stay within one view: legality edges of
        // different processors never combine).
        let mut cyclic_view = None;
        #[allow(clippy::needless_range_loop)] // p is also the processor id
        for p in 0..h.num_procs() {
            let proc = ProcId(p as u32);
            let mut gp = g.clone();
            gp.union_with(&legality_edges_for(h, rf, proc));
            let (restricted, back) = gp.restrict(&op_sets[p]);
            let cyc = cycle_nodes(&restricted);
            if !cyc.is_empty() {
                cyclic_view = Some(CycleCertificate {
                    proc,
                    ops: cyc.into_iter().map(|i| OpId(back[i] as u32)).collect(),
                    reads_from: rf.as_slice().to_vec(),
                });
                break;
            }
        }
        match cyclic_view {
            // Structurally satisfiable assignment: no certificate.
            None => return None,
            Some(cert) => {
                if first.is_none() {
                    first = Some(cert);
                }
            }
        }
    }
    first
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check;
    use crate::models;
    use smc_history::litmus::parse_history;

    #[test]
    fn causal_mp_stale_has_a_cycle_certificate() {
        let h = parse_history("p: w(d)1 w(f)1\nq: r(f)1 r(d)0").unwrap();
        assert!(check(&h, &models::causal()).is_disallowed());
        let cert = explain_disallowed(&h, &models::causal()).expect("certificate");
        // The cycle runs through the data write and the stale read.
        assert!(cert.ops.contains(&OpId(0)), "{cert:?}");
        assert!(cert.ops.contains(&OpId(3)), "{cert:?}");
        let text = cert.render(&h);
        assert!(
            text.contains("w_p(d)1") && text.contains("r_q(d)0"),
            "{text}"
        );
    }

    #[test]
    fn pram_mp_stale_has_a_cycle_certificate() {
        let h = parse_history("p: w(d)1 w(f)1\nq: r(f)1 r(d)0").unwrap();
        assert!(check(&h, &models::pram()).is_disallowed());
        assert!(explain_disallowed(&h, &models::pram()).is_some());
    }

    #[test]
    fn allowed_history_has_no_certificate() {
        let h = parse_history("p: w(x)1 r(y)0\nq: w(y)1 r(x)0").unwrap();
        assert!(check(&h, &models::pram()).is_allowed());
        assert!(explain_disallowed(&h, &models::pram()).is_none());
    }

    #[test]
    fn enumeration_models_are_out_of_scope() {
        let h = parse_history("p: w(d)1 w(f)1\nq: r(f)1 r(d)0").unwrap();
        assert!(explain_disallowed(&h, &models::tso()).is_none());
        assert!(explain_disallowed(&h, &models::pc()).is_none());
        assert!(explain_disallowed(&h, &models::sc()).is_none());
    }

    #[test]
    fn certificates_agree_with_the_checker_on_the_corpus_models() {
        // Soundness of the certificate: whenever one exists, the checker
        // must indeed disallow.
        use crate::histgen::{all_histories, GenParams};
        for h in all_histories(&GenParams {
            procs: 2,
            ops_per_proc: 2,
            locs: 2,
            values: 1,
        }) {
            for spec in [models::pram(), models::causal()] {
                if explain_disallowed(&h, &spec).is_some() {
                    assert!(
                        check(&h, &spec).is_disallowed(),
                        "{}: certificate for an allowed history\n{h}",
                        spec.name
                    );
                }
            }
        }
    }
}

//! The three characterization parameters as data.
//!
//! Section 2 of the paper identifies the parameters that, varied
//! systematically, produce the memory models in the literature:
//!
//! 1. **Set of operations** — which remote operations a processor's view
//!    must include ([`OperationSet`]);
//! 2. **Mutual consistency** — cross-view agreement requirements
//!    (the boolean/optional fields of [`ModelSpec`]: identical views, a
//!    global write order, coherence, agreement on labeled operations);
//! 3. **Ordering** — which order derived from the history each view must
//!    respect ([`GlobalOrder`] for constraints that bind every view,
//!    [`OwnerOrder`] for release consistency's weaker rule that only the
//!    issuing processor's own view preserves `→ppo`).
//!
//! A [`ModelSpec`] is a *point in parameter space*; the standard models
//! are constructed in [`crate::models`], and new memories (the paper's
//! Section 7) are just new parameter combinations.

/// Parameter 1: the membership of `δ_p` — which operations of *other*
/// processors must appear in processor `p`'s view (its own operations are
/// always included).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperationSet {
    /// All operations of other processors (`S_{p+a}`): used by sequential
    /// consistency, where everyone observes everything.
    AllOps,
    /// Only the write operations of other processors (`S_{p+w}`): the
    /// plausible minimum, since only writes change the memory state; used
    /// by every weaker model in the paper.
    WritesOnly,
}

/// The order that must be preserved between any two operations *present in
/// a view*, whichever processor issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlobalOrder {
    /// No global ordering requirement.
    None,
    /// Program order `→po` (PRAM, SC).
    ProgramOrder,
    /// Partial program order `→ppo` (TSO): reads may bypass earlier
    /// writes to different locations.
    PartialProgramOrder,
    /// Program order restricted to same-location pairs (coherent-only
    /// memory).
    PerLocationProgramOrder,
    /// The causal order `→co = (po ∪ wb)+` (causal memory).
    CausalOrder,
    /// The semi-causality order `→sem = (ppo ∪ rwb ∪ rrb)+` (processor
    /// consistency). Depends on the enumerated coherence order.
    SemiCausalOrder,
}

impl GlobalOrder {
    /// Whether deriving this order requires a reads-from assignment.
    pub fn needs_reads_from(self) -> bool {
        matches!(
            self,
            GlobalOrder::CausalOrder | GlobalOrder::SemiCausalOrder
        )
    }

    /// Whether deriving this order requires a coherence order.
    pub fn needs_coherence(self) -> bool {
        matches!(self, GlobalOrder::SemiCausalOrder)
    }
}

/// The order preserved only in the *issuing processor's own* view.
///
/// Release consistency requires `o1 →ppo o2` to be respected in `S_p` when
/// both are operations *of p*, while other processors may observe `p`'s
/// ordinary writes in either order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OwnerOrder {
    /// No owner-only requirement (the global order already covers it).
    None,
    /// Program order among the owner's operations.
    ProgramOrder,
    /// Partial program order among the owner's operations.
    PartialProgramOrder,
}

/// Which consistency the *labeled* (synchronization) operations enjoy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabeledModel {
    /// `RC_sc` / weak ordering: labeled operations are sequentially
    /// consistent (one common *legal* order of all labeled operations).
    SequentiallyConsistent,
    /// `RC_pc`: labeled operations are only processor consistent.
    ProcessorConsistent,
    /// Hybrid consistency's weaker requirement: all processors agree on
    /// the relative order of labeled (strong) operations, but the common
    /// order need not be a legal sequence by itself.
    AgreementOnly,
}

/// A memory consistency model as a point in the paper's parameter space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSpec {
    /// Display name (`"SC"`, `"TSO"`, ...), used by litmus expectations.
    pub name: String,
    /// Parameter 1: view membership.
    pub delta: OperationSet,
    /// Mutual consistency: all processors share one common view (SC).
    pub identical_views: bool,
    /// Mutual consistency: all views order *all* writes identically
    /// (TSO's store order).
    pub global_write_order: bool,
    /// Mutual consistency: all views order writes *to each location*
    /// identically (coherence; PC, RC and extensions).
    pub coherence: bool,
    /// Mutual consistency + ordering for labeled operations (release
    /// consistency). Requires `coherence`.
    pub labeled: Option<LabeledModel>,
    /// Parameter 3: the order preserved in every view.
    pub global_order: GlobalOrder,
    /// Parameter 3 (RC): the order preserved only in the owner's view.
    pub owner_order: OwnerOrder,
    /// Release consistency's acquire/release bracketing conditions
    /// (Section 3.4): an ordinary operation following an acquire is
    /// ordered after the write the acquire read; an ordinary operation
    /// preceding a release is ordered before the release, in every view
    /// containing both.
    pub rc_bracketing: bool,
    /// Full fence semantics for labeled operations (weak ordering /
    /// hybrid consistency): every ordinary operation is ordered with
    /// respect to every labeled operation of the same processor, in both
    /// directions, in every view containing both. Strictly stronger than
    /// `rc_bracketing`.
    pub fence_bracketing: bool,
}

impl ModelSpec {
    /// Whether checking this model requires enumerating reads-from
    /// assignments (models whose derived orders mention "the write a read
    /// returns").
    pub fn needs_reads_from(&self) -> bool {
        self.global_order.needs_reads_from()
            || self.rc_bracketing
            || matches!(
                self.labeled,
                Some(LabeledModel::SequentiallyConsistent)
                    | Some(LabeledModel::ProcessorConsistent)
            )
    }

    /// Whether checking this model enumerates per-location coherence
    /// orders.
    pub fn needs_coherence(&self) -> bool {
        self.coherence
    }

    /// A 64-bit hash of the model's *parameter point*, independent of its
    /// display name: two specs get the same key iff every parameter field
    /// matches, so a key identifies the admitted-set semantics. Used as
    /// the model half of the memo-cache key ([`crate::memo`]).
    pub fn param_key(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let fields: [u64; 9] = [
            matches!(self.delta, OperationSet::AllOps) as u64,
            self.identical_views as u64,
            self.global_write_order as u64,
            self.coherence as u64,
            match self.labeled {
                None => 0,
                Some(LabeledModel::SequentiallyConsistent) => 1,
                Some(LabeledModel::ProcessorConsistent) => 2,
                Some(LabeledModel::AgreementOnly) => 3,
            },
            match self.global_order {
                GlobalOrder::None => 0,
                GlobalOrder::ProgramOrder => 1,
                GlobalOrder::PartialProgramOrder => 2,
                GlobalOrder::PerLocationProgramOrder => 3,
                GlobalOrder::CausalOrder => 4,
                GlobalOrder::SemiCausalOrder => 5,
            },
            match self.owner_order {
                OwnerOrder::None => 0,
                OwnerOrder::ProgramOrder => 1,
                OwnerOrder::PartialProgramOrder => 2,
            },
            self.rc_bracketing as u64,
            self.fence_bracketing as u64,
        ];
        let mut h = OFFSET;
        for f in fields {
            for b in f.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        }
        h
    }

    /// Basic well-formedness of the parameter combination.
    pub fn validate(&self) -> Result<(), String> {
        if matches!(
            self.labeled,
            Some(LabeledModel::SequentiallyConsistent) | Some(LabeledModel::ProcessorConsistent)
        ) && !self.coherence
        {
            return Err(format!(
                "{}: release consistency requires coherence even for ordinary operations",
                self.name
            ));
        }
        if self.identical_views && self.delta != OperationSet::AllOps {
            return Err(format!(
                "{}: identical views only make sense when views contain all operations",
                self.name
            ));
        }
        if self.rc_bracketing && self.labeled.is_none() {
            return Err(format!(
                "{}: acquire/release bracketing requires a labeled submodel",
                self.name
            ));
        }
        if self.global_write_order && (self.coherence || self.labeled.is_some()) {
            return Err(format!(
                "{}: a global write order already implies per-location agreement; \
                 combining it with coherence or labeled submodels is not supported",
                self.name
            ));
        }
        if self.labeled.is_some() && !(self.rc_bracketing || self.fence_bracketing) {
            return Err(format!(
                "{}: a labeled submodel without any ordinary/labeled ordering \
                 (bracketing or fences) would leave data unsynchronized",
                self.name
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    #[test]
    fn standard_models_are_well_formed() {
        for m in models::all_models() {
            m.validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn needs_reads_from_tracks_order_choice() {
        assert!(!models::sc().needs_reads_from());
        assert!(!models::tso().needs_reads_from());
        assert!(!models::pram().needs_reads_from());
        assert!(models::causal().needs_reads_from());
        assert!(models::pc().needs_reads_from());
        assert!(models::rc_sc().needs_reads_from());
        assert!(models::rc_pc().needs_reads_from());
    }

    #[test]
    fn param_keys_distinguish_all_registered_models() {
        let keys: Vec<u64> = models::all_models().iter().map(|m| m.param_key()).collect();
        let mut dedup = keys.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len(), "param_key collision");
        // The key ignores the display name.
        let mut renamed = models::sc();
        renamed.name = "Lamport".into();
        assert_eq!(renamed.param_key(), models::sc().param_key());
    }

    #[test]
    fn invalid_combinations_rejected() {
        let mut bad = models::rc_sc();
        bad.coherence = false;
        assert!(bad.validate().is_err());

        let mut bad = models::sc();
        bad.delta = OperationSet::WritesOnly;
        assert!(bad.validate().is_err());

        let mut bad = models::pram();
        bad.rc_bracketing = true;
        assert!(bad.validate().is_err());

        let mut bad = models::tso();
        bad.coherence = true;
        assert!(bad.validate().is_err());
    }
}

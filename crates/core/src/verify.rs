//! Independent validation of checker witnesses.
//!
//! [`verify_witness`] re-derives every requirement of the model directly
//! from the definitions — view membership, legality, reads-from
//! consistency, the assembled ordering constraints, and each mutual
//! consistency condition — without reusing the checker's search. The test
//! suite holds the invariant *every `Allowed` verdict verifies*, which
//! guards the search (pruning, memoization, budget plumbing) against
//! soundness bugs.

use crate::checker::{view_op_sets, Witness};
use crate::coherence::CoherenceOrders;
use crate::constraints::{assemble_global, owner_edges, BaseOrders, Candidates, LabeledCtx};
use crate::rf::ReadsFrom;
use crate::spec::{LabeledModel, ModelSpec};
use crate::view::is_legal_sequence;
use smc_history::{History, OpId};
use smc_relation::BitSet;

fn fail(msg: impl Into<String>) -> Result<(), String> {
    Err(msg.into())
}

/// Validate `witness` as a certificate that `h` is admitted by `spec`.
pub fn verify_witness(h: &History, spec: &ModelSpec, witness: &Witness) -> Result<(), String> {
    spec.validate()?;
    if witness.views.len() != h.num_procs() {
        return fail(format!(
            "expected {} views, witness has {}",
            h.num_procs(),
            witness.views.len()
        ));
    }

    // 1. View membership: each view is a permutation of H_p ∪ δ_p.
    let expected = view_op_sets(h, spec.delta);
    for (p, view) in witness.views.iter().enumerate() {
        let got = BitSet::from_iter(h.num_ops(), view.iter().map(|o| o.index()));
        if got.count() != view.len() {
            return fail(format!("view of P{p} repeats an operation"));
        }
        if got != expected[p] {
            return fail(format!("view of P{p} has the wrong operation set"));
        }
    }

    // 2. Legality of every view.
    for (p, view) in witness.views.iter().enumerate() {
        if !is_legal_sequence(h, view) {
            return fail(format!("view of P{p} is not legal"));
        }
    }

    // 3. Reads-from consistency, if the witness pins an assignment.
    let rf = witness.reads_from.clone().map(ReadsFrom::from_sources);
    if let Some(rf) = &rf {
        for o in h.ops() {
            if !o.is_read() {
                continue;
            }
            match rf.source(o.id) {
                None => {
                    if !o.value.is_initial() {
                        return fail(format!(
                            "read {} returns {} but is attributed to the initial value",
                            o.id, o.value
                        ));
                    }
                }
                Some(w) => {
                    let src = h.op(w);
                    if !src.is_write() || src.loc != o.loc || src.value != o.value {
                        return fail(format!("read {} mis-attributed to {}", o.id, w));
                    }
                }
            }
        }
        for (p, view) in witness.views.iter().enumerate() {
            verify_view_reads_from(h, rf, view).map_err(|e| format!("view of P{p}: {e}"))?;
        }
    } else if spec.needs_reads_from() {
        return fail(format!(
            "{} witnesses must carry a reads-from assignment",
            spec.name
        ));
    }

    // 4. Mutual consistency conditions, checked directly.
    if spec.identical_views {
        for (p, view) in witness.views.iter().enumerate() {
            if view != &witness.views[0] {
                return fail(format!("SC requires identical views; P{p} differs"));
            }
        }
    }
    if spec.global_write_order {
        let store = witness
            .store_order
            .as_ref()
            .ok_or("witness is missing the store order")?;
        verify_projection_is(h, witness, |o| h.op(o).is_write(), store, "store order")?;
    }
    let coh = match &witness.coherence {
        Some(orders) => {
            let coh = CoherenceOrders::new(h, orders.clone());
            for (l, seq) in orders.iter().enumerate() {
                let expect: BitSet = BitSet::from_iter(
                    h.num_ops(),
                    h.writes_to(smc_history::Location(l as u32))
                        .map(|o| o.id.index()),
                );
                let got = BitSet::from_iter(h.num_ops(), seq.iter().map(|o| o.index()));
                if got != expect || got.count() != seq.len() {
                    return fail(format!(
                        "coherence order of location {l} is not a \
                                          permutation of its writes"
                    ));
                }
            }
            for (l, seq) in orders.iter().enumerate() {
                verify_projection_is(
                    h,
                    witness,
                    |o| {
                        let op = h.op(o);
                        op.is_write() && op.loc.index() == l
                    },
                    seq,
                    "coherence order",
                )?;
            }
            Some(coh)
        }
        None => {
            if spec.coherence {
                return fail("witness is missing coherence orders");
            }
            None
        }
    };

    // 5. Labeled submodel conditions.
    let labeled_ctx = match spec.labeled {
        None => None,
        Some(LabeledModel::AgreementOnly) => {
            let t = witness
                .labeled_order
                .as_ref()
                .ok_or("agreement witness is missing the labeled order")?;
            verify_labeled_order(h, witness, t, false)?;
            None
        }
        Some(sub) => {
            let rf = rf.as_ref().expect("checked above");
            let ctx = LabeledCtx::build(h, rf).map_err(|e| format!("{e:?}"))?;
            if sub == LabeledModel::SequentiallyConsistent {
                let t = witness
                    .labeled_order
                    .as_ref()
                    .ok_or("RC_sc witness is missing the labeled order")?;
                verify_labeled_order(h, witness, t, true)?;
            }
            Some(ctx)
        }
    };

    // 6. Ordering constraints: rebuild the same relation the checker used
    // and check every view (plus owner-only edges) respects it.
    let base = BaseOrders::new(h);
    let cand = Candidates {
        store_order: witness.store_order.as_deref(),
        coherence: coh.as_ref(),
        labeled_order: witness.labeled_order.as_deref(),
    };
    let g = assemble_global(h, spec, &base, rf.as_ref(), &cand, labeled_ctx.as_ref())?;
    for (p, view) in witness.views.iter().enumerate() {
        let idx: Vec<usize> = view.iter().map(|o| o.index()).collect();
        if !g.respects(&idx) {
            return fail(format!("view of P{p} violates the ordering constraints"));
        }
        let own = owner_edges(h, spec, &base, p);
        if !own.respects(&idx) {
            return fail(format!("view of P{p} violates its owner-only ordering"));
        }
    }
    Ok(())
}

/// Check that `t` is a permutation of the labeled operations that
/// respects program order, that every view's labeled projection agrees
/// with it, and (for the SC submodel) that it is a legal sequence.
fn verify_labeled_order(
    h: &History,
    witness: &Witness,
    t: &[OpId],
    require_legal: bool,
) -> Result<(), String> {
    let expect = BitSet::from_iter(h.num_ops(), h.labeled_ops().map(|o| o.id.index()));
    let got = BitSet::from_iter(h.num_ops(), t.iter().map(|o| o.index()));
    if got != expect || got.count() != t.len() {
        return fail("labeled order is not a permutation of the labeled ops");
    }
    if require_legal && !is_legal_sequence(h, t) {
        return fail("labeled order is not a legal SC sequence");
    }
    let idx: Vec<usize> = t.iter().map(|o| o.index()).collect();
    if !crate::orders::program_order(h).respects(&idx) {
        return fail("labeled order violates program order");
    }
    for (p, view) in witness.views.iter().enumerate() {
        let proj: Vec<OpId> = view
            .iter()
            .copied()
            .filter(|o| h.op(*o).is_labeled())
            .collect();
        let t_restricted: Vec<OpId> = t.iter().copied().filter(|o| proj.contains(o)).collect();
        if proj != t_restricted {
            return fail(format!(
                "view of P{p} orders labeled ops differently from T"
            ));
        }
    }
    Ok(())
}

/// Check that the most recent preceding same-location write before each
/// read in `view` is exactly its assigned source.
fn verify_view_reads_from(h: &History, rf: &ReadsFrom, view: &[OpId]) -> Result<(), String> {
    let mut last: Vec<Option<OpId>> = vec![None; h.num_locs()];
    for &id in view {
        let o = h.op(id);
        if o.is_write() {
            last[o.loc.index()] = Some(id);
        } else {
            let got = last[o.loc.index()];
            if got != rf.source(id) {
                return fail(format!(
                    "read {} sees {:?} but is assigned {:?}",
                    id,
                    got,
                    rf.source(id)
                ));
            }
        }
    }
    Ok(())
}

/// Check that projecting every view onto `keep` yields exactly `expect`.
fn verify_projection_is(
    h: &History,
    witness: &Witness,
    keep: impl Fn(OpId) -> bool,
    expect: &[OpId],
    what: &str,
) -> Result<(), String> {
    let _ = h;
    for (p, view) in witness.views.iter().enumerate() {
        let proj: Vec<OpId> = view.iter().copied().filter(|&o| keep(o)).collect();
        if proj != expect {
            return fail(format!("view of P{p} disagrees with the {what}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{check, Verdict};
    use crate::models;
    use smc_history::litmus::parse_history;

    fn assert_allowed_and_verified(text: &str, spec: &ModelSpec) -> Witness {
        let h = parse_history(text).unwrap();
        match check(&h, spec) {
            Verdict::Allowed(w) => {
                verify_witness(&h, spec, &w).unwrap_or_else(|e| {
                    panic!("{} witness failed verification: {e}\n{h}", spec.name)
                });
                *w
            }
            other => panic!("{}: expected Allowed, got {other:?}\n{h}", spec.name),
        }
    }

    #[test]
    fn sc_witness_verifies() {
        assert_allowed_and_verified("p: w(x)1\nq: r(x)1 r(x)1", &models::sc());
    }

    #[test]
    fn tso_fig1_witness_verifies() {
        let w = assert_allowed_and_verified("p: w(x)1 r(y)0\nq: w(y)1 r(x)0", &models::tso());
        assert!(w.store_order.is_some());
    }

    #[test]
    fn pram_witness_verifies() {
        assert_allowed_and_verified(
            "p: w(x)1 r(x)1 r(x)2\nq: w(x)2 r(x)2 r(x)1",
            &models::pram(),
        );
    }

    #[test]
    fn corrupted_witness_rejected() {
        let h = parse_history("p: w(x)1\nq: r(x)1").unwrap();
        let spec = models::pram();
        let Verdict::Allowed(w) = check(&h, &spec) else {
            panic!("expected Allowed");
        };
        // Swap the first view's order to break legality or membership.
        let mut bad = (*w).clone();
        bad.views[1].reverse();
        assert!(verify_witness(&h, &spec, &bad).is_err());
        let mut bad2 = (*w).clone();
        bad2.views.pop();
        assert!(verify_witness(&h, &spec, &bad2).is_err());
    }
}

#[cfg(test)]
mod corruption_tests {
    use super::*;
    use crate::checker::{check, Verdict};
    use crate::models;
    use smc_history::litmus::parse_history;

    fn witness_for(text: &str, spec: &ModelSpec) -> (smc_history::History, Witness) {
        let h = parse_history(text).unwrap();
        match check(&h, spec) {
            Verdict::Allowed(w) => (h, *w),
            other => panic!("{}: expected Allowed, got {other:?}", spec.name),
        }
    }

    #[test]
    fn corrupt_store_order_rejected() {
        let spec = models::tso();
        let (h, w) = witness_for("p: w(x)1 r(y)0\nq: w(y)1 r(x)0", &spec);
        let mut bad = w.clone();
        bad.store_order.as_mut().unwrap().reverse();
        assert!(verify_witness(&h, &spec, &bad).is_err());
        let mut missing = w;
        missing.store_order = None;
        assert!(verify_witness(&h, &spec, &missing).is_err());
    }

    #[test]
    fn corrupt_coherence_rejected() {
        let spec = models::pc();
        let (h, w) = witness_for("p: w(x)1 r(x)1 r(x)2\nq: w(x)2", &spec);
        let mut bad = w.clone();
        for seq in bad.coherence.as_mut().unwrap() {
            seq.reverse();
        }
        assert!(verify_witness(&h, &spec, &bad).is_err());
        let mut missing = w;
        missing.coherence = None;
        assert!(verify_witness(&h, &spec, &missing).is_err());
    }

    #[test]
    fn corrupt_labeled_order_rejected() {
        let spec = models::rc_sc();
        let (h, w) = witness_for("q: w(d)1 wl(s)1\np: rl(s)1 r(d)1", &spec);
        let mut bad = w.clone();
        bad.labeled_order.as_mut().unwrap().reverse();
        assert!(verify_witness(&h, &spec, &bad).is_err());
        let mut missing = w;
        missing.labeled_order = None;
        assert!(verify_witness(&h, &spec, &missing).is_err());
    }

    #[test]
    fn corrupt_reads_from_rejected() {
        let spec = models::causal();
        let (h, w) = witness_for("p: w(x)1\nq: r(x)1", &spec);
        let mut bad = w.clone();
        // Attribute the read to the initial value despite returning 1.
        for slot in bad.reads_from.as_mut().unwrap() {
            *slot = None;
        }
        assert!(verify_witness(&h, &spec, &bad).is_err());
        let mut missing = w;
        missing.reads_from = None;
        assert!(verify_witness(&h, &spec, &missing).is_err());
    }

    #[test]
    fn foreign_view_order_rejected() {
        // A view that is a legal sequence but violates the required
        // ordering constraints must fail step 6.
        let spec = models::pram();
        let h = parse_history("p: w(x)1 w(y)1\nq: r(y)0 r(x)0").unwrap();
        let Verdict::Allowed(w) = check(&h, &spec) else {
            panic!("expected Allowed");
        };
        let mut bad = (*w).clone();
        // Force q's view to order p's writes against program order:
        // w(y)1 before w(x)1 with q's reads first stays legal but breaks po.
        bad.views[1] = vec![
            smc_history::OpId(2),
            smc_history::OpId(3),
            smc_history::OpId(1),
            smc_history::OpId(0),
        ];
        assert!(verify_witness(&h, &spec, &bad).is_err());
    }
}

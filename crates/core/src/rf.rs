//! Reads-from resolution.
//!
//! The paper's derived orders (*writes-before*, causal order, the remote
//! writes-/reads-before orders of semi-causality) are phrased in terms of
//! "the write whose value a read returns". When every written value is
//! distinct per location this attribution is forced; in general several
//! writes may have stored the same value and a read of `0` may be
//! explained by the initial state. The checker therefore works relative to
//! a *reads-from assignment* and, where needed, enumerates all consistent
//! assignments.

use smc_history::{History, OpId, Value};

/// A candidate attribution of every read to the write it returns.
///
/// `source[r] = Some(w)` says read `r` returns the value stored by write
/// `w`; `None` says it returns the location's initial value. Entries for
/// write operations are unused (kept `None`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ReadsFrom {
    source: Vec<Option<OpId>>,
}

impl ReadsFrom {
    /// Build from an explicit source vector, indexed by [`OpId`]
    /// (entries for writes must be `None`).
    pub fn from_sources(source: Vec<Option<OpId>>) -> Self {
        ReadsFrom { source }
    }

    /// The source write of read `r` (`None` = initial value).
    #[inline]
    pub fn source(&self, r: OpId) -> Option<OpId> {
        self.source[r.index()]
    }

    /// Raw access, indexed by [`OpId`].
    pub fn as_slice(&self) -> &[Option<OpId>] {
        &self.source
    }
}

/// The candidate source writes for each read of `h`.
///
/// A write `w` is a candidate for read `r` iff they touch the same
/// location and `w` stores exactly the value `r` returns; reads of the
/// initial value additionally admit `None`. A read *may* read its own
/// processor's write (PRAM's Figure 3 relies on this).
fn candidates(h: &History, r: OpId) -> Vec<Option<OpId>> {
    let read = h.op(r);
    debug_assert!(read.is_read());
    let mut out = Vec::new();
    if read.value == Value::INITIAL {
        out.push(None);
    }
    for w in h.writes_to(read.loc) {
        if w.value == read.value {
            out.push(Some(w.id));
        }
    }
    out
}

/// Enumerate every consistent reads-from assignment of `h`, up to `limit`.
///
/// Returns `(assignments, truncated)`. An empty result with
/// `truncated == false` means some read's value is unexplainable by any
/// write (or the initial state) — no memory model in the framework can
/// admit such a history, because every view must be legal.
pub fn enumerate_reads_from(h: &History, limit: usize) -> (Vec<ReadsFrom>, bool) {
    let reads: Vec<OpId> = h
        .ops()
        .iter()
        .filter(|o| o.is_read())
        .map(|o| o.id)
        .collect();
    let per_read: Vec<Vec<Option<OpId>>> = reads.iter().map(|&r| candidates(h, r)).collect();
    if per_read.iter().any(Vec::is_empty) {
        return (Vec::new(), false);
    }

    let mut out = Vec::new();
    let mut current = vec![None; h.num_ops()];
    let mut truncated = false;
    fn rec(
        reads: &[OpId],
        per_read: &[Vec<Option<OpId>>],
        i: usize,
        current: &mut Vec<Option<OpId>>,
        out: &mut Vec<ReadsFrom>,
        limit: usize,
        truncated: &mut bool,
    ) {
        if out.len() >= limit {
            *truncated = true;
            return;
        }
        if i == reads.len() {
            out.push(ReadsFrom {
                source: current.clone(),
            });
            return;
        }
        for &cand in &per_read[i] {
            current[reads[i].index()] = cand;
            rec(reads, per_read, i + 1, current, out, limit, truncated);
            if *truncated {
                return;
            }
        }
        current[reads[i].index()] = None;
    }
    rec(
        &reads,
        &per_read,
        0,
        &mut current,
        &mut out,
        limit,
        &mut truncated,
    );
    // `truncated` may have been set spuriously when the limit was reached
    // exactly at the last assignment; only report truncation if we stopped
    // with work remaining.
    (out, truncated)
}

/// The unique reads-from assignment, if written values are distinct per
/// location (the common litmus-test case).
pub fn unique_reads_from(h: &History) -> Option<ReadsFrom> {
    let (mut v, truncated) = enumerate_reads_from(h, 2);
    if v.len() == 1 && !truncated {
        v.pop()
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smc_history::litmus::parse_history;

    #[test]
    fn unique_when_values_distinct() {
        let h = parse_history("p: w(x)1 r(y)0\nq: w(y)1 r(x)0").unwrap();
        let rf = unique_reads_from(&h).unwrap();
        // Both reads return the initial value.
        let reads: Vec<_> = h.ops().iter().filter(|o| o.is_read()).collect();
        for r in reads {
            assert_eq!(rf.source(r.id), None);
        }
    }

    #[test]
    fn read_maps_to_matching_write() {
        let h = parse_history("p: w(x)1\nq: r(x)1").unwrap();
        let rf = unique_reads_from(&h).unwrap();
        let r = h.ops().iter().find(|o| o.is_read()).unwrap();
        let w = h.ops().iter().find(|o| o.is_write()).unwrap();
        assert_eq!(rf.source(r.id), Some(w.id));
    }

    #[test]
    fn ambiguous_values_enumerate() {
        // Two writes of the same value: the read has two explanations.
        let h = parse_history("p: w(x)5\nq: w(x)5\nr: r(x)5").unwrap();
        let (all, truncated) = enumerate_reads_from(&h, 100);
        assert_eq!(all.len(), 2);
        assert!(!truncated);
        assert!(unique_reads_from(&h).is_none());
    }

    #[test]
    fn zero_read_with_zero_write_has_two_explanations() {
        let h = parse_history("p: w(x)0\nq: r(x)0").unwrap();
        let (all, _) = enumerate_reads_from(&h, 100);
        // Initial value or the explicit write of 0.
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn unexplainable_read_yields_empty() {
        let h = parse_history("p: r(x)7").unwrap();
        let (all, truncated) = enumerate_reads_from(&h, 100);
        assert!(all.is_empty());
        assert!(!truncated);
    }

    #[test]
    fn limit_truncates() {
        let h = parse_history("p: w(x)5\nq: w(x)5\nr: r(x)5 r(x)5").unwrap();
        let (all, truncated) = enumerate_reads_from(&h, 3);
        assert_eq!(all.len(), 3);
        assert!(truncated);
        let (all4, truncated4) = enumerate_reads_from(&h, 4);
        assert_eq!(all4.len(), 4);
        assert!(!truncated4);
    }

    #[test]
    fn own_write_is_a_candidate() {
        let h = parse_history("p: w(x)1 r(x)1").unwrap();
        let rf = unique_reads_from(&h).unwrap();
        let r = &h.ops()[1];
        assert_eq!(rf.source(r.id), Some(h.ops()[0].id));
    }
}

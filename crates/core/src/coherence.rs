//! Per-location write orders (coherence).
//!
//! Several mutual-consistency parameters existentially quantify over a
//! *coherence order*: a total order on the writes to each location that
//! every processor view must respect (Section 3.3's "for each memory
//! location, there is a unique ordering of the writes to that location").
//! [`CoherenceOrders`] is one such candidate; [`enumerate_coherence`]
//! visits all candidates consistent with a base constraint relation.

use crate::budget::Budget;
use smc_history::{History, Location, OpId};
use smc_relation::{linext, BitSet, Relation};
use std::ops::ControlFlow;

/// A total order on the writes to each location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoherenceOrders {
    /// `orders[loc]` lists the writes to `loc`, oldest first.
    orders: Vec<Vec<OpId>>,
    /// `pos[op] = position of op within its location's order` (or
    /// `u32::MAX` for non-writes).
    pos: Vec<u32>,
}

impl CoherenceOrders {
    /// Build from explicit per-location write sequences.
    ///
    /// `orders[l]` must contain exactly the writes of `h` to location `l`.
    pub fn new(h: &History, orders: Vec<Vec<OpId>>) -> Self {
        debug_assert_eq!(orders.len(), h.num_locs());
        let mut pos = vec![u32::MAX; h.num_ops()];
        for seq in &orders {
            for (i, &w) in seq.iter().enumerate() {
                pos[w.index()] = i as u32;
            }
        }
        CoherenceOrders { orders, pos }
    }

    /// The unique coherence order when no location has two writes; callers
    /// with multi-writer locations should use [`enumerate_coherence`].
    /// Falls back to processor-major order for multi-writer locations
    /// (useful only in tests).
    pub fn from_single(h: &History) -> Self {
        let mut orders = vec![Vec::new(); h.num_locs()];
        for o in h.ops() {
            if o.is_write() {
                orders[o.loc.index()].push(o.id);
            }
        }
        Self::new(h, orders)
    }

    /// The writes to `loc`, oldest first.
    pub fn order_of(&self, loc: Location) -> &[OpId] {
        &self.orders[loc.index()]
    }

    /// All per-location orders, indexed by location.
    pub fn all(&self) -> &[Vec<OpId>] {
        &self.orders
    }

    /// `true` if write `a` precedes write `b` in the order of `loc`.
    /// Both must be writes to `loc`.
    #[inline]
    pub fn precedes(&self, loc: Location, a: OpId, b: OpId) -> bool {
        let _ = loc;
        let (pa, pb) = (self.pos[a.index()], self.pos[b.index()]);
        debug_assert!(pa != u32::MAX && pb != u32::MAX);
        pa < pb
    }

    /// The coherence orders as a relation over all operations (all
    /// transitive pairs of each per-location chain).
    pub fn as_relation(&self, num_ops: usize) -> Relation {
        let mut r = Relation::new(num_ops);
        for seq in &self.orders {
            let idx: Vec<usize> = seq.iter().map(|o| o.index()).collect();
            r.add_total_order(&idx);
        }
        r
    }
}

/// Visit every combination of per-location write orders consistent with
/// `base` (a relation over all operations; only its edges between writes
/// to the same location constrain the enumeration).
///
/// The visitor may break to stop early (e.g. once a witness is found).
///
/// The product is streamed — no candidate list is ever materialized, so
/// memory stays flat no matter how many extensions a location admits.
/// Every generated extension charges one node to `budget`; `None` means
/// the budget died mid-enumeration and the remaining combinations were
/// never visited (the caller must treat the result as undecided, not
/// refuted).
pub fn enumerate_coherence<B>(
    h: &History,
    base: &Relation,
    budget: &Budget,
    mut visit: impl FnMut(&CoherenceOrders) -> ControlFlow<B>,
) -> Option<ControlFlow<B>> {
    let write_sets: Vec<BitSet> = (0..h.num_locs())
        .map(|l| {
            let loc = Location(l as u32);
            BitSet::from_iter(h.num_ops(), h.writes_to(loc).map(|o| o.id.index()))
        })
        .collect();
    // A location whose writes are cyclically constrained admits no order
    // at all; detect that up front instead of rediscovering it once per
    // prefix of the product.
    for ws in &write_sets {
        let mut any = false;
        let _ = linext::for_each_linear_extension(base, ws, |_| {
            any = true;
            ControlFlow::Break(())
        });
        if !any {
            return Some(ControlFlow::Continue(()));
        }
    }
    let mut chosen: Vec<Vec<OpId>> = Vec::with_capacity(write_sets.len());
    match product(h, base, budget, &write_sets, &mut chosen, &mut visit) {
        ProductStep::Done => Some(ControlFlow::Continue(())),
        ProductStep::Stop(b) => Some(ControlFlow::Break(b)),
        ProductStep::Exhausted => None,
    }
}

enum ProductStep<B> {
    /// Every combination under this prefix was visited.
    Done,
    /// The visitor broke.
    Stop(B),
    /// The budget ran out mid-generation.
    Exhausted,
}

/// Depth-first product over the locations' linear extensions: one
/// recursion level per location, each level streaming its extensions
/// from [`linext::for_each_linear_extension`].
fn product<B>(
    h: &History,
    base: &Relation,
    budget: &Budget,
    write_sets: &[BitSet],
    chosen: &mut Vec<Vec<OpId>>,
    visit: &mut impl FnMut(&CoherenceOrders) -> ControlFlow<B>,
) -> ProductStep<B> {
    let Some(ws) = write_sets.get(chosen.len()) else {
        return match visit(&CoherenceOrders::new(h, chosen.clone())) {
            ControlFlow::Continue(()) => ProductStep::Done,
            ControlFlow::Break(b) => ProductStep::Stop(b),
        };
    };
    let mut out = ProductStep::Done;
    let _ = linext::for_each_linear_extension(base, ws, |ext| {
        if !budget.try_spend() {
            out = ProductStep::Exhausted;
            return ControlFlow::Break(());
        }
        chosen.push(ext.iter().map(|&i| OpId(i as u32)).collect());
        let step = product(h, base, budget, write_sets, chosen, visit);
        chosen.pop();
        match step {
            ProductStep::Done => ControlFlow::Continue(()),
            other => {
                out = other;
                ControlFlow::Break(())
            }
        }
    });
    out
}

/// Count the coherence-order combinations consistent with `base`, up to
/// `cap`.
pub fn count_coherence(h: &History, base: &Relation, cap: usize) -> usize {
    let mut n = 0;
    let _ = enumerate_coherence(h, base, &Budget::local(u64::MAX), |_| {
        n += 1;
        if n >= cap {
            ControlFlow::Break(())
        } else {
            ControlFlow::<()>::Continue(())
        }
    });
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use smc_history::litmus::parse_history;

    #[test]
    fn single_writer_locations_have_one_order() {
        let h = parse_history("p: w(x)1 w(y)1\nq: r(x)1").unwrap();
        let base = Relation::new(h.num_ops());
        assert_eq!(count_coherence(&h, &base, usize::MAX), 1);
        let coh = CoherenceOrders::from_single(&h);
        assert_eq!(coh.order_of(Location(0)).len(), 1);
        assert_eq!(coh.order_of(Location(1)).len(), 1);
    }

    #[test]
    fn two_writers_two_orders() {
        let h = parse_history("p: w(x)1\nq: w(x)2").unwrap();
        let base = Relation::new(h.num_ops());
        assert_eq!(count_coherence(&h, &base, usize::MAX), 2);
    }

    #[test]
    fn base_constraints_prune() {
        let h = parse_history("p: w(x)1\nq: w(x)2").unwrap();
        // Force w(x)2 before w(x)1.
        let base = Relation::from_edges(h.num_ops(), [(1, 0)]);
        let mut seen = Vec::new();
        let _ = enumerate_coherence(&h, &base, &Budget::local(u64::MAX), |c| {
            seen.push(c.order_of(Location(0)).to_vec());
            ControlFlow::<()>::Continue(())
        });
        assert_eq!(seen, vec![vec![OpId(1), OpId(0)]]);
    }

    #[test]
    fn cartesian_product_across_locations() {
        let h = parse_history("p: w(x)1 w(y)1\nq: w(x)2 w(y)2").unwrap();
        let base = Relation::new(h.num_ops());
        assert_eq!(count_coherence(&h, &base, usize::MAX), 4);
    }

    #[test]
    fn cyclic_base_yields_nothing() {
        let h = parse_history("p: w(x)1\nq: w(x)2").unwrap();
        let base = Relation::from_edges(h.num_ops(), [(0, 1), (1, 0)]);
        assert_eq!(count_coherence(&h, &base, usize::MAX), 0);
    }

    #[test]
    fn precedes_and_relation() {
        let h = parse_history("p: w(x)1 w(x)2\nq: r(x)1").unwrap();
        let coh = CoherenceOrders::new(&h, vec![vec![OpId(0), OpId(1)]]);
        assert!(coh.precedes(Location(0), OpId(0), OpId(1)));
        assert!(!coh.precedes(Location(0), OpId(1), OpId(0)));
        let rel = coh.as_relation(h.num_ops());
        assert!(rel.has(0, 1));
        assert_eq!(rel.num_edges(), 1);
    }

    #[test]
    fn early_break_stops_enumeration() {
        let h = parse_history("p: w(x)1 w(y)1\nq: w(x)2 w(y)2").unwrap();
        let base = Relation::new(h.num_ops());
        let mut n = 0;
        let flow = enumerate_coherence(&h, &base, &Budget::local(u64::MAX), |_| {
            n += 1;
            ControlFlow::Break("stop")
        });
        assert_eq!(n, 1);
        assert!(matches!(flow, Some(ControlFlow::Break("stop"))));
    }

    #[test]
    fn exhausted_budget_reports_none() {
        // 3 + 3 same-location write pairs => more extensions than the
        // budget grants; the enumeration must stop and say so rather
        // than visit a truncated set as if it were complete.
        let h = parse_history("p: w(x)1 w(y)1\nq: w(x)2 w(y)2\nr: w(x)3 w(y)3").unwrap();
        let base = Relation::new(h.num_ops());
        let mut n = 0;
        let flow = enumerate_coherence(&h, &base, &Budget::local(3), |_| {
            n += 1;
            ControlFlow::<()>::Continue(())
        });
        assert!(flow.is_none());
    }
}

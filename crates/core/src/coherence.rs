//! Per-location write orders (coherence).
//!
//! Several mutual-consistency parameters existentially quantify over a
//! *coherence order*: a total order on the writes to each location that
//! every processor view must respect (Section 3.3's "for each memory
//! location, there is a unique ordering of the writes to that location").
//! [`CoherenceOrders`] is one such candidate; [`enumerate_coherence`]
//! visits all candidates consistent with a base constraint relation.

use smc_history::{History, Location, OpId};
use smc_relation::{linext, BitSet, Relation};
use std::ops::ControlFlow;

/// A total order on the writes to each location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoherenceOrders {
    /// `orders[loc]` lists the writes to `loc`, oldest first.
    orders: Vec<Vec<OpId>>,
    /// `pos[op] = position of op within its location's order` (or
    /// `u32::MAX` for non-writes).
    pos: Vec<u32>,
}

impl CoherenceOrders {
    /// Build from explicit per-location write sequences.
    ///
    /// `orders[l]` must contain exactly the writes of `h` to location `l`.
    pub fn new(h: &History, orders: Vec<Vec<OpId>>) -> Self {
        debug_assert_eq!(orders.len(), h.num_locs());
        let mut pos = vec![u32::MAX; h.num_ops()];
        for seq in &orders {
            for (i, &w) in seq.iter().enumerate() {
                pos[w.index()] = i as u32;
            }
        }
        CoherenceOrders { orders, pos }
    }

    /// The unique coherence order when no location has two writes; callers
    /// with multi-writer locations should use [`enumerate_coherence`].
    /// Falls back to processor-major order for multi-writer locations
    /// (useful only in tests).
    pub fn from_single(h: &History) -> Self {
        let mut orders = vec![Vec::new(); h.num_locs()];
        for o in h.ops() {
            if o.is_write() {
                orders[o.loc.index()].push(o.id);
            }
        }
        Self::new(h, orders)
    }

    /// The writes to `loc`, oldest first.
    pub fn order_of(&self, loc: Location) -> &[OpId] {
        &self.orders[loc.index()]
    }

    /// All per-location orders, indexed by location.
    pub fn all(&self) -> &[Vec<OpId>] {
        &self.orders
    }

    /// `true` if write `a` precedes write `b` in the order of `loc`.
    /// Both must be writes to `loc`.
    #[inline]
    pub fn precedes(&self, loc: Location, a: OpId, b: OpId) -> bool {
        let _ = loc;
        let (pa, pb) = (self.pos[a.index()], self.pos[b.index()]);
        debug_assert!(pa != u32::MAX && pb != u32::MAX);
        pa < pb
    }

    /// The coherence orders as a relation over all operations (all
    /// transitive pairs of each per-location chain).
    pub fn as_relation(&self, num_ops: usize) -> Relation {
        let mut r = Relation::new(num_ops);
        for seq in &self.orders {
            let idx: Vec<usize> = seq.iter().map(|o| o.index()).collect();
            r.add_total_order(&idx);
        }
        r
    }
}

/// Visit every combination of per-location write orders consistent with
/// `base` (a relation over all operations; only its edges between writes
/// to the same location constrain the enumeration).
///
/// The visitor may break to stop early (e.g. once a witness is found).
pub fn enumerate_coherence<B>(
    h: &History,
    base: &Relation,
    mut visit: impl FnMut(&CoherenceOrders) -> ControlFlow<B>,
) -> ControlFlow<B> {
    // Collect per-location candidate orders up front; locations with 0 or
    // 1 write have exactly one order and cost nothing.
    let mut per_loc: Vec<Vec<Vec<OpId>>> = Vec::with_capacity(h.num_locs());
    for l in 0..h.num_locs() {
        let loc = Location(l as u32);
        let writes = BitSet::from_iter(h.num_ops(), h.writes_to(loc).map(|o| o.id.index()));
        let mut cands = Vec::new();
        let flow = linext::for_each_linear_extension(base, &writes, |ext| {
            cands.push(ext.iter().map(|&i| OpId(i as u32)).collect::<Vec<_>>());
            ControlFlow::<()>::Continue(())
        });
        debug_assert!(flow.is_continue());
        if cands.is_empty() {
            // Base constraints are cyclic among this location's writes:
            // no coherence order exists at all.
            return ControlFlow::Continue(());
        }
        per_loc.push(cands);
    }

    // Cartesian product over locations.
    let mut choice = vec![0usize; per_loc.len()];
    loop {
        let orders: Vec<Vec<OpId>> = choice
            .iter()
            .zip(&per_loc)
            .map(|(&c, cands)| cands[c].clone())
            .collect();
        visit(&CoherenceOrders::new(h, orders))?;
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == choice.len() {
                return ControlFlow::Continue(());
            }
            choice[i] += 1;
            if choice[i] < per_loc[i].len() {
                break;
            }
            choice[i] = 0;
            i += 1;
        }
    }
}

/// Count the coherence-order combinations consistent with `base`, up to
/// `cap`.
pub fn count_coherence(h: &History, base: &Relation, cap: usize) -> usize {
    let mut n = 0;
    let _ = enumerate_coherence(h, base, |_| {
        n += 1;
        if n >= cap {
            ControlFlow::Break(())
        } else {
            ControlFlow::<()>::Continue(())
        }
    });
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use smc_history::litmus::parse_history;

    #[test]
    fn single_writer_locations_have_one_order() {
        let h = parse_history("p: w(x)1 w(y)1\nq: r(x)1").unwrap();
        let base = Relation::new(h.num_ops());
        assert_eq!(count_coherence(&h, &base, usize::MAX), 1);
        let coh = CoherenceOrders::from_single(&h);
        assert_eq!(coh.order_of(Location(0)).len(), 1);
        assert_eq!(coh.order_of(Location(1)).len(), 1);
    }

    #[test]
    fn two_writers_two_orders() {
        let h = parse_history("p: w(x)1\nq: w(x)2").unwrap();
        let base = Relation::new(h.num_ops());
        assert_eq!(count_coherence(&h, &base, usize::MAX), 2);
    }

    #[test]
    fn base_constraints_prune() {
        let h = parse_history("p: w(x)1\nq: w(x)2").unwrap();
        // Force w(x)2 before w(x)1.
        let base = Relation::from_edges(h.num_ops(), [(1, 0)]);
        let mut seen = Vec::new();
        let _ = enumerate_coherence(&h, &base, |c| {
            seen.push(c.order_of(Location(0)).to_vec());
            ControlFlow::<()>::Continue(())
        });
        assert_eq!(seen, vec![vec![OpId(1), OpId(0)]]);
    }

    #[test]
    fn cartesian_product_across_locations() {
        let h = parse_history("p: w(x)1 w(y)1\nq: w(x)2 w(y)2").unwrap();
        let base = Relation::new(h.num_ops());
        assert_eq!(count_coherence(&h, &base, usize::MAX), 4);
    }

    #[test]
    fn cyclic_base_yields_nothing() {
        let h = parse_history("p: w(x)1\nq: w(x)2").unwrap();
        let base = Relation::from_edges(h.num_ops(), [(0, 1), (1, 0)]);
        assert_eq!(count_coherence(&h, &base, usize::MAX), 0);
    }

    #[test]
    fn precedes_and_relation() {
        let h = parse_history("p: w(x)1 w(x)2\nq: r(x)1").unwrap();
        let coh = CoherenceOrders::new(&h, vec![vec![OpId(0), OpId(1)]]);
        assert!(coh.precedes(Location(0), OpId(0), OpId(1)));
        assert!(!coh.precedes(Location(0), OpId(1), OpId(0)));
        let rel = coh.as_relation(h.num_ops());
        assert!(rel.has(0, 1));
        assert_eq!(rel.num_edges(), 1);
    }

    #[test]
    fn early_break_stops_enumeration() {
        let h = parse_history("p: w(x)1 w(y)1\nq: w(x)2 w(y)2").unwrap();
        let base = Relation::new(h.num_ops());
        let mut n = 0;
        let flow = enumerate_coherence(&h, &base, |_| {
            n += 1;
            ControlFlow::Break("stop")
        });
        assert_eq!(n, 1);
        assert!(matches!(flow, ControlFlow::Break("stop")));
    }
}

//! Search-node budgets: a local fast path over a shareable atomic pool.
//!
//! Every enumeration in the checker (view searches, store/coherence/
//! labeled-order enumeration) charges one unit per search node to a
//! [`Budget`]. A budget is either fully local — a plain counter, the
//! sequential case — or *attached* to a [`SharedBudget`]: a pool of nodes
//! held in an `AtomicU64` that several worker threads draw from in chunks,
//! so a parallel check spends the same total budget as a sequential one
//! without contending on the atomic at every node.
//!
//! A [`SharedBudget`] also carries a cancellation flag. Cancelling makes
//! every attached budget refuse further spending, which surfaces inside
//! the search as exhaustion — the parallel drivers in [`crate::batch`] use
//! this to stop sibling workers early once a verdict is reached, and then
//! discard the cancelled workers' `Exhausted` results.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// How many nodes an attached budget draws from the shared pool at once.
const DEFAULT_CHUNK: u64 = 1024;

/// A pool of search nodes shared across worker threads, plus an
/// early-cancel flag.
#[derive(Debug)]
pub struct SharedBudget {
    remaining: AtomicU64,
    cancelled: AtomicBool,
}

impl SharedBudget {
    /// A pool holding `total` nodes.
    pub fn new(total: u64) -> Arc<Self> {
        Arc::new(SharedBudget {
            remaining: AtomicU64::new(total),
            cancelled: AtomicBool::new(false),
        })
    }

    /// A thread-local [`Budget`] drawing from this pool in chunks.
    pub fn attach(self: &Arc<Self>) -> Budget {
        self.attach_with_chunk(DEFAULT_CHUNK)
    }

    /// [`SharedBudget::attach`] with an explicit chunk size. Smaller
    /// chunks cost more atomic traffic but share the pool more fairly —
    /// the work-stealing scheduler in [`crate::steal`] runs many
    /// short-lived tasks per worker and uses a fraction of the default.
    pub fn attach_with_chunk(self: &Arc<Self>, chunk: u64) -> Budget {
        Budget {
            local: Cell::new(0),
            spent: Cell::new(0),
            chunk: chunk.max(1),
            shared: Some(Arc::clone(self)),
        }
    }

    /// Tell every attached budget to stop spending.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// `true` once [`SharedBudget::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Nodes left in the pool (not counting chunks already handed out).
    pub fn remaining(&self) -> u64 {
        self.remaining.load(Ordering::Relaxed)
    }

    /// Draw up to `chunk` nodes; returns the amount actually granted.
    fn draw(&self, chunk: u64) -> u64 {
        let mut cur = self.remaining.load(Ordering::Relaxed);
        loop {
            if cur == 0 {
                return 0;
            }
            let take = chunk.min(cur);
            match self.remaining.compare_exchange_weak(
                cur,
                cur - take,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return take,
                Err(now) => cur = now,
            }
        }
    }
}

/// A search-node budget held by one thread.
///
/// Spending is a `Cell` decrement on the fast path; only when the local
/// chunk runs dry does an attached budget touch the shared pool. The type
/// is deliberately `!Sync` (interior `Cell`s) — each worker thread
/// attaches its own.
#[derive(Debug)]
pub struct Budget {
    local: Cell<u64>,
    spent: Cell<u64>,
    chunk: u64,
    shared: Option<Arc<SharedBudget>>,
}

impl Budget {
    /// A purely local budget of `n` nodes (the sequential fast path).
    pub fn local(n: u64) -> Self {
        Budget {
            local: Cell::new(n),
            spent: Cell::new(0),
            chunk: DEFAULT_CHUNK,
            shared: None,
        }
    }

    /// Charge one search node. Returns `false` when the budget (local or
    /// shared) is exhausted or the shared pool was cancelled — the caller
    /// must then abandon the search and report exhaustion.
    #[inline]
    pub fn try_spend(&self) -> bool {
        let local = self.local.get();
        if local > 0 {
            // Cancellation must stop even workers still holding a chunk.
            if let Some(shared) = &self.shared {
                if shared.is_cancelled() {
                    return false;
                }
            }
            self.local.set(local - 1);
            self.spent.set(self.spent.get() + 1);
            return true;
        }
        match &self.shared {
            None => false,
            Some(shared) => {
                if shared.is_cancelled() {
                    return false;
                }
                let got = shared.draw(self.chunk);
                if got == 0 {
                    return false;
                }
                self.local.set(got - 1);
                self.spent.set(self.spent.get() + 1);
                true
            }
        }
    }

    /// Nodes this budget has charged so far.
    pub fn spent(&self) -> u64 {
        self.spent.get()
    }

    /// The shared pool this budget draws from, if any.
    pub fn shared(&self) -> Option<&Arc<SharedBudget>> {
        self.shared.as_ref()
    }

    /// `true` if an attached pool was cancelled (a purely local budget is
    /// never cancelled).
    pub fn is_cancelled(&self) -> bool {
        self.shared.as_ref().is_some_and(|s| s.is_cancelled())
    }

    /// Return any unspent local chunk to the shared pool (workers call
    /// this when they finish early so siblings can use the remainder).
    pub fn release(&self) {
        if let Some(shared) = &self.shared {
            let local = self.local.replace(0);
            if local > 0 {
                shared.remaining.fetch_add(local, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_budget_spends_down() {
        let b = Budget::local(3);
        assert!(b.try_spend());
        assert!(b.try_spend());
        assert!(b.try_spend());
        assert!(!b.try_spend());
        assert_eq!(b.spent(), 3);
    }

    #[test]
    fn zero_budget_refuses_immediately() {
        let b = Budget::local(0);
        assert!(!b.try_spend());
        assert_eq!(b.spent(), 0);
    }

    #[test]
    fn shared_pool_is_conserved() {
        let pool = SharedBudget::new(10_000);
        let a = pool.attach();
        let b = pool.attach();
        let mut total = 0u64;
        loop {
            let sa = a.try_spend();
            let sb = b.try_spend();
            total += sa as u64 + sb as u64;
            if !sa && !sb {
                break;
            }
        }
        assert_eq!(total, 10_000);
        assert_eq!(a.spent() + b.spent(), 10_000);
    }

    #[test]
    fn cancel_stops_spending_mid_chunk() {
        let pool = SharedBudget::new(1_000_000);
        let b = pool.attach();
        assert!(b.try_spend());
        pool.cancel();
        assert!(!b.try_spend());
        assert!(b.is_cancelled());
    }

    #[test]
    fn release_returns_unspent_chunk() {
        let pool = SharedBudget::new(DEFAULT_CHUNK);
        let a = pool.attach();
        assert!(a.try_spend()); // draws the whole pool as one chunk
        assert_eq!(pool.remaining(), 0);
        a.release();
        assert_eq!(pool.remaining(), DEFAULT_CHUNK - 1);
        let b = pool.attach();
        assert!(b.try_spend());
    }

    #[test]
    fn threads_share_one_pool() {
        let pool = SharedBudget::new(50_000);
        let spent: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let pool = Arc::clone(&pool);
                    s.spawn(move || {
                        let b = pool.attach();
                        let mut n = 0u64;
                        while b.try_spend() {
                            n += 1;
                        }
                        n
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(spent, 50_000);
    }
}

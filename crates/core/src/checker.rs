//! The decision procedure: is a history admitted by a model?
//!
//! Following Section 2, a history `H` is admitted by a model iff a legal
//! view `S_{p+δp}` exists for every processor, subject to the model's
//! parameters. The checker realizes the existential quantifiers as nested
//! enumerations:
//!
//! 1. **reads-from assignments** (only for models whose derived orders
//!    mention them),
//! 2. **store orders** (TSO's global write agreement),
//! 3. **coherence orders** (per-location write agreement),
//! 4. **labeled orders** (RC_sc's common SC order of labeled operations),
//! 5. a per-processor **legal-extension search** ([`crate::view`]) once
//!    all shared ingredients are fixed — at that point the views decouple
//!    and can be searched independently.
//!
//! Every `Allowed` verdict carries a [`Witness`] that
//! [`crate::verify::verify_witness`] can validate independently of the
//! search. Every enumeration charges a [`crate::budget::Budget`], so the
//! whole check runs under one node limit that can also be drawn from a
//! shared pool by the parallel drivers in [`crate::batch`].

use crate::budget::Budget;
use crate::canon::canonicalize;
use crate::coherence::{enumerate_coherence, CoherenceOrders};
use crate::constraints::{
    assemble_global, owner_edges, BaseOrders, Candidates, LabeledCtx, RcError,
};
use crate::memo::MemoCache;
use crate::rf::{enumerate_reads_from, ReadsFrom};
use crate::spec::{LabeledModel, ModelSpec, OperationSet};
use crate::view::{
    find_legal_extension, for_each_legal_extension, LegalityMode, SearchEnd, SearchOutcome,
    ViewProblem,
};
use smc_history::{History, OpId, ProcId};
use smc_relation::BitSet;
use std::ops::ControlFlow;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Resource limits for a check.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Maximum reads-from assignments to enumerate.
    pub max_rf: usize,
    /// Search-node budget shared across the whole check (view searches,
    /// candidate enumeration).
    pub node_budget: u64,
    /// An optional memo table consulted before (and updated after) each
    /// check: decided verdicts are shared across every history in the
    /// same renaming-symmetry class ([`crate::canon`]). `None` (the
    /// default) keeps the checker's output bit-identical to the
    /// unmemoized search — cached `Allowed` verdicts carry a *translated*
    /// witness, which verifies but need not be the same witness the
    /// search would find.
    pub memo: Option<Arc<MemoCache>>,
    /// Work-stealing split granularity for [`crate::batch::check_parallel`]:
    /// a single view search is prefix-partitioned into about
    /// `jobs × split_prefix_factor` subtrees.
    pub split_prefix_factor: usize,
    /// Maximum store orders [`crate::batch::check_parallel`] collects
    /// up-front when fanning a TSO-style check across workers; above the
    /// cap it falls back to the sequential streaming enumeration.
    pub store_order_cap: usize,
    /// Which parallel engine [`crate::batch::check_parallel`] uses to
    /// split a single view search across workers.
    pub scheduler: SchedulerKind,
    /// Capacity (fingerprint slots) of the shared failed-state set one
    /// work-stealing check allocates; see
    /// [`crate::steal::SharedFailedSet`].
    pub failed_set_capacity: usize,
    /// Adaptive-cutover threshold for [`crate::batch::check_parallel`]:
    /// before spawning any workers, a bounded sequential probe runs under
    /// a budget of this many search nodes. If the probe decides, the
    /// check is over — litmus-sized instances never pay thread-spawn or
    /// shared-pool setup, so `--jobs 4` is never slower than `--jobs 1`
    /// beyond noise. Only when the probe exhausts its budget does the
    /// check fan out, and the wasted work is bounded by this threshold
    /// (the Cilk rule: never parallelize below a measured work
    /// threshold). `0` disables the probe and always fans out.
    pub parallel_cutover: u64,
    /// Which checking backend decides: the exhaustive enumerating
    /// search, the order-constraint saturation engine
    /// ([`crate::saturate`]), or an automatic choice by model support
    /// and history size.
    pub engine: EngineKind,
    /// The `engine: Auto` size threshold: histories with more than this
    /// many operations route to the saturation engine when the model
    /// supports it, mirroring [`CheckConfig::parallel_cutover`]'s
    /// never-pessimize rule — litmus-sized checks keep the exhaustive
    /// path (and its bit-identical verdicts/witnesses), big histories
    /// get the engine that can actually decide them.
    pub engine_cutover: usize,
    /// The `engine: Auto` size threshold for models with *no* shared
    /// write structure (no global write order, no coherence — SC, PRAM,
    /// causal). Their exhaustive searches have no factorial store-order
    /// enumeration to fall into, so the crossover point sits higher
    /// than [`CheckConfig::engine_cutover`]: benchmarks show the
    /// saturation engine ~2.7× slower on 16-op structure-free traces.
    pub engine_cutover_unstructured: usize,
    /// Conflict-driven learning in the saturation engine: derive a
    /// reason cut from every conflict, backjump over unblamed decisions,
    /// and memoize exhausted decision sets in a nogood store so
    /// aliasing-symmetric subtrees are pruned. Disabling falls back to
    /// chronological backtracking (kept as a soundness ablation knob,
    /// property-tested in `tests/saturate_learning.rs`).
    pub saturate_learning: bool,
    /// Luby restart unit for the saturation engine: restart after
    /// `unit × luby(i)` conflicts, keeping learned nogoods and activity
    /// scores. `0` disables restarts.
    pub saturate_restart_unit: u64,
}

/// Which checking backend [`check_with_config`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Always the exhaustive enumerating checker.
    Exhaustive,
    /// Always the order-constraint saturation engine
    /// ([`crate::saturate`]); models it does not support return
    /// [`Verdict::Unsupported`].
    Saturate,
    /// Saturate when [`crate::saturate::supports`] the model and the
    /// history has more than [`CheckConfig::engine_cutover`] operations;
    /// exhaustive otherwise.
    #[default]
    Auto,
}

/// The backend that actually ran a check (reported in
/// [`CheckStats::engine_used`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The exhaustive enumerating checker.
    #[default]
    Exhaustive,
    /// The order-constraint saturation engine.
    Saturate,
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Engine::Exhaustive => "exhaustive",
            Engine::Saturate => "saturate",
        })
    }
}

/// The engine [`crate::batch::check_parallel`] uses to split a single
/// view search across worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Work-stealing frontier scheduler over a shared concurrent
    /// failed-state set ([`crate::steal`]): workers donate and steal
    /// partially-explored subtrees, and every refuted state is pruned
    /// for all workers at once.
    #[default]
    WorkStealing,
    /// The legacy engine: statically prefix-partition the search via
    /// [`crate::view::split_prefixes`], one private failed-state memo
    /// per worker. Kept selectable for ablation benchmarks.
    StaticPrefix,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            max_rf: 4096,
            node_budget: 20_000_000,
            memo: None,
            split_prefix_factor: 4,
            store_order_cap: 16_384,
            scheduler: SchedulerKind::WorkStealing,
            failed_set_capacity: crate::steal::DEFAULT_FAILED_CAPACITY,
            // ~1.2ms of sequential probing at measured search rates — a
            // few times the thread-spawn + failed-set setup cost it can
            // save, while the corpus's litmus-sized checks (tens to a few
            // thousand nodes) always decide inside the probe.
            parallel_cutover: 4096,
            engine: EngineKind::Auto,
            // Corpus litmus tests top out around a dozen operations;
            // above that the exhaustive enumerations start losing to the
            // polynomial-per-decision saturation engine.
            engine_cutover: 16,
            // Without a store order or coherence to enumerate, the
            // exhaustive engine stays competitive to roughly twice that
            // size (BENCH_bighist.json: SC_ops_16 exhaustive beats
            // saturate 2.7×).
            engine_cutover_unstructured: 32,
            saturate_learning: true,
            // Conservative Luby unit: long enough that litmus-sized
            // searches finish inside the first window, short enough to
            // escape heavy-tailed subtrees on 1000-op aliased traces.
            saturate_restart_unit: 256,
        }
    }
}

impl CheckConfig {
    /// This configuration with a fresh memo table of the default
    /// capacity attached.
    pub fn with_memo(self) -> Self {
        CheckConfig {
            memo: Some(Arc::new(MemoCache::default())),
            ..self
        }
    }

    /// The backend this configuration selects for `(h, spec)`.
    pub fn resolve_engine(&self, h: &History, spec: &ModelSpec) -> Engine {
        match self.engine {
            EngineKind::Exhaustive => Engine::Exhaustive,
            EngineKind::Saturate => Engine::Saturate,
            EngineKind::Auto => {
                // Model-aware cutover: models whose exhaustive search
                // enumerates a shared write structure (store orders,
                // coherence orders) blow up earliest; structure-free
                // models keep the exhaustive engine longer.
                let cutover = if spec.global_write_order || spec.coherence {
                    self.engine_cutover
                } else {
                    self.engine_cutover_unstructured
                };
                if crate::saturate::supports(spec) && h.num_ops() > cutover {
                    Engine::Saturate
                } else {
                    Engine::Exhaustive
                }
            }
        }
    }
}

/// The enumeration layer in which a check ran out of budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// The reads-from enumeration was truncated at `max_rf` assignments.
    ReadsFrom,
    /// Enumerating TSO's global store orders.
    StoreOrders,
    /// Enumerating per-location coherence orders.
    CoherenceOrders,
    /// Enumerating common orders of the labeled operations.
    LabeledOrders,
    /// Searching a per-processor legal view.
    ViewSearch,
    /// Propagating order constraints in the saturation engine
    /// ([`crate::saturate`]).
    Saturation,
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Stage::ReadsFrom => "reads-from enumeration",
            Stage::StoreOrders => "store-order enumeration",
            Stage::CoherenceOrders => "coherence-order enumeration",
            Stage::LabeledOrders => "labeled-order enumeration",
            Stage::ViewSearch => "view search",
            Stage::Saturation => "constraint saturation",
        })
    }
}

/// How much work a check did, reported alongside its [`Verdict`].
#[derive(Debug, Clone, Default)]
pub struct CheckStats {
    /// Search nodes charged to the budget.
    pub nodes_spent: u64,
    /// Reads-from assignments the check started on.
    pub rf_assignments_tried: usize,
    /// `true` if the reads-from enumeration hit `max_rf` before listing
    /// every assignment.
    pub rf_truncated: bool,
    /// Wall-clock time of the check.
    pub wall: Duration,
    /// Where the budget ran out, for `Exhausted` verdicts.
    pub exhausted_stage: Option<Stage>,
    /// `true` if the verdict came from the memo table rather than a
    /// search.
    pub memo_hit: bool,
    /// `true` if the work-stealing scheduler actually ran for this
    /// check (as opposed to the sequential or static-prefix paths).
    /// Gates reporting of [`CheckStats::failed_set`]: all-zero counters
    /// from a real stealing run are still meaningful, while counters
    /// from a path that never touched the set are not.
    pub work_stealing_ran: bool,
    /// Counters of the shared failed-state set, when the check ran under
    /// the work-stealing scheduler (all zero otherwise).
    pub failed_set: crate::steal::FailedSetStats,
    /// `true` if [`crate::batch::check_parallel`] answered without
    /// spawning workers: the `jobs == 1` path, or the adaptive cutover's
    /// sequential probe deciding within
    /// [`CheckConfig::parallel_cutover`] nodes. Mirrors the
    /// [`CheckStats::work_stealing_ran`] gating: `false` from a plain
    /// sequential entry point ([`check_with_stats`]) or a memo hit means
    /// "no cutover decision was taken", not "workers ran".
    pub ran_sequential: bool,
    /// Search nodes the cutover probe spent before deciding (counted in
    /// [`CheckStats::nodes_spent`] too), or before giving up and fanning
    /// out. Zero when no probe ran.
    pub probe_nodes: u64,
    /// The backend that produced the verdict. Stays at the default
    /// ([`Engine::Exhaustive`]) on a memo hit, where no engine ran —
    /// [`CheckStats::memo_hit`] disambiguates.
    pub engine_used: Engine,
    /// Closure edges the saturation engine inserted (each also charged
    /// one budget node). Zero under the exhaustive engine.
    pub saturation_steps: u64,
    /// Decisions (reads-from picks, recency-triple orientations, write
    /// pair orderings) the saturation engine's backtracking solver made.
    pub saturation_branches: u64,
    /// Watched-constraint wakeups: reads-from candidates killed plus
    /// recency triples re-examined, each triggered by one inserted edge
    /// (never by a rescan).
    pub saturation_wakeups: u64,
    /// Conflicts the saturation engine's solver hit (including learned
    /// nogood hits).
    pub saturation_conflicts: u64,
    /// Nogoods (exhausted decision prefixes and conflict reason cuts)
    /// learned into the saturation engine's store.
    pub saturation_learned: u64,
    /// Luby restarts the saturation engine performed.
    pub saturation_restarts: u64,
}

/// A certificate that a history is admitted: the per-processor views plus
/// every enumerated shared ingredient that produced them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// One legal view per processor, as sequences of operation ids.
    pub views: Vec<Vec<OpId>>,
    /// TSO's common store order, if the model required one.
    pub store_order: Option<Vec<OpId>>,
    /// Per-location coherence orders, if the model required them.
    pub coherence: Option<Vec<Vec<OpId>>>,
    /// RC_sc's common legal order of labeled operations.
    pub labeled_order: Option<Vec<OpId>>,
    /// The reads-from assignment the check was relative to.
    pub reads_from: Option<Vec<Option<OpId>>>,
}

/// The checker's answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The history is admitted; a witness is attached.
    Allowed(Box<Witness>),
    /// The history is not admitted by the model.
    Disallowed,
    /// The resource budget ran out before the question was decided.
    Exhausted,
    /// The (history, model) combination is outside the checker's scope —
    /// currently only RC checks of histories that access a location with
    /// both labeled and ordinary operations.
    Unsupported(String),
}

impl Verdict {
    /// `true` for [`Verdict::Allowed`].
    pub fn is_allowed(&self) -> bool {
        matches!(self, Verdict::Allowed(_))
    }

    /// `true` for [`Verdict::Disallowed`].
    pub fn is_disallowed(&self) -> bool {
        matches!(self, Verdict::Disallowed)
    }

    /// `Some(true)` / `Some(false)` for decided verdicts, `None`
    /// otherwise.
    pub fn decided(&self) -> Option<bool> {
        match self {
            Verdict::Allowed(_) => Some(true),
            Verdict::Disallowed => Some(false),
            _ => None,
        }
    }
}

/// Check `h` against `spec` with default limits.
pub fn check(h: &History, spec: &ModelSpec) -> Verdict {
    check_with_config(h, spec, &CheckConfig::default())
}

/// Check `h` against `spec` under explicit resource limits.
pub fn check_with_config(h: &History, spec: &ModelSpec, cfg: &CheckConfig) -> Verdict {
    check_with_stats(h, spec, cfg).0
}

/// Check `h` against `spec`, also reporting how much work the check did.
pub fn check_with_stats(h: &History, spec: &ModelSpec, cfg: &CheckConfig) -> (Verdict, CheckStats) {
    let budget = Budget::local(cfg.node_budget);
    check_with_budget(h, spec, cfg, &budget)
}

/// [`check_with_stats`] against a caller-supplied budget — the entry point
/// the batch engine uses to run several checks against one shared pool.
pub(crate) fn check_with_budget(
    h: &History,
    spec: &ModelSpec,
    cfg: &CheckConfig,
    budget: &Budget,
) -> (Verdict, CheckStats) {
    let start = Instant::now();
    // Memoized path: consult the cache under the canonical history key;
    // a hit costs one canonicalization and a witness translation, no
    // search nodes.
    let canon = cfg.memo.as_ref().map(|memo| (memo, canonicalize(h)));
    if let Some((memo, canon)) = &canon {
        if let Some(hit) = memo.lookup(canon.key, spec.param_key()) {
            let stats = CheckStats {
                memo_hit: true,
                wall: start.elapsed(),
                ..CheckStats::default()
            };
            return (MemoCache::rehydrate(canon, hit), stats);
        }
    }
    let spent_before = budget.spent();
    let mut stats = CheckStats::default();
    let verdict = match cfg.resolve_engine(h, spec) {
        Engine::Saturate => {
            stats.engine_used = Engine::Saturate;
            crate::saturate::check_saturate(h, spec, cfg, budget, &mut stats)
        }
        Engine::Exhaustive => run_check(h, spec, cfg, budget, &mut stats),
    };
    stats.nodes_spent = budget.spent() - spent_before;
    stats.wall = start.elapsed();
    if !matches!(verdict, Verdict::Exhausted) {
        stats.exhausted_stage = None;
    }
    if let Some((memo, canon)) = &canon {
        memo.record(canon, spec.param_key(), &verdict);
    }
    (verdict, stats)
}

fn run_check(
    h: &History,
    spec: &ModelSpec,
    cfg: &CheckConfig,
    budget: &Budget,
    stats: &mut CheckStats,
) -> Verdict {
    if let Err(e) = spec.validate() {
        return Verdict::Unsupported(e);
    }
    let base = BaseOrders::new(h);
    let mut exhausted: Option<Stage> = None;

    if spec.needs_reads_from() {
        let (rfs, truncated) = enumerate_reads_from(h, cfg.max_rf);
        stats.rf_truncated = truncated;
        if rfs.is_empty() {
            // No read is explainable at all: no legal views can exist.
            return Verdict::Disallowed;
        }
        for rf in &rfs {
            stats.rf_assignments_tried += 1;
            match check_with_rf(h, spec, &base, Some(rf), budget) {
                Step::Allowed(w) => return Verdict::Allowed(w),
                Step::Disallowed => {}
                Step::Exhausted(stage) => {
                    exhausted = Some(stage);
                    break;
                }
                Step::Unsupported(e) => return Verdict::Unsupported(e),
            }
        }
        if truncated && exhausted.is_none() {
            exhausted = Some(Stage::ReadsFrom);
        }
    } else {
        match check_with_rf(h, spec, &base, None, budget) {
            Step::Allowed(w) => return Verdict::Allowed(w),
            Step::Disallowed => {}
            Step::Exhausted(stage) => exhausted = Some(stage),
            Step::Unsupported(e) => return Verdict::Unsupported(e),
        }
    }
    match exhausted {
        Some(stage) => {
            stats.exhausted_stage = Some(stage);
            Verdict::Exhausted
        }
        None => Verdict::Disallowed,
    }
}

pub(crate) enum Step {
    Allowed(Box<Witness>),
    Disallowed,
    Exhausted(Stage),
    Unsupported(String),
}

/// The operation sets `V_p = H_p ∪ δ_p` for each processor.
pub fn view_op_sets(h: &History, delta: OperationSet) -> Vec<BitSet> {
    (0..h.num_procs())
        .map(|p| {
            BitSet::from_iter(
                h.num_ops(),
                h.ops()
                    .iter()
                    .filter(|o| {
                        o.proc.index() == p
                            || match delta {
                                OperationSet::AllOps => true,
                                OperationSet::WritesOnly => o.is_write(),
                            }
                    })
                    .map(|o| o.id.index()),
            )
        })
        .collect()
}

pub(crate) fn check_with_rf(
    h: &History,
    spec: &ModelSpec,
    base: &BaseOrders,
    rf: Option<&ReadsFrom>,
    budget: &Budget,
) -> Step {
    let legality = match rf {
        Some(rf) => LegalityMode::ByReadsFrom(rf),
        None => LegalityMode::ByValue,
    };

    // Release consistency: build the labeled context once per assignment
    // (the agreement-only submodel needs neither reads-from nor the
    // sync-location discipline).
    let labeled_ctx = if matches!(
        spec.labeled,
        Some(LabeledModel::SequentiallyConsistent) | Some(LabeledModel::ProcessorConsistent)
    ) {
        let Some(rf) = rf else {
            return Step::Unsupported(format!(
                "{}: labeled submodel requires a reads-from assignment",
                spec.name
            ));
        };
        match LabeledCtx::build(h, rf) {
            Ok(ctx) => Some(ctx),
            Err(RcError::MixedLocation(loc)) => {
                return Step::Unsupported(format!(
                    "{}: location `{loc}` is accessed by both labeled and ordinary \
                     operations; the RC checker requires the properly-labeled \
                     discipline (sync locations touched only by labeled operations)",
                    spec.name
                ))
            }
            // This reads-from assignment cannot be an RC witness.
            Err(RcError::AcquireFromOrdinary) => return Step::Disallowed,
        }
    } else {
        None
    };

    // SC's identical-views shortcut: one shared legal sequence of all ops.
    if spec.identical_views {
        let cand = Candidates::default();
        let g = match assemble_global(h, spec, base, rf, &cand, None) {
            Ok(g) => g,
            Err(e) => return Step::Unsupported(e),
        };
        let problem = ViewProblem {
            history: h,
            ops: BitSet::full(h.num_ops()),
            constraints: &g,
            legality,
        };
        return match find_legal_extension(&problem, budget) {
            SearchOutcome::Found(order) => Step::Allowed(Box::new(Witness {
                views: vec![order; h.num_procs()],
                store_order: None,
                coherence: None,
                labeled_order: None,
                reads_from: rf.map(|r| r.as_slice().to_vec()),
            })),
            SearchOutcome::NotFound => Step::Disallowed,
            SearchOutcome::Exhausted => Step::Exhausted(Stage::ViewSearch),
        };
    }

    // Layer 2: store orders (TSO).
    if spec.global_write_order {
        let writes = BitSet::from_iter(
            h.num_ops(),
            h.ops()
                .iter()
                .filter(|o| o.is_write())
                .map(|o| o.id.index()),
        );
        let mut result = Step::Disallowed;
        let flow = smc_relation::linext::for_each_linear_extension(&base.ppo, &writes, |ext| {
            if !budget.try_spend() {
                result = Step::Exhausted(Stage::StoreOrders);
                return ControlFlow::Break(());
            }
            let store: Vec<OpId> = ext.iter().map(|&i| OpId(i as u32)).collect();
            match check_with_store_order(h, spec, base, rf, legality, &store, budget) {
                Step::Disallowed => ControlFlow::Continue(()),
                done => {
                    result = done;
                    ControlFlow::Break(())
                }
            }
        });
        let _ = flow;
        return result;
    }

    // Layer 3: coherence orders (PC, RC, coherent variants).
    if spec.coherence {
        // Any common per-location write order must extend ppo restricted
        // to same-location writes (every view contains all writes and
        // respects at least the owner's ppo there).
        let mut result = Step::Disallowed;
        let flow = enumerate_coherence(h, &base.ppo, budget, |coh| {
            if !budget.try_spend() {
                result = Step::Exhausted(Stage::CoherenceOrders);
                return ControlFlow::Break(());
            }
            match with_coherence(
                h,
                spec,
                base,
                rf,
                legality,
                coh,
                labeled_ctx.as_ref(),
                budget,
            ) {
                Step::Disallowed => ControlFlow::Continue(()),
                done => {
                    result = done;
                    ControlFlow::Break(())
                }
            }
        });
        if flow.is_none() {
            // The budget died while *generating* coherence orders; the
            // unvisited combinations mean `Disallowed` would be a lie.
            return Step::Exhausted(Stage::CoherenceOrders);
        }
        return result;
    }

    // Labeled agreement without coherence (hybrid consistency).
    if spec.labeled == Some(LabeledModel::AgreementOnly) {
        return with_labeled_agreement(h, spec, base, rf, legality, None, budget);
    }

    // No shared orders at all (PRAM, causal): straight to the views.
    let cand = Candidates::default();
    with_candidates(h, spec, base, rf, legality, &cand, None, budget)
}

/// Enumerate the common (agreement-only) orders of the labeled
/// operations: linear extensions of program order restricted to labeled
/// operations, optionally also respecting a fixed coherence order.
fn with_labeled_agreement(
    h: &History,
    spec: &ModelSpec,
    base: &BaseOrders,
    rf: Option<&ReadsFrom>,
    legality: LegalityMode<'_>,
    coh: Option<&CoherenceOrders>,
    budget: &Budget,
) -> Step {
    let labeled = BitSet::from_iter(h.num_ops(), h.labeled_ops().map(|o| o.id.index()));
    let mut cons = base.po.clone();
    if let Some(coh) = coh {
        cons.union_with(&coh.as_relation(h.num_ops()));
    }
    let mut result = Step::Disallowed;
    let flow = smc_relation::linext::for_each_linear_extension(&cons, &labeled, |ext| {
        if !budget.try_spend() {
            result = Step::Exhausted(Stage::LabeledOrders);
            return ControlFlow::Break(());
        }
        let t: Vec<OpId> = ext.iter().map(|&i| OpId(i as u32)).collect();
        let cand = Candidates {
            coherence: coh,
            labeled_order: Some(&t),
            ..Default::default()
        };
        match with_candidates(h, spec, base, rf, legality, &cand, None, budget) {
            Step::Disallowed => ControlFlow::Continue(()),
            done => {
                result = match done {
                    Step::Allowed(mut w) => {
                        w.labeled_order = Some(t);
                        Step::Allowed(w)
                    }
                    other => other,
                };
                ControlFlow::Break(())
            }
        }
    });
    let _ = flow;
    match (result, coh) {
        (r, None) => r,
        (r, Some(coh)) => attach_coherence(r, coh),
    }
}

/// Check the per-view searches under one fixed TSO store order. Shared by
/// the sequential store-order enumeration above and the parallel
/// store-order fan-out in [`crate::batch`].
pub(crate) fn check_with_store_order(
    h: &History,
    spec: &ModelSpec,
    base: &BaseOrders,
    rf: Option<&ReadsFrom>,
    legality: LegalityMode<'_>,
    store: &[OpId],
    budget: &Budget,
) -> Step {
    let cand = Candidates {
        store_order: Some(store),
        ..Default::default()
    };
    attach_store(
        with_candidates(h, spec, base, rf, legality, &cand, None, budget),
        store,
    )
}

fn attach_store(step: Step, store: &[OpId]) -> Step {
    match step {
        Step::Allowed(mut w) => {
            w.store_order = Some(store.to_vec());
            Step::Allowed(w)
        }
        other => other,
    }
}

/// With a coherence order fixed, handle the optional labeled layer and
/// descend to the per-view searches.
#[allow(clippy::too_many_arguments)]
fn with_coherence(
    h: &History,
    spec: &ModelSpec,
    base: &BaseOrders,
    rf: Option<&ReadsFrom>,
    legality: LegalityMode<'_>,
    coh: &CoherenceOrders,
    labeled_ctx: Option<&LabeledCtx>,
    budget: &Budget,
) -> Step {
    match spec.labeled {
        Some(LabeledModel::AgreementOnly) => {
            with_labeled_agreement(h, spec, base, rf, legality, Some(coh), budget)
        }
        Some(LabeledModel::SequentiallyConsistent) => {
            let Some(ctx) = labeled_ctx else {
                return Step::Unsupported(format!(
                    "{}: labeled context missing for an RC_sc check",
                    spec.name
                ));
            };
            // Enumerate the legal SC orders T of the labeled subhistory:
            // legal linear extensions of po_sub ∪ the projected coherence.
            let sub = &ctx.sub;
            let mut cons = crate::orders::program_order(sub);
            cons.union_with(&ctx.project_coherence(coh).as_relation(sub.num_ops()));
            let problem = ViewProblem {
                history: sub,
                ops: BitSet::full(sub.num_ops()),
                constraints: &cons,
                legality: LegalityMode::ByReadsFrom(&ctx.rf_sub),
            };
            let mut result = Step::Disallowed;
            let end = for_each_legal_extension(&problem, budget, |t_sub| {
                let t: Vec<OpId> = t_sub.iter().map(|l| ctx.back[l.index()]).collect();
                let cand = Candidates {
                    coherence: Some(coh),
                    labeled_order: Some(&t),
                    ..Default::default()
                };
                match with_candidates(h, spec, base, rf, legality, &cand, Some(ctx), budget) {
                    Step::Disallowed => ControlFlow::Continue(()),
                    done => ControlFlow::Break((done, t)),
                }
            });
            match end {
                SearchEnd::Completed => {}
                SearchEnd::Exhausted => result = Step::Exhausted(Stage::LabeledOrders),
                SearchEnd::Broke((done, t)) => {
                    result = match done {
                        Step::Allowed(mut w) => {
                            w.labeled_order = Some(t);
                            Step::Allowed(w)
                        }
                        other => other,
                    };
                }
            }
            attach_coherence(result, coh)
        }
        _ => {
            let cand = Candidates {
                coherence: Some(coh),
                ..Default::default()
            };
            attach_coherence(
                with_candidates(h, spec, base, rf, legality, &cand, labeled_ctx, budget),
                coh,
            )
        }
    }
}

fn attach_coherence(step: Step, coh: &CoherenceOrders) -> Step {
    match step {
        Step::Allowed(mut w) => {
            w.coherence = Some(coh.all().to_vec());
            Step::Allowed(w)
        }
        other => other,
    }
}

/// Build the constraint relation for processor `p`'s view under the
/// current candidates: the global relation plus any owner-order edges.
pub(crate) fn proc_constraints(
    h: &History,
    spec: &ModelSpec,
    base: &BaseOrders,
    g: &smc_relation::Relation,
    p: usize,
) -> smc_relation::Relation {
    if matches!(spec.owner_order, crate::spec::OwnerOrder::None) {
        g.clone()
    } else {
        let mut gp = g.clone();
        gp.union_with(&owner_edges(h, spec, base, p));
        gp
    }
}

/// All shared ingredients fixed: assemble the global constraint relation
/// and search each processor's view independently.
#[allow(clippy::too_many_arguments)]
fn with_candidates(
    h: &History,
    spec: &ModelSpec,
    base: &BaseOrders,
    rf: Option<&ReadsFrom>,
    legality: LegalityMode<'_>,
    cand: &Candidates<'_>,
    labeled_ctx: Option<&LabeledCtx>,
    budget: &Budget,
) -> Step {
    let g = match assemble_global(h, spec, base, rf, cand, labeled_ctx) {
        Ok(g) => g,
        Err(e) => return Step::Unsupported(e),
    };
    // A cyclic constraint set can never be extended; reject early.
    if !g.is_acyclic() {
        return Step::Disallowed;
    }
    let op_sets = view_op_sets(h, spec.delta);
    let mut views = Vec::with_capacity(h.num_procs());
    #[allow(clippy::needless_range_loop)] // p is also the processor id
    for p in 0..h.num_procs() {
        let constraints = proc_constraints(h, spec, base, &g, p);
        let problem = ViewProblem {
            history: h,
            ops: op_sets[p].clone(),
            constraints: &constraints,
            legality,
        };
        match find_legal_extension(&problem, budget) {
            SearchOutcome::Found(v) => views.push(v),
            SearchOutcome::NotFound => return Step::Disallowed,
            SearchOutcome::Exhausted => return Step::Exhausted(Stage::ViewSearch),
        }
    }
    Step::Allowed(Box::new(Witness {
        views,
        store_order: cand.store_order.map(<[OpId]>::to_vec),
        coherence: None,
        labeled_order: None,
        reads_from: rf.map(|r| r.as_slice().to_vec()),
    }))
}

/// Render a witness view in the paper's notation
/// (`S_{p+w}: r_p(y)0 w_p(x)1 w_q(y)1`).
pub fn format_view(h: &History, p: ProcId, view: &[OpId]) -> String {
    let ops: Vec<String> = view.iter().map(|&o| h.format_op_subscripted(o)).collect();
    format!("S_{{{}+w}}: {}", h.proc_name(p), ops.join(" "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use smc_history::litmus::parse_history;
    use smc_history::HistoryBuilder;

    #[test]
    fn empty_history_allowed_by_every_model() {
        let h = HistoryBuilder::new().build();
        for m in models::all_models() {
            assert!(check(&h, &m).is_allowed(), "{} rejects empty", m.name);
        }
    }

    #[test]
    fn single_op_history_allowed_by_every_model() {
        let h = parse_history("p: w(x)1").unwrap();
        for m in models::all_models() {
            assert!(check(&h, &m).is_allowed(), "{} rejects single op", m.name);
        }
        let r = parse_history("p: r(x)0").unwrap();
        for m in models::all_models() {
            assert!(
                check(&r, &m).is_allowed(),
                "{} rejects initial read",
                m.name
            );
        }
    }

    #[test]
    fn unexplainable_read_disallowed_everywhere() {
        let h = parse_history("p: r(x)7").unwrap();
        for m in models::all_models() {
            assert!(
                check(&h, &m).is_disallowed(),
                "{} admits a read of a never-written value",
                m.name
            );
        }
    }

    #[test]
    fn tiny_budget_reports_exhausted() {
        let h = parse_history("p: w(x)1 r(y)0\nq: w(y)1 r(x)0").unwrap();
        let cfg = CheckConfig {
            max_rf: 1,
            node_budget: 1,
            ..CheckConfig::default()
        };
        assert_eq!(
            check_with_config(&h, &models::sc(), &cfg),
            Verdict::Exhausted
        );
    }

    #[test]
    fn stats_report_exhaustion_stage_and_spend() {
        let h = parse_history("p: w(x)1 r(y)0\nq: w(y)1 r(x)0").unwrap();
        let cfg = CheckConfig {
            max_rf: 1,
            node_budget: 1,
            ..CheckConfig::default()
        };
        let (v, stats) = check_with_stats(&h, &models::sc(), &cfg);
        assert_eq!(v, Verdict::Exhausted);
        assert_eq!(stats.exhausted_stage, Some(Stage::ViewSearch));
        assert_eq!(stats.nodes_spent, 1);
    }

    #[test]
    fn stats_on_decided_verdicts() {
        let h = parse_history("p: w(x)1 r(y)0\nq: w(y)1 r(x)0").unwrap();
        let cfg = CheckConfig::default();
        let (v, stats) = check_with_stats(&h, &models::sc(), &cfg);
        assert!(v.is_disallowed());
        assert_eq!(stats.exhausted_stage, None);
        assert!(stats.nodes_spent > 0);
        assert!(!stats.rf_truncated);

        let (v, stats) = check_with_stats(&h, &models::causal(), &cfg);
        assert!(v.is_allowed());
        assert!(stats.rf_assignments_tried >= 1);
    }

    #[test]
    fn invalid_spec_reports_unsupported() {
        let mut bad = models::rc_sc();
        bad.coherence = false;
        let h = parse_history("p: w(x)1").unwrap();
        assert!(matches!(check(&h, &bad), Verdict::Unsupported(_)));
    }

    #[test]
    fn view_op_sets_membership() {
        let h = parse_history("p: w(x)1 r(y)0\nq: w(y)1").unwrap();
        let writes_only = view_op_sets(&h, OperationSet::WritesOnly);
        // p's view: both own ops + q's write.
        assert_eq!(writes_only[0].count(), 3);
        // q's view: own write + p's write (not p's read).
        assert_eq!(writes_only[1].count(), 2);
        let all = view_op_sets(&h, OperationSet::AllOps);
        assert_eq!(all[0].count(), 3);
        assert_eq!(all[1].count(), 3);
    }

    #[test]
    fn format_view_uses_paper_notation() {
        let h = parse_history("p: w(x)1\nq: r(x)1").unwrap();
        let s = format_view(&h, ProcId(1), &[OpId(0), OpId(1)]);
        assert_eq!(s, "S_{q+w}: w_p(x)1 r_q(x)1");
    }

    #[test]
    fn verdict_helpers() {
        assert_eq!(Verdict::Disallowed.decided(), Some(false));
        assert_eq!(Verdict::Exhausted.decided(), None);
        assert!(!Verdict::Unsupported("x".into()).is_allowed());
    }

    #[test]
    fn duplicate_values_exercise_rf_enumeration() {
        // Two writes of the same value: only one attribution makes the
        // causal check succeed, and the checker must find it.
        let h = parse_history("p: w(x)5\nq: w(x)5\nr: r(x)5 r(x)5").unwrap();
        assert!(check(&h, &models::causal()).is_allowed());
        assert!(check(&h, &models::sc()).is_allowed());
    }
}

//! Assembly of the per-candidate constraint relation.
//!
//! Once the checker has fixed the existentially-quantified ingredients —
//! a reads-from assignment, a store order, per-location coherence orders,
//! a common order on labeled operations — the model's requirements reduce
//! to a single relation over operation ids that every view must respect
//! (plus the owner-only relation of release consistency). Building that
//! relation in one place lets the checker and the independent witness
//! verifier share the exact same semantics.

use crate::coherence::CoherenceOrders;
use crate::orders;
use crate::rf::ReadsFrom;
use crate::spec::{GlobalOrder, LabeledModel, ModelSpec, OwnerOrder};
use smc_history::{History, OpId};
use smc_relation::Relation;

/// Precomputed context for release consistency's *labeled subhistory*
/// (Section 3.4): the projection of the history onto labeled operations,
/// with id maps in both directions and the projected reads-from.
pub struct LabeledCtx {
    /// The labeled subhistory `H|ℓ`.
    pub sub: History,
    /// `back[l] = global id` of labeled-subhistory operation `l`.
    pub back: Vec<OpId>,
    /// `to_sub[g] = Some(l)` iff global op `g` is labeled.
    pub to_sub: Vec<Option<OpId>>,
    /// Reads-from over the subhistory's ids.
    pub rf_sub: ReadsFrom,
    /// `sync_locs[loc] = true` iff some labeled operation touches `loc`.
    pub sync_locs: Vec<bool>,
}

/// Why a history cannot be checked against a release-consistency model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RcError {
    /// A location is accessed by both labeled and ordinary operations.
    ///
    /// The checker requires the properly-labeled discipline the paper
    /// assumes for RC programs: synchronization locations are accessed
    /// only by labeled operations. Without it, the paper's "labeled
    /// operations are SC/PC" condition is not expressible as a projection.
    MixedLocation(String),
    /// A labeled read returns the value of an *ordinary* write under the
    /// current reads-from assignment, so the labeled subhistory cannot
    /// explain it. The enclosing assignment is simply not a witness
    /// candidate.
    AcquireFromOrdinary,
}

impl LabeledCtx {
    /// Build the labeled context, validating the sync-location discipline
    /// and the reads-from assignment's compatibility with it.
    pub fn build(h: &History, rf: &ReadsFrom) -> Result<LabeledCtx, RcError> {
        let mut sync_locs = vec![false; h.num_locs()];
        for o in h.labeled_ops() {
            sync_locs[o.loc.index()] = true;
        }
        for o in h.ops() {
            if !o.is_labeled() && sync_locs[o.loc.index()] {
                return Err(RcError::MixedLocation(h.loc_name(o.loc).to_owned()));
            }
        }
        let (sub, back) = h.project(|o| o.is_labeled());
        let mut to_sub = vec![None; h.num_ops()];
        for (l, &g) in back.iter().enumerate() {
            to_sub[g.index()] = Some(OpId(l as u32));
        }
        let mut rf_sources = vec![None; sub.num_ops()];
        for o in sub.ops() {
            if o.is_read() {
                let g = back[o.id.index()];
                match rf.source(g) {
                    None => {}
                    Some(src) => match to_sub[src.index()] {
                        Some(l) => rf_sources[o.id.index()] = Some(l),
                        None => return Err(RcError::AcquireFromOrdinary),
                    },
                }
            }
        }
        Ok(LabeledCtx {
            sub,
            back,
            to_sub,
            rf_sub: ReadsFrom::from_sources(rf_sources),
            sync_locs,
        })
    }

    /// Project a global coherence order onto the labeled subhistory.
    /// Labeled writes are exactly the writes to sync locations, so the
    /// projection is total on the subhistory's writes.
    pub fn project_coherence(&self, coh: &CoherenceOrders) -> CoherenceOrders {
        let orders: Vec<Vec<OpId>> = coh
            .all()
            .iter()
            .map(|seq| seq.iter().filter_map(|g| self.to_sub[g.index()]).collect())
            .collect();
        CoherenceOrders::new(&self.sub, orders)
    }

    /// Lift a relation over subhistory ids to global ids.
    pub fn lift(&self, rel: &Relation, num_ops: usize) -> Relation {
        let mut out = Relation::new(num_ops);
        for (a, b) in rel.edges() {
            out.add(self.back[a].index(), self.back[b].index());
        }
        out
    }
}

/// The acquire/release bracketing edges of Section 3.4, as a relation that
/// binds every view containing both endpoints:
///
/// * if ordinary `o` of `p` follows an acquire `o_r` of `p` in program
///   order, and `o_r` reads the write `o_w`, then `o_w → o`;
/// * if ordinary `o` of `p` precedes a release `o_w` of `p` in program
///   order, then `o → o_w`.
///
/// (The paper's statement of the second condition says "o *follows* o_w";
/// that is a typo — release consistency guarantees ordinary operations
/// complete *before* the release that follows them is performed, which is
/// the direction implemented here and the one the Section 5 Bakery
/// analysis relies on.)
pub fn bracketing_edges(h: &History, rf: &ReadsFrom) -> Relation {
    let mut r = Relation::new(h.num_ops());
    for ph in h.procs() {
        for (i, a) in ph.ops.iter().enumerate() {
            if a.is_acquire() {
                if let Some(w) = rf.source(a.id) {
                    for o in &ph.ops[i + 1..] {
                        if !o.is_labeled() {
                            r.add(w.index(), o.id.index());
                        }
                    }
                }
            }
            if !a.is_labeled() {
                for o in &ph.ops[i + 1..] {
                    if o.is_release() {
                        r.add(a.id.index(), o.id.index());
                    }
                }
            }
        }
    }
    r
}

/// The fence edges of weak ordering / hybrid consistency: every ordinary
/// operation is ordered against every labeled operation of the same
/// processor, in program-order direction, in all views containing both.
pub fn fence_edges(h: &History) -> Relation {
    let mut r = Relation::new(h.num_ops());
    for ph in h.procs() {
        for (i, a) in ph.ops.iter().enumerate() {
            for b in &ph.ops[i + 1..] {
                if a.is_labeled() != b.is_labeled() {
                    r.add(a.id.index(), b.id.index());
                }
            }
        }
    }
    r
}

/// The fixed, candidate-independent ingredients for a model check.
pub struct BaseOrders {
    /// `→po`.
    pub po: Relation,
    /// `→ppo`.
    pub ppo: Relation,
}

impl BaseOrders {
    /// Compute program order and partial program order once per history.
    pub fn new(h: &History) -> Self {
        BaseOrders {
            po: orders::program_order(h),
            ppo: orders::partial_program_order(h),
        }
    }
}

/// The candidate shared orders fixed by the current enumeration step.
#[derive(Default)]
pub struct Candidates<'a> {
    /// TSO's single store order over all writes.
    pub store_order: Option<&'a [OpId]>,
    /// Per-location coherence orders.
    pub coherence: Option<&'a CoherenceOrders>,
    /// RC_sc's common legal order of all labeled operations.
    pub labeled_order: Option<&'a [OpId]>,
}

/// Assemble the relation that every view must respect for `spec`, given a
/// reads-from assignment (if the model needs one) and the enumerated
/// candidates.
///
/// Returns an error string if a required ingredient is missing (a checker
/// bug rather than a property of the history).
pub fn assemble_global(
    h: &History,
    spec: &ModelSpec,
    base: &BaseOrders,
    rf: Option<&ReadsFrom>,
    cand: &Candidates<'_>,
    labeled_ctx: Option<&LabeledCtx>,
) -> Result<Relation, String> {
    let need_rf = || rf.ok_or_else(|| format!("{}: reads-from required", spec.name));
    let mut g = match spec.global_order {
        GlobalOrder::None => Relation::new(h.num_ops()),
        GlobalOrder::ProgramOrder => base.po.clone(),
        GlobalOrder::PartialProgramOrder => base.ppo.clone(),
        GlobalOrder::PerLocationProgramOrder => orders::per_location_program_order(h),
        GlobalOrder::CausalOrder => orders::causal_order(h, need_rf()?),
        GlobalOrder::SemiCausalOrder => {
            let coh = cand
                .coherence
                .ok_or_else(|| format!("{}: coherence order required", spec.name))?;
            orders::semi_causal(h, need_rf()?, &base.ppo, coh)
        }
    };
    if spec.global_write_order {
        let store = cand
            .store_order
            .ok_or_else(|| format!("{}: store order required", spec.name))?;
        let idx: Vec<usize> = store.iter().map(|o| o.index()).collect();
        g.add_total_order(&idx);
    }
    if spec.coherence {
        let coh = cand
            .coherence
            .ok_or_else(|| format!("{}: coherence order required", spec.name))?;
        g.union_with(&coh.as_relation(h.num_ops()));
    }
    if spec.rc_bracketing {
        g.union_with(&bracketing_edges(h, need_rf()?));
    }
    if spec.fence_bracketing {
        g.union_with(&fence_edges(h));
    }
    match spec.labeled {
        None => {}
        Some(LabeledModel::SequentiallyConsistent) | Some(LabeledModel::AgreementOnly) => {
            let t = cand
                .labeled_order
                .ok_or_else(|| format!("{}: labeled order required", spec.name))?;
            let idx: Vec<usize> = t.iter().map(|o| o.index()).collect();
            g.add_total_order(&idx);
        }
        Some(LabeledModel::ProcessorConsistent) => {
            let ctx =
                labeled_ctx.ok_or_else(|| format!("{}: labeled context required", spec.name))?;
            let coh = cand
                .coherence
                .ok_or_else(|| format!("{}: coherence order required", spec.name))?;
            let coh_sub = ctx.project_coherence(coh);
            let ppo_sub = orders::partial_program_order(&ctx.sub);
            let sem_sub = orders::semi_causal(&ctx.sub, &ctx.rf_sub, &ppo_sub, &coh_sub);
            g.union_with(&ctx.lift(&sem_sub, h.num_ops()));
        }
    }
    Ok(g)
}

/// The additional constraints that bind only processor `p`'s own view
/// (release consistency's owner-only `→ppo`). Returns edges between `p`'s
/// operations only.
pub fn owner_edges(h: &History, spec: &ModelSpec, base: &BaseOrders, p: usize) -> Relation {
    let mut r = Relation::new(h.num_ops());
    let src = match spec.owner_order {
        OwnerOrder::None => return r,
        OwnerOrder::ProgramOrder => &base.po,
        OwnerOrder::PartialProgramOrder => &base.ppo,
    };
    let ops = h.proc_ops(smc_history::ProcId(p as u32));
    for a in ops {
        for b in ops {
            if src.has(a.id.index(), b.id.index()) {
                r.add(a.id.index(), b.id.index());
            }
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use crate::rf::unique_reads_from;
    use smc_history::litmus::parse_history;

    #[test]
    fn bracketing_orders_data_between_sync() {
        // p: acquire(s) then ordinary write; q released s after data write.
        let h = parse_history(
            "q: w(d)1 wl(s)1\n\
             p: rl(s)1 r(d)1",
        )
        .unwrap();
        let rf = unique_reads_from(&h).unwrap();
        let b = bracketing_edges(&h, &rf);
        // B2: w(d)1 before the release wl(s)1 everywhere.
        assert!(b.has(0, 1));
        // B1: r(d)1 (ordinary, after acquire) after the release the
        // acquire read.
        assert!(b.has(1, 3));
        // No edge touching the acquire itself.
        assert!(!b.has(2, 3) && !b.has(1, 2));
    }

    #[test]
    fn labeled_ctx_rejects_mixed_locations() {
        let h = parse_history("p: wl(s)1 r(s)1").unwrap();
        let rf = unique_reads_from(&h).unwrap();
        assert!(matches!(
            LabeledCtx::build(&h, &rf),
            Err(RcError::MixedLocation(_))
        ));
    }

    #[test]
    fn labeled_ctx_projects_rf() {
        let h = parse_history("p: w(d)1 wl(s)1\nq: rl(s)1 r(d)1").unwrap();
        let rf = unique_reads_from(&h).unwrap();
        let ctx = LabeledCtx::build(&h, &rf).unwrap();
        assert_eq!(ctx.sub.num_ops(), 2);
        // The acquire in the subhistory reads from the release.
        let acq = ctx.sub.ops().iter().find(|o| o.is_read()).unwrap();
        let rel = ctx.sub.ops().iter().find(|o| o.is_write()).unwrap();
        assert_eq!(ctx.rf_sub.source(acq.id), Some(rel.id));
        assert!(ctx.sync_locs[h.loc_by_name("s").unwrap().index()]);
        assert!(!ctx.sync_locs[h.loc_by_name("d").unwrap().index()]);
    }

    #[test]
    fn assemble_requires_ingredients() {
        let h = parse_history("p: w(x)1\nq: r(x)1").unwrap();
        let base = BaseOrders::new(&h);
        // TSO without a store order is a usage error.
        let err = assemble_global(
            &h,
            &models::tso(),
            &base,
            None,
            &Candidates::default(),
            None,
        );
        assert!(err.is_err());
        // PRAM needs nothing beyond po.
        let g = assemble_global(
            &h,
            &models::pram(),
            &base,
            None,
            &Candidates::default(),
            None,
        )
        .unwrap();
        assert_eq!(g.num_edges(), base.po.num_edges());
    }

    #[test]
    fn owner_edges_only_for_rc() {
        let h = parse_history("p: r(x)0 w(y)1\nq: w(z)1").unwrap();
        let base = BaseOrders::new(&h);
        let none = owner_edges(&h, &models::pram(), &base, 0);
        assert_eq!(none.num_edges(), 0);
        let rc = owner_edges(&h, &models::rc_sc(), &base, 0);
        // r(x)0 →ppo w(y)1 is an owner edge for p...
        assert!(rc.has(0, 1));
        // ...and q's ops contribute nothing to p's owner edges.
        let rc_q = owner_edges(&h, &models::rc_sc(), &base, 1);
        assert_eq!(rc_q.num_edges(), 0);
    }
}

//! The shared state-space kernel behind every explorer in this crate.
//!
//! Three engines walk the *same* state space — a view's scheduling state
//! is fully captured by `(scheduled set, last write per location)`:
//!
//! * the sequential view-existence DFS ([`crate::view`]),
//! * the work-stealing parallel engine ([`crate::steal`]), and
//! * the incremental frontier closure ([`crate::frontier`]) that powers
//!   the streaming monitor.
//!
//! Before this module each engine carried its own copy of the successor
//! scan and its own ad-hoc state table (`HashSet`s of cloned bit sets,
//! per-state `Vec` snapshots). The kernel centralizes:
//!
//! * [`Ctx`] — the preprocessed scheduling context, with
//!   [`Ctx::next_ready`] as the *single* successor-generation function
//!   every engine drives (so a scheduling-rule change lands in all of
//!   them at once), plus [`Ctx::apply`]/[`Ctx::undo`] for in-place
//!   state transitions;
//! * [`StateSpace`] — a compact, arena-allocated set of visited states:
//!   fixed-stride rows of packed `u64` words in one flat allocation,
//!   deduplicated exactly via hash buckets (the hash preselects, the
//!   packed row comparison decides);
//! * the packing helpers ([`pack_state`], [`get_u32`], [`set_u32`]) and
//!   hashes ([`state_hash`], [`hash_words`]) shared by the tables.

use crate::view::{LegalityMode, ViewProblem};
use smc_history::{OpId, Value};
use smc_relation::{BitSet, Relation};
use std::collections::HashMap;

/// Sentinel for "no write to this location has been scheduled yet".
pub(crate) const NO_WRITE: u32 = u32::MAX;

/// Preprocessed per-view scheduling context: local indexing, predecessor
/// masks copied out of the constraint relation, and read/location
/// metadata. Everything a DFS (recursive or explicit-stack) or a
/// breadth-first closure needs; the source `ViewProblem`'s constraint
/// relation may be dropped once the context is built, which is what lets
/// [`crate::steal`] keep many contexts alive at once.
pub(crate) struct Ctx<'a> {
    /// Global op index per local index, ascending.
    pub(crate) elems: Vec<usize>,
    h: &'a smc_history::History,
    /// Local predecessor masks.
    pub(crate) preds: Vec<BitSet>,
    legality: LegalityMode<'a>,
    /// Local indices of reads, for dead-state scans.
    reads: Vec<usize>,
    pub(crate) num_locs: usize,
}

impl<'a> Ctx<'a> {
    pub(crate) fn new(p: &ViewProblem<'a>) -> Self {
        Ctx::from_parts(p.history, &p.ops, p.constraints, p.legality)
    }

    /// Build a context directly from the problem's parts. Unlike
    /// `ViewProblem`, the constraint relation is not tied to `'a`: it is
    /// fully copied into the predecessor masks, so a caller may build it
    /// in a short-lived scope (one relation per store order, say).
    pub(crate) fn from_parts(
        history: &'a smc_history::History,
        ops: &BitSet,
        constraints: &Relation,
        legality: LegalityMode<'a>,
    ) -> Self {
        let elems: Vec<usize> = ops.iter().collect();
        let m = elems.len();
        let mut local_of = vec![usize::MAX; history.num_ops()];
        for (i, &e) in elems.iter().enumerate() {
            local_of[e] = i;
        }
        let mut preds: Vec<BitSet> = (0..m).map(|_| BitSet::new(m)).collect();
        for (i, &e) in elems.iter().enumerate() {
            for s in constraints.successors(e).iter() {
                let j = local_of[s];
                if j != usize::MAX && j != i {
                    preds[j].insert(i);
                }
            }
        }
        let reads = (0..m)
            .filter(|&i| history.ops()[elems[i]].is_read())
            .collect();
        Ctx {
            elems,
            h: history,
            preds,
            legality,
            reads,
            num_locs: history.num_locs(),
        }
    }

    #[inline]
    pub(crate) fn op(&self, local: usize) -> &smc_history::Operation {
        &self.h.ops()[self.elems[local]]
    }

    /// The single successor-generation function: the lowest ready local
    /// index `>= from`, where *ready* means unscheduled, with all
    /// predecessors scheduled, and currently legal to schedule. Every
    /// engine enumerates successors by calling this with an advancing
    /// cursor, so the scheduling rule lives in exactly one place.
    #[inline]
    pub(crate) fn next_ready(
        &self,
        placed: &BitSet,
        last_write: &[u32],
        from: usize,
    ) -> Option<usize> {
        (from..self.elems.len()).find(|&i| {
            !placed.contains(i)
                && self.preds[i].is_subset(placed)
                && self.schedulable(i, last_write)
        })
    }

    /// Schedule `local` in place. Returns the displaced last-write slot
    /// for the location so [`Ctx::undo`] can restore it.
    #[inline]
    pub(crate) fn apply(&self, local: usize, placed: &mut BitSet, last_write: &mut [u32]) -> u32 {
        let o = self.op(local);
        let slot = o.loc.index();
        let saved = last_write[slot];
        if o.is_write() {
            last_write[slot] = local as u32;
        }
        placed.insert(local);
        saved
    }

    /// Undo a matching [`Ctx::apply`] (LIFO order).
    #[inline]
    pub(crate) fn undo(
        &self,
        local: usize,
        saved: u32,
        placed: &mut BitSet,
        last_write: &mut [u32],
    ) {
        placed.remove(local);
        let o = self.op(local);
        if o.is_write() {
            last_write[o.loc.index()] = saved;
        }
    }

    /// May `local` be scheduled now, given the per-location last writes?
    pub(crate) fn schedulable(&self, local: usize, last_write: &[u32]) -> bool {
        let o = self.op(local);
        if o.is_write() {
            return true;
        }
        let lw = last_write[o.loc.index()];
        match self.legality {
            LegalityMode::ByValue => {
                if lw == NO_WRITE {
                    o.value == Value::INITIAL
                } else {
                    self.op(lw as usize).value == o.value
                }
            }
            LegalityMode::ByReadsFrom(rf) => match rf.source(OpId(self.elems[local] as u32)) {
                None => lw == NO_WRITE,
                Some(src) => lw != NO_WRITE && self.elems[lw as usize] == src.index(),
            },
        }
    }

    /// `true` if some unscheduled read can never become schedulable.
    pub(crate) fn dead(&self, placed: &BitSet, last_write: &[u32]) -> bool {
        for &r in &self.reads {
            if placed.contains(r) {
                continue;
            }
            let o = self.op(r);
            let lw = last_write[o.loc.index()];
            match self.legality {
                LegalityMode::ByReadsFrom(rf) => {
                    match rf.source(OpId(self.elems[r] as u32)) {
                        None => {
                            // Needs the initial state: dead once any write
                            // to the location has been scheduled.
                            if lw != NO_WRITE {
                                return true;
                            }
                        }
                        Some(src) => {
                            // Dead if the source has been scheduled but is
                            // no longer the most recent write.
                            if let Some(src_local) = self.local_of_global(src.index(), placed) {
                                if lw != src_local as u32 {
                                    return true;
                                }
                            }
                        }
                    }
                }
                LegalityMode::ByValue => {
                    // Dead if the current value mismatches and no pending
                    // write can ever produce the needed value.
                    let current_ok = if lw == NO_WRITE {
                        o.value == Value::INITIAL
                    } else {
                        self.op(lw as usize).value == o.value
                    };
                    if !current_ok {
                        let rescue = (0..self.elems.len()).any(|i| {
                            !placed.contains(i) && {
                                let c = self.op(i);
                                c.is_write() && c.loc == o.loc && c.value == o.value
                            }
                        });
                        if !rescue {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    /// Local index of a scheduled global op, if it is scheduled.
    fn local_of_global(&self, global: usize, placed: &BitSet) -> Option<usize> {
        // elems is ascending, so binary search.
        match self.elems.binary_search(&global) {
            Ok(local) if placed.contains(local) => Some(local),
            _ => None,
        }
    }

    /// Packed-row width (in `u64` words) of one `(scheduled set, last
    /// writes)` state of this context, as produced by [`pack_state`].
    pub(crate) fn packed_stride(&self) -> usize {
        BitSet::new(self.elems.len()).words().len() + self.num_locs.div_ceil(2)
    }
}

/// 64-bit fingerprint of a search state `(scheduled set, last writes)`,
/// salted so states from different search problems sharing one table
/// never alias. FNV-1a over the bit-set words and last-write vector with
/// a murmur-style finalizer so both the high bits (shard selection) and
/// low bits (slot selection) are well mixed. Never returns `0`, which
/// the concurrent table reserves for empty slots.
pub(crate) fn state_hash(salt: u64, placed: &BitSet, last_write: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ salt;
    for &w in placed.words() {
        h = (h ^ w).wrapping_mul(0x0000_0100_0000_01B3);
    }
    for &lw in last_write {
        h = (h ^ u64::from(lw)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    finalize(h)
}

/// [`state_hash`]'s sibling over an already-packed row of `u64` words
/// (same FNV-1a core and finalizer, same never-zero guarantee). Used by
/// the packed tables, where the row *is* the canonical state.
pub fn hash_words(salt: u64, words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ salt;
    for &w in words {
        h = (h ^ w).wrapping_mul(0x0000_0100_0000_01B3);
    }
    finalize(h)
}

#[inline]
fn finalize(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    if h == 0 {
        0x9e37_79b9_7f4a_7c15
    } else {
        h
    }
}

/// Read the `idx`-th `u32` of a row that packs two per `u64` word
/// (low half first).
#[inline]
pub fn get_u32(words: &[u64], idx: usize) -> u32 {
    (words[idx / 2] >> ((idx % 2) * 32)) as u32
}

/// Write the `idx`-th `u32` of a packed row (see [`get_u32`]).
#[inline]
pub fn set_u32(words: &mut [u64], idx: usize, v: u32) {
    let shift = (idx % 2) * 32;
    let w = &mut words[idx / 2];
    *w = (*w & !(0xffff_ffff_u64 << shift)) | (u64::from(v) << shift);
}

/// Serialize a `(scheduled set, last writes)` state into `dst` as packed
/// `u64` words: the bit-set words verbatim, then the last-write `u32`s
/// two per word. The layout is canonical — equal states produce equal
/// rows — so packed rows compare with `==` and hash with
/// [`hash_words`].
pub(crate) fn pack_state(dst: &mut Vec<u64>, placed: &BitSet, last_write: &[u32]) {
    dst.clear();
    dst.extend_from_slice(placed.words());
    let base = dst.len();
    dst.resize(base + last_write.len().div_ceil(2), 0);
    for (i, &lw) in last_write.iter().enumerate() {
        set_u32(&mut dst[base..], i, lw);
    }
}

/// A compact, arena-allocated set of visited states.
///
/// Every state is one fixed-stride row of packed `u64` words, stored
/// back-to-back in a single flat `Vec` — no per-state allocation, no
/// cloned keys. Deduplication is *exact*: a `HashMap` from 64-bit state
/// hash to the (almost always singleton) list of row ids with that hash
/// preselects candidates, and the full row comparison decides. Row ids
/// are dense `u32`s in insertion order, so callers can attach parallel
/// per-state side tables (worklists, seed lists) indexed by id.
///
/// A `stride` of zero is legal and means every state is the empty row:
/// the table then deduplicates everything to at most one state.
#[derive(Debug, Default, Clone)]
pub struct StateSpace {
    stride: usize,
    words: Vec<u64>,
    buckets: HashMap<u64, Vec<u32>>,
    len: usize,
}

impl StateSpace {
    /// An empty table whose rows are `stride` words wide.
    pub fn new(stride: usize) -> Self {
        StateSpace {
            stride,
            words: Vec::new(),
            buckets: HashMap::new(),
            len: 0,
        }
    }

    /// Row width in `u64` words.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of distinct states stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no state has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The packed row of state `id`.
    pub fn row(&self, id: u32) -> &[u64] {
        let start = id as usize * self.stride;
        &self.words[start..start + self.stride]
    }

    /// Is any state stored under this hash? A cheap pre-test that lets
    /// callers skip packing the probe row on the (common) miss path.
    pub fn has_bucket(&self, hash: u64) -> bool {
        self.buckets.contains_key(&hash)
    }

    /// Id of the state equal to `row`, if present. `hash` must be
    /// `hash_words(salt, row)` under the caller's fixed salt.
    pub fn find(&self, hash: u64, row: &[u64]) -> Option<u32> {
        debug_assert_eq!(row.len(), self.stride);
        self.buckets
            .get(&hash)?
            .iter()
            .copied()
            .find(|&id| self.row(id) == row)
    }

    /// Append `row` as a new state and return its id. The caller has
    /// already established absence via [`StateSpace::find`].
    pub fn insert_new(&mut self, hash: u64, row: &[u64]) -> u32 {
        debug_assert_eq!(row.len(), self.stride);
        debug_assert!(self.find(hash, row).is_none());
        let id = u32::try_from(self.len).expect("state space overflow");
        self.words.extend_from_slice(row);
        self.buckets.entry(hash).or_default().push(id);
        self.len += 1;
        id
    }
}

/// Hash salt for [`NogoodStore`] rows, distinct from the scheduling
/// tables' salts so a no-good row and a scheduling state never share a
/// bucket by construction.
const NOGOOD_SALT: u64 = 0x6e6f_676f_6f64;

/// A capacity-bounded, deduplicating store of *no-goods*: fixed-stride
/// packed rows (canonicalized decision sets) that some search has proved
/// unsatisfiable. This is the failed-store face of [`StateSpace`] the
/// saturation engine ([`crate::saturate`]) uses for conflict-driven
/// learning: exhausted decision prefixes and learned reason cuts are
/// stored once and recognized on any later branch that reassembles the
/// same set — including permuted (aliasing-symmetric) orderings, because
/// callers canonicalize rows by sorting before insertion.
#[derive(Debug, Clone)]
pub struct NogoodStore {
    space: StateSpace,
    cap_rows: usize,
}

impl NogoodStore {
    /// An empty store of `stride`-word rows holding at most `cap_rows`
    /// entries (bounding arena memory at `cap_rows × stride × 8` bytes).
    pub fn new(stride: usize, cap_rows: usize) -> Self {
        NogoodStore {
            space: StateSpace::new(stride),
            cap_rows,
        }
    }

    /// Row width in `u64` words.
    pub fn stride(&self) -> usize {
        self.space.stride()
    }

    /// Number of distinct no-goods stored.
    pub fn len(&self) -> usize {
        self.space.len()
    }

    /// `true` if nothing has been stored.
    pub fn is_empty(&self) -> bool {
        self.space.is_empty()
    }

    /// Whether `row` (already canonicalized by the caller) is a known
    /// no-good.
    pub fn contains(&self, row: &[u64]) -> bool {
        self.space.find(hash_words(NOGOOD_SALT, row), row).is_some()
    }

    /// Insert `row` unless it is already present or the store is at
    /// capacity; `true` means a new row was actually stored.
    pub fn insert(&mut self, row: &[u64]) -> bool {
        if self.space.len() >= self.cap_rows {
            return false;
        }
        let hash = hash_words(NOGOOD_SALT, row);
        if self.space.find(hash, row).is_some() {
            return false;
        }
        self.space.insert_new(hash, row);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_packing_round_trips() {
        let mut words = vec![0u64; 3];
        let vals = [7u32, NO_WRITE, 0, 0xdead_beef, 42];
        for (i, &v) in vals.iter().enumerate() {
            set_u32(&mut words, i, v);
        }
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(get_u32(&words, i), v);
        }
        // Overwriting one half leaves its neighbor intact.
        set_u32(&mut words, 2, 99);
        assert_eq!(get_u32(&words, 3), 0xdead_beef);
        assert_eq!(get_u32(&words, 2), 99);
    }

    #[test]
    fn pack_state_is_canonical() {
        let mut a = BitSet::new(70);
        a.insert(3);
        a.insert(69);
        let lw = [NO_WRITE, 5, 0];
        let (mut r1, mut r2) = (Vec::new(), Vec::new());
        pack_state(&mut r1, &a, &lw);
        pack_state(&mut r2, &a.clone(), &lw);
        assert_eq!(r1, r2);
        assert_eq!(r1.len(), a.words().len() + 2);
        // Any component change changes the row.
        let mut b = a.clone();
        b.insert(0);
        pack_state(&mut r2, &b, &lw);
        assert_ne!(r1, r2);
        pack_state(&mut r2, &a, &[NO_WRITE, 5, 1]);
        assert_ne!(r1, r2);
    }

    #[test]
    fn state_space_dedups_exactly() {
        let mut s = StateSpace::new(2);
        let rows: [&[u64]; 3] = [&[1, 2], &[1, 3], &[0, 2]];
        let mut ids = Vec::new();
        for r in rows {
            let h = hash_words(0, r);
            assert_eq!(s.find(h, r), None);
            ids.push(s.insert_new(h, r));
        }
        assert_eq!(ids, [0, 1, 2]);
        assert_eq!(s.len(), 3);
        for (id, r) in ids.iter().zip(rows) {
            assert_eq!(s.row(*id), r);
            assert_eq!(s.find(hash_words(0, r), r), Some(*id));
        }
        // Colliding hashes still compare rows exactly.
        let a: &[u64] = &[9, 9];
        let b: &[u64] = &[9, 8];
        let h = hash_words(0, a);
        let id = s.insert_new(h, a);
        assert_eq!(s.find(h, b), None);
        assert_eq!(s.find(h, a), Some(id));
    }

    #[test]
    fn zero_stride_collapses_to_one_state() {
        let mut s = StateSpace::new(0);
        let h = hash_words(0, &[]);
        assert!(s.is_empty());
        assert_eq!(s.find(h, &[]), None);
        let id = s.insert_new(h, &[]);
        assert_eq!(s.find(h, &[]), Some(id));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn nogood_store_dedups_and_caps() {
        let mut s = NogoodStore::new(3, 2);
        assert!(s.is_empty());
        assert_eq!(s.stride(), 3);
        let a: &[u64] = &[1, 2, 3];
        let b: &[u64] = &[1, 2, 4];
        let c: &[u64] = &[5, 0, 0];
        assert!(!s.contains(a));
        assert!(s.insert(a));
        assert!(s.contains(a));
        assert!(!s.contains(b));
        // Duplicates are rejected without consuming capacity.
        assert!(!s.insert(a));
        assert_eq!(s.len(), 1);
        assert!(s.insert(b));
        // At capacity: further inserts are dropped, lookups still work.
        assert!(!s.insert(c));
        assert_eq!(s.len(), 2);
        assert!(s.contains(b));
        assert!(!s.contains(c));
    }

    #[test]
    fn hashes_never_zero_and_salt_separates() {
        assert_ne!(hash_words(0, &[]), 0);
        assert_ne!(hash_words(0, &[0, 0, 0]), 0);
        assert_ne!(hash_words(1, &[7]), hash_words(2, &[7]));
        let mut p = BitSet::new(4);
        p.insert(1);
        let lw = [NO_WRITE, 0];
        assert_ne!(state_hash(0, &p, &lw), 0);
        assert_ne!(state_hash(1, &p, &lw), state_hash(2, &p, &lw));
    }
}

//! Work-stealing parallel extension search over a shared failed-state set.
//!
//! [`crate::view::find_legal_extension`] answers one view question with a
//! sequential DFS whose pruning power comes almost entirely from
//! memoizing *failed* states. The previous parallel engine statically
//! prefix-partitioned that DFS (`split_prefixes`) and gave every worker a
//! private memo, so workers re-refuted subtrees their siblings had
//! already killed — on memo-heavy "deep funnel" shapes the static split
//! does strictly *more* total work than the sequential search. This
//! module replaces it with two pieces:
//!
//! * [`SharedFailedSet`] — a sharded, open-addressed table of 64-bit
//!   state fingerprints with bounded memory and per-shard clock
//!   eviction. A present key is treated as a *proof* that the state
//!   `(scheduled set, last writes)` has no legal completion: workers
//!   insert a key only after exhaustively refuting the state's whole
//!   subtree, so a hit prunes soundly. Eviction merely forgets proofs
//!   (extra work, never wrong answers). The table stores hashes, not
//!   keys; two distinct states colliding on all 64 bits could prune a
//!   live state, which we accept at ~2⁻⁶⁴ per pair — the same trade
//!   stateless model checkers make for their visited-state tables
//!   (CDSChecker; Norris & Demsky, OOPSLA 2013). The exact-key
//!   sequential path is unaffected.
//! * a frontier scheduler: each worker owns a deque of schedule-prefix
//!   tasks and explores them with an explicit-stack DFS. When siblings
//!   go hungry, a busy worker *donates* the untried children of the
//!   shallowest frame of its stack — the biggest subtrees it still owns
//!   — as new tasks; idle workers steal half a random victim's deque,
//!   oldest (shallowest) tasks first. This is the classic Chase–Lev
//!   discipline (owner works one end, thieves take the other) with a
//!   mutex per deque instead of a lock-free buffer: the workspace
//!   forbids `unsafe`, and the lock is taken once per *task*, not per
//!   search node.
//!
//! Several independent search problems ("units") can share one run: the
//! TSO driver in [`crate::batch`] registers every (store order,
//! processor) view search as a unit, so a worker that finishes its store
//! order steals extension subtrees from stores still in flight instead
//! of idling. Each unit salts the fingerprints with its own id so states
//! from different constraint systems never alias within a run.

use crate::budget::{Budget, SharedBudget};
use crate::kernel::{state_hash, Ctx, NO_WRITE};
use crate::view::{LegalityMode, SearchOutcome, ViewProblem};
use smc_history::{History, OpId};
use smc_prng::SmallRng;
use smc_relation::{BitSet, Relation};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

const NUM_SHARDS: usize = 16;

/// Linear-probe window: an insert that finds the window full evicts a
/// resident fingerprint instead of growing the table.
const PROBE_WINDOW: usize = 8;

/// Chunk size work-stealing workers draw from the shared node pool.
/// Smaller than [`crate::budget`]'s default so many short-lived tasks
/// share the pool fairly.
const STEAL_CHUNK: u64 = 256;

/// Default capacity of the shared failed-state set, in fingerprint
/// slots (8 bytes each, so 512 KiB total). The table is allocated —
/// and zeroed — per parallel check, so the default favors a cheap
/// setup over headroom; litmus-scale searches insert a few hundred
/// fingerprints, and overflowing merely evicts proofs (re-exploration,
/// never wrong verdicts). Raise `CheckConfig::failed_set_capacity` for
/// long exhaustive refutations.
pub const DEFAULT_FAILED_CAPACITY: usize = 1 << 16;

struct FailedShard {
    slots: Vec<AtomicU64>,
    /// Clock hand for in-window eviction.
    hand: AtomicUsize,
}

/// A concurrent set of failed-state fingerprints shared by every worker
/// of a parallel search: sharded, open-addressed `AtomicU64` buckets
/// with a bounded memory cap and per-shard clock eviction.
///
/// The value `0` is reserved for empty slots ([`crate::view`]'s state
/// hash never produces it). All operations are lock-free loads, stores
/// and CAS; there is no resize — at capacity, inserts evict.
pub struct SharedFailedSet {
    shards: Vec<FailedShard>,
    slot_mask: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
}

/// A snapshot of a [`SharedFailedSet`]'s counters, surfaced through
/// [`crate::checker::CheckStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailedSetStats {
    /// Probes that found the fingerprint (subtree pruned).
    pub hits: u64,
    /// Probes that found nothing.
    pub misses: u64,
    /// Fingerprints inserted.
    pub inserts: u64,
    /// Resident fingerprints overwritten by inserts at capacity.
    pub evictions: u64,
}

impl std::fmt::Debug for SharedFailedSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("SharedFailedSet")
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("inserts", &s.inserts)
            .field("evictions", &s.evictions)
            .finish()
    }
}

impl Default for SharedFailedSet {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_FAILED_CAPACITY)
    }
}

impl SharedFailedSet {
    /// A set bounded to roughly `capacity` fingerprint slots (rounded up
    /// to a power of two per shard, with a floor of one probe window).
    pub fn with_capacity(capacity: usize) -> Self {
        let per_shard = capacity
            .div_ceil(NUM_SHARDS)
            .next_power_of_two()
            .max(PROBE_WINDOW);
        SharedFailedSet {
            shards: (0..NUM_SHARDS)
                .map(|_| FailedShard {
                    slots: (0..per_shard).map(|_| AtomicU64::new(0)).collect(),
                    hand: AtomicUsize::new(0),
                })
                .collect(),
            slot_mask: per_shard - 1,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Shard by the high bits, slot by the low bits, so the two indices
    /// are independent.
    #[inline]
    fn place(&self, key: u64) -> (&FailedShard, usize) {
        let shard = &self.shards[(key >> 60) as usize & (NUM_SHARDS - 1)];
        (shard, key as usize & self.slot_mask)
    }

    /// Is `key` a recorded refutation? Counts the hit or miss.
    pub fn contains(&self, key: u64) -> bool {
        let (shard, base) = self.place(key);
        for i in 0..PROBE_WINDOW {
            if shard.slots[(base + i) & self.slot_mask].load(Ordering::Relaxed) == key {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        false
    }

    /// Record `key` as refuted. If the probe window is full, one
    /// resident fingerprint is evicted (clock hand per shard) — losing
    /// a proof costs re-exploration, never correctness.
    pub fn insert(&self, key: u64) {
        let (shard, base) = self.place(key);
        for i in 0..PROBE_WINDOW {
            let slot = &shard.slots[(base + i) & self.slot_mask];
            let cur = slot.load(Ordering::Relaxed);
            if cur == key {
                return;
            }
            if cur == 0
                && slot
                    .compare_exchange(0, key, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            {
                self.inserts.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        let victim = shard.hand.fetch_add(1, Ordering::Relaxed) % PROBE_WINDOW;
        shard.slots[(base + victim) & self.slot_mask].store(key, Ordering::Relaxed);
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the hit/miss/insert/eviction counters.
    pub fn stats(&self) -> FailedSetStats {
        FailedSetStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// One independent extension-search problem registered with a scheduler
/// run: a preprocessed [`Ctx`] plus the fingerprint salt that keeps its
/// states from aliasing other units' states in the shared set.
pub(crate) struct Unit<'a> {
    ctx: Ctx<'a>,
    salt: u64,
}

impl<'a> Unit<'a> {
    pub(crate) fn new(p: &ViewProblem<'a>, salt: u64) -> Self {
        Unit {
            ctx: Ctx::from_parts(p.history, &p.ops, p.constraints, p.legality),
            salt,
        }
    }

    /// Build a unit without a `ViewProblem`, so the constraint relation
    /// may live in a shorter scope (e.g. one relation per store order).
    pub(crate) fn from_parts(
        history: &'a History,
        ops: &BitSet,
        constraints: &Relation,
        legality: LegalityMode<'a>,
        salt: u64,
    ) -> Self {
        Unit {
            ctx: Ctx::from_parts(history, ops, constraints, legality),
            salt,
        }
    }
}

/// How a scheduler run reacts to per-unit results. Implementations
/// combine units into an overall verdict (single view, AND over
/// processors, OR over store orders of AND over processors).
pub(crate) trait StealDriver: Sync {
    /// A unit found a complete legal extension (global op ids). Return
    /// `true` to cancel the whole run because the overall question is
    /// decided.
    fn found(&self, unit: usize, order: Vec<OpId>) -> bool;
    /// Every task of `unit` completed without a witness: the unit's
    /// whole space is refuted. Only called when no task of the unit was
    /// aborted. Return `true` to cancel the run.
    fn refuted(&self, unit: usize) -> bool;
    /// `true` if tasks of this unit have become moot and should be
    /// dropped unprocessed (e.g. a sibling processor of the same store
    /// order was refuted).
    fn skip(&self, unit: usize) -> bool;
}

/// A schedule prefix (local op indices) of one unit, to be extended by
/// an explicit-stack DFS.
struct Task {
    unit: u32,
    prefix: Vec<u32>,
}

struct Deque {
    tasks: Mutex<VecDeque<Task>>,
    /// Mirror of the queue length, so emptiness checks (donation
    /// heuristic, steal scans) don't take the lock.
    len: AtomicUsize,
}

impl Deque {
    fn new() -> Self {
        Deque {
            tasks: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<Task>> {
        match self.tasks.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn is_empty(&self) -> bool {
        self.len.load(Ordering::SeqCst) == 0
    }

    /// Owner end: newest (deepest) task.
    fn pop_back(&self) -> Option<Task> {
        let mut q = self.lock();
        let t = q.pop_back();
        self.len.store(q.len(), Ordering::SeqCst);
        t
    }

    fn push_back_many(&self, ts: Vec<Task>) {
        let mut q = self.lock();
        for t in ts {
            q.push_back(t);
        }
        self.len.store(q.len(), Ordering::SeqCst);
    }

    /// Thief end: take the oldest (shallowest, biggest) half.
    fn steal_front_half(&self) -> Vec<Task> {
        let mut q = self.lock();
        let n = q.len();
        if n == 0 {
            return Vec::new();
        }
        let take = n.div_ceil(2);
        let taken: Vec<Task> = q.drain(..take).collect();
        self.len.store(q.len(), Ordering::SeqCst);
        taken
    }
}

struct RunState<'u, 'a> {
    units: &'u [Unit<'a>],
    deques: Vec<Deque>,
    /// Queued + claimed-but-unfinished tasks; the run drains when this
    /// hits zero. Incremented *before* a task is pushed.
    work: AtomicU64,
    /// Unfinished tasks per unit; a unit whose counter drains without a
    /// witness or an abort is refuted.
    outstanding: Vec<AtomicUsize>,
    unit_found: Vec<AtomicBool>,
    /// Workers currently looking for something to steal; busy workers
    /// donate subtrees while this is nonzero.
    hungry: AtomicUsize,
    /// Stop everything: a driver decided the run, or the budget died.
    abort: AtomicBool,
    /// Set only on genuine budget exhaustion (not driver cancellation).
    exhausted: AtomicBool,
}

/// How a scheduler run ended.
pub(crate) struct RunEnd {
    /// The node budget ran out before the search space was covered.
    pub(crate) exhausted: bool,
    /// Search nodes charged across all workers.
    pub(crate) nodes: u64,
}

/// Run every unit to a conclusion (or until the driver cancels / the
/// budget dies) on `jobs` worker threads that steal from each other.
pub(crate) fn run_units<D: StealDriver + ?Sized>(
    units: &[Unit<'_>],
    driver: &D,
    jobs: usize,
    pool: &Arc<SharedBudget>,
    failed: &SharedFailedSet,
) -> RunEnd {
    if units.is_empty() {
        return RunEnd {
            exhausted: false,
            nodes: 0,
        };
    }
    // Oversubscription clamp, the `check_parallel` sibling of
    // `check_batch`'s `jobs.min(pairs.len())` (crates/core/src/batch.rs):
    // never spawn more workers than the run has view operations. When the
    // clamp bites, the whole search space has fewer ops than workers — a
    // tree of at most `total_ops!` nodes — so surplus workers could only
    // pay spawn + pool-attach + cancel overhead and then starve in `hunt`.
    let total_ops: usize = units.iter().map(|u| u.ctx.elems.len()).sum();
    let jobs = jobs.max(1).min(total_ops.max(1));
    let state = RunState {
        units,
        deques: (0..jobs).map(|_| Deque::new()).collect(),
        work: AtomicU64::new(units.len() as u64),
        outstanding: units.iter().map(|_| AtomicUsize::new(1)).collect(),
        unit_found: units.iter().map(|_| AtomicBool::new(false)).collect(),
        hungry: AtomicUsize::new(0),
        abort: AtomicBool::new(false),
        exhausted: AtomicBool::new(false),
    };
    for (u, deque) in (0..units.len()).zip((0..jobs).cycle()) {
        state.deques[deque].push_back_many(vec![Task {
            unit: u as u32,
            prefix: Vec::new(),
        }]);
    }
    let nodes = AtomicU64::new(0);
    std::thread::scope(|s| {
        for id in 0..jobs {
            let state = &state;
            let nodes = &nodes;
            s.spawn(move || worker(id, state, driver, pool, failed, nodes));
        }
    });
    RunEnd {
        exhausted: state.exhausted.load(Ordering::SeqCst),
        nodes: nodes.load(Ordering::SeqCst),
    }
}

fn worker<D: StealDriver + ?Sized>(
    id: usize,
    state: &RunState<'_, '_>,
    driver: &D,
    pool: &Arc<SharedBudget>,
    failed: &SharedFailedSet,
    nodes: &AtomicU64,
) {
    let budget = pool.attach_with_chunk(STEAL_CHUNK);
    let mut rng = SmallRng::seed_from_u64(0x57ea1 ^ (id as u64).wrapping_mul(0x9E37_79B9));
    loop {
        if state.abort.load(Ordering::SeqCst) {
            break;
        }
        let task = match state.deques[id].pop_back() {
            Some(t) => Some(t),
            None => hunt(state, id, &mut rng),
        };
        let Some(task) = task else {
            break;
        };
        let unit = task.unit as usize;
        if state.unit_found[unit].load(Ordering::SeqCst) || driver.skip(unit) {
            finish_task(state, driver, unit, pool);
            continue;
        }
        match run_task(&task, state, driver, failed, &budget, id) {
            TaskEnd::Done => finish_task(state, driver, unit, pool),
            TaskEnd::Decided => {
                state.abort.store(true, Ordering::SeqCst);
                pool.cancel();
                break;
            }
            TaskEnd::Exhausted => {
                // A cancelled pool also surfaces as a failed spend; only
                // a genuinely dry pool counts as exhaustion.
                if !pool.is_cancelled() && !state.abort.load(Ordering::SeqCst) {
                    state.exhausted.store(true, Ordering::SeqCst);
                }
                state.abort.store(true, Ordering::SeqCst);
                break;
            }
            TaskEnd::Abandoned => break,
        }
    }
    budget.release();
    nodes.fetch_add(budget.spent(), Ordering::SeqCst);
}

/// Look for work on other deques, spinning until something shows up,
/// every task drains, or the run aborts.
fn hunt(state: &RunState<'_, '_>, id: usize, rng: &mut SmallRng) -> Option<Task> {
    let n = state.deques.len();
    state.hungry.fetch_add(1, Ordering::SeqCst);
    let got = loop {
        if state.abort.load(Ordering::SeqCst) {
            break None;
        }
        if let Some(t) = try_steal(state, id, rng) {
            break Some(t);
        }
        if state.work.load(Ordering::SeqCst) == 0 {
            break None;
        }
        if n == 1 {
            // Single worker: nothing to steal from, but claimed work may
            // still be running... which would be our own. Drain check
            // above is authoritative; just retry our own deque.
            if let Some(t) = state.deques[id].pop_back() {
                break Some(t);
            }
        }
        std::thread::yield_now();
    };
    state.hungry.fetch_sub(1, Ordering::SeqCst);
    got
}

/// One randomized sweep over the other deques, taking half of the first
/// non-empty victim (oldest tasks first). The first stolen task is
/// returned to run now; the rest go on our own deque.
fn try_steal(state: &RunState<'_, '_>, id: usize, rng: &mut SmallRng) -> Option<Task> {
    let n = state.deques.len();
    if n <= 1 {
        return None;
    }
    let start = rng.gen_range(0..n);
    for k in 0..n {
        let v = (start + k) % n;
        if v == id {
            continue;
        }
        let mut grabbed = state.deques[v].steal_front_half();
        if grabbed.is_empty() {
            continue;
        }
        let first = grabbed.remove(0);
        if !grabbed.is_empty() {
            state.deques[id].push_back_many(grabbed);
        }
        return Some(first);
    }
    None
}

/// Retire one claimed task. If this drains its unit — every task
/// completed, none aborted, no witness — the unit is refuted.
fn finish_task<D: StealDriver + ?Sized>(
    state: &RunState<'_, '_>,
    driver: &D,
    unit: usize,
    pool: &SharedBudget,
) {
    if state.outstanding[unit].fetch_sub(1, Ordering::SeqCst) == 1
        && !state.unit_found[unit].load(Ordering::SeqCst)
        && !state.abort.load(Ordering::SeqCst)
        && driver.refuted(unit)
    {
        state.abort.store(true, Ordering::SeqCst);
        pool.cancel();
    }
    state.work.fetch_sub(1, Ordering::SeqCst);
}

enum TaskEnd {
    /// The task's subtree is fully covered (refuted locally, witness
    /// reported for an undecided run, or donated away).
    Done,
    /// The driver declared the overall question decided.
    Decided,
    /// The node budget died mid-subtree; nothing was recorded for the
    /// unfinished frames.
    Exhausted,
    /// The run was aborted by someone else mid-subtree; the task stops
    /// without recording or concluding anything.
    Abandoned,
}

/// One explicit-stack DFS frame: the op placed to enter this state, the
/// last-write it displaced, the child scan cursor, and the state's
/// fingerprint. `donated` marks frames whose remaining children were
/// handed to other workers — such frames (and their ancestors) are not
/// fully *locally* explored, so they must not be recorded as refuted.
struct Frame {
    placed_local: u32,
    saved_lw: u32,
    cursor: u32,
    donated: bool,
    key: u64,
}

fn run_task<D: StealDriver + ?Sized>(
    task: &Task,
    state: &RunState<'_, '_>,
    driver: &D,
    failed: &SharedFailedSet,
    budget: &Budget,
    id: usize,
) -> TaskEnd {
    let unit = task.unit as usize;
    let u = &state.units[unit];
    let ctx = &u.ctx;
    let m = ctx.elems.len();
    let mut placed = BitSet::new(m);
    let mut last_write = vec![NO_WRITE; ctx.num_locs];
    let mut order: Vec<u32> = Vec::with_capacity(m);
    for &l in &task.prefix {
        let i = l as usize;
        debug_assert!(ctx.preds[i].is_subset(&placed));
        debug_assert!(ctx.schedulable(i, &last_write));
        let o = ctx.op(i);
        if o.is_write() {
            last_write[o.loc.index()] = l;
        }
        placed.insert(i);
        order.push(l);
    }
    // Node entry mirrors the sequential DFS: complete check, then the
    // budget charge, then dead-prune, then the failed-state probe.
    if order.len() == m {
        return report_found(state, driver, unit, ctx, &order);
    }
    if !budget.try_spend() {
        return TaskEnd::Exhausted;
    }
    if ctx.dead(&placed, &last_write) {
        return TaskEnd::Done;
    }
    let root_key = state_hash(u.salt, &placed, &last_write);
    if failed.contains(root_key) {
        return TaskEnd::Done;
    }
    let root_len = task.prefix.len();
    let mut stack: Vec<Frame> = vec![Frame {
        placed_local: u32::MAX,
        saved_lw: NO_WRITE,
        cursor: 0,
        donated: false,
        key: root_key,
    }];
    while let Some(top) = stack.len().checked_sub(1) {
        if state.abort.load(Ordering::SeqCst) {
            // The run is over (another worker decided it or died); this
            // task stops mid-subtree, so record nothing.
            return TaskEnd::Abandoned;
        }
        if state.hungry.load(Ordering::SeqCst) > 0 && state.deques[id].is_empty() {
            donate(state, unit, ctx, &mut stack, &order, root_len, id);
        }
        let mut advanced = false;
        while let Some(i) = ctx.next_ready(&placed, &last_write, stack[top].cursor as usize) {
            stack[top].cursor = i as u32 + 1;
            let saved = ctx.apply(i, &mut placed, &mut last_write);
            order.push(i as u32);
            if order.len() == m {
                return report_found(state, driver, unit, ctx, &order);
            }
            if !budget.try_spend() {
                return TaskEnd::Exhausted;
            }
            if ctx.dead(&placed, &last_write) {
                order.pop();
                ctx.undo(i, saved, &mut placed, &mut last_write);
                continue;
            }
            let key = state_hash(u.salt, &placed, &last_write);
            if failed.contains(key) {
                order.pop();
                ctx.undo(i, saved, &mut placed, &mut last_write);
                continue;
            }
            stack.push(Frame {
                placed_local: i as u32,
                saved_lw: saved,
                cursor: 0,
                donated: false,
                key,
            });
            advanced = true;
            break;
        }
        if advanced {
            continue;
        }
        // Every child of the top frame is covered: retire it.
        let f = stack.pop().expect("non-empty stack");
        if f.donated {
            // Donated children are someone else's responsibility; the
            // frame (and so its ancestors) is not locally refuted.
            if let Some(parent) = stack.last_mut() {
                parent.donated = true;
            }
        } else {
            failed.insert(f.key);
        }
        if f.placed_local != u32::MAX {
            let i = f.placed_local as usize;
            order.pop();
            placed.remove(i);
            let o = ctx.op(i);
            if o.is_write() {
                last_write[o.loc.index()] = f.saved_lw;
            }
        }
    }
    TaskEnd::Done
}

fn report_found<D: StealDriver + ?Sized>(
    state: &RunState<'_, '_>,
    driver: &D,
    unit: usize,
    ctx: &Ctx<'_>,
    order: &[u32],
) -> TaskEnd {
    let global: Vec<OpId> = order
        .iter()
        .map(|&l| OpId(ctx.elems[l as usize] as u32))
        .collect();
    state.unit_found[unit].store(true, Ordering::SeqCst);
    if driver.found(unit, global) {
        TaskEnd::Decided
    } else {
        TaskEnd::Done
    }
}

/// Hand the untried children of the shallowest still-open frame to the
/// deque as fresh tasks, where hungry siblings can steal them. The
/// frame's state is rebuilt by replaying the order prefix — donation is
/// rare (only while someone is idle), so the replay cost is irrelevant
/// next to the subtree sizes being moved.
fn donate(
    state: &RunState<'_, '_>,
    unit: usize,
    ctx: &Ctx<'_>,
    stack: &mut [Frame],
    order: &[u32],
    root_len: usize,
    id: usize,
) {
    let m = ctx.elems.len();
    for (k, frame) in stack.iter_mut().enumerate() {
        if (frame.cursor as usize) >= m {
            continue;
        }
        let plen = root_len + k;
        let mut placed = BitSet::new(m);
        let mut last_write = vec![NO_WRITE; ctx.num_locs];
        for &l in &order[..plen] {
            let i = l as usize;
            let o = ctx.op(i);
            if o.is_write() {
                last_write[o.loc.index()] = l;
            }
            placed.insert(i);
        }
        let mut tasks: Vec<Task> = Vec::new();
        let mut cursor = frame.cursor as usize;
        while let Some(i) = ctx.next_ready(&placed, &last_write, cursor) {
            cursor = i + 1;
            let mut prefix = Vec::with_capacity(plen + 1);
            prefix.extend_from_slice(&order[..plen]);
            prefix.push(i as u32);
            tasks.push(Task {
                unit: unit as u32,
                prefix,
            });
        }
        frame.cursor = m as u32;
        if tasks.is_empty() {
            // No viable children left here after all; the frame is
            // still fully locally covered, so keep looking deeper.
            continue;
        }
        frame.donated = true;
        state.outstanding[unit].fetch_add(tasks.len(), Ordering::SeqCst);
        state.work.fetch_add(tasks.len() as u64, Ordering::SeqCst);
        state.deques[id].push_back_many(tasks);
        return;
    }
}

/// Driver for a single view problem: first witness or full refutation
/// decides the run.
struct SingleDriver {
    witness: Mutex<Option<Vec<OpId>>>,
}

impl StealDriver for SingleDriver {
    fn found(&self, _unit: usize, order: Vec<OpId>) -> bool {
        let mut w = match self.witness.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        if w.is_none() {
            *w = Some(order);
        }
        true
    }

    fn refuted(&self, _unit: usize) -> bool {
        true
    }

    fn skip(&self, _unit: usize) -> bool {
        false
    }
}

/// Work-stealing analogue of [`crate::view::find_legal_extension`]: the
/// same question, answered by `jobs` workers sharing `pool` and the
/// failed-state set. Returns the outcome plus the search nodes charged.
///
/// The verdict agrees with the sequential search (`Found` witnesses may
/// be different legal extensions; `NotFound`/`Exhausted` coincide up to
/// budget-split timing).
pub fn steal_search(
    p: &ViewProblem<'_>,
    jobs: usize,
    pool: &Arc<SharedBudget>,
    failed: &SharedFailedSet,
) -> (SearchOutcome, u64) {
    let units = [Unit::new(p, 0)];
    let driver = SingleDriver {
        witness: Mutex::new(None),
    };
    let end = run_units(&units, &driver, jobs, pool, failed);
    let witness = match driver.witness.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
    .take();
    let outcome = match witness {
        Some(w) => SearchOutcome::Found(w),
        None if end.exhausted => SearchOutcome::Exhausted,
        None => SearchOutcome::NotFound,
    };
    (outcome, end.nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orders::program_order;
    use crate::view::{find_legal_extension, is_legal_sequence};
    use smc_history::litmus::parse_history;

    fn problem<'a>(h: &'a History, po: &'a Relation) -> ViewProblem<'a> {
        ViewProblem {
            history: h,
            ops: BitSet::full(h.num_ops()),
            constraints: po,
            legality: LegalityMode::ByValue,
        }
    }

    /// Store-buffering with `pad` private writes per processor before
    /// the critical section: SC-refuted, with a `(pad+1)²`-state diamond
    /// the search must cover.
    fn padded_sb(pad: usize) -> History {
        let mut src = String::new();
        src.push_str("p:");
        for v in 1..=pad {
            src.push_str(&format!(" w(a){v}"));
        }
        src.push_str(" w(x)1 r(y)0\nq:");
        for v in 1..=pad {
            src.push_str(&format!(" w(b){v}"));
        }
        src.push_str(" w(y)1 r(x)0");
        parse_history(&src).unwrap()
    }

    #[test]
    fn failed_set_insert_then_contains() {
        let set = SharedFailedSet::with_capacity(1024);
        assert!(!set.contains(42));
        set.insert(42);
        assert!(set.contains(42));
        set.insert(42); // idempotent
        let s = set.stats();
        assert_eq!((s.hits, s.misses, s.inserts, s.evictions), (1, 1, 1, 0));
    }

    #[test]
    fn failed_set_eviction_is_bounded_and_counted() {
        // Smallest possible table: one probe window per shard.
        let set = SharedFailedSet::with_capacity(1);
        for key in 1..=10_000u64 {
            set.insert(key);
        }
        let s = set.stats();
        assert_eq!(s.inserts, 10_000);
        assert!(s.evictions > 0, "tiny table must evict");
        // Evicted keys are forgotten, not corrupted: everything the set
        // still claims to contain was genuinely inserted.
        let resident = (1..=10_000u64).filter(|&k| set.contains(k)).count();
        assert!(resident <= NUM_SHARDS * PROBE_WINDOW);
        assert!(!set.contains(77_777));
    }

    #[test]
    fn failed_set_concurrent_inserts_are_safe() {
        let set = SharedFailedSet::with_capacity(1 << 12);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let set = &set;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        set.insert(1 + t * 1000 + i);
                    }
                });
            }
        });
        assert!(set.stats().inserts <= 4000);
    }

    #[test]
    fn steal_search_finds_witness_on_message_passing() {
        let h = parse_history("p: w(d)1 w(f)1\nq: r(f)1 r(d)1").unwrap();
        let po = program_order(&h);
        let p = problem(&h, &po);
        for jobs in [1, 2, 4] {
            let pool = SharedBudget::new(1_000_000);
            let failed = SharedFailedSet::default();
            match steal_search(&p, jobs, &pool, &failed).0 {
                SearchOutcome::Found(order) => {
                    assert!(is_legal_sequence(&h, &order));
                    assert!(po.respects(&order.iter().map(|o| o.index()).collect::<Vec<_>>()));
                }
                other => panic!("jobs={jobs}: expected Found, got {other:?}"),
            }
        }
    }

    #[test]
    fn steal_search_refutes_store_buffering() {
        let h = padded_sb(6);
        let po = program_order(&h);
        let p = problem(&h, &po);
        for jobs in [1, 2, 4, 8] {
            let pool = SharedBudget::new(10_000_000);
            let failed = SharedFailedSet::default();
            assert_eq!(
                steal_search(&p, jobs, &pool, &failed).0,
                SearchOutcome::NotFound,
                "jobs={jobs}"
            );
        }
    }

    /// Eviction soundness: a failed set too small to hold the refuted
    /// states of the search loses proofs, so the search does extra
    /// work — but it must never flip a verdict.
    #[test]
    fn eviction_never_fabricates_a_refutation() {
        // 13×13 diamond: 169 distinct failed states, more than the tiny
        // set's 128 slots, so eviction is forced by pigeonhole.
        let refuted = padded_sb(12);
        let po_r = program_order(&refuted);
        let pr = problem(&refuted, &po_r);
        // `w(f)1` is read back, so an admitted witness exists.
        let admitted = parse_history("p: w(d)1 w(d)2 w(f)1\nq: r(f)1 r(d)2 r(d)2").unwrap();
        let po_a = program_order(&admitted);
        let pa = problem(&admitted, &po_a);
        for jobs in [1, 4] {
            // capacity 1 → one probe window per shard → constant churn.
            let tiny = SharedFailedSet::with_capacity(1);
            let pool = SharedBudget::new(10_000_000);
            assert_eq!(
                steal_search(&pr, jobs, &pool, &tiny).0,
                SearchOutcome::NotFound,
                "jobs={jobs}: refuted history must stay refuted under eviction"
            );
            assert!(tiny.stats().evictions > 0, "test must actually evict");
            let pool = SharedBudget::new(10_000_000);
            let tiny = SharedFailedSet::with_capacity(1);
            match steal_search(&pa, jobs, &pool, &tiny).0 {
                SearchOutcome::Found(order) => assert!(is_legal_sequence(&admitted, &order)),
                other => panic!("jobs={jobs}: expected Found, got {other:?}"),
            }
        }
    }

    #[test]
    fn steal_search_agrees_with_sequential() {
        let cases = [
            "p: w(x)1 r(y)0\nq: w(y)1 r(x)0",
            "p: w(d)1 w(f)1\nq: r(f)1 r(d)1",
            "p: w(x)1 w(x)2\nq: r(x)2 r(x)1",
            "p: w(x)1\nq: w(x)2\nr: r(x)1 r(x)2",
        ];
        for src in cases {
            let h = parse_history(src).unwrap();
            let po = program_order(&h);
            let p = problem(&h, &po);
            let seq = {
                let budget = Budget::local(1_000_000);
                find_legal_extension(&p, &budget)
            };
            for jobs in [1, 2, 4] {
                let pool = SharedBudget::new(1_000_000);
                let failed = SharedFailedSet::default();
                let (par, _) = steal_search(&p, jobs, &pool, &failed);
                match (&seq, &par) {
                    (SearchOutcome::Found(_), SearchOutcome::Found(w)) => {
                        assert!(is_legal_sequence(&h, w))
                    }
                    (a, b) => assert_eq!(a, b, "{src:?} jobs={jobs}"),
                }
            }
        }
    }

    #[test]
    fn tiny_budget_reports_exhaustion() {
        let h = padded_sb(4);
        let po = program_order(&h);
        let p = problem(&h, &po);
        let pool = SharedBudget::new(3);
        let failed = SharedFailedSet::default();
        assert_eq!(
            steal_search(&p, 4, &pool, &failed).0,
            SearchOutcome::Exhausted
        );
    }

    #[test]
    fn empty_problem_is_trivially_found() {
        let h = parse_history("p: w(x)1").unwrap();
        let cons = Relation::new(h.num_ops());
        let p = ViewProblem {
            history: &h,
            ops: BitSet::new(h.num_ops()),
            constraints: &cons,
            legality: LegalityMode::ByValue,
        };
        let pool = SharedBudget::new(100);
        let failed = SharedFailedSet::default();
        assert_eq!(
            steal_search(&p, 2, &pool, &failed).0,
            SearchOutcome::Found(vec![])
        );
    }
}

//! Empirical model comparison (the paper's Section 4 / Figure 5).
//!
//! A model `A` is *stronger* than `B` when every history `A` admits, `B`
//! admits too — set inclusion of admitted histories. Over a finite corpus
//! the inclusion matrix is computable exactly; with the corpus of *all*
//! small histories ([`crate::histgen`]) the matrix reproduces Figure 5's
//! lattice, complete with concrete witness histories for every strict
//! inclusion and incomparability.
//!
//! ```
//! use smc_core::checker::CheckConfig;
//! use smc_core::{lattice, models};
//! use smc_history::litmus::parse_history;
//!
//! let corpus = vec![
//!     parse_history("p: w(x)1 r(y)0\nq: w(y)1 r(x)0").unwrap(), // fig. 1
//!     parse_history("p: w(x)1\nq: r(x)1").unwrap(),
//! ];
//! let models = vec![models::sc(), models::tso()];
//! let r = lattice::compare(&corpus, &models, &CheckConfig::default());
//! assert!(r.strictly_stronger(0, 1)); // SC ⊂ TSO, witnessed by fig. 1
//! ```

use crate::checker::{check_with_config, CheckConfig};
use crate::spec::ModelSpec;
use smc_history::History;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Classification of one history against every model in a list:
/// `allowed[m]` is `Some(true/false)` if decided, `None` if the budget ran
/// out (or the combination was unsupported).
#[derive(Debug, Clone)]
pub struct Classification {
    /// Per-model verdicts, indexed like the model list.
    pub allowed: Vec<Option<bool>>,
}

/// Classify `h` against each model.
pub fn classify(h: &History, models: &[ModelSpec], cfg: &CheckConfig) -> Classification {
    Classification {
        allowed: models
            .iter()
            .map(|m| check_with_config(h, m, cfg).decided())
            .collect(),
    }
}

/// Classify a whole corpus on up to `jobs` threads (via
/// [`crate::batch::check_matrix`]); equivalent to mapping [`classify`]
/// over the corpus.
pub fn classify_all(
    corpus: &[History],
    models: &[ModelSpec],
    cfg: &CheckConfig,
    jobs: usize,
) -> Vec<Classification> {
    let results = crate::batch::check_matrix(corpus, models, cfg, jobs);
    results
        .chunks(models.len().max(1))
        .map(|row| Classification {
            allowed: row.iter().map(|r| r.verdict.decided()).collect(),
        })
        .collect()
}

/// Sound admitted-set inclusions among the registered models, as
/// `(stronger, weaker)` display-name pairs: every history the stronger
/// model admits, the weaker model admits too. These are the inclusions of
/// the paper's Figure 5 (restricted to models registered in
/// [`crate::models`]); [`classify_all_propagating`] uses their transitive
/// closure to skip checks whose answer is already forced.
pub fn known_inclusions() -> &'static [(&'static str, &'static str)] {
    &[
        ("SC", "TSO"),
        ("SC", "CausalCoherent"),
        ("TSO", "PC"),
        ("TSO", "Causal"),
        ("PC", "PRAM"),
        ("PC", "Coherent"),
        ("Causal", "PRAM"),
        ("CausalCoherent", "Causal"),
        ("CausalCoherent", "Coherent"),
        ("CausalCoherent", "PCG"),
        ("PCG", "PRAM"),
        ("PCG", "Coherent"),
        // CausalCoherent ⊆ PC is deliberately ABSENT: the conjecture is
        // false. PC and CausalCoherent are incomparable — see
        // litmus/separations/pc_vs_causalcoherent.litmus, whose
        // `causalcoherent_not_pc` test is a CausalCoherent-admitted,
        // PC-refuted history (checked mechanically by the corpus suite
        // and the `pc_and_causalcoherent_are_incomparable` test below).
    ]
}

/// `stronger[i][j]` = admitted by `models[i]` implies admitted by
/// `models[j]`, per the transitive closure of [`known_inclusions`]
/// (matched by display name, case-insensitively). Besides the
/// propagating sweep below, [`crate::separate`] uses this to rule out
/// witness directions that known inclusions make impossible.
pub fn inclusion_closure(models: &[ModelSpec]) -> Vec<Vec<bool>> {
    // Close over every name the edge list mentions, not just the models
    // provided: SC ⊆ Causal follows from SC ⊆ TSO ⊆ Causal even when TSO
    // is absent from `models`.
    let mut names: Vec<String> = models.iter().map(|m| m.name.to_ascii_lowercase()).collect();
    let intern = |name: &str, names: &mut Vec<String>| -> usize {
        let lower = name.to_ascii_lowercase();
        match names.iter().position(|n| *n == lower) {
            Some(i) => i,
            None => {
                names.push(lower);
                names.len() - 1
            }
        }
    };
    let edges: Vec<(usize, usize)> = known_inclusions()
        .iter()
        .map(|(s, w)| (intern(s, &mut names), intern(w, &mut names)))
        .collect();
    let n = names.len();
    let mut m = vec![vec![false; n]; n];
    for (a, b) in edges {
        m[a][b] = true;
    }
    for k in 0..n {
        let row_k = m[k].clone();
        for row in m.iter_mut() {
            if !row[k] {
                continue;
            }
            for (j, &through_k) in row_k.iter().enumerate() {
                if through_k {
                    row[j] = true;
                }
            }
        }
    }
    // Project back onto the provided models (the first `models.len()`
    // interned slots, in order).
    m.truncate(models.len());
    for row in &mut m {
        row.truncate(models.len());
    }
    m
}

/// How much checking a propagating sweep actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PropagationStats {
    /// (history, model) pairs decided by running the checker.
    pub checked: u64,
    /// Pairs decided for free along Figure 5 inclusions.
    pub propagated: u64,
}

/// [`classify_all`] with lattice-aware propagation: within each history,
/// a verdict already decided for one model forces the verdict for every
/// model related to it by [`known_inclusions`] — admitted by a stronger
/// model ⇒ admitted by the weaker, refuted by a weaker model ⇒ refuted by
/// the stronger — so whole rows of the sweep are skipped. Undecided
/// verdicts (`None`) never propagate. Histories fan out across `jobs`
/// worker threads; each check runs under the caller's `cfg` exactly as in
/// [`classify`].
pub fn classify_all_propagating(
    corpus: &[History],
    models: &[ModelSpec],
    cfg: &CheckConfig,
    jobs: usize,
) -> (Vec<Classification>, PropagationStats) {
    let stronger = inclusion_closure(models);
    let n = models.len();
    let checked = AtomicU64::new(0);
    let propagated = AtomicU64::new(0);
    let classify_one = |h: &History| -> Classification {
        let mut allowed: Vec<Option<bool>> = vec![None; n];
        for j in 0..n {
            if (0..n).any(|i| stronger[i][j] && allowed[i] == Some(true)) {
                allowed[j] = Some(true);
                propagated.fetch_add(1, Ordering::Relaxed);
            } else if (0..n).any(|k| stronger[j][k] && allowed[k] == Some(false)) {
                allowed[j] = Some(false);
                propagated.fetch_add(1, Ordering::Relaxed);
            } else {
                allowed[j] = check_with_config(h, &models[j], cfg).decided();
                checked.fetch_add(1, Ordering::Relaxed);
            }
        }
        Classification { allowed }
    };

    let jobs = jobs.max(1).min(corpus.len().max(1));
    let classifications = if jobs <= 1 {
        corpus.iter().map(classify_one).collect()
    } else {
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<Classification>>> =
            Mutex::new((0..corpus.len()).map(|_| None).collect());
        std::thread::scope(|s| {
            for _ in 0..jobs {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= corpus.len() {
                        break;
                    }
                    let c = classify_one(&corpus[i]);
                    match slots.lock() {
                        Ok(mut slots) => slots[i] = Some(c),
                        Err(_) => break,
                    }
                });
            }
        });
        let slots = match slots.into_inner() {
            Ok(s) => s,
            Err(p) => p.into_inner(),
        };
        slots
            .into_iter()
            .map(|c| {
                c.unwrap_or(Classification {
                    allowed: vec![None; n],
                })
            })
            .collect()
    };
    (
        classifications,
        PropagationStats {
            checked: checked.load(Ordering::Relaxed),
            propagated: propagated.load(Ordering::Relaxed),
        },
    )
}

/// The empirical comparison of a model list over a history corpus.
#[derive(Debug, Clone)]
pub struct LatticeResult {
    /// Model display names, in input order.
    pub model_names: Vec<String>,
    /// `counts[m]` = number of corpus histories admitted by model `m`.
    pub counts: Vec<usize>,
    /// Number of histories with at least one undecided verdict (excluded
    /// from the inclusion matrix).
    pub undecided: usize,
    /// `inclusion[a][b]` = over the decided corpus, every history admitted
    /// by `a` is admitted by `b` (i.e. `a` is at least as strong as `b`).
    pub inclusion: Vec<Vec<bool>>,
    /// `separating[a][b]` = index of a corpus history admitted by `b` but
    /// not by `a`, when one exists (a witness that `a` is strictly
    /// stronger on this corpus, or that they are incomparable).
    pub separating: Vec<Vec<Option<usize>>>,
    /// Per-history classifications, aligned with the input corpus.
    pub classifications: Vec<Classification>,
}

impl LatticeResult {
    /// `true` if `a` is strictly stronger than `b` on this corpus:
    /// inclusion holds one way and a separating history exists the other.
    pub fn strictly_stronger(&self, a: usize, b: usize) -> bool {
        self.inclusion[a][b] && self.separating[a][b].is_some()
    }

    /// `true` if the corpus shows `a` and `b` incomparable: each admits a
    /// history the other forbids.
    pub fn incomparable(&self, a: usize, b: usize) -> bool {
        self.separating[a][b].is_some() && self.separating[b][a].is_some()
    }

    /// `true` if `a` and `b` admit exactly the same corpus histories.
    pub fn equivalent_on_corpus(&self, a: usize, b: usize) -> bool {
        self.inclusion[a][b] && self.inclusion[b][a]
    }

    /// Group models into equivalence classes (same admitted set on this
    /// corpus); each class lists model indices, ordered by first member.
    #[allow(clippy::needless_range_loop)] // indices double as model ids
    pub fn equivalence_classes(&self) -> Vec<Vec<usize>> {
        let n = self.model_names.len();
        let mut assigned = vec![false; n];
        let mut classes = Vec::new();
        for a in 0..n {
            if assigned[a] {
                continue;
            }
            let mut class = vec![a];
            assigned[a] = true;
            for b in a + 1..n {
                if !assigned[b] && self.equivalent_on_corpus(a, b) {
                    class.push(b);
                    assigned[b] = true;
                }
            }
            classes.push(class);
        }
        classes
    }

    /// The covering (Hasse) edges of the strictly-stronger order between
    /// equivalence classes: `(stronger_class, weaker_class)` pairs with
    /// no class strictly between them. This is the paper's Figure 5 as a
    /// diagram rather than a matrix.
    pub fn hasse_edges(&self) -> Vec<(usize, usize)> {
        let classes = self.equivalence_classes();
        let k = classes.len();
        let stronger = |a: usize, b: usize| self.strictly_stronger(classes[a][0], classes[b][0]);
        let mut edges = Vec::new();
        for a in 0..k {
            for b in 0..k {
                if a == b || !stronger(a, b) {
                    continue;
                }
                let covered = (0..k).any(|c| c != a && c != b && stronger(a, c) && stronger(c, b));
                if !covered {
                    edges.push((a, b));
                }
            }
        }
        edges
    }

    /// Display name of an equivalence class: members joined by `≡`.
    pub fn class_name(&self, class: &[usize]) -> String {
        class
            .iter()
            .map(|&i| self.model_names[i].as_str())
            .collect::<Vec<_>>()
            .join(" ≡ ")
    }
}

/// Compare `models` over `corpus`.
pub fn compare(corpus: &[History], models: &[ModelSpec], cfg: &CheckConfig) -> LatticeResult {
    let classifications: Vec<Classification> =
        corpus.iter().map(|h| classify(h, models, cfg)).collect();
    compare_classified(models, classifications)
}

/// Build the lattice from precomputed classifications (used when the
/// corpus is classified in parallel by the caller).
#[allow(clippy::needless_range_loop)] // indices double as model ids
pub fn compare_classified(
    models: &[ModelSpec],
    classifications: Vec<Classification>,
) -> LatticeResult {
    let m = models.len();
    let mut counts = vec![0usize; m];
    let mut undecided = 0usize;
    let mut inclusion = vec![vec![true; m]; m];
    let mut separating = vec![vec![None; m]; m];

    for (hi, c) in classifications.iter().enumerate() {
        if c.allowed.iter().any(Option::is_none) {
            undecided += 1;
            continue;
        }
        for a in 0..m {
            if c.allowed[a] == Some(true) {
                counts[a] += 1;
            }
        }
        for a in 0..m {
            for b in 0..m {
                if c.allowed[a] == Some(true) && c.allowed[b] == Some(false) {
                    // `a` admits a history `b` forbids: a ⊄ b, and this
                    // history separates b from a.
                    inclusion[a][b] = false;
                    if separating[b][a].is_none() {
                        separating[b][a] = Some(hi);
                    }
                }
            }
        }
    }

    LatticeResult {
        model_names: models.iter().map(|s| s.name.clone()).collect(),
        counts,
        undecided,
        inclusion,
        separating,
        classifications,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use smc_history::litmus::parse_history;

    #[test]
    fn inclusion_closure_routes_through_absent_models() {
        // SC ⊆ Causal follows from SC ⊆ TSO ⊆ Causal; the closure must
        // find the hop even though TSO is not in the queried list.
        let ms = vec![models::sc(), models::causal()];
        let m = inclusion_closure(&ms);
        assert!(m[0][1], "SC ⊆ Causal lost without TSO in the list");
        assert!(!m[1][0]);
        assert!(!m[0][0] && !m[1][1]);
    }

    #[test]
    fn pc_and_causalcoherent_are_incomparable() {
        // Resolves the ROADMAP conjecture "CausalCoherent ⊆ PC?" by
        // refutation: witnesses exist in BOTH directions, so neither
        // inclusion may ever be added to `known_inclusions`.
        let ms = vec![models::pc(), models::causal_coherent()];
        let closure = inclusion_closure(&ms);
        assert!(!closure[0][1], "PC ⊆ CausalCoherent must not be claimed");
        assert!(!closure[1][0], "CausalCoherent ⊆ PC must not be claimed");

        let cfg = CheckConfig::default();
        // PC admits, CausalCoherent refutes (the machine-found witness).
        let pc_only = parse_history("p: r(x)1 w(y)1\nq: r(y)1 w(x)1").unwrap();
        assert_eq!(
            check_with_config(&pc_only, &ms[0], &cfg).decided(),
            Some(true)
        );
        assert_eq!(
            check_with_config(&pc_only, &ms[1], &cfg).decided(),
            Some(false)
        );
        // CausalCoherent admits, PC refutes: q sees D's writes to w in
        // coherence order around A's causally-later write, while p's
        // stale read of a rules out every processor-consistent view.
        let cc_only = parse_history(
            "A: w(a)1 w(v)1\nD: w(w)1 w(w)2 w(b)1\nq: r(v)1 r(w)1 r(w)2\np: r(b)1 r(a)0",
        )
        .unwrap();
        assert_eq!(
            check_with_config(&cc_only, &ms[0], &cfg).decided(),
            Some(false)
        );
        assert_eq!(
            check_with_config(&cc_only, &ms[1], &cfg).decided(),
            Some(true)
        );
    }

    #[test]
    fn figure1_separates_sc_from_tso() {
        let corpus = vec![
            parse_history("p: w(x)1 r(y)0\nq: w(y)1 r(x)0").unwrap(),
            parse_history("p: w(x)1\nq: r(x)1").unwrap(),
        ];
        let ms = vec![models::sc(), models::tso()];
        let r = compare(&corpus, &ms, &CheckConfig::default());
        assert_eq!(r.undecided, 0);
        // SC admits only the second history; TSO admits both.
        assert_eq!(r.counts, vec![1, 2]);
        assert!(r.inclusion[0][1]); // SC ⊆ TSO
        assert!(!r.inclusion[1][0]);
        assert!(r.strictly_stronger(0, 1));
        assert_eq!(r.separating[0][1], Some(0));
        assert!(!r.incomparable(0, 1));
    }

    #[test]
    fn hasse_edges_skip_transitive_pairs() {
        // Corpus separating SC ⊂ TSO ⊂ PRAM: the Hasse diagram must keep
        // only the two covering edges, not SC ⊂ PRAM.
        let corpus = vec![
            parse_history(
                "p: w(x)1 r(y)0
q: w(y)1 r(x)0",
            )
            .unwrap(), // TSO+, SC-
            parse_history(
                "p: w(d)1 w(f)1
q: r(f)1 r(d)0",
            )
            .unwrap(), // none
            parse_history(
                "p: w(x)1 r(x)1 r(x)2
q: w(x)2 r(x)2 r(x)1",
            )
            .unwrap(), // PRAM+, TSO-
            parse_history(
                "p: w(x)1
q: r(x)1",
            )
            .unwrap(), // all
        ];
        let ms = vec![
            crate::models::sc(),
            crate::models::tso(),
            crate::models::pram(),
        ];
        let r = compare(&corpus, &ms, &CheckConfig::default());
        let classes = r.equivalence_classes();
        assert_eq!(classes.len(), 3);
        let edges = r.hasse_edges();
        assert_eq!(edges.len(), 2, "{edges:?}");
        // SC ⊂ TSO and TSO ⊂ PRAM, never SC ⊂ PRAM directly.
        let names: Vec<(String, String)> = edges
            .iter()
            .map(|&(a, b)| (r.class_name(&classes[a]), r.class_name(&classes[b])))
            .collect();
        assert!(names.contains(&("SC".into(), "TSO".into())));
        assert!(names.contains(&("TSO".into(), "PRAM".into())));
    }

    #[test]
    fn equivalence_classes_merge_equal_models() {
        // On a corpus where SC and TSO agree everywhere they form one
        // class.
        let corpus = vec![parse_history(
            "p: w(x)1
q: r(x)1",
        )
        .unwrap()];
        let ms = vec![crate::models::sc(), crate::models::tso()];
        let r = compare(&corpus, &ms, &CheckConfig::default());
        let classes = r.equivalence_classes();
        assert_eq!(classes.len(), 1);
        assert_eq!(r.class_name(&classes[0]), "SC ≡ TSO");
        assert!(r.hasse_edges().is_empty());
    }

    #[test]
    fn known_inclusions_hold_exhaustively_on_small_universe() {
        // Empirically validate every claimed Figure 5 inclusion over the
        // full universe of 2-proc, 2-ops, 2-loc, 1-value histories: no
        // history may be admitted by the stronger model and refuted by
        // the weaker one.
        let params = crate::histgen::GenParams {
            procs: 2,
            ops_per_proc: 2,
            locs: 2,
            values: 1,
        };
        let corpus = crate::histgen::all_histories(&params);
        let ms = models::all_models();
        let cfg = CheckConfig::default();
        let classifications = classify_all(&corpus, &ms, &cfg, 2);
        let idx = |name: &str| ms.iter().position(|m| m.name == name);
        for (s, w) in known_inclusions() {
            let (a, b) = (idx(s).unwrap(), idx(w).unwrap());
            for (hi, c) in classifications.iter().enumerate() {
                if c.allowed[a] == Some(true) {
                    assert_ne!(
                        c.allowed[b],
                        Some(false),
                        "{s} admits history {hi} but {w} refutes it: inclusion {s} ⊆ {w} is wrong"
                    );
                }
            }
        }
    }

    #[test]
    fn propagating_sweep_matches_plain_sweep() {
        let params = crate::histgen::GenParams {
            procs: 2,
            ops_per_proc: 2,
            locs: 2,
            values: 1,
        };
        let corpus = crate::histgen::all_histories(&params);
        let ms = models::figure5_models();
        let cfg = CheckConfig::default();
        let plain = classify_all(&corpus, &ms, &cfg, 2);
        let (prop, stats) = classify_all_propagating(&corpus, &ms, &cfg, 2);
        assert_eq!(plain.len(), prop.len());
        for (hi, (a, b)) in plain.iter().zip(&prop).enumerate() {
            assert_eq!(
                a.allowed, b.allowed,
                "history {hi} diverges under propagation"
            );
        }
        assert!(
            stats.propagated > 0,
            "no propagation on an exhaustive sweep"
        );
        assert_eq!(
            stats.checked + stats.propagated,
            (corpus.len() * ms.len()) as u64
        );
    }

    #[test]
    fn equivalent_on_trivial_corpus() {
        let corpus = vec![parse_history("p: w(x)1").unwrap()];
        let ms = vec![models::sc(), models::tso()];
        let r = compare(&corpus, &ms, &CheckConfig::default());
        assert!(r.equivalent_on_corpus(0, 1));
        assert!(!r.strictly_stronger(0, 1));
    }
}

//! A resumable, incrementally-extendable view search for the streaming
//! monitor.
//!
//! The batch checker ([`crate::view`]) answers "does a legal linear
//! extension exist?" by depth-first search and throws the search tree
//! away. A monitor that re-asks the question after every appended
//! operation would pay for the whole prefix again each time. This module
//! keeps the search *state* instead: a [`FrontierEngine`] maintains the
//! set of all reachable scheduling states of one view and extends it by
//! one operation at a time.
//!
//! # State abstraction
//!
//! The engine handles views whose required order is exactly program
//! order and whose read legality is by value ([`crate::view::LegalityMode::ByValue`]) —
//! the SC and PRAM shapes. Under program order, a schedulable set of
//! operations is downward closed per processor, so a search state is
//! fully described by
//!
//! * `counts[q]` — how many of processor `q`'s view operations have been
//!   scheduled (a prefix of its sequence), and
//! * `values[l]` — the value most recently written to location `l`
//!   (initial `0` if none),
//!
//! because by-value legality of any future read depends only on the
//! current values. Two states agreeing on both components have identical
//! futures, so they are merged; the abstraction is exact.
//!
//! # Incremental closure
//!
//! Let `R_t` be the set of reachable states after `t` appended
//! operations; `R_t` is closed under scheduling any of the first `t`
//! operations. Appending operation `t+1` for processor `p` (its
//! `idx`-th view operation) adds exactly one new transition source: a
//! state can now schedule the new operation iff `counts[p] == idx`. The
//! engine therefore keeps an index `waiting[p][i]` of all states with
//! `counts[p] == i`, seeds the append from `waiting[p][idx]`, and closes
//! the newly created states under *all* arrived operations. Every state
//! discovered during the append has `counts[p] == idx + 1` or more,
//! while every old state has `counts[p] <= idx` — so new states are
//! genuinely new, each state is expanded exactly once over the whole
//! stream, and the amortized per-append cost is the number of *new*
//! states, not the size of `R_t`.
//!
//! The prefix is admitted iff some reachable state is *complete*
//! (`counts[q]` equals the sequence length for every `q`). Note that
//! admission over prefixes is not monotone — a refuted prefix can heal
//! (`p: w(x)1` + `q: r(x)2` is refuted, appending `p: w(x)2` admits) —
//! which is why the engine keeps every reachable state, not just the
//! complete ones, and why the batch checker's dead-state pruning is
//! unsound here: a read that can never again be scheduled *today* may be
//! rescued by a write that arrives tomorrow.

use crate::kernel::{get_u32, hash_words, set_u32, StateSpace};
use smc_history::{Location, OpKind, ProcId, Value};
use std::collections::VecDeque;

/// One view-relevant operation, as the engine sees it (processor and
/// program-order position are implied by how it is appended).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewOp {
    /// Read or write.
    pub kind: OpKind,
    /// The accessed location.
    pub loc: Location,
    /// The value written (for writes) or required (for reads).
    pub value: Value,
}

/// Lifetime counters of a [`FrontierEngine`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FrontierStats {
    /// Reachable states discovered (including the root).
    pub states: u64,
    /// States expanded (popped from the closure queue).
    pub expanded: u64,
    /// Transitions that led to an already-known state.
    pub reuse_hits: u64,
}

/// Work done by a single [`FrontierEngine::append`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AppendReport {
    /// New states discovered by this append.
    pub created: u64,
    /// States expanded by this append.
    pub expanded: u64,
    /// Transitions of this append that hit an already-known state.
    pub reuse_hits: u64,
}

impl AppendReport {
    /// Accumulate another report into this one.
    pub fn absorb(&mut self, other: AppendReport) {
        self.created += other.created;
        self.expanded += other.expanded;
        self.reuse_hits += other.reuse_hits;
    }
}

/// The resumable search: all reachable scheduling states of one view,
/// extendable one operation at a time. See the module docs for the
/// invariants.
///
/// States live in a [`StateSpace`] arena from the shared kernel: one
/// fixed-stride packed `u64` row per state — the `counts` packed two per
/// word, then one word per location value — deduplicated exactly via
/// [`hash_words`] buckets. A scheduling transition copies the source row
/// into a reusable scratch buffer and edits it in place, so the steady
/// state allocates nothing per transition.
pub struct FrontierEngine {
    num_procs: usize,
    max_states: usize,
    /// Per processor, its view-relevant operations in program order.
    seqs: Vec<Vec<ViewOp>>,
    /// Packed state arena + exact dedup. Row layout: `counts` in words
    /// `0..counts_words` (two per word), `values[l]` in word
    /// `counts_words + l` (the `i64` value's bits).
    space: StateSpace,
    /// Words occupied by the packed counts: `num_procs.div_ceil(2)`.
    counts_words: usize,
    /// Successor-row scratch, reused across transitions.
    scratch: Vec<u64>,
    /// `waiting[p][i]` — ids of all states with `counts[p] == i`, the
    /// seeds for `p`'s `i`-th appended operation.
    waiting: Vec<Vec<Vec<u32>>>,
    /// Reachable states that schedule everything appended so far.
    num_complete: usize,
    exhausted: bool,
    stats: FrontierStats,
}

impl FrontierEngine {
    /// An engine for a view over `num_procs` processor sequences and
    /// `num_locs` locations, giving up (soundly reporting "unknown")
    /// once more than `max_states` reachable states exist.
    pub fn new(num_procs: usize, num_locs: usize, max_states: usize) -> Self {
        let counts_words = num_procs.div_ceil(2);
        let mut e = FrontierEngine {
            num_procs,
            max_states: max_states.max(1),
            seqs: vec![Vec::new(); num_procs],
            space: StateSpace::new(counts_words + num_locs),
            counts_words,
            scratch: Vec::new(),
            waiting: vec![vec![Vec::new()]; num_procs],
            num_complete: 0,
            exhausted: false,
            stats: FrontierStats::default(),
        };
        // The root state: nothing scheduled, all locations initial. It
        // is complete for the empty view (every model admits the empty
        // history).
        e.scratch = vec![0u64; e.space.stride()];
        for l in 0..num_locs {
            e.scratch[counts_words + l] = Value::INITIAL.0 as u64;
        }
        let h = hash_words(0, &e.scratch);
        e.insert_scratch(h);
        e
    }

    /// Total view operations appended so far.
    pub fn num_ops(&self) -> usize {
        self.seqs.iter().map(Vec::len).sum()
    }

    /// Reachable states currently stored.
    pub fn num_states(&self) -> usize {
        self.space.len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> FrontierStats {
        self.stats
    }

    /// `true` once the state budget was exceeded; [`FrontierEngine::admitted`]
    /// returns `None` from then on.
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    /// Does the view of everything appended so far have a legal linear
    /// extension? `None` if the state budget ran out.
    pub fn admitted(&self) -> Option<bool> {
        if self.exhausted {
            None
        } else {
            Some(self.num_complete > 0)
        }
    }

    /// Scheduled-prefix length of processor `q` in state `sid`.
    #[inline]
    fn count_of(&self, sid: u32, q: usize) -> u32 {
        get_u32(self.space.row(sid), q)
    }

    /// Store the scratch row as a new state and register it everywhere.
    /// The caller has checked it is not a duplicate.
    fn insert_scratch(&mut self, hash: u64) -> u32 {
        let sid = self.space.insert_new(hash, &self.scratch);
        let mut complete = true;
        for q in 0..self.num_procs {
            let c = get_u32(&self.scratch, q);
            complete &= c as usize == self.seqs[q].len();
            self.waiting[q][c as usize].push(sid);
        }
        if complete {
            self.num_complete += 1;
        }
        self.stats.states += 1;
        sid
    }

    /// Try to schedule processor `q`'s next unscheduled view operation
    /// from state `sid`; on success the successor state is created (if
    /// new) and queued.
    fn try_schedule(
        &mut self,
        sid: u32,
        q: usize,
        queue: &mut VecDeque<u32>,
        report: &mut AppendReport,
    ) {
        let i = self.count_of(sid, q) as usize;
        let op = self.seqs[q][i];
        let loc = self.counts_words + op.loc.index();
        let row = self.space.row(sid);
        if op.kind.is_read() && Value(row[loc] as i64) != op.value {
            return;
        }
        // Successor row, in place: bump q's count; a write updates the
        // location's value word.
        self.scratch.clear();
        self.scratch.extend_from_slice(row);
        set_u32(&mut self.scratch, q, i as u32 + 1);
        if op.kind.is_write() {
            self.scratch[loc] = op.value.0 as u64;
        }
        let hash = hash_words(0, &self.scratch);
        if self.space.find(hash, &self.scratch).is_some() {
            report.reuse_hits += 1;
            self.stats.reuse_hits += 1;
            return;
        }
        if self.space.len() >= self.max_states {
            self.exhausted = true;
            return;
        }
        let new_sid = self.insert_scratch(hash);
        queue.push_back(new_sid);
        report.created += 1;
    }

    /// Extend processor `p`'s view sequence by one operation and close
    /// the reachable set under it. Amortized cost is proportional to the
    /// states *discovered* by this append, not to the size of the
    /// reachable set.
    pub fn append(&mut self, p: ProcId, op: ViewOp) -> AppendReport {
        let p = p.index();
        assert!(p < self.num_procs, "processor outside the engine's table");
        let mut report = AppendReport::default();
        let idx = self.seqs[p].len();
        self.seqs[p].push(op);
        self.waiting[p].push(Vec::new());
        if self.exhausted {
            // Keep the sequences in sync (a caller may still read
            // `num_ops`), but do no state work: the reachable set is
            // already incomplete.
            return report;
        }
        // Old complete states all had counts[p] == idx; none of them is
        // complete any more, and every newly complete state is created
        // below.
        self.num_complete = 0;
        let mut queue: VecDeque<u32> = VecDeque::new();
        // Seed: exactly the states that were waiting on p's idx-th
        // operation. The waiting list cannot grow during this append
        // (every new state has counts[p] > idx), so the snapshot is
        // complete.
        let seeds = self.waiting[p][idx].clone();
        for sid in seeds {
            self.try_schedule(sid, p, &mut queue, &mut report);
            if self.exhausted {
                return report;
            }
        }
        // Close the new states under all arrived operations.
        while let Some(sid) = queue.pop_front() {
            report.expanded += 1;
            self.stats.expanded += 1;
            for q in 0..self.num_procs {
                if (self.count_of(sid, q) as usize) < self.seqs[q].len() {
                    self.try_schedule(sid, q, &mut queue, &mut report);
                    if self.exhausted {
                        return report;
                    }
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::orders::program_order;
    use crate::view::{find_legal_extension, LegalityMode, SearchOutcome, ViewProblem};
    use smc_history::litmus::parse_history;
    use smc_history::{History, HistoryBuilder};
    use smc_prng::SmallRng;
    use smc_relation::BitSet;

    /// The batch answer the engine must agree with: does the history
    /// have a legal extension of program order (the SC view question)?
    fn batch_admits(h: &History) -> bool {
        let po = program_order(h);
        let p = ViewProblem {
            history: h,
            ops: BitSet::full(h.num_ops()),
            constraints: &po,
            legality: LegalityMode::ByValue,
        };
        match find_legal_extension(&p, &Budget::local(10_000_000)) {
            SearchOutcome::Found(_) => true,
            SearchOutcome::NotFound => false,
            SearchOutcome::Exhausted => panic!("batch search exhausted"),
        }
    }

    fn feed(engine: &mut FrontierEngine, h: &History, order: &[usize]) {
        for &g in order {
            let o = &h.ops()[g];
            engine.append(
                o.proc,
                ViewOp {
                    kind: o.kind,
                    loc: o.loc,
                    value: o.value,
                },
            );
        }
    }

    #[test]
    fn refuted_prefix_can_heal() {
        // `p: w(x)1` + `q: r(x)2` is refuted; appending `p: w(x)2`
        // admits (w1 w2 r2). The engine must keep the incomplete states
        // that make the recovery reachable.
        let mut e = FrontierEngine::new(2, 1, 1 << 16);
        let w = |v: i64| ViewOp {
            kind: OpKind::Write,
            loc: Location(0),
            value: Value(v),
        };
        let r = |v: i64| ViewOp {
            kind: OpKind::Read,
            loc: Location(0),
            value: Value(v),
        };
        assert_eq!(e.admitted(), Some(true));
        e.append(ProcId(0), w(1));
        assert_eq!(e.admitted(), Some(true));
        e.append(ProcId(1), r(2));
        assert_eq!(e.admitted(), Some(false));
        e.append(ProcId(0), w(2));
        assert_eq!(e.admitted(), Some(true));
    }

    #[test]
    fn agrees_with_batch_search_on_every_prefix() {
        let mut rng = SmallRng::seed_from_u64(0xF00D);
        for case in 0..120 {
            let procs = rng.gen_range(1..4usize);
            let locs = rng.gen_range(1..3usize);
            let total = rng.gen_range(0..10usize);
            // Random arrival order of random ops.
            let mut events: Vec<(usize, ViewOp)> = Vec::new();
            for _ in 0..total {
                let p = rng.gen_range(0..procs);
                let kind = if rng.gen_bool(0.5) {
                    OpKind::Write
                } else {
                    OpKind::Read
                };
                events.push((
                    p,
                    ViewOp {
                        kind,
                        loc: Location(rng.gen_range(0..locs) as u32),
                        value: Value(rng.gen_range(0..3i64)),
                    },
                ));
            }
            let mut e = FrontierEngine::new(procs, locs, 1 << 18);
            let mut b = HistoryBuilder::new();
            let names = ["p", "q", "r", "s"];
            for p in names.iter().take(procs) {
                b.add_proc(p);
            }
            for l in ["x", "y"].iter().take(locs) {
                b.add_loc(l);
            }
            for (n, &(p, op)) in events.iter().enumerate() {
                e.append(ProcId(p as u32), op);
                b.push(
                    names[p],
                    op.kind,
                    ["x", "y"][op.loc.index()],
                    op.value,
                    smc_history::Label::Ordinary,
                );
                let h = b.clone().build();
                assert_eq!(
                    e.admitted(),
                    Some(batch_admits(&h)),
                    "case {case}, prefix {}:\n{h}",
                    n + 1
                );
            }
        }
    }

    #[test]
    fn message_passing_stays_admitted_and_fig1_refutes() {
        let h = parse_history("p: w(x)1 r(y)0\nq: w(y)1 r(x)0").unwrap();
        let mut e = FrontierEngine::new(2, 2, 1 << 16);
        // Arrival order = processor-major program order.
        feed(&mut e, &h, &[0, 1, 2, 3]);
        assert_eq!(e.admitted(), Some(false), "fig1 is not SC");

        let h = parse_history("p: w(d)1 w(f)1\nq: r(f)1 r(d)1").unwrap();
        let mut e = FrontierEngine::new(2, 2, 1 << 16);
        feed(&mut e, &h, &[0, 1, 2, 3]);
        assert_eq!(e.admitted(), Some(true));
    }

    #[test]
    fn state_budget_reports_unknown() {
        let mut e = FrontierEngine::new(2, 1, 2);
        let w = |v: i64| ViewOp {
            kind: OpKind::Write,
            loc: Location(0),
            value: Value(v),
        };
        e.append(ProcId(0), w(1));
        e.append(ProcId(1), w(2));
        assert!(e.is_exhausted());
        assert_eq!(e.admitted(), None);
        // Appends after exhaustion are harmless no-ops.
        e.append(ProcId(0), w(3));
        assert_eq!(e.num_ops(), 3);
        assert_eq!(e.admitted(), None);
    }

    #[test]
    fn states_are_shared_across_appends() {
        // Two processors writing the same value to the same location:
        // the diamond closes and the four interleavings share states.
        let mut e = FrontierEngine::new(2, 1, 1 << 16);
        let w = ViewOp {
            kind: OpKind::Write,
            loc: Location(0),
            value: Value(7),
        };
        e.append(ProcId(0), w);
        let rep = e.append(ProcId(1), w);
        // (1,1) is reachable two ways; one of them is a reuse hit.
        assert!(rep.reuse_hits > 0 || e.stats().reuse_hits > 0);
        assert_eq!(e.admitted(), Some(true));
    }
}

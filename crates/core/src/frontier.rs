//! A resumable, incrementally-extendable view search for the streaming
//! monitor.
//!
//! The batch checker ([`crate::view`]) answers "does a legal linear
//! extension exist?" by depth-first search and throws the search tree
//! away. A monitor that re-asks the question after every appended
//! operation would pay for the whole prefix again each time. This module
//! keeps the search *state* instead: a [`FrontierEngine`] maintains the
//! set of all reachable scheduling states of one view and extends it by
//! one operation at a time.
//!
//! # State abstraction
//!
//! The engine handles views whose required order is exactly program
//! order and whose read legality is by value ([`crate::view::LegalityMode::ByValue`]) —
//! the SC and PRAM shapes. Under program order, a schedulable set of
//! operations is downward closed per processor, so a search state is
//! fully described by
//!
//! * `counts[q]` — how many of processor `q`'s view operations have been
//!   scheduled (a prefix of its sequence), and
//! * `values[l]` — the value most recently written to location `l`
//!   (initial `0` if none),
//!
//! because by-value legality of any future read depends only on the
//! current values. Two states agreeing on both components have identical
//! futures, so they are merged; the abstraction is exact.
//!
//! # Incremental closure
//!
//! Let `R_t` be the set of reachable states after `t` appended
//! operations; `R_t` is closed under scheduling any of the first `t`
//! operations. Appending operation `t+1` for processor `p` (its
//! `idx`-th view operation) adds exactly one new transition source: a
//! state can now schedule the new operation iff `counts[p] == idx`. The
//! engine therefore keeps an index `waiting[p][i]` of all states with
//! `counts[p] == i`, seeds the append from `waiting[p][idx]`, and closes
//! the newly created states under *all* arrived operations. Every state
//! discovered during the append has `counts[p] == idx + 1` or more,
//! while every old state has `counts[p] <= idx` — so new states are
//! genuinely new, each state is expanded exactly once over the whole
//! stream, and the amortized per-append cost is the number of *new*
//! states, not the size of `R_t`.
//!
//! The prefix is admitted iff some reachable state is *complete*
//! (`counts[q]` equals the sequence length for every `q`). Note that
//! admission over prefixes is not monotone — a refuted prefix can heal
//! (`p: w(x)1` + `q: r(x)2` is refuted, appending `p: w(x)2` admits) —
//! which is why the engine keeps every reachable state, not just the
//! complete ones, and why the batch checker's dead-state pruning is
//! unsound here: a read that can never again be scheduled *today* may be
//! rescued by a write that arrives tomorrow.

use crate::binfmt::{write_i64, write_u32, write_u64, Reader};
use crate::kernel::{get_u32, hash_words, set_u32, StateSpace};
use smc_history::{Location, OpKind, ProcId, Value};
use std::collections::VecDeque;

/// One view-relevant operation, as the engine sees it (processor and
/// program-order position are implied by how it is appended).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewOp {
    /// Read or write.
    pub kind: OpKind,
    /// The accessed location.
    pub loc: Location,
    /// The value written (for writes) or required (for reads).
    pub value: Value,
}

/// Lifetime counters of a [`FrontierEngine`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FrontierStats {
    /// Reachable states discovered (including the root).
    pub states: u64,
    /// States expanded (popped from the closure queue).
    pub expanded: u64,
    /// Transitions that led to an already-known state.
    pub reuse_hits: u64,
}

/// Work done by a single [`FrontierEngine::append`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AppendReport {
    /// New states discovered by this append.
    pub created: u64,
    /// States expanded by this append.
    pub expanded: u64,
    /// Transitions of this append that hit an already-known state.
    pub reuse_hits: u64,
}

impl AppendReport {
    /// Accumulate another report into this one.
    pub fn absorb(&mut self, other: AppendReport) {
        self.created += other.created;
        self.expanded += other.expanded;
        self.reuse_hits += other.reuse_hits;
    }
}

/// What a [`FrontierEngine::seal`] did to the reachable set.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SealReport {
    /// Distinct states surviving the seal (after rebasing and merging).
    pub kept: usize,
    /// States dropped because they lagged behind the sealed base.
    pub dropped: usize,
}

/// The resumable search: all reachable scheduling states of one view,
/// extendable one operation at a time. See the module docs for the
/// invariants.
///
/// States live in a [`StateSpace`] arena from the shared kernel: one
/// fixed-stride packed `u64` row per state — the `counts` packed two per
/// word, then one word per location value — deduplicated exactly via
/// [`hash_words`] buckets. A scheduling transition copies the source row
/// into a reusable scratch buffer and edits it in place, so the steady
/// state allocates nothing per transition.
pub struct FrontierEngine {
    num_procs: usize,
    max_states: usize,
    /// Per processor, its view-relevant operations in program order.
    seqs: Vec<Vec<ViewOp>>,
    /// Packed state arena + exact dedup. Row layout: `counts` in words
    /// `0..counts_words` (two per word), `values[l]` in word
    /// `counts_words + l` (the `i64` value's bits).
    space: StateSpace,
    /// Words occupied by the packed counts: `num_procs.div_ceil(2)`.
    counts_words: usize,
    /// Successor-row scratch, reused across transitions.
    scratch: Vec<u64>,
    /// `waiting[p][i]` — ids of all states with `counts[p] == i`, the
    /// seeds for `p`'s `i`-th appended operation.
    waiting: Vec<Vec<Vec<u32>>>,
    /// Reachable states that schedule everything appended so far.
    num_complete: usize,
    exhausted: bool,
    stats: FrontierStats,
}

impl FrontierEngine {
    /// An engine for a view over `num_procs` processor sequences and
    /// `num_locs` locations, giving up (soundly reporting "unknown")
    /// once more than `max_states` reachable states exist.
    pub fn new(num_procs: usize, num_locs: usize, max_states: usize) -> Self {
        let counts_words = num_procs.div_ceil(2);
        let mut e = FrontierEngine {
            num_procs,
            max_states: max_states.max(1),
            seqs: vec![Vec::new(); num_procs],
            space: StateSpace::new(counts_words + num_locs),
            counts_words,
            scratch: Vec::new(),
            waiting: vec![vec![Vec::new()]; num_procs],
            num_complete: 0,
            exhausted: false,
            stats: FrontierStats::default(),
        };
        // The root state: nothing scheduled, all locations initial. It
        // is complete for the empty view (every model admits the empty
        // history).
        e.scratch = vec![0u64; e.space.stride()];
        for l in 0..num_locs {
            e.scratch[counts_words + l] = Value::INITIAL.0 as u64;
        }
        let h = hash_words(0, &e.scratch);
        e.insert_scratch(h);
        e
    }

    /// Total view operations appended so far.
    pub fn num_ops(&self) -> usize {
        self.seqs.iter().map(Vec::len).sum()
    }

    /// Reachable states currently stored.
    pub fn num_states(&self) -> usize {
        self.space.len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> FrontierStats {
        self.stats
    }

    /// `true` once the state budget was exceeded; [`FrontierEngine::admitted`]
    /// returns `None` from then on.
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    /// Does the view of everything appended so far have a legal linear
    /// extension? `None` if the state budget ran out.
    pub fn admitted(&self) -> Option<bool> {
        if self.exhausted {
            None
        } else {
            Some(self.num_complete > 0)
        }
    }

    /// Scheduled-prefix length of processor `q` in state `sid`.
    #[inline]
    fn count_of(&self, sid: u32, q: usize) -> u32 {
        get_u32(self.space.row(sid), q)
    }

    /// Store the scratch row as a new state and register it everywhere.
    /// The caller has checked it is not a duplicate. Does not touch the
    /// lifetime counters — rebuilds (seal, fold, restore) re-register
    /// existing states without re-counting them as discoveries.
    fn insert_scratch_inner(&mut self, hash: u64) -> u32 {
        let sid = self.space.insert_new(hash, &self.scratch);
        let mut complete = true;
        for q in 0..self.num_procs {
            let c = get_u32(&self.scratch, q);
            complete &= c as usize == self.seqs[q].len();
            self.waiting[q][c as usize].push(sid);
        }
        if complete {
            self.num_complete += 1;
        }
        sid
    }

    /// [`FrontierEngine::insert_scratch_inner`], counted as a discovery.
    fn insert_scratch(&mut self, hash: u64) -> u32 {
        self.stats.states += 1;
        self.insert_scratch_inner(hash)
    }

    /// Try to schedule processor `q`'s next unscheduled view operation
    /// from state `sid`; on success the successor state is created (if
    /// new) and queued.
    fn try_schedule(
        &mut self,
        sid: u32,
        q: usize,
        queue: &mut VecDeque<u32>,
        report: &mut AppendReport,
    ) {
        let i = self.count_of(sid, q) as usize;
        let op = self.seqs[q][i];
        let loc = self.counts_words + op.loc.index();
        let row = self.space.row(sid);
        if op.kind.is_read() && Value(row[loc] as i64) != op.value {
            return;
        }
        // Successor row, in place: bump q's count; a write updates the
        // location's value word.
        self.scratch.clear();
        self.scratch.extend_from_slice(row);
        set_u32(&mut self.scratch, q, i as u32 + 1);
        if op.kind.is_write() {
            self.scratch[loc] = op.value.0 as u64;
        }
        let hash = hash_words(0, &self.scratch);
        if self.space.find(hash, &self.scratch).is_some() {
            report.reuse_hits += 1;
            self.stats.reuse_hits += 1;
            return;
        }
        if self.space.len() >= self.max_states {
            self.exhausted = true;
            return;
        }
        let new_sid = self.insert_scratch(hash);
        queue.push_back(new_sid);
        report.created += 1;
    }

    /// Extend processor `p`'s view sequence by one operation and close
    /// the reachable set under it. Amortized cost is proportional to the
    /// states *discovered* by this append, not to the size of the
    /// reachable set.
    pub fn append(&mut self, p: ProcId, op: ViewOp) -> AppendReport {
        let p = p.index();
        assert!(p < self.num_procs, "processor outside the engine's table");
        let mut report = AppendReport::default();
        let idx = self.seqs[p].len();
        self.seqs[p].push(op);
        self.waiting[p].push(Vec::new());
        if self.exhausted {
            // Keep the sequences in sync (a caller may still read
            // `num_ops`), but do no state work: the reachable set is
            // already incomplete.
            return report;
        }
        // Old complete states all had counts[p] == idx; none of them is
        // complete any more, and every newly complete state is created
        // below.
        self.num_complete = 0;
        let mut queue: VecDeque<u32> = VecDeque::new();
        // Seed: exactly the states that were waiting on p's idx-th
        // operation. The waiting list cannot grow during this append
        // (every new state has counts[p] > idx), so the snapshot is
        // complete.
        let seeds = self.waiting[p][idx].clone();
        for sid in seeds {
            self.try_schedule(sid, p, &mut queue, &mut report);
            if self.exhausted {
                return report;
            }
        }
        // Close the new states under all arrived operations.
        while let Some(sid) = queue.pop_front() {
            report.expanded += 1;
            self.stats.expanded += 1;
            for q in 0..self.num_procs {
                if (self.count_of(sid, q) as usize) < self.seqs[q].len() {
                    self.try_schedule(sid, q, &mut queue, &mut report);
                    if self.exhausted {
                        return report;
                    }
                }
            }
        }
        report
    }

    /// Processor slots this engine was built for.
    pub fn num_procs(&self) -> usize {
        self.num_procs
    }

    /// View operations appended for processor `q` so far.
    pub fn seq_len(&self, q: usize) -> usize {
        self.seqs[q].len()
    }

    /// Has every reachable state scheduled all of `q`'s view operations?
    /// A quiesced processor's column is constant, so sealing it away
    /// ([`FrontierEngine::seal`]) loses nothing.
    pub fn quiesced(&self, q: usize) -> bool {
        let len = self.seqs[q].len();
        self.waiting[q][..len].iter().all(Vec::is_empty)
    }

    /// Per-processor minimum scheduled-prefix length over all reachable
    /// states: the longest per-processor base that *every* state has
    /// already scheduled. Sealing to this base is always lossless.
    pub fn min_counts(&self) -> Vec<u32> {
        (0..self.num_procs)
            .map(|q| {
                (0..self.seqs[q].len() as u32)
                    .find(|&i| !self.waiting[q][i as usize].is_empty())
                    .unwrap_or(self.seqs[q].len() as u32)
            })
            .collect()
    }

    /// Commit a per-processor prefix `base` as decided: drop every state
    /// that has not scheduled at least `base[q]` of each processor `q`'s
    /// operations, rebase the survivors' counts by subtracting `base`,
    /// and forget the sealed operations. Afterwards the engine is
    /// exactly the engine of the *suffix* streams, started from the
    /// surviving value vectors.
    ///
    /// The seal is lossless iff `base[q] <= min_counts()[q]` for all `q`
    /// (nothing is dropped). A larger base — e.g. the full sequence
    /// lengths when the prefix is admitted — commits to the interpreted
    /// states that reached it and discards laggards, which is how the
    /// windowed monitor bounds memory: per-window verdicts are exact for
    /// the committed interpretation. No-op while exhausted.
    pub fn seal(&mut self, base: &[u32]) -> SealReport {
        assert_eq!(base.len(), self.num_procs, "seal base has wrong arity");
        let mut report = SealReport::default();
        if self.exhausted {
            return report;
        }
        for (q, &b) in base.iter().enumerate() {
            assert!(b as usize <= self.seqs[q].len(), "seal base past sequence");
            self.seqs[q].drain(..b as usize);
        }
        let stride = self.space.stride();
        let old = std::mem::replace(&mut self.space, StateSpace::new(stride));
        for q in 0..self.num_procs {
            self.waiting[q].clear();
            self.waiting[q].resize(self.seqs[q].len() + 1, Vec::new());
        }
        self.num_complete = 0;
        for sid in 0..old.len() as u32 {
            let row = old.row(sid);
            if (0..self.num_procs).any(|q| get_u32(row, q) < base[q]) {
                report.dropped += 1;
                continue;
            }
            self.scratch.clear();
            self.scratch.extend_from_slice(row);
            for (q, &b) in base.iter().enumerate() {
                set_u32(&mut self.scratch, q, get_u32(row, q) - b);
            }
            let hash = hash_words(0, &self.scratch);
            if self.space.find(hash, &self.scratch).is_none() {
                self.insert_scratch_inner(hash);
                report.kept += 1;
            }
        }
        report
    }

    /// Overwrite location `loc`'s value word in every reachable state,
    /// merging states that coincide afterwards. Folding a retired
    /// processor replays its summarized last-writes through this, so
    /// surviving states deterministically adopt the summary values.
    pub fn force_write(&mut self, loc: Location, value: Value) {
        if self.exhausted {
            return;
        }
        let stride = self.space.stride();
        let word = self.counts_words + loc.index();
        assert!(word < stride, "location outside the engine's table");
        let old = std::mem::replace(&mut self.space, StateSpace::new(stride));
        for q in 0..self.num_procs {
            self.waiting[q].clear();
            self.waiting[q].resize(self.seqs[q].len() + 1, Vec::new());
        }
        self.num_complete = 0;
        for sid in 0..old.len() as u32 {
            self.scratch.clear();
            self.scratch.extend_from_slice(old.row(sid));
            self.scratch[word] = value.0 as u64;
            let hash = hash_words(0, &self.scratch);
            if self.space.find(hash, &self.scratch).is_none() {
                self.insert_scratch_inner(hash);
            }
        }
    }

    /// Serialize the complete engine — sequences, state arena, counters —
    /// under the [`crate::binfmt`] contract. [`FrontierEngine::load_from`]
    /// reconstructs an engine whose future behaviour is identical.
    pub fn save_into(&self, buf: &mut Vec<u8>) {
        write_u32(buf, self.num_procs as u32);
        write_u32(buf, (self.space.stride() - self.counts_words) as u32);
        write_u64(buf, self.max_states as u64);
        buf.push(self.exhausted as u8);
        write_u64(buf, self.stats.states);
        write_u64(buf, self.stats.expanded);
        write_u64(buf, self.stats.reuse_hits);
        for seq in &self.seqs {
            write_u32(buf, seq.len() as u32);
            for op in seq {
                buf.push(if op.kind.is_write() { 1 } else { 0 });
                write_u32(buf, op.loc.0);
                write_i64(buf, op.value.0);
            }
        }
        write_u32(buf, self.space.len() as u32);
        for sid in 0..self.space.len() as u32 {
            for &w in self.space.row(sid) {
                write_u64(buf, w);
            }
        }
    }

    /// Rebuild an engine from [`FrontierEngine::save_into`] bytes. The
    /// dedup buckets, waiting lists and completeness count are derived by
    /// re-inserting the rows; every declared length and index is
    /// validated, so corrupt input yields `Err` with a byte offset.
    pub fn load_from(r: &mut Reader<'_>) -> Result<FrontierEngine, String> {
        let at = r.pos();
        let num_procs = r.u32()? as usize;
        if num_procs.saturating_mul(4) > r.remaining() {
            return Err(format!(
                "processor count {num_procs} at byte {at} exceeds remaining input"
            ));
        }
        let at = r.pos();
        let num_locs = r.u32()? as usize;
        if num_locs > r.remaining() {
            return Err(format!(
                "location count {num_locs} at byte {at} exceeds remaining input"
            ));
        }
        let max_states = r.u64()? as usize;
        let exhausted = r.u8()? != 0;
        let stats = FrontierStats {
            states: r.u64()?,
            expanded: r.u64()?,
            reuse_hits: r.u64()?,
        };
        let counts_words = num_procs.div_ceil(2);
        let mut e = FrontierEngine {
            num_procs,
            max_states: max_states.max(1),
            seqs: Vec::with_capacity(num_procs),
            space: StateSpace::new(counts_words + num_locs),
            counts_words,
            scratch: Vec::new(),
            waiting: Vec::with_capacity(num_procs),
            num_complete: 0,
            exhausted,
            stats,
        };
        for _ in 0..num_procs {
            // Each serialized op is 1 (kind) + 4 (loc) + 8 (value) bytes.
            let n = r.len_prefix(13)?;
            let mut seq = Vec::with_capacity(n);
            for _ in 0..n {
                let at = r.pos();
                let kind = match r.u8()? {
                    0 => OpKind::Read,
                    1 => OpKind::Write,
                    k => return Err(format!("unknown operation kind {k} at byte {at}")),
                };
                let at = r.pos();
                let loc = r.u32()?;
                if loc as usize >= num_locs {
                    return Err(format!(
                        "location {loc} at byte {at} outside the engine's table"
                    ));
                }
                seq.push(ViewOp {
                    kind,
                    loc: Location(loc),
                    value: Value(r.i64()?),
                });
            }
            e.waiting.push(vec![Vec::new(); seq.len() + 1]);
            e.seqs.push(seq);
        }
        let stride = e.space.stride();
        let n_states = r.len_prefix(stride * 8)?;
        for _ in 0..n_states {
            let at = r.pos();
            e.scratch.clear();
            for _ in 0..stride {
                e.scratch.push(r.u64()?);
            }
            for q in 0..num_procs {
                let c = get_u32(&e.scratch, q) as usize;
                if c > e.seqs[q].len() {
                    return Err(format!(
                        "state row at byte {at} schedules {c} of processor {q}'s {} operations",
                        e.seqs[q].len()
                    ));
                }
            }
            let hash = hash_words(0, &e.scratch);
            if e.space.find(hash, &e.scratch).is_some() {
                return Err(format!("duplicate state row at byte {at}"));
            }
            e.insert_scratch_inner(hash);
        }
        if !exhausted && e.space.is_empty() {
            return Err(format!("engine with no states at byte {}", r.pos()));
        }
        Ok(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::orders::program_order;
    use crate::view::{find_legal_extension, LegalityMode, SearchOutcome, ViewProblem};
    use smc_history::litmus::parse_history;
    use smc_history::{History, HistoryBuilder};
    use smc_prng::SmallRng;
    use smc_relation::BitSet;

    /// The batch answer the engine must agree with: does the history
    /// have a legal extension of program order (the SC view question)?
    fn batch_admits(h: &History) -> bool {
        let po = program_order(h);
        let p = ViewProblem {
            history: h,
            ops: BitSet::full(h.num_ops()),
            constraints: &po,
            legality: LegalityMode::ByValue,
        };
        match find_legal_extension(&p, &Budget::local(10_000_000)) {
            SearchOutcome::Found(_) => true,
            SearchOutcome::NotFound => false,
            SearchOutcome::Exhausted => panic!("batch search exhausted"),
        }
    }

    fn feed(engine: &mut FrontierEngine, h: &History, order: &[usize]) {
        for &g in order {
            let o = &h.ops()[g];
            engine.append(
                o.proc,
                ViewOp {
                    kind: o.kind,
                    loc: o.loc,
                    value: o.value,
                },
            );
        }
    }

    #[test]
    fn refuted_prefix_can_heal() {
        // `p: w(x)1` + `q: r(x)2` is refuted; appending `p: w(x)2`
        // admits (w1 w2 r2). The engine must keep the incomplete states
        // that make the recovery reachable.
        let mut e = FrontierEngine::new(2, 1, 1 << 16);
        let w = |v: i64| ViewOp {
            kind: OpKind::Write,
            loc: Location(0),
            value: Value(v),
        };
        let r = |v: i64| ViewOp {
            kind: OpKind::Read,
            loc: Location(0),
            value: Value(v),
        };
        assert_eq!(e.admitted(), Some(true));
        e.append(ProcId(0), w(1));
        assert_eq!(e.admitted(), Some(true));
        e.append(ProcId(1), r(2));
        assert_eq!(e.admitted(), Some(false));
        e.append(ProcId(0), w(2));
        assert_eq!(e.admitted(), Some(true));
    }

    #[test]
    fn agrees_with_batch_search_on_every_prefix() {
        let mut rng = SmallRng::seed_from_u64(0xF00D);
        for case in 0..120 {
            let procs = rng.gen_range(1..4usize);
            let locs = rng.gen_range(1..3usize);
            let total = rng.gen_range(0..10usize);
            // Random arrival order of random ops.
            let mut events: Vec<(usize, ViewOp)> = Vec::new();
            for _ in 0..total {
                let p = rng.gen_range(0..procs);
                let kind = if rng.gen_bool(0.5) {
                    OpKind::Write
                } else {
                    OpKind::Read
                };
                events.push((
                    p,
                    ViewOp {
                        kind,
                        loc: Location(rng.gen_range(0..locs) as u32),
                        value: Value(rng.gen_range(0..3i64)),
                    },
                ));
            }
            let mut e = FrontierEngine::new(procs, locs, 1 << 18);
            let mut b = HistoryBuilder::new();
            let names = ["p", "q", "r", "s"];
            for p in names.iter().take(procs) {
                b.add_proc(p);
            }
            for l in ["x", "y"].iter().take(locs) {
                b.add_loc(l);
            }
            for (n, &(p, op)) in events.iter().enumerate() {
                e.append(ProcId(p as u32), op);
                b.push(
                    names[p],
                    op.kind,
                    ["x", "y"][op.loc.index()],
                    op.value,
                    smc_history::Label::Ordinary,
                );
                let h = b.clone().build();
                assert_eq!(
                    e.admitted(),
                    Some(batch_admits(&h)),
                    "case {case}, prefix {}:\n{h}",
                    n + 1
                );
            }
        }
    }

    #[test]
    fn message_passing_stays_admitted_and_fig1_refutes() {
        let h = parse_history("p: w(x)1 r(y)0\nq: w(y)1 r(x)0").unwrap();
        let mut e = FrontierEngine::new(2, 2, 1 << 16);
        // Arrival order = processor-major program order.
        feed(&mut e, &h, &[0, 1, 2, 3]);
        assert_eq!(e.admitted(), Some(false), "fig1 is not SC");

        let h = parse_history("p: w(d)1 w(f)1\nq: r(f)1 r(d)1").unwrap();
        let mut e = FrontierEngine::new(2, 2, 1 << 16);
        feed(&mut e, &h, &[0, 1, 2, 3]);
        assert_eq!(e.admitted(), Some(true));
    }

    #[test]
    fn state_budget_reports_unknown() {
        let mut e = FrontierEngine::new(2, 1, 2);
        let w = |v: i64| ViewOp {
            kind: OpKind::Write,
            loc: Location(0),
            value: Value(v),
        };
        e.append(ProcId(0), w(1));
        e.append(ProcId(1), w(2));
        assert!(e.is_exhausted());
        assert_eq!(e.admitted(), None);
        // Appends after exhaustion are harmless no-ops.
        e.append(ProcId(0), w(3));
        assert_eq!(e.num_ops(), 3);
        assert_eq!(e.admitted(), None);
    }

    #[test]
    fn save_load_round_trip_preserves_future_behaviour() {
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
        for _case in 0..60 {
            let procs = rng.gen_range(1..4usize);
            let locs = rng.gen_range(1..3usize);
            let total = rng.gen_range(0..12usize);
            let split = if total == 0 {
                0
            } else {
                rng.gen_range(0..total)
            };
            let mut ops: Vec<(usize, ViewOp)> = Vec::new();
            for _ in 0..total {
                let kind = if rng.gen_bool(0.5) {
                    OpKind::Write
                } else {
                    OpKind::Read
                };
                ops.push((
                    rng.gen_range(0..procs),
                    ViewOp {
                        kind,
                        loc: Location(rng.gen_range(0..locs) as u32),
                        value: Value(rng.gen_range(0..3i64)),
                    },
                ));
            }
            let mut cold = FrontierEngine::new(procs, locs, 1 << 16);
            for &(p, op) in &ops[..split] {
                cold.append(ProcId(p as u32), op);
            }
            let mut buf = Vec::new();
            cold.save_into(&mut buf);
            let mut r = Reader::new(&buf);
            let mut warm = FrontierEngine::load_from(&mut r).expect("round trip");
            assert!(r.is_at_end());
            assert_eq!(warm.admitted(), cold.admitted());
            assert_eq!(warm.num_states(), cold.num_states());
            assert_eq!(warm.stats(), cold.stats());
            for &(p, op) in &ops[split..] {
                cold.append(ProcId(p as u32), op);
                warm.append(ProcId(p as u32), op);
                assert_eq!(warm.admitted(), cold.admitted());
            }
            assert_eq!(warm.stats(), cold.stats());
        }
    }

    #[test]
    fn truncated_and_corrupt_engine_bytes_are_rejected() {
        let mut e = FrontierEngine::new(2, 2, 1 << 10);
        e.append(
            ProcId(0),
            ViewOp {
                kind: OpKind::Write,
                loc: Location(1),
                value: Value(5),
            },
        );
        let mut buf = Vec::new();
        e.save_into(&mut buf);
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(FrontierEngine::load_from(&mut r).is_err(), "cut {cut}");
        }
        // An out-of-table location in a sequence entry is caught.
        let mut bad = buf.clone();
        // Header is 4+4+8+1+24 = 41 bytes; proc 0's seq len follows,
        // then kind (1 byte), then the loc u32.
        bad[46..50].copy_from_slice(&9u32.to_le_bytes());
        let mut r = Reader::new(&bad);
        let e = match FrontierEngine::load_from(&mut r) {
            Err(e) => e,
            Ok(_) => panic!("corrupt location accepted"),
        };
        assert!(e.contains("outside the engine's table"), "{e}");
    }

    #[test]
    fn lossless_seal_preserves_verdicts() {
        // Sealing to min_counts never drops a state, and the sealed
        // engine keeps answering exactly like the unsealed one.
        let h = parse_history("p: w(d)1 w(f)1\nq: r(f)1 r(d)1").unwrap();
        let mut e = FrontierEngine::new(2, 2, 1 << 16);
        feed(&mut e, &h, &[0, 1, 2, 3]);
        assert_eq!(e.admitted(), Some(true));
        let min = e.min_counts();
        let before = e.num_states();
        let rep = e.seal(&min);
        assert_eq!(rep.dropped, 0, "min-counts seal drops nothing");
        assert!(e.num_states() <= before);
        assert_eq!(e.admitted(), Some(true));
        // The sealed engine still refutes a stale read of d.
        e.append(
            ProcId(1),
            ViewOp {
                kind: OpKind::Read,
                loc: Location(0),
                value: Value(0),
            },
        );
        assert_eq!(e.admitted(), Some(false));
    }

    #[test]
    fn quiesced_column_seals_to_fresh_slot() {
        let mut e = FrontierEngine::new(2, 1, 1 << 16);
        let w = |v: i64| ViewOp {
            kind: OpKind::Write,
            loc: Location(0),
            value: Value(v),
        };
        e.append(ProcId(0), w(1));
        // q reads 1: every surviving schedule has p's write first.
        e.append(
            ProcId(1),
            ViewOp {
                kind: OpKind::Read,
                loc: Location(0),
                value: Value(1),
            },
        );
        assert_eq!(e.admitted(), Some(true));
        assert!(!e.quiesced(0), "a state with p unscheduled is reachable");
        // Seal to the complete states only: p's column becomes empty.
        e.seal(&[1, 1]);
        assert!(e.quiesced(0));
        assert_eq!(e.seq_len(0), 0);
        assert_eq!(e.admitted(), Some(true));
        // The slot is indistinguishable from a fresh processor.
        e.append(ProcId(0), w(2));
        assert_eq!(e.admitted(), Some(true));
    }

    #[test]
    fn force_write_merges_states() {
        let mut e = FrontierEngine::new(2, 1, 1 << 16);
        let w = |v: i64| ViewOp {
            kind: OpKind::Write,
            loc: Location(0),
            value: Value(v),
        };
        e.append(ProcId(0), w(1));
        e.append(ProcId(1), w(2));
        let before = e.num_states();
        e.force_write(Location(0), Value(9));
        assert!(e.num_states() <= before);
        // Every state now reads 9.
        e.append(
            ProcId(0),
            ViewOp {
                kind: OpKind::Read,
                loc: Location(0),
                value: Value(9),
            },
        );
        assert_eq!(e.admitted(), Some(true));
    }

    #[test]
    fn states_are_shared_across_appends() {
        // Two processors writing the same value to the same location:
        // the diamond closes and the four interleavings share states.
        let mut e = FrontierEngine::new(2, 1, 1 << 16);
        let w = ViewOp {
            kind: OpKind::Write,
            loc: Location(0),
            value: Value(7),
        };
        e.append(ProcId(0), w);
        let rep = e.append(ProcId(1), w);
        // (1,1) is reachable two ways; one of them is a reuse hit.
        assert!(rep.reuse_hits > 0 || e.stats().reuse_hits > 0);
        assert_eq!(e.admitted(), Some(true));
    }
}
